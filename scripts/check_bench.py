#!/usr/bin/env python3
"""Bench regression gate: diff fresh BENCH_*.json against the committed
baselines and flag metrics that regressed by more than a threshold.

    scripts/check_bench.py [--threshold 0.25] [--strict] [--ref HEAD]
                           [--out-dir DIR] [file.json ...]

For every bench artifact (default: BENCH_*.json in the repo root / the
given files), the committed baseline is read with `git show <ref>:<name>`.
The two JSON trees are walked in parallel; every numeric leaf whose key
looks like a performance figure is compared:

  - "higher is worse"  (latency, time, memory: *_us, *_ms, *_seconds,
    *_kb, *_bytes, bytes_per_triple, ...) regresses when
    fresh > base * (1 + threshold);
  - "higher is better" (throughput_qps, speedup_*, *_rate, *_scaling,
    triples_per_second) regresses when fresh < base * (1 - threshold);
  - neutral keys (counts, sizes, dop, morsels, epochs, ...) are skipped —
    they describe the workload, not its performance.

Tiny absolute values are ignored (< 1.0 in the metric's unit): a 0.2us →
0.3us jitter is not a 50% regression worth failing CI over.

Exit status: 0 when clean or when only warnings were found; with
--strict, any regression exits 1 (the mode run_benches.sh can opt into
for CI). A missing baseline (new bench, first run) is reported and
skipped. Stdlib only.
"""

import argparse
import json
import os
import subprocess
import sys

# Key-name suffix/substring heuristics, checked in order.
HIGHER_IS_BETTER = (
    "throughput",
    "speedup",
    "_qps",
    "hit_rate",
    "_rate",
    "scaling",
    "triples_per_second",
    "per_second",
)
HIGHER_IS_WORSE = (
    "_us",
    "_ms",
    "_micros",
    "_millis",
    "_seconds",
    "_secs",
    "latency",
    "_kb",
    "_bytes",
    "bytes_per_triple",
    "amplification",
)
# Descriptive figures: changes are workload drift, not perf regressions.
NEUTRAL = (
    "requests",
    "errors",
    "rows",
    "triples",
    "morsels",
    "dop",
    "epoch",
    "count",
    "repetitions",
    "clients",
    "shards",
    "threads",
    "concurrency",
    "batches",
    "queries",
    "dim",
    "seed",
    "terms",
    # Maintenance sweep descriptors: the delta fraction swept, the signed
    # bindings a batch produced, and the measured delta/full cost crossover
    # are workload/policy figures, not timings.
    "fraction",
    "bindings",
    "crossover",
    # Telemetry descriptors: the A/B overhead figure is a noisy difference
    # of two qps measurements (the warm phases themselves are gated), and
    # window/threshold/sample/capture figures are configuration or volume,
    # not performance.
    "overhead",
    "window",
    "samples",
    "captured",
    "suppressed",
    "threshold",
    # Open-loop serving descriptors: offered load and the SLO budget are
    # configuration; the shed rate tracks the offered/capacity ratio, not
    # server quality (shedding *more* at 3x overload is correct behavior);
    # e2e latency under overload includes deliberate queueing + lateness
    # and is unbounded by design at the over-capacity points; round-spread
    # figures report measurement noise, not performance.
    "offered",
    "budget",
    "shed",
    "e2e",
    "spread",
)

MIN_ABS = 1.0  # ignore metrics whose baseline magnitude is below this


def direction(key):
    """Returns +1 (higher is better), -1 (higher is worse) or 0 (skip)."""
    k = key.lower()
    for pat in HIGHER_IS_BETTER:
        if pat in k:
            return +1
    for pat in HIGHER_IS_WORSE:
        if pat in k:
            return -1
    return 0


def walk(base, fresh, path, out):
    """Pairs numeric leaves of two parallel JSON trees into `out`."""
    if isinstance(base, dict) and isinstance(fresh, dict):
        for key in base:
            if key in fresh:
                walk(base[key], fresh[key], path + [key], out)
    elif isinstance(base, list) and isinstance(fresh, list):
        for i, (b, f) in enumerate(zip(base, fresh)):
            # Label list entries by their "name" when present so reports
            # read "datasets[geopop].batch_wall_ms", not "datasets[1]".
            tag = b.get("name") if isinstance(b, dict) else None
            walk(b, f, path + ["[%s]" % (tag if tag else i)], out)
    elif isinstance(base, (int, float)) and isinstance(fresh, (int, float)) \
            and not isinstance(base, bool) and not isinstance(fresh, bool):
        out.append((path, float(base), float(fresh)))


def check_artifact(name, base_text, fresh_text, threshold):
    """Returns (regressions, improvements, compared) for one artifact."""
    base = json.loads(base_text)
    fresh = json.loads(fresh_text)
    leaves = []
    walk(base, fresh, [], leaves)
    regressions, improvements, compared = [], [], 0
    for path, b, f in leaves:
        key = path[-1]
        sign = direction(key)
        if sign == 0 or any(n in key.lower() for n in NEUTRAL):
            continue
        if b == 0:
            continue
        # The tiny-value guard only applies to unit-bearing metrics
        # (latencies, byte counts): sub-unit jitter there is noise.
        # Ratios (speedups, hit rates, scaling) are legitimately < 1.
        if sign < 0 and abs(b) < MIN_ABS:
            continue
        compared += 1
        ratio = f / b
        label = "%s: %s" % (name, ".".join(str(p) for p in path))
        if sign < 0 and ratio > 1.0 + threshold:
            regressions.append("%s  %.3f -> %.3f  (+%.0f%%, higher is worse)"
                              % (label, b, f, (ratio - 1.0) * 100))
        elif sign > 0 and ratio < 1.0 - threshold:
            regressions.append("%s  %.3f -> %.3f  (-%.0f%%, higher is better)"
                              % (label, b, f, (1.0 - ratio) * 100))
        elif sign < 0 and ratio < 1.0 - threshold:
            improvements.append("%s  %.3f -> %.3f  (-%.0f%%)"
                                % (label, b, f, (1.0 - ratio) * 100))
        elif sign > 0 and ratio > 1.0 + threshold:
            improvements.append("%s  %.3f -> %.3f  (+%.0f%%)"
                                % (label, b, f, (ratio - 1.0) * 100))
    return regressions, improvements, compared


def committed_baseline(repo_root, ref, name):
    try:
        return subprocess.run(
            ["git", "-C", repo_root, "show", "%s:%s" % (ref, name)],
            capture_output=True, text=True, check=True).stdout
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="bench artifacts (default: BENCH_*.json in "
                             "--out-dir)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression threshold (default 0.25)")
    parser.add_argument("--ref", default="HEAD",
                        help="git ref holding the baselines (default HEAD)")
    parser.add_argument("--out-dir", default=None,
                        help="directory holding fresh artifacts (default: "
                             "the repo root)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any regression (default: warn only)")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    out_dir = args.out_dir or repo_root
    files = args.files or sorted(
        os.path.join(out_dir, f) for f in os.listdir(out_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not files:
        print("check_bench: no BENCH_*.json artifacts found in %s" % out_dir)
        return 0

    total_regressions, total_compared = 0, 0
    for path in files:
        name = os.path.basename(path)
        try:
            with open(path) as f:
                fresh_text = f.read()
        except OSError as e:
            print("check_bench: cannot read %s: %s" % (path, e))
            continue
        base_text = committed_baseline(repo_root, args.ref, name)
        if base_text is None:
            print("check_bench: %s has no committed baseline at %s "
                  "(new bench?) -- skipped" % (name, args.ref))
            continue
        try:
            regressions, improvements, compared = check_artifact(
                name, base_text, fresh_text, args.threshold)
        except (json.JSONDecodeError, ValueError) as e:
            print("check_bench: %s: malformed JSON: %s" % (name, e))
            continue
        total_compared += compared
        total_regressions += len(regressions)
        for line in regressions:
            print("REGRESSION  " + line)
        for line in improvements:
            print("improved    " + line)

    print("check_bench: %d metric%s compared, %d regression%s beyond %.0f%%"
          % (total_compared, "" if total_compared == 1 else "s",
             total_regressions, "" if total_regressions == 1 else "s",
             args.threshold * 100))
    if total_regressions and args.strict:
        return 1
    if total_regressions:
        print("check_bench: warnings only (pass --strict to fail the build)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
