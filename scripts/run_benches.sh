#!/usr/bin/env bash
# Builds the bench suite and emits the perf-trajectory artifacts.
#
#   scripts/run_benches.sh [build_dir] [out_dir]
#
# Currently emits:
#   BENCH_parallel.json    — thread-scaling curve (1/2/4/8) of lattice
#                            profiling and batched workload execution
#   BENCH_maintenance.json — staged-delta merge vs full re-finalize and
#                            incremental vs full view maintenance
#   BENCH_exec.json        — root-view query: vectorized batch engine at
#                            1/2/4/8 morsel workers vs the row-at-a-time
#                            Volcano executor
#   BENCH_server.json      — online serving (epoll event-loop io): closed-
#                            loop cold/warm/mixed phases, telemetry-overhead
#                            A/B (median of interleaved rounds), open-loop
#                            overload sweep with queue-model admission, and
#                            the idle-connection phase; the legacy
#                            thread-per-session path is re-run stdout-only
#                            as a cross-check (SOFOS_IO_MODE=thread)
#   BENCH_store.json       — sharded COW TripleStore: Finalize/ApplyDelta/
#                            Clone+publish at 1/2/4/8 shards with 0.5%
#                            deltas, COW clone vs deep-clone baseline
#   BENCH_scale.json       — million-triple scale: bytes/triple of the
#                            compact CSR + front-coded layout vs sorted
#                            runs, gen/load seconds, query p50/p95 and
#                            delta-apply at 100k/300k/1m (SOFOS_SCALE_BIG=1
#                            appends a 10m point)
# Other benches (E1..E9 tables) print to stdout and are kept text-only.
# Every artifact carries a "memory" object (VmHWM/VmRSS from procfs).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT_DIR="${2:-$REPO_ROOT}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
fi
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target bench_parallel bench_maintenance bench_exec bench_server \
           bench_store bench_scale

mkdir -p "$OUT_DIR"
"$BUILD_DIR/bench_parallel" "$OUT_DIR/BENCH_parallel.json"
"$BUILD_DIR/bench_maintenance" "$OUT_DIR/BENCH_maintenance.json"
"$BUILD_DIR/bench_exec" "$OUT_DIR/BENCH_exec.json"
SOFOS_IO_MODE=event "$BUILD_DIR/bench_server" "$OUT_DIR/BENCH_server.json"
# Cross-check the legacy thread-per-session path (stdout only — the JSON
# artifact tracks the default event-loop io; the closed-loop phases are
# what both modes share).
SOFOS_IO_MODE=thread "$BUILD_DIR/bench_server"
"$BUILD_DIR/bench_store" "$OUT_DIR/BENCH_store.json"
# SOFOS_SCALE_BIG=1 scripts/run_benches.sh adds the (minutes-long) 10m point.
SOFOS_SCALE_BIG="${SOFOS_SCALE_BIG:-0}" \
  "$BUILD_DIR/bench_scale" "$OUT_DIR/BENCH_scale.json"

echo "bench artifacts in $OUT_DIR:"
ls -l "$OUT_DIR"/BENCH_*.json

# Regression gate: diff the fresh artifacts against the committed
# baselines and flag >25% regressions (warn-only by default; set
# SOFOS_BENCH_STRICT=1 to fail the run on any regression).
if [ "${SOFOS_BENCH_STRICT:-0}" = "1" ]; then
  python3 "$REPO_ROOT/scripts/check_bench.py" --out-dir "$OUT_DIR" --strict
else
  python3 "$REPO_ROOT/scripts/check_bench.py" --out-dir "$OUT_DIR"
fi
