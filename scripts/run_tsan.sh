#!/usr/bin/env bash
# ThreadSanitizer lane over the concurrency-sensitive tests (the ones
# carrying the `maintenance`, `exec`, `server`, `store`, `scale`,
# `observability` and `telemetry` CTest labels — delta-rule incremental
# view maintenance with its parallel per-view roll-up repair, the
# vectorized morsel-parallel executor, the concurrent online serving
# subsystem, the sharded copy-on-write TripleStore with its COW epoch
# snapshots, the compact-layout scale suite with concurrent snapshot
# readers, the metrics/trace layer with its cross-thread recording, and
# the continuous-telemetry stack — background sampler vs. concurrent
# queries/updates, workload recorder, slow-query capture, HTTP listener):
# builds a separate TSan-enabled tree and runs only those suites.
#
#   scripts/run_tsan.sh [build_dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-tsan}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DSOFOS_TSAN=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target maintenance_test parallel_test exec_test server_test \
           event_loop_test store_test scale_test observability_test \
           telemetry_test

cd "$BUILD_DIR"
ctest -L 'maintenance|exec|server|store|scale|observability|telemetry' \
  --output-on-failure
