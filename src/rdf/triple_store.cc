#include "rdf/triple_store.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace sofos {

namespace {

// Field extraction per order: order -> (first, second, third) selectors.
struct FieldPerm {
  int a, b, c;  // 0 = s, 1 = p, 2 = o
};

constexpr FieldPerm kPerms[] = {
    {0, 1, 2},  // SPO
    {0, 2, 1},  // SOP
    {1, 0, 2},  // PSO
    {1, 2, 0},  // POS
    {2, 0, 1},  // OSP
    {2, 1, 0},  // OPS
};

inline TermId Field(const Triple& t, int f) {
  switch (f) {
    case 0:
      return t.s;
    case 1:
      return t.p;
    default:
      return t.o;
  }
}

inline void SetField(Triple* t, int f, TermId v) {
  switch (f) {
    case 0:
      t->s = v;
      break;
    case 1:
      t->p = v;
      break;
    default:
      t->o = v;
  }
}

struct PermLess {
  FieldPerm perm;
  bool operator()(const Triple& x, const Triple& y) const {
    TermId xa = Field(x, perm.a), ya = Field(y, perm.a);
    if (xa != ya) return xa < ya;
    TermId xb = Field(x, perm.b), yb = Field(y, perm.b);
    if (xb != yb) return xb < yb;
    return Field(x, perm.c) < Field(y, perm.c);
  }
};

}  // namespace

void TripleStore::Add(TermId s, TermId p, TermId o) {
  assert(s != kNullTermId && p != kNullTermId && o != kNullTermId);
  triples_.push_back(Triple{s, p, o});
  finalized_ = false;
}

void TripleStore::Add(const Term& s, const Term& p, const Term& o) {
  Add(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
}

void TripleStore::ReplaceTriples(std::vector<Triple> triples) {
  triples_ = std::move(triples);
  finalized_ = false;
}

void TripleStore::Finalize() {
  if (finalized_) return;

  std::sort(triples_.begin(), triples_.end());
  triples_.erase(std::unique(triples_.begin(), triples_.end()), triples_.end());

  for (int order = 0; order < kNumOrders; ++order) {
    indexes_[order] = triples_;
    if (order != kSPO) {
      std::sort(indexes_[order].begin(), indexes_[order].end(),
                PermLess{kPerms[order]});
    }
  }

  // Per-predicate statistics from the PSO and POS indexes: triples per
  // predicate, distinct subjects per predicate (runs of s within a predicate
  // block of PSO), distinct objects per predicate (runs of o within POS).
  predicate_stats_.clear();
  const auto& pso = indexes_[kPSO];
  for (size_t i = 0; i < pso.size();) {
    TermId pred = pso[i].p;
    PredicateStats& st = predicate_stats_[pred];
    TermId last_s = kNullTermId;
    while (i < pso.size() && pso[i].p == pred) {
      ++st.triples;
      if (pso[i].s != last_s) {
        ++st.distinct_subjects;
        last_s = pso[i].s;
      }
      ++i;
    }
  }
  const auto& pos = indexes_[kPOS];
  for (size_t i = 0; i < pos.size();) {
    TermId pred = pos[i].p;
    PredicateStats& st = predicate_stats_[pred];
    TermId last_o = kNullTermId;
    while (i < pos.size() && pos[i].p == pred) {
      if (pos[i].o != last_o) {
        ++st.distinct_objects;
        last_o = pos[i].o;
      }
      ++i;
    }
  }

  // Node count: distinct ids appearing as subject or object. Subjects are
  // the run-heads of SPO; objects the run-heads of OSP; merge-count them.
  num_nodes_ = 0;
  const auto& spo = indexes_[kSPO];
  const auto& osp = indexes_[kOSP];
  size_t i = 0, j = 0;
  TermId prev = kNullTermId;
  bool have_prev = false;
  while (i < spo.size() || j < osp.size()) {
    TermId next;
    if (j >= osp.size() || (i < spo.size() && spo[i].s <= osp[j].o)) {
      next = spo[i].s;
      ++i;
    } else {
      next = osp[j].o;
      ++j;
    }
    if (!have_prev || next != prev) {
      ++num_nodes_;
      prev = next;
      have_prev = true;
    }
  }

  finalized_ = true;
}

TripleStore::ScanRange TripleStore::Scan(TermId s, TermId p, TermId o) const {
  assert(finalized_ && "Scan() requires a finalized store");

  // Pick the index whose sort order puts the bound components first.
  int order;
  if (s != kNullTermId) {
    if (p != kNullTermId) {
      order = kSPO;  // covers s, sp, spo
    } else if (o != kNullTermId) {
      order = kSOP;
    } else {
      order = kSPO;
    }
  } else if (p != kNullTermId) {
    order = (o != kNullTermId) ? kPOS : kPSO;
  } else if (o != kNullTermId) {
    order = kOSP;
  } else {
    const auto& all = indexes_[kSPO];
    return ScanRange(all.data(), all.data() + all.size());
  }

  const FieldPerm& perm = kPerms[order];
  constexpr TermId kMax = std::numeric_limits<TermId>::max();
  Triple lo{s, p, o}, hi{s, p, o};
  // Unbound fields become (0, max) so the bound prefix delimits the range.
  if (Field(lo, perm.a) == kNullTermId) {
    SetField(&lo, perm.a, 0);
    SetField(&hi, perm.a, kMax);
  }
  if (Field(lo, perm.b) == kNullTermId) {
    SetField(&lo, perm.b, 0);
    SetField(&hi, perm.b, kMax);
  }
  if (Field(lo, perm.c) == kNullTermId) {
    SetField(&lo, perm.c, 0);
    SetField(&hi, perm.c, kMax);
  }

  const auto& index = indexes_[order];
  PermLess less{perm};
  auto begin = std::lower_bound(index.begin(), index.end(), lo, less);
  auto end = std::upper_bound(begin, index.end(), hi, less);
  return ScanRange(index.data() + (begin - index.begin()),
                   index.data() + (end - index.begin()));
}

const PredicateStats* TripleStore::StatsFor(TermId predicate) const {
  auto it = predicate_stats_.find(predicate);
  if (it == predicate_stats_.end()) return nullptr;
  return &it->second;
}

uint64_t TripleStore::MemoryBytes() const {
  uint64_t bytes = dict_.MemoryBytes();
  bytes += triples_.capacity() * sizeof(Triple);
  for (const auto& index : indexes_) bytes += index.capacity() * sizeof(Triple);
  return bytes;
}

}  // namespace sofos
