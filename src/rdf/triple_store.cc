#include "rdf/triple_store.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/timer.h"

namespace sofos {

namespace {

// Field extraction per order: order -> (first, second, third) selectors.
// Order indexes are family * 2 + run (see TripleStore::Family), i.e.
// 0=SPO, 1=SOP, 2=PSO, 3=POS, 4=OSP, 5=OPS.
struct FieldPerm {
  int a, b, c;  // 0 = s, 1 = p, 2 = o
};

constexpr FieldPerm kPerms[] = {
    {0, 1, 2},  // SPO
    {0, 2, 1},  // SOP
    {1, 0, 2},  // PSO
    {1, 2, 0},  // POS
    {2, 0, 1},  // OSP
    {2, 1, 0},  // OPS
};

constexpr int kSPO = 0;

/// The leading field each family partitions on (0 = s, 1 = p, 2 = o).
constexpr int kFamilyField[TripleStore::kNumFamilies] = {0, 1, 2};

constexpr size_t kMaxShards = 256;

inline TermId Field(const Triple& t, int f) {
  switch (f) {
    case 0:
      return t.s;
    case 1:
      return t.p;
    default:
      return t.o;
  }
}

inline void SetField(Triple* t, int f, TermId v) {
  switch (f) {
    case 0:
      t->s = v;
      break;
    case 1:
      t->p = v;
      break;
    default:
      t->o = v;
  }
}

struct PermLess {
  FieldPerm perm;
  bool operator()(const Triple& x, const Triple& y) const {
    TermId xa = Field(x, perm.a), ya = Field(y, perm.a);
    if (xa != ya) return xa < ya;
    TermId xb = Field(x, perm.b), yb = Field(y, perm.b);
    if (xb != yb) return xb < yb;
    return Field(x, perm.c) < Field(y, perm.c);
  }
};

/// One linear pass merging `adds` into `index` while dropping `deletes`;
/// all three inputs sorted by `less`. `adds` must be disjoint from `index`
/// and `deletes` a subset of it (ApplyDelta normalizes the staged buffers
/// to these effective sets), so the output needs no deduplication.
std::vector<Triple> MergeDelta(const std::vector<Triple>& index,
                               const std::vector<Triple>& adds,
                               const std::vector<Triple>& deletes,
                               const PermLess& less) {
  std::vector<Triple> out;
  out.reserve(index.size() + adds.size() - deletes.size());
  size_t i = 0, a = 0, d = 0;
  while (i < index.size() || a < adds.size()) {
    if (a >= adds.size() || (i < index.size() && !less(adds[a], index[i]))) {
      if (d < deletes.size() && deletes[d] == index[i]) {
        ++d;  // tombstone: skip the deleted triple
        ++i;
      } else {
        out.push_back(index[i++]);
      }
    } else {
      out.push_back(adds[a++]);
    }
  }
  return out;
}

/// splitmix64 finalizer: deterministic across platforms, mixes the dense
/// low-entropy TermId space well enough that buckets stay balanced.
inline uint64_t MixId(TermId id) {
  uint64_t v = id;
  v ^= v >> 30;
  v *= 0xbf58476d1ce4e5b9ULL;
  v ^= v >> 27;
  v *= 0x94d049bb133111ebULL;
  v ^= v >> 31;
  return v;
}

}  // namespace

TripleStore::TripleStore() : dict_(std::make_shared<Dictionary>()) {}

TripleStore::TripleStore(TripleStore&& other)
    : dict_(std::move(other.dict_)),
      canonical_(std::move(other.canonical_)),
      pending_(std::move(other.pending_)),
      shard_count_(other.shard_count_),
      families_(std::move(other.families_)),
      bucket_nodes_(std::move(other.bucket_nodes_)),
      delta_adds_(std::move(other.delta_adds_)),
      delta_deletes_(std::move(other.delta_deletes_)),
      predicate_stats_(std::move(other.predicate_stats_)),
      num_nodes_(other.num_nodes_),
      finalized_(other.finalized_),
      compact_layout_(other.compact_layout_) {
  other.Reset();
}

TripleStore& TripleStore::operator=(TripleStore&& other) {
  if (this != &other) {
    dict_ = std::move(other.dict_);
    canonical_ = std::move(other.canonical_);
    pending_ = std::move(other.pending_);
    shard_count_ = other.shard_count_;
    families_ = std::move(other.families_);
    bucket_nodes_ = std::move(other.bucket_nodes_);
    delta_adds_ = std::move(other.delta_adds_);
    delta_deletes_ = std::move(other.delta_deletes_);
    predicate_stats_ = std::move(other.predicate_stats_);
    num_nodes_ = other.num_nodes_;
    finalized_ = other.finalized_;
    compact_layout_ = other.compact_layout_;
    other.Reset();
  }
  return *this;
}

void TripleStore::Reset() {
  dict_ = std::make_shared<Dictionary>();
  canonical_.reset();
  pending_.clear();
  shard_count_ = 1;
  for (auto& family : families_) family.clear();
  bucket_nodes_.clear();
  delta_adds_.clear();
  delta_deletes_.clear();
  predicate_stats_.clear();
  num_nodes_ = 0;
  finalized_ = false;
  compact_layout_ = false;
}

size_t TripleStore::ShardIndexFor(TermId id, size_t shard_count) {
  return shard_count <= 1 ? 0 : static_cast<size_t>(MixId(id) % shard_count);
}

TripleStore TripleStore::Clone() const {
  SOFOS_CHECK(finalized_, "Clone() requires a finalized store");
  SOFOS_CHECK(!HasStagedDelta(), "Clone() while a staged delta is pending");
  TripleStore copy;
  copy.dict_ = dict_;            // shared: append-only + internally locked
  copy.canonical_ = canonical_;  // COW: replaced wholesale on mutation
  copy.shard_count_ = shard_count_;
  copy.families_ = families_;  // COW: 3 * shard_count pointer copies
  copy.bucket_nodes_ = bucket_nodes_;
  copy.predicate_stats_ = predicate_stats_;
  copy.num_nodes_ = num_nodes_;
  copy.finalized_ = true;
  copy.compact_layout_ = compact_layout_;
  return copy;
}

TripleStore TripleStore::DeepClone() const {
  SOFOS_CHECK(finalized_, "DeepClone() requires a finalized store");
  SOFOS_CHECK(!HasStagedDelta(), "DeepClone() while a staged delta is pending");
  TripleStore copy;
  copy.dict_ = std::make_shared<Dictionary>(dict_->Clone());
  copy.canonical_ = std::make_shared<const std::vector<Triple>>(*canonical_);
  copy.shard_count_ = shard_count_;
  for (int f = 0; f < kNumFamilies; ++f) {
    copy.families_[f].reserve(families_[f].size());
    for (const auto& shard : families_[f]) {
      copy.families_[f].push_back(std::make_shared<const Shard>(*shard));
    }
  }
  copy.bucket_nodes_ = bucket_nodes_;
  copy.predicate_stats_ = predicate_stats_;
  copy.num_nodes_ = num_nodes_;
  copy.finalized_ = true;
  copy.compact_layout_ = compact_layout_;
  return copy;
}

const void* TripleStore::ShardIdentity(Family family, size_t shard) const {
  SOFOS_CHECK(finalized_, "ShardIdentity() requires a finalized store");
  return families_[family][shard].get();
}

const void* TripleStore::CanonicalIdentity() const {
  SOFOS_CHECK(finalized_, "CanonicalIdentity() requires a finalized store");
  return canonical_.get();
}

void TripleStore::Add(TermId s, TermId p, TermId o) {
  assert(s != kNullTermId && p != kNullTermId && o != kNullTermId);
  SOFOS_CHECK(!HasStagedDelta(),
              "Add() while a staged delta is pending; ApplyDelta() or "
              "DiscardStagedDelta() first");
  if (finalized_) {
    // Detach into the staging buffer; the canonical array may be shared
    // with clones and must never be edited in place. (finalized_ implies
    // canonical_ is set — Finalize() establishes it and moves reset both.)
    pending_ = *canonical_;
    finalized_ = false;
  }
  pending_.push_back(Triple{s, p, o});
}

void TripleStore::Add(const Term& s, const Term& p, const Term& o) {
  Add(dict_->Intern(s), dict_->Intern(p), dict_->Intern(o));
}

void TripleStore::ReplaceTriples(std::vector<Triple> triples) {
  SOFOS_CHECK(!HasStagedDelta(),
              "ReplaceTriples() while a staged delta is pending");
  pending_ = std::move(triples);
  finalized_ = false;
}

void TripleStore::StageAdd(TermId s, TermId p, TermId o) {
  assert(s != kNullTermId && p != kNullTermId && o != kNullTermId);
  SOFOS_CHECK(finalized_, "StageAdd() requires a finalized store");
  delta_adds_.push_back(Triple{s, p, o});
}

void TripleStore::StageDelete(TermId s, TermId p, TermId o) {
  assert(s != kNullTermId && p != kNullTermId && o != kNullTermId);
  SOFOS_CHECK(finalized_, "StageDelete() requires a finalized store");
  delta_deletes_.push_back(Triple{s, p, o});
}

void TripleStore::StageAdd(const Term& s, const Term& p, const Term& o) {
  StageAdd(dict_->Intern(s), dict_->Intern(p), dict_->Intern(o));
}

void TripleStore::StageDelete(const Term& s, const Term& p, const Term& o) {
  StageDelete(dict_->Intern(s), dict_->Intern(p), dict_->Intern(o));
}

void TripleStore::DiscardStagedDelta() {
  delta_adds_.clear();
  delta_deletes_.clear();
}

std::vector<std::vector<Triple>> TripleStore::PartitionByField(
    const std::vector<Triple>& triples, int field) const {
  std::vector<std::vector<Triple>> buckets(shard_count_);
  if (shard_count_ == 1) {
    buckets[0] = triples;
    return buckets;
  }
  std::vector<size_t> sizes(shard_count_, 0);
  for (const Triple& t : triples) {
    ++sizes[ShardIndexFor(Field(t, field), shard_count_)];
  }
  for (size_t k = 0; k < shard_count_; ++k) buckets[k].reserve(sizes[k]);
  for (const Triple& t : triples) {
    buckets[ShardIndexFor(Field(t, field), shard_count_)].push_back(t);
  }
  return buckets;
}

void TripleStore::ComputeShardStats(Shard* shard) {
  // Per-predicate statistics from the shard's PSO and POS runs: triples per
  // predicate, distinct subjects per predicate (runs of s within a
  // predicate block of PSO), distinct objects per predicate (runs of o
  // within POS). A predicate's triples all hash to one shard, so these are
  // complete per-predicate figures.
  shard->stats.clear();
  const auto& pso = shard->runs[0];
  for (size_t i = 0; i < pso.size();) {
    TermId pred = pso[i].p;
    PredicateStats& st = shard->stats[pred];
    TermId last_s = kNullTermId;
    while (i < pso.size() && pso[i].p == pred) {
      ++st.triples;
      if (pso[i].s != last_s) {
        ++st.distinct_subjects;
        last_s = pso[i].s;
      }
      ++i;
    }
  }
  const auto& pos = shard->runs[1];
  for (size_t i = 0; i < pos.size();) {
    TermId pred = pos[i].p;
    PredicateStats& st = shard->stats[pred];
    TermId last_o = kNullTermId;
    while (i < pos.size() && pos[i].p == pred) {
      if (pos[i].o != last_o) {
        ++st.distinct_objects;
        last_o = pos[i].o;
      }
      ++i;
    }
  }
}

void TripleStore::CompressShard(Shard* out, int family,
                                const std::vector<Triple>& bucket) {
  // `bucket` arrives sorted by the family's primary order, so the leading
  // field is non-decreasing: one pass emits each distinct lead once and
  // packs the two minor fields per triple. CSR offsets are uint32 — fine
  // for any per-bucket size this store can hold (TermIds are uint32 and
  // shards split the graph further).
  SOFOS_CHECK(bucket.size() <= std::numeric_limits<uint32_t>::max(),
              "compact shard bucket exceeds uint32 edge offsets");
  const FieldPerm& perm = kPerms[family * 2];
  out->compact = true;
  out->edges.reserve(bucket.size());
  for (const Triple& t : bucket) {
    TermId lead = Field(t, perm.a);
    if (out->node_ids.empty() || out->node_ids.back() != lead) {
      out->node_ids.push_back(lead);
      out->node_offsets.push_back(static_cast<uint32_t>(out->edges.size()));
    }
    out->edges.push_back(Shard::Edge{Field(t, perm.b), Field(t, perm.c)});
  }
  out->node_offsets.push_back(static_cast<uint32_t>(out->edges.size()));
}

std::vector<Triple> TripleStore::DecompressShard(const Shard& shard,
                                                 int family) {
  const FieldPerm& perm = kPerms[family * 2];
  std::vector<Triple> out;
  out.reserve(shard.edges.size());
  for (size_t n = 0; n < shard.node_ids.size(); ++n) {
    for (uint32_t i = shard.node_offsets[n]; i < shard.node_offsets[n + 1];
         ++i) {
      Triple t;
      SetField(&t, perm.a, shard.node_ids[n]);
      SetField(&t, perm.b, shard.edges[i][0]);
      SetField(&t, perm.c, shard.edges[i][1]);
      out.push_back(t);
    }
  }
  return out;
}

void TripleStore::ComputeShardBloom(Shard* shard) {
  constexpr uint32_t kBloomBits = Shard::kBloomWords * 64;
  shard->bloom.fill(0);
  auto add = [shard](TermId p) {
    const uint64_t h = MixId(p);
    const uint32_t b1 = static_cast<uint32_t>(h) & (kBloomBits - 1);
    const uint32_t b2 = static_cast<uint32_t>(h >> 32) & (kBloomBits - 1);
    shard->bloom[b1 >> 6] |= 1ULL << (b1 & 63);
    shard->bloom[b2 >> 6] |= 1ULL << (b2 & 63);
  };
  if (shard->compact) {
    // Subject-family edges store (p, o).
    for (const Shard::Edge& e : shard->edges) add(e[0]);
  } else {
    // Subject-family runs[0] is SPO.
    for (const Triple& t : shard->runs[0]) add(t.p);
  }
}

bool TripleStore::BloomMayContain(const Shard& shard, TermId predicate) {
  constexpr uint32_t kBloomBits = Shard::kBloomWords * 64;
  const uint64_t h = MixId(predicate);
  const uint32_t b1 = static_cast<uint32_t>(h) & (kBloomBits - 1);
  const uint32_t b2 = static_cast<uint32_t>(h >> 32) & (kBloomBits - 1);
  return (shard.bloom[b1 >> 6] & (1ULL << (b1 & 63))) != 0 &&
         (shard.bloom[b2 >> 6] & (1ULL << (b2 & 63))) != 0;
}

uint64_t TripleStore::ComputeBucketNodes(size_t k) const {
  // Distinct ids appearing as subject or object *within this bucket*:
  // subjects are the distinct leads of the bucket's SPO index, objects the
  // distinct leads of the bucket's OSP index; merge-count the two ascending
  // sequences. A compact shard lists its distinct leads directly
  // (node_ids); a sorted-run shard yields them as run-heads of its primary
  // run, which the prev-dedup below collapses. The subject and object
  // families use the same hash, so a term's subject occurrences and object
  // occurrences land in the same bucket index and the per-bucket counts
  // sum to the global node count without double counting.
  const Shard& subj = *families_[kSubjectFamily][k];
  const Shard& obj = *families_[kObjectFamily][k];
  auto size_of = [](const Shard& sh) {
    return sh.compact ? sh.node_ids.size() : sh.runs[0].size();
  };
  auto lead_at = [](const Shard& sh, int field, size_t idx) {
    return sh.compact ? sh.node_ids[idx] : Field(sh.runs[0][idx], field);
  };
  const size_t nsub = size_of(subj), nobj = size_of(obj);
  uint64_t nodes = 0;
  size_t i = 0, j = 0;
  TermId prev = kNullTermId;
  bool have_prev = false;
  while (i < nsub || j < nobj) {
    TermId next;
    if (j >= nobj ||
        (i < nsub && lead_at(subj, 0, i) <= lead_at(obj, 2, j))) {
      next = lead_at(subj, 0, i);
      ++i;
    } else {
      next = lead_at(obj, 2, j);
      ++j;
    }
    if (!have_prev || next != prev) {
      ++nodes;
      prev = next;
      have_prev = true;
    }
  }
  return nodes;
}

void TripleStore::RefreshStats(const std::vector<bool>* dirty_buckets) {
  predicate_stats_.clear();
  for (const auto& shard : families_[kPredicateFamily]) {
    for (const auto& [pred, stats] : shard->stats) {
      predicate_stats_.emplace(pred, stats);
    }
  }
  if (bucket_nodes_.size() != shard_count_) {
    bucket_nodes_.assign(shard_count_, 0);
    dirty_buckets = nullptr;  // shard count changed: everything is dirty
  }
  for (size_t k = 0; k < shard_count_; ++k) {
    if (dirty_buckets == nullptr || (*dirty_buckets)[k]) {
      bucket_nodes_[k] = ComputeBucketNodes(k);
    }
  }
  num_nodes_ = 0;
  for (uint64_t n : bucket_nodes_) num_nodes_ += n;
}

void TripleStore::BuildShards(ThreadPool* pool) {
  const std::vector<Triple>& all = *canonical_;

  // Serial partition pass per family (linear), then every (family, bucket)
  // sorts its two runs independently on the pool. Comparators are total
  // orders over deduplicated triples, so the result is schedule-invariant.
  std::array<std::vector<std::vector<Triple>>, kNumFamilies> partitioned;
  for (int f = 0; f < kNumFamilies; ++f) {
    partitioned[f] = PartitionByField(all, kFamilyField[f]);
  }

  std::array<std::vector<std::shared_ptr<const Shard>>, kNumFamilies> fresh;
  for (int f = 0; f < kNumFamilies; ++f) {
    fresh[f].resize(shard_count_);
  }
  ParallelForEach(
      pool, static_cast<size_t>(kNumFamilies) * shard_count_, [&](size_t i) {
        const int f = static_cast<int>(i / shard_count_);
        const size_t k = i % shard_count_;
        auto shard = std::make_shared<Shard>();
        std::vector<Triple> bucket = std::move(partitioned[f][k]);
        if (FamilyCompact(f)) {
          // The partition preserves canonical SPO order, so the subject
          // family's bucket is already in its primary order; the object
          // family needs its OSP sort first.
          if (f != kSubjectFamily) {
            std::sort(bucket.begin(), bucket.end(), PermLess{kPerms[f * 2]});
          }
          CompressShard(shard.get(), f, bucket);
        } else {
          shard->runs[0] = std::move(bucket);
          shard->runs[1] = shard->runs[0];
          // Same SPO-order argument as above for the subject family.
          if (f != kSubjectFamily) {
            std::sort(shard->runs[0].begin(), shard->runs[0].end(),
                      PermLess{kPerms[f * 2]});
          }
          std::sort(shard->runs[1].begin(), shard->runs[1].end(),
                    PermLess{kPerms[f * 2 + 1]});
        }
        if (f == kPredicateFamily) ComputeShardStats(shard.get());
        if (f == kSubjectFamily) ComputeShardBloom(shard.get());
        fresh[f][k] = std::move(shard);
      });
  for (int f = 0; f < kNumFamilies; ++f) families_[f] = std::move(fresh[f]);
  RefreshStats(nullptr);
}

void TripleStore::SetShardCount(size_t count, ThreadPool* pool) {
  SOFOS_CHECK(!HasStagedDelta(),
              "SetShardCount() while a staged delta is pending");
  count = std::max<size_t>(1, std::min(count, kMaxShards));
  if (count == shard_count_) return;
  shard_count_ = count;
  if (finalized_) BuildShards(pool);
}

void TripleStore::SetCompactLayout(bool compact, ThreadPool* pool) {
  SOFOS_CHECK(!HasStagedDelta(),
              "SetCompactLayout() while a staged delta is pending");
  if (compact == compact_layout_) return;
  compact_layout_ = compact;
  if (finalized_) BuildShards(pool);
}

DeltaApplyResult TripleStore::ApplyDelta(ThreadPool* pool) {
  SOFOS_CHECK(finalized_, "ApplyDelta() requires a finalized store");
  WallTimer timer;
  DeltaApplyResult result;

  // Normalize the staged buffers against the current graph so the merges
  // are pure: effective adds are absent from G, effective deletes are
  // present in G and not re-added ((G \ D) ∪ A keeps a triple staged on
  // both sides, so it must not be tombstoned).
  std::sort(delta_adds_.begin(), delta_adds_.end());
  delta_adds_.erase(std::unique(delta_adds_.begin(), delta_adds_.end()),
                    delta_adds_.end());
  std::sort(delta_deletes_.begin(), delta_deletes_.end());
  delta_deletes_.erase(
      std::unique(delta_deletes_.begin(), delta_deletes_.end()),
      delta_deletes_.end());

  const std::vector<Triple>& current = *canonical_;
  std::vector<Triple> adds, deletes;
  adds.reserve(delta_adds_.size());
  deletes.reserve(delta_deletes_.size());
  for (const Triple& t : delta_adds_) {
    if (!std::binary_search(current.begin(), current.end(), t)) {
      adds.push_back(t);
    }
  }
  for (const Triple& t : delta_deletes_) {
    if (std::binary_search(current.begin(), current.end(), t) &&
        !std::binary_search(delta_adds_.begin(), delta_adds_.end(), t)) {
      deletes.push_back(t);
    }
  }
  DiscardStagedDelta();
  result.adds_applied = adds.size();
  result.deletes_applied = deletes.size();

  if (adds.empty() && deletes.empty()) {
    result.merge_micros = timer.ElapsedMicros();
    return result;
  }

  // Partition the (SPO-sorted) effective delta per family; only buckets
  // with a non-empty slice are rebuilt, everything else keeps sharing its
  // published Shard across the mutation (the COW aliasing contract).
  std::array<std::vector<std::vector<Triple>>, kNumFamilies> f_adds, f_deletes;
  for (int f = 0; f < kNumFamilies; ++f) {
    f_adds[f] = PartitionByField(adds, kFamilyField[f]);
    f_deletes[f] = PartitionByField(deletes, kFamilyField[f]);
  }
  struct ShardTask {
    int family;
    size_t bucket;
  };
  std::vector<ShardTask> tasks;
  std::vector<bool> dirty_nodes(shard_count_, false);
  for (int f = 0; f < kNumFamilies; ++f) {
    for (size_t k = 0; k < shard_count_; ++k) {
      if (f_adds[f][k].empty() && f_deletes[f][k].empty()) continue;
      tasks.push_back(ShardTask{f, k});
      if (f != kPredicateFamily) dirty_nodes[k] = true;
    }
  }
  result.shards_rebuilt = tasks.size();

  // Task list: one canonical-array merge plus one merge per touched shard,
  // all independent; each shard task sorts its own small delta slice into
  // its two run orders, then merges linearly.
  auto fresh_canonical = std::make_shared<std::vector<Triple>>();
  std::vector<std::shared_ptr<const Shard>> replacements(tasks.size());
  ParallelForEach(pool, tasks.size() + 1, [&](size_t i) {
    if (i == tasks.size()) {
      *fresh_canonical =
          MergeDelta(*canonical_, adds, deletes, PermLess{kPerms[kSPO]});
      return;
    }
    const ShardTask& task = tasks[i];
    const Shard& old = *families_[task.family][task.bucket];
    auto fresh = std::make_shared<Shard>();
    if (old.compact) {
      // Compact buckets merge in the primary order only: decode the CSR
      // arrays back to triples, tombstone-merge, re-encode. The slices are
      // this task's alone, so steal them.
      const int order = task.family * 2;
      PermLess less{kPerms[order]};
      std::vector<Triple> order_adds =
          std::move(f_adds[task.family][task.bucket]);
      std::vector<Triple> order_deletes =
          std::move(f_deletes[task.family][task.bucket]);
      if (order != kSPO) {
        std::sort(order_adds.begin(), order_adds.end(), less);
        std::sort(order_deletes.begin(), order_deletes.end(), less);
      }
      CompressShard(fresh.get(), task.family,
                    MergeDelta(DecompressShard(old, task.family), order_adds,
                               order_deletes, less));
    } else {
      for (int run = 0; run < 2; ++run) {
        const int order = task.family * 2 + run;
        PermLess less{kPerms[order]};
        // Each (family, bucket) slice belongs to exactly this task; the
        // second run is its last use, so steal instead of copying.
        std::vector<Triple> order_adds =
            run == 1 ? std::move(f_adds[task.family][task.bucket])
                     : f_adds[task.family][task.bucket];
        std::vector<Triple> order_deletes =
            run == 1 ? std::move(f_deletes[task.family][task.bucket])
                     : f_deletes[task.family][task.bucket];
        if (order != kSPO) {
          std::sort(order_adds.begin(), order_adds.end(), less);
          std::sort(order_deletes.begin(), order_deletes.end(), less);
        }
        fresh->runs[run] = MergeDelta(old.runs[run], order_adds,
                                      order_deletes, less);
      }
    }
    if (task.family == kPredicateFamily) ComputeShardStats(fresh.get());
    if (task.family == kSubjectFamily) ComputeShardBloom(fresh.get());
    replacements[i] = std::move(fresh);
  });
  canonical_ = std::move(fresh_canonical);
  for (size_t i = 0; i < tasks.size(); ++i) {
    families_[tasks[i].family][tasks[i].bucket] = std::move(replacements[i]);
  }
  RefreshStats(&dirty_nodes);

  result.merge_micros = timer.ElapsedMicros();
  return result;
}

void TripleStore::Finalize(ThreadPool* pool) {
  SOFOS_CHECK(!HasStagedDelta(),
              "Finalize() while a staged delta is pending; ApplyDelta() or "
              "DiscardStagedDelta() first");
  if (finalized_) return;

  std::sort(pending_.begin(), pending_.end());
  pending_.erase(std::unique(pending_.begin(), pending_.end()),
                 pending_.end());
  canonical_ =
      std::make_shared<const std::vector<Triple>>(std::move(pending_));
  pending_ = std::vector<Triple>();
  BuildShards(pool);
  finalized_ = true;
}

namespace {

/// The index whose sort order puts the bound components first. Shared by
/// Scan() and ScanFieldOrder() so the two can never disagree — the hash
/// join's bucket ordering relies on replicating exactly this choice.
int PickScanOrder(bool s, bool p, bool o) {
  if (s) {
    if (p) return 0;  // kSPO: covers s, sp, spo
    if (o) return 1;  // kSOP
    return 0;         // kSPO
  }
  if (p) return o ? 3 : 2;  // kPOS : kPSO
  if (o) return 4;          // kOSP
  return 0;                 // kSPO: full scan
}

}  // namespace

std::array<int, 3> TripleStore::ScanFieldOrder(bool s_bound, bool p_bound,
                                               bool o_bound) {
  const FieldPerm& perm = kPerms[PickScanOrder(s_bound, p_bound, o_bound)];
  return {perm.a, perm.b, perm.c};
}

TripleStore::ScanRange TripleStore::Scan(TermId s, TermId p, TermId o,
                                         bool* bloom_skipped) const {
  if (bloom_skipped != nullptr) *bloom_skipped = false;
  assert(finalized_ && "Scan() requires a finalized store");
  // Release-mode backstop for the misuse the assert catches in debug: an
  // unfinalized store has no canonical array (and possibly no shards) —
  // answer empty instead of dereferencing null.
  if (canonical_ == nullptr) return ScanRange();

  if (s == kNullTermId && p == kNullTermId && o == kNullTermId) {
    // Fully unbound: the canonical array is the one globally SPO-sorted
    // view (shard runs are only locally sorted).
    const auto& all = *canonical_;
    return ScanRange(all.data(), all.data() + all.size());
  }
  int order =
      PickScanOrder(s != kNullTermId, p != kNullTermId, o != kNullTermId);

  // Every non-full pattern binds the chosen order's leading field, so the
  // scan resolves inside exactly one hash bucket of that order's family.
  const int family = order / 2;
  const TermId lead = family == kSubjectFamily
                          ? s
                          : family == kPredicateFamily ? p : o;
  const Shard& shard =
      *families_[family][ShardIndexFor(lead, shard_count_)];
  // Subject-family scans are the only picked orders with a bound,
  // non-leading predicate (SPO with p bound); the shard's predicate bloom
  // proves many of those empty without touching the index. False positives
  // just fall through to the normal search — results are unchanged.
  if (family == kSubjectFamily && p != kNullTermId &&
      !BloomMayContain(shard, p)) {
    if (bloom_skipped != nullptr) *bloom_skipped = true;
    return ScanRange();
  }
  if (shard.compact) return CompactScan(shard, order, s, p, o);
  const std::vector<Triple>& index = shard.runs[order % 2];

  const FieldPerm& perm = kPerms[order];
  constexpr TermId kMax = std::numeric_limits<TermId>::max();
  Triple lo{s, p, o}, hi{s, p, o};
  // Unbound fields become (0, max) so the bound prefix delimits the range.
  if (Field(lo, perm.a) == kNullTermId) {
    SetField(&lo, perm.a, 0);
    SetField(&hi, perm.a, kMax);
  }
  if (Field(lo, perm.b) == kNullTermId) {
    SetField(&lo, perm.b, 0);
    SetField(&hi, perm.b, kMax);
  }
  if (Field(lo, perm.c) == kNullTermId) {
    SetField(&lo, perm.c, 0);
    SetField(&hi, perm.c, kMax);
  }

  PermLess less{perm};
  auto begin = std::lower_bound(index.begin(), index.end(), lo, less);
  auto end = std::upper_bound(begin, index.end(), hi, less);
  return ScanRange(index.data() + (begin - index.begin()),
                   index.data() + (end - index.begin()));
}

TripleStore::ScanRange TripleStore::CompactScan(const Shard& shard, int order,
                                                TermId s, TermId p,
                                                TermId o) const {
  const int family = order / 2;
  const TermId lead = family == kSubjectFamily ? s : o;
  auto it =
      std::lower_bound(shard.node_ids.begin(), shard.node_ids.end(), lead);
  if (it == shard.node_ids.end() || *it != lead) return ScanRange();
  const size_t n = static_cast<size_t>(it - shard.node_ids.begin());
  const Shard::Edge* ebeg = shard.edges.data() + shard.node_offsets[n];
  const Shard::Edge* eend = shard.edges.data() + shard.node_offsets[n + 1];

  // Materialize the node's matching slice in exactly the order the sorted
  // run would have held it; the buffer travels with the range (backing).
  auto out = std::make_shared<std::vector<Triple>>();
  constexpr TermId kMax = std::numeric_limits<TermId>::max();
  switch (order) {
    case 0: {  // SPO: the slice is (p, o)-sorted; narrow by p (and o).
      if (p != kNullTermId) {
        ebeg = std::lower_bound(
            ebeg, eend, Shard::Edge{p, o != kNullTermId ? o : 0});
        eend = std::upper_bound(
            ebeg, eend, Shard::Edge{p, o != kNullTermId ? o : kMax});
      }
      out->reserve(static_cast<size_t>(eend - ebeg));
      for (const Shard::Edge* e = ebeg; e != eend; ++e) {
        out->push_back(Triple{lead, (*e)[0], (*e)[1]});
      }
      break;
    }
    case 1: {  // SOP: s and o bound; p ascends within the filtered slice.
      for (const Shard::Edge* e = ebeg; e != eend; ++e) {
        if ((*e)[1] == o) out->push_back(Triple{lead, (*e)[0], o});
      }
      break;
    }
    case 4: {  // OSP: o bound alone; the whole (s, p)-sorted slice.
      out->reserve(static_cast<size_t>(eend - ebeg));
      for (const Shard::Edge* e = ebeg; e != eend; ++e) {
        out->push_back(Triple{(*e)[0], (*e)[1], lead});
      }
      break;
    }
    default:
      // PickScanOrder never sends PSO/POS here (predicate family keeps
      // runs) and never picks OPS at all.
      SOFOS_CHECK(false, "compact scan asked for an unexpected order");
  }
  if (out->empty()) return ScanRange();
  // Compute both pointers before the move: argument evaluation order is
  // unspecified, so `out` must not be read in the same call that moves it.
  const Triple* data = out->data();
  const Triple* data_end = data + out->size();
  return ScanRange(data, data_end, std::move(out));
}

uint64_t TripleStore::CompactCount(const Shard& shard, int order, TermId s,
                                   TermId p, TermId o) const {
  const int family = order / 2;
  const TermId lead = family == kSubjectFamily ? s : o;
  auto it =
      std::lower_bound(shard.node_ids.begin(), shard.node_ids.end(), lead);
  if (it == shard.node_ids.end() || *it != lead) return 0;
  const size_t n = static_cast<size_t>(it - shard.node_ids.begin());
  const Shard::Edge* ebeg = shard.edges.data() + shard.node_offsets[n];
  const Shard::Edge* eend = shard.edges.data() + shard.node_offsets[n + 1];
  constexpr TermId kMax = std::numeric_limits<TermId>::max();
  switch (order) {
    case 0:
      if (p != kNullTermId) {
        ebeg = std::lower_bound(
            ebeg, eend, Shard::Edge{p, o != kNullTermId ? o : 0});
        eend = std::upper_bound(
            ebeg, eend, Shard::Edge{p, o != kNullTermId ? o : kMax});
      }
      return static_cast<uint64_t>(eend - ebeg);
    case 1: {
      uint64_t count = 0;
      for (const Shard::Edge* e = ebeg; e != eend; ++e) {
        if ((*e)[1] == o) ++count;
      }
      return count;
    }
    case 4:
      return static_cast<uint64_t>(eend - ebeg);
    default:
      SOFOS_CHECK(false, "compact count asked for an unexpected order");
  }
  return 0;
}

uint64_t TripleStore::Count(TermId s, TermId p, TermId o) const {
  assert(finalized_ && "Count() requires a finalized store");
  if (canonical_ == nullptr) return 0;
  if (s == kNullTermId && p == kNullTermId && o == kNullTermId) {
    return canonical_->size();
  }
  const int order =
      PickScanOrder(s != kNullTermId, p != kNullTermId, o != kNullTermId);
  const int family = order / 2;
  const TermId lead = family == kSubjectFamily
                          ? s
                          : family == kPredicateFamily ? p : o;
  const Shard& shard =
      *families_[family][ShardIndexFor(lead, shard_count_)];
  if (family == kSubjectFamily && p != kNullTermId &&
      !BloomMayContain(shard, p)) {
    return 0;
  }
  if (shard.compact) return CompactCount(shard, order, s, p, o);
  // Sorted runs: Scan() is already two binary searches with no copy.
  return Scan(s, p, o).size();
}

std::vector<TripleStore::ScanRange> TripleStore::ScanPartitions(
    TermId s, TermId p, TermId o, size_t max_partitions) const {
  ScanRange full = Scan(s, p, o);
  std::vector<ScanRange> parts;
  if (full.empty()) return parts;
  size_t n = full.size();
  size_t chunks = max_partitions < 1 ? 1 : std::min(max_partitions, n);
  parts.reserve(chunks);
  size_t base = n / chunks, extra = n % chunks;
  const Triple* begin = full.begin();
  for (size_t c = 0; c < chunks; ++c) {
    size_t len = base + (c < extra ? 1 : 0);
    // Every partition shares the full range's backing (if any) so compact
    // materializations outlive the morsel that reads them.
    parts.emplace_back(begin, begin + len, full.backing());
    begin += len;
  }
  return parts;
}

const PredicateStats* TripleStore::StatsFor(TermId predicate) const {
  auto it = predicate_stats_.find(predicate);
  if (it == predicate_stats_.end()) return nullptr;
  return &it->second;
}

double TripleStore::AvgSubjectFanout(TermId predicate) const {
  const PredicateStats* st = StatsFor(predicate);
  if (st == nullptr || st->distinct_subjects == 0) return 0.0;
  return static_cast<double>(st->triples) /
         static_cast<double>(st->distinct_subjects);
}

double TripleStore::AvgObjectFanout(TermId predicate) const {
  const PredicateStats* st = StatsFor(predicate);
  if (st == nullptr || st->distinct_objects == 0) return 0.0;
  return static_cast<double>(st->triples) /
         static_cast<double>(st->distinct_objects);
}

uint64_t TripleStore::MemoryBytes() const {
  uint64_t bytes = dict_->MemoryBytes();
  if (canonical_ != nullptr) bytes += canonical_->capacity() * sizeof(Triple);
  bytes += pending_.capacity() * sizeof(Triple);
  bytes += (delta_adds_.capacity() + delta_deletes_.capacity()) * sizeof(Triple);
  for (const auto& family : families_) {
    for (const auto& shard : family) {
      if (shard != nullptr) bytes += shard->MemoryBytes();
    }
  }
  return bytes;
}

}  // namespace sofos
