#include "rdf/triple_store.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/timer.h"

namespace sofos {

namespace {

// Field extraction per order: order -> (first, second, third) selectors.
struct FieldPerm {
  int a, b, c;  // 0 = s, 1 = p, 2 = o
};

constexpr FieldPerm kPerms[] = {
    {0, 1, 2},  // SPO
    {0, 2, 1},  // SOP
    {1, 0, 2},  // PSO
    {1, 2, 0},  // POS
    {2, 0, 1},  // OSP
    {2, 1, 0},  // OPS
};

inline TermId Field(const Triple& t, int f) {
  switch (f) {
    case 0:
      return t.s;
    case 1:
      return t.p;
    default:
      return t.o;
  }
}

inline void SetField(Triple* t, int f, TermId v) {
  switch (f) {
    case 0:
      t->s = v;
      break;
    case 1:
      t->p = v;
      break;
    default:
      t->o = v;
  }
}

struct PermLess {
  FieldPerm perm;
  bool operator()(const Triple& x, const Triple& y) const {
    TermId xa = Field(x, perm.a), ya = Field(y, perm.a);
    if (xa != ya) return xa < ya;
    TermId xb = Field(x, perm.b), yb = Field(y, perm.b);
    if (xb != yb) return xb < yb;
    return Field(x, perm.c) < Field(y, perm.c);
  }
};

/// One linear pass merging `adds` into `index` while dropping `deletes`;
/// all three inputs sorted by `less`. `adds` must be disjoint from `index`
/// and `deletes` a subset of it (ApplyDelta normalizes the staged buffers
/// to these effective sets), so the output needs no deduplication.
std::vector<Triple> MergeDelta(const std::vector<Triple>& index,
                               const std::vector<Triple>& adds,
                               const std::vector<Triple>& deletes,
                               const PermLess& less) {
  std::vector<Triple> out;
  out.reserve(index.size() + adds.size() - deletes.size());
  size_t i = 0, a = 0, d = 0;
  while (i < index.size() || a < adds.size()) {
    if (a >= adds.size() || (i < index.size() && !less(adds[a], index[i]))) {
      if (d < deletes.size() && deletes[d] == index[i]) {
        ++d;  // tombstone: skip the deleted triple
        ++i;
      } else {
        out.push_back(index[i++]);
      }
    } else {
      out.push_back(adds[a++]);
    }
  }
  return out;
}

}  // namespace

TripleStore TripleStore::Clone() const {
  SOFOS_CHECK(finalized_, "Clone() requires a finalized store");
  SOFOS_CHECK(!HasStagedDelta(), "Clone() while a staged delta is pending");
  TripleStore copy;
  copy.dict_ = dict_.Clone();
  copy.triples_ = triples_;
  copy.indexes_ = indexes_;
  copy.predicate_stats_ = predicate_stats_;
  copy.num_nodes_ = num_nodes_;
  copy.finalized_ = true;
  return copy;
}

void TripleStore::Add(TermId s, TermId p, TermId o) {
  assert(s != kNullTermId && p != kNullTermId && o != kNullTermId);
  SOFOS_CHECK(!HasStagedDelta(),
              "Add() while a staged delta is pending; ApplyDelta() or "
              "DiscardStagedDelta() first");
  triples_.push_back(Triple{s, p, o});
  finalized_ = false;
}

void TripleStore::Add(const Term& s, const Term& p, const Term& o) {
  Add(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
}

void TripleStore::ReplaceTriples(std::vector<Triple> triples) {
  SOFOS_CHECK(!HasStagedDelta(),
              "ReplaceTriples() while a staged delta is pending");
  triples_ = std::move(triples);
  finalized_ = false;
}

void TripleStore::StageAdd(TermId s, TermId p, TermId o) {
  assert(s != kNullTermId && p != kNullTermId && o != kNullTermId);
  SOFOS_CHECK(finalized_, "StageAdd() requires a finalized store");
  delta_adds_.push_back(Triple{s, p, o});
}

void TripleStore::StageDelete(TermId s, TermId p, TermId o) {
  assert(s != kNullTermId && p != kNullTermId && o != kNullTermId);
  SOFOS_CHECK(finalized_, "StageDelete() requires a finalized store");
  delta_deletes_.push_back(Triple{s, p, o});
}

void TripleStore::StageAdd(const Term& s, const Term& p, const Term& o) {
  StageAdd(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
}

void TripleStore::StageDelete(const Term& s, const Term& p, const Term& o) {
  StageDelete(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
}

void TripleStore::DiscardStagedDelta() {
  delta_adds_.clear();
  delta_deletes_.clear();
}

DeltaApplyResult TripleStore::ApplyDelta(ThreadPool* pool) {
  SOFOS_CHECK(finalized_, "ApplyDelta() requires a finalized store");
  WallTimer timer;
  DeltaApplyResult result;

  // Normalize the staged buffers against the current graph so the per-order
  // merges are pure: effective adds are absent from G, effective deletes are
  // present in G and not re-added ((G \ D) ∪ A keeps a triple staged on both
  // sides, so it must not be tombstoned).
  std::sort(delta_adds_.begin(), delta_adds_.end());
  delta_adds_.erase(std::unique(delta_adds_.begin(), delta_adds_.end()),
                    delta_adds_.end());
  std::sort(delta_deletes_.begin(), delta_deletes_.end());
  delta_deletes_.erase(
      std::unique(delta_deletes_.begin(), delta_deletes_.end()),
      delta_deletes_.end());

  std::vector<Triple> adds, deletes;
  adds.reserve(delta_adds_.size());
  deletes.reserve(delta_deletes_.size());
  for (const Triple& t : delta_adds_) {
    if (!std::binary_search(triples_.begin(), triples_.end(), t)) {
      adds.push_back(t);
    }
  }
  for (const Triple& t : delta_deletes_) {
    if (std::binary_search(triples_.begin(), triples_.end(), t) &&
        !std::binary_search(delta_adds_.begin(), delta_adds_.end(), t)) {
      deletes.push_back(t);
    }
  }
  DiscardStagedDelta();
  result.adds_applied = adds.size();
  result.deletes_applied = deletes.size();

  if (!adds.empty() || !deletes.empty()) {
    // Six independent merges; each sorts its own small copy of the delta
    // into its permutation order, then merges in one pass.
    ParallelForEach(pool, static_cast<size_t>(kNumOrders), [&](size_t order) {
      PermLess less{kPerms[order]};
      std::vector<Triple> order_adds = adds, order_deletes = deletes;
      if (order != kSPO) {
        std::sort(order_adds.begin(), order_adds.end(), less);
        std::sort(order_deletes.begin(), order_deletes.end(), less);
      }
      indexes_[order] =
          MergeDelta(indexes_[order], order_adds, order_deletes, less);
    });
    triples_ = indexes_[kSPO];
    RebuildStats();
  }

  result.merge_micros = timer.ElapsedMicros();
  return result;
}

void TripleStore::Finalize(ThreadPool* pool) {
  SOFOS_CHECK(!HasStagedDelta(),
              "Finalize() while a staged delta is pending; ApplyDelta() or "
              "DiscardStagedDelta() first");
  if (finalized_) return;

  std::sort(triples_.begin(), triples_.end());
  triples_.erase(std::unique(triples_.begin(), triples_.end()), triples_.end());

  // The canonical sort + dedup above must finish first; the five remaining
  // permutation sorts are independent and fan out over the pool.
  indexes_[kSPO] = triples_;
  ParallelForEach(pool, static_cast<size_t>(kNumOrders) - 1, [&](size_t i) {
    int order = static_cast<int>(i) + 1;
    indexes_[order] = triples_;
    std::sort(indexes_[order].begin(), indexes_[order].end(),
              PermLess{kPerms[order]});
  });

  RebuildStats();
  finalized_ = true;
}

void TripleStore::RebuildStats() {
  // Per-predicate statistics from the PSO and POS indexes: triples per
  // predicate, distinct subjects per predicate (runs of s within a predicate
  // block of PSO), distinct objects per predicate (runs of o within POS).
  predicate_stats_.clear();
  const auto& pso = indexes_[kPSO];
  for (size_t i = 0; i < pso.size();) {
    TermId pred = pso[i].p;
    PredicateStats& st = predicate_stats_[pred];
    TermId last_s = kNullTermId;
    while (i < pso.size() && pso[i].p == pred) {
      ++st.triples;
      if (pso[i].s != last_s) {
        ++st.distinct_subjects;
        last_s = pso[i].s;
      }
      ++i;
    }
  }
  const auto& pos = indexes_[kPOS];
  for (size_t i = 0; i < pos.size();) {
    TermId pred = pos[i].p;
    PredicateStats& st = predicate_stats_[pred];
    TermId last_o = kNullTermId;
    while (i < pos.size() && pos[i].p == pred) {
      if (pos[i].o != last_o) {
        ++st.distinct_objects;
        last_o = pos[i].o;
      }
      ++i;
    }
  }

  // Node count: distinct ids appearing as subject or object. Subjects are
  // the run-heads of SPO; objects the run-heads of OSP; merge-count them.
  num_nodes_ = 0;
  const auto& spo = indexes_[kSPO];
  const auto& osp = indexes_[kOSP];
  size_t i = 0, j = 0;
  TermId prev = kNullTermId;
  bool have_prev = false;
  while (i < spo.size() || j < osp.size()) {
    TermId next;
    if (j >= osp.size() || (i < spo.size() && spo[i].s <= osp[j].o)) {
      next = spo[i].s;
      ++i;
    } else {
      next = osp[j].o;
      ++j;
    }
    if (!have_prev || next != prev) {
      ++num_nodes_;
      prev = next;
      have_prev = true;
    }
  }
}

namespace {

/// The index whose sort order puts the bound components first. Shared by
/// Scan() and ScanFieldOrder() so the two can never disagree — the hash
/// join's bucket ordering relies on replicating exactly this choice.
int PickScanOrder(bool s, bool p, bool o) {
  if (s) {
    if (p) return 0;  // kSPO: covers s, sp, spo
    if (o) return 1;  // kSOP
    return 0;         // kSPO
  }
  if (p) return o ? 3 : 2;  // kPOS : kPSO
  if (o) return 4;          // kOSP
  return 0;                 // kSPO: full scan
}

}  // namespace

std::array<int, 3> TripleStore::ScanFieldOrder(bool s_bound, bool p_bound,
                                               bool o_bound) {
  const FieldPerm& perm = kPerms[PickScanOrder(s_bound, p_bound, o_bound)];
  return {perm.a, perm.b, perm.c};
}

TripleStore::ScanRange TripleStore::Scan(TermId s, TermId p, TermId o) const {
  assert(finalized_ && "Scan() requires a finalized store");

  if (s == kNullTermId && p == kNullTermId && o == kNullTermId) {
    const auto& all = indexes_[kSPO];
    return ScanRange(all.data(), all.data() + all.size());
  }
  int order =
      PickScanOrder(s != kNullTermId, p != kNullTermId, o != kNullTermId);

  const FieldPerm& perm = kPerms[order];
  constexpr TermId kMax = std::numeric_limits<TermId>::max();
  Triple lo{s, p, o}, hi{s, p, o};
  // Unbound fields become (0, max) so the bound prefix delimits the range.
  if (Field(lo, perm.a) == kNullTermId) {
    SetField(&lo, perm.a, 0);
    SetField(&hi, perm.a, kMax);
  }
  if (Field(lo, perm.b) == kNullTermId) {
    SetField(&lo, perm.b, 0);
    SetField(&hi, perm.b, kMax);
  }
  if (Field(lo, perm.c) == kNullTermId) {
    SetField(&lo, perm.c, 0);
    SetField(&hi, perm.c, kMax);
  }

  const auto& index = indexes_[order];
  PermLess less{perm};
  auto begin = std::lower_bound(index.begin(), index.end(), lo, less);
  auto end = std::upper_bound(begin, index.end(), hi, less);
  return ScanRange(index.data() + (begin - index.begin()),
                   index.data() + (end - index.begin()));
}

std::vector<TripleStore::ScanRange> TripleStore::ScanPartitions(
    TermId s, TermId p, TermId o, size_t max_partitions) const {
  ScanRange full = Scan(s, p, o);
  std::vector<ScanRange> parts;
  if (full.empty()) return parts;
  size_t n = full.size();
  size_t chunks = max_partitions < 1 ? 1 : std::min(max_partitions, n);
  parts.reserve(chunks);
  size_t base = n / chunks, extra = n % chunks;
  const Triple* begin = full.begin();
  for (size_t c = 0; c < chunks; ++c) {
    size_t len = base + (c < extra ? 1 : 0);
    parts.emplace_back(begin, begin + len);
    begin += len;
  }
  return parts;
}

const PredicateStats* TripleStore::StatsFor(TermId predicate) const {
  auto it = predicate_stats_.find(predicate);
  if (it == predicate_stats_.end()) return nullptr;
  return &it->second;
}

uint64_t TripleStore::MemoryBytes() const {
  uint64_t bytes = dict_.MemoryBytes();
  bytes += triples_.capacity() * sizeof(Triple);
  bytes += (delta_adds_.capacity() + delta_deletes_.capacity()) * sizeof(Triple);
  for (const auto& index : indexes_) bytes += index.capacity() * sizeof(Triple);
  return bytes;
}

}  // namespace sofos
