#include "rdf/dictionary.h"

#include <cassert>

namespace sofos {

TermId Dictionary::Intern(const Term& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  terms_.push_back(term);
  TermId id = static_cast<TermId>(terms_.size());  // ids start at 1
  index_.emplace(term, id);
  return id;
}

std::optional<TermId> Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(term);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const Term& Dictionary::term(TermId id) const {
  assert(id != kNullTermId && id <= terms_.size());
  return terms_[id - 1];
}

uint64_t Dictionary::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const Term& t : terms_) {
    bytes += sizeof(Term) + t.lexical().capacity() + t.lang().capacity();
  }
  // Hash index: bucket array + node overhead per entry (approximation).
  bytes += index_.bucket_count() * sizeof(void*);
  bytes += index_.size() * (sizeof(Term) + sizeof(TermId) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace sofos
