#include "rdf/dictionary.h"

#include <cassert>
#include <limits>
#include <mutex>
#include <string_view>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"

namespace sofos {

namespace {

/// Probe-table sizing: power of two, at most half full.
size_t ProbeCapacityFor(size_t entries) {
  size_t cap = 1024;
  while (cap < entries * 2 + 2) cap <<= 1;
  return cap;
}

}  // namespace

Dictionary::Dictionary(Dictionary&& other) noexcept {
  std::unique_lock<std::shared_mutex> lock(other.mu_);
  terms_ = std::move(other.terms_);
  index_ = std::move(other.index_);
  front_coded_ = other.front_coded_;
  packed_ = std::move(other.packed_);
  arena_ = std::move(other.arena_);
  // std::map moves keep node addresses stable, so prefixes_ pointers into
  // prefix_ids_ remain valid after the move.
  prefix_ids_ = std::move(other.prefix_ids_);
  prefixes_ = std::move(other.prefixes_);
  probe_ = std::move(other.probe_);
  decoded_ = std::move(other.decoded_);
  other.front_coded_ = false;
}

Dictionary& Dictionary::operator=(Dictionary&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    terms_ = std::move(other.terms_);
    index_ = std::move(other.index_);
    front_coded_ = other.front_coded_;
    packed_ = std::move(other.packed_);
    arena_ = std::move(other.arena_);
    prefix_ids_ = std::move(other.prefix_ids_);
    prefixes_ = std::move(other.prefixes_);
    probe_ = std::move(other.probe_);
    decoded_ = std::move(other.decoded_);
    other.front_coded_ = false;
  }
  return *this;
}

Dictionary Dictionary::Clone() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Dictionary copy;
  copy.terms_ = terms_;
  copy.index_ = index_;
  copy.front_coded_ = front_coded_;
  copy.packed_ = packed_;
  copy.arena_ = arena_;
  copy.prefix_ids_ = prefix_ids_;
  copy.prefixes_.assign(prefixes_.size(), nullptr);
  for (const auto& [key, id] : copy.prefix_ids_) {
    copy.prefixes_[id - 1] = &key;  // re-point into the copied map's nodes
  }
  copy.probe_ = probe_;
  // The decode cache is a per-dictionary materialization detail; the clone
  // starts cold and refills lazily.
  copy.decoded_.resize(packed_.size());
  return copy;
}

uint64_t Dictionary::PackedHashLocked(const Packed& entry) const {
  // Replicates Term::Hash() from the packed fields. FNV-1a is
  // seed-chainable — Fnv1a64(b, Fnv1a64(a)) == Fnv1a64(a + b) — so the
  // full lexical hash never needs the concatenated string.
  std::string_view suffix(arena_.data() + entry.offset, entry.lexical_len);
  uint64_t h = entry.prefix != 0
                   ? Fnv1a64(suffix, Fnv1a64(*prefixes_[entry.prefix - 1]))
                   : Fnv1a64(suffix);
  h = HashCombine(h, static_cast<uint64_t>(entry.kind));
  h = HashCombine(h, static_cast<uint64_t>(entry.datatype));
  if (entry.extra_len > 0) {
    std::string_view extra(arena_.data() + entry.offset + entry.lexical_len,
                           entry.extra_len);
    h = HashCombine(h, Fnv1a64(extra));
  }
  return h;
}

bool Dictionary::PackedEqualsLocked(const Packed& entry,
                                    const Term& term) const {
  if (entry.kind != term.kind() || entry.datatype != term.datatype()) {
    return false;
  }
  std::string_view lex = term.lexical();
  std::string_view suffix(arena_.data() + entry.offset, entry.lexical_len);
  if (entry.prefix != 0) {
    const std::string& pre = *prefixes_[entry.prefix - 1];
    if (lex.size() != pre.size() + suffix.size() ||
        lex.substr(0, pre.size()) != pre || lex.substr(pre.size()) != suffix) {
      return false;
    }
  } else if (lex != suffix) {
    return false;
  }
  std::string_view extra(arena_.data() + entry.offset + entry.lexical_len,
                         entry.extra_len);
  return extra == term.raw_extra();
}

TermId Dictionary::FindPackedLocked(const Term& term, uint64_t hash) const {
  if (probe_.empty()) return kNullTermId;
  const size_t mask = probe_.size() - 1;
  for (size_t idx = static_cast<size_t>(hash) & mask;;
       idx = (idx + 1) & mask) {
    TermId id = probe_[idx];
    if (id == kNullTermId) return kNullTermId;
    if (PackedEqualsLocked(packed_[id - 1], term)) return id;
  }
}

void Dictionary::ProbeInsertLocked(TermId id, uint64_t hash) {
  const size_t mask = probe_.size() - 1;
  size_t idx = static_cast<size_t>(hash) & mask;
  while (probe_[idx] != kNullTermId) idx = (idx + 1) & mask;
  probe_[idx] = id;
}

void Dictionary::GrowProbeLocked() {
  probe_.assign(ProbeCapacityFor(packed_.size() + 1), kNullTermId);
  for (TermId id = 1; id <= packed_.size(); ++id) {
    ProbeInsertLocked(id, PackedHashLocked(packed_[id - 1]));
  }
}

Term Dictionary::MaterializeLocked(const Packed& entry) const {
  std::string lexical;
  if (entry.prefix != 0) {
    const std::string& pre = *prefixes_[entry.prefix - 1];
    lexical.reserve(pre.size() + entry.lexical_len);
    lexical.append(pre);
  }
  lexical.append(arena_.data() + entry.offset, entry.lexical_len);
  std::string extra(arena_.data() + entry.offset + entry.lexical_len,
                    entry.extra_len);
  return Term::FromRaw(entry.kind, entry.datatype, std::move(lexical),
                       std::move(extra));
}

TermId Dictionary::AppendPackedLocked(const Term& term, uint64_t hash) {
  Packed entry;
  std::string_view lex = term.lexical();
  std::string_view suffix = lex;
  if (term.kind() == Term::Kind::kIri) {
    // Namespace boundary: everything through the last '/' or '#' is the
    // shared prefix (the standard RDF prefix heuristic).
    size_t cut = lex.find_last_of("/#");
    if (cut != std::string_view::npos && cut > 0) {
      std::string_view pre = lex.substr(0, cut + 1);
      auto it = prefix_ids_.find(pre);
      uint32_t pid;
      if (it != prefix_ids_.end()) {
        pid = it->second;
      } else {
        pid = static_cast<uint32_t>(prefix_ids_.size()) + 1;
        auto [inserted, fresh] = prefix_ids_.emplace(std::string(pre), pid);
        (void)fresh;
        prefixes_.push_back(&inserted->first);
      }
      entry.prefix = pid;
      suffix = lex.substr(cut + 1);
    }
  }
  const std::string& extra = term.raw_extra();
  SOFOS_CHECK(extra.size() <= std::numeric_limits<uint16_t>::max(),
              "term auxiliary string too long for the packed dictionary");
  SOFOS_CHECK(arena_.size() + suffix.size() + extra.size() <=
                  std::numeric_limits<uint32_t>::max(),
              "front-coded dictionary arena overflow");
  entry.offset = static_cast<uint32_t>(arena_.size());
  entry.lexical_len = static_cast<uint32_t>(suffix.size());
  entry.extra_len = static_cast<uint16_t>(extra.size());
  entry.kind = term.kind();
  entry.datatype = term.datatype();
  arena_.insert(arena_.end(), suffix.begin(), suffix.end());
  arena_.insert(arena_.end(), extra.begin(), extra.end());
  packed_.push_back(entry);
  decoded_.emplace_back(nullptr);
  TermId id = static_cast<TermId>(packed_.size());
  if ((packed_.size() + 1) * 2 > probe_.size()) GrowProbeLocked();
  ProbeInsertLocked(id, hash);
  return id;
}

TermId Dictionary::Intern(const Term& term) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (front_coded_) {
      TermId id = FindPackedLocked(term, term.Hash());
      if (id != kNullTermId) return id;
    } else {
      auto it = index_.find(term);
      if (it != index_.end()) return it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Re-check: another thread may have interned `term` between the locks.
  if (front_coded_) {
    const uint64_t hash = term.Hash();
    TermId id = FindPackedLocked(term, hash);
    if (id != kNullTermId) return id;
    return AppendPackedLocked(term, hash);
  }
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  terms_.push_back(term);
  TermId id = static_cast<TermId>(terms_.size());  // ids start at 1
  index_.emplace(term, id);
  return id;
}

std::optional<TermId> Dictionary::Lookup(const Term& term) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (front_coded_) {
    TermId id = FindPackedLocked(term, term.Hash());
    if (id == kNullTermId) return std::nullopt;
    return id;
  }
  auto it = index_.find(term);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const Term& Dictionary::term(TermId id) const {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (!front_coded_) {
      assert(id != kNullTermId && id <= terms_.size());
      return terms_[id - 1];
    }
    assert(id != kNullTermId && id <= packed_.size());
    const Term* cached = decoded_[id - 1].get();
    // Once set, a cache slot never changes and the deque never relocates,
    // so the reference stays valid after the lock is released.
    if (cached != nullptr) return *cached;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = decoded_[id - 1];
  if (slot == nullptr) {
    slot = std::make_unique<const Term>(MaterializeLocked(packed_[id - 1]));
  }
  return *slot;
}

size_t Dictionary::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return front_coded_ ? packed_.size() : terms_.size();
}

bool Dictionary::front_coded() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return front_coded_;
}

size_t Dictionary::NumPrefixes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return prefix_ids_.size();
}

void Dictionary::SetFrontCoding(bool enabled) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (enabled == front_coded_) return;
  if (enabled) {
    // Plain -> packed: re-encode in id order so every existing id keeps
    // decoding to the same term.
    packed_.reserve(terms_.size());
    probe_.assign(ProbeCapacityFor(terms_.size() + 1), kNullTermId);
    front_coded_ = true;
    for (const Term& t : terms_) AppendPackedLocked(t, t.Hash());
    terms_.clear();
    terms_.shrink_to_fit();
    std::unordered_map<Term, TermId, TermHash>().swap(index_);
  } else {
    // Packed -> plain: materialize every id, rebuild the hash index.
    for (TermId id = 1; id <= packed_.size(); ++id) {
      terms_.push_back(MaterializeLocked(packed_[id - 1]));
      index_.emplace(terms_.back(), id);
    }
    front_coded_ = false;
    std::vector<Packed>().swap(packed_);
    std::vector<char>().swap(arena_);
    prefix_ids_.clear();
    std::vector<const std::string*>().swap(prefixes_);
    std::vector<TermId>().swap(probe_);
    decoded_.clear();
    decoded_.shrink_to_fit();
  }
}

uint64_t Dictionary::MemoryBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  uint64_t bytes = 0;
  if (front_coded_) {
    bytes += arena_.capacity();
    bytes += packed_.capacity() * sizeof(Packed);
    bytes += probe_.capacity() * sizeof(TermId);
    bytes += prefixes_.capacity() * sizeof(const std::string*);
    for (const auto& [key, id] : prefix_ids_) {
      (void)id;
      // Map node: key storage + value + tree pointers/color (approximation).
      bytes += sizeof(std::string) + key.capacity() + sizeof(uint32_t) +
               4 * sizeof(void*);
    }
    bytes += decoded_.size() * sizeof(std::unique_ptr<const Term>);
    for (const auto& t : decoded_) {
      if (t != nullptr) {
        bytes += sizeof(Term) + t->lexical().capacity() +
                 t->raw_extra().capacity();
      }
    }
    return bytes;
  }
  for (const Term& t : terms_) {
    bytes += sizeof(Term) + t.lexical().capacity() + t.lang().capacity();
  }
  // Hash index: bucket array + node overhead per entry (approximation).
  bytes += index_.bucket_count() * sizeof(void*);
  bytes += index_.size() * (sizeof(Term) + sizeof(TermId) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace sofos
