#include "rdf/dictionary.h"

#include <cassert>
#include <mutex>
#include <utility>

namespace sofos {

Dictionary::Dictionary(Dictionary&& other) noexcept {
  std::unique_lock<std::shared_mutex> lock(other.mu_);
  terms_ = std::move(other.terms_);
  index_ = std::move(other.index_);
}

Dictionary& Dictionary::operator=(Dictionary&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    terms_ = std::move(other.terms_);
    index_ = std::move(other.index_);
  }
  return *this;
}

Dictionary Dictionary::Clone() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Dictionary copy;
  copy.terms_ = terms_;
  copy.index_ = index_;
  return copy;
}

TermId Dictionary::Intern(const Term& term) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(term);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Re-check: another thread may have interned `term` between the locks.
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  terms_.push_back(term);
  TermId id = static_cast<TermId>(terms_.size());  // ids start at 1
  index_.emplace(term, id);
  return id;
}

std::optional<TermId> Dictionary::Lookup(const Term& term) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(term);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const Term& Dictionary::term(TermId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  assert(id != kNullTermId && id <= terms_.size());
  return terms_[id - 1];
}

size_t Dictionary::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return terms_.size();
}

uint64_t Dictionary::MemoryBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  uint64_t bytes = 0;
  for (const Term& t : terms_) {
    bytes += sizeof(Term) + t.lexical().capacity() + t.lang().capacity();
  }
  // Hash index: bucket array + node overhead per entry (approximation).
  bytes += index_.bucket_count() * sizeof(void*);
  bytes += index_.size() * (sizeof(Term) + sizeof(TermId) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace sofos
