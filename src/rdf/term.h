#ifndef SOFOS_RDF_TERM_H_
#define SOFOS_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace sofos {

/// An RDF term: IRI, blank node, or literal (paper §3: a knowledge graph is
/// a set of triples over (I ∪ B) × I × (I ∪ B ∪ L)).
///
/// Literal values keep their lexical form plus a datatype tag. The common
/// XSD datatypes (string, integer, double, boolean) are represented natively
/// so that SPARQL expression evaluation and aggregation can interpret them;
/// any other datatype IRI is preserved verbatim (`Datatype::kOther`).
class Term {
 public:
  enum class Kind : uint8_t { kIri = 0, kBlank = 1, kLiteral = 2 };

  enum class Datatype : uint8_t {
    kNone = 0,        // not a literal
    kString = 1,      // xsd:string
    kLangString = 2,  // rdf:langString (language-tagged)
    kInteger = 3,     // xsd:integer
    kDouble = 4,      // xsd:double (also used for xsd:decimal / xsd:float)
    kBoolean = 5,     // xsd:boolean
    kOther = 6,       // any other datatype IRI (kept in extra_)
  };

  /// Default-constructed terms are the empty IRI; only used as placeholders.
  Term() : kind_(Kind::kIri), datatype_(Datatype::kNone) {}

  static Term Iri(std::string iri);
  static Term Blank(std::string label);
  static Term String(std::string value);
  static Term LangString(std::string value, std::string lang);
  static Term Integer(int64_t value);
  static Term Double(double value);
  static Term Boolean(bool value);
  /// A literal with an explicit datatype IRI; recognizes the native XSD
  /// types and validates their lexical forms (returns ParseError otherwise).
  static Result<Term> TypedLiteral(std::string lexical, std::string_view datatype_iri);

  /// Reassembles a term from its four raw storage fields without any
  /// normalization or validation. Only for storage layers (the dictionary's
  /// packed encoding) that decode fields previously taken from a real Term:
  /// the round trip is byte-identical by construction, which the named
  /// constructors above (which normalize lexical forms) cannot guarantee.
  static Term FromRaw(Kind kind, Datatype datatype, std::string lexical,
                      std::string extra);

  Kind kind() const { return kind_; }
  Datatype datatype() const { return datatype_; }

  bool is_iri() const { return kind_ == Kind::kIri; }
  bool is_blank() const { return kind_ == Kind::kBlank; }
  bool is_literal() const { return kind_ == Kind::kLiteral; }
  bool is_numeric() const {
    return datatype_ == Datatype::kInteger || datatype_ == Datatype::kDouble;
  }

  /// IRI string, blank node label, or literal lexical form.
  const std::string& lexical() const { return lexical_; }

  /// Language tag for kLangString literals, empty otherwise.
  const std::string& lang() const {
    static const std::string kEmpty;
    return datatype_ == Datatype::kLangString ? extra_ : kEmpty;
  }

  /// Full datatype IRI for literals (resolving the native tags); empty for
  /// IRIs and blank nodes.
  std::string datatype_iri() const;

  /// The raw auxiliary string exactly as stored: the language tag for
  /// kLangString, the datatype IRI for kOther, empty otherwise. Paired with
  /// FromRaw() for byte-identical round trips through packed storage.
  const std::string& raw_extra() const { return extra_; }

  /// Numeric access; TypeError for non-numeric terms.
  Result<int64_t> AsInt64() const;
  Result<double> AsDouble() const;
  Result<bool> AsBool() const;

  /// N-Triples serialization: <iri>, _:label, "lit"^^<dt> / "lit"@lang.
  std::string ToNTriples() const;

  /// Identity comparison (same kind, lexical, datatype, lang).
  bool operator==(const Term& other) const {
    return kind_ == other.kind_ && datatype_ == other.datatype_ &&
           lexical_ == other.lexical_ && extra_ == other.extra_;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }

  /// Deterministic total order (kind, datatype, lexical, extra); used for
  /// canonical output ordering, not for SPARQL value comparison.
  bool operator<(const Term& other) const;

  uint64_t Hash() const;

 private:
  Kind kind_;
  Datatype datatype_;
  std::string lexical_;
  std::string extra_;  // lang tag (kLangString) or datatype IRI (kOther)
};

struct TermHash {
  size_t operator()(const Term& t) const { return static_cast<size_t>(t.Hash()); }
};

/// Canonical lexical form for doubles: shortest round-trip representation.
std::string FormatDoubleLexical(double value);

}  // namespace sofos

#endif  // SOFOS_RDF_TERM_H_
