#ifndef SOFOS_RDF_VOCAB_H_
#define SOFOS_RDF_VOCAB_H_

#include <string>
#include <string_view>

namespace sofos {
namespace vocab {

// XML Schema datatypes understood natively by the term model.
inline constexpr std::string_view kXsdNs = "http://www.w3.org/2001/XMLSchema#";
inline constexpr std::string_view kXsdString = "http://www.w3.org/2001/XMLSchema#string";
inline constexpr std::string_view kXsdInteger = "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr std::string_view kXsdDouble = "http://www.w3.org/2001/XMLSchema#double";
inline constexpr std::string_view kXsdBoolean = "http://www.w3.org/2001/XMLSchema#boolean";

inline constexpr std::string_view kRdfNs = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
inline constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kRdfLangString =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";

// SOFOS materialization vocabulary (paper §3.1: materialized views are
// encoded back into the RDF graph through fresh blank nodes).
inline constexpr std::string_view kSofosNs = "http://sofos.ics.forth.gr/vocab#";
inline constexpr std::string_view kSofosView = "http://sofos.ics.forth.gr/vocab#view";
inline constexpr std::string_view kSofosValue = "http://sofos.ics.forth.gr/vocab#value";
inline constexpr std::string_view kSofosRows = "http://sofos.ics.forth.gr/vocab#rows";

/// Predicate attaching the binding of grouped dimension `var` to a view row
/// blank node: sofos:dim_<var>.
inline std::string DimPredicate(std::string_view var) {
  std::string out(kSofosNs);
  out += "dim_";
  out += var;
  return out;
}

/// IRI identifying the materialized view of facet `facet_name` whose grouped
/// dimension set is encoded by `dim_mask` (bit i = facet dimension i kept).
inline std::string ViewIri(std::string_view facet_name, uint32_t dim_mask) {
  std::string out("http://sofos.ics.forth.gr/view/");
  out += facet_name;
  out += "/";
  out += std::to_string(dim_mask);
  return out;
}

}  // namespace vocab
}  // namespace sofos

#endif  // SOFOS_RDF_VOCAB_H_
