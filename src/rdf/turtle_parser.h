#ifndef SOFOS_RDF_TURTLE_PARSER_H_
#define SOFOS_RDF_TURTLE_PARSER_H_

#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "rdf/triple_store.h"

namespace sofos {

/// Parser for the Turtle subset sofos uses for data exchange:
///
///   * `@prefix ns: <iri> .` and SPARQL-style `PREFIX ns: <iri>`
///   * subject/predicate/object statements with `;` and `,` lists
///   * the `a` keyword for rdf:type
///   * IRIs `<...>`, prefixed names `ns:local`, blank nodes `_:label`
///   * literals: `"..."` with escapes, optional `@lang` or `^^<datatype>`
///     (or `^^ns:local`), bare integers, decimals, doubles and booleans
///   * `#` comments
///
/// N-Triples documents are valid input (they are a Turtle subset). Turtle
/// collections `( )` and anonymous nodes `[ ]` are intentionally not
/// supported and produce a ParseError naming the construct.
class TurtleParser {
 public:
  /// Parses `text` and adds all triples to `store` (which is left
  /// unfinalized). Errors carry 1-based line/column positions.
  Status Parse(std::string_view text, TripleStore* store);

  /// Convenience wrapper reading from a file.
  Status ParseFile(const std::string& path, TripleStore* store);

  /// Prefixes visible after the last Parse() call (useful for tests).
  const std::unordered_map<std::string, std::string>& prefixes() const {
    return prefixes_;
  }

 private:
  Status ParseStatement();
  Status ParsePrefixDirective(bool sparql_style);
  Status ParseTermInto(Term* out, bool allow_literal);
  Status ParseIriRef(std::string* out);
  Status ParsePrefixedName(std::string* out);
  Status ParseLiteral(Term* out);
  Status ParseNumberOrBoolean(Term* out);

  void SkipWhitespaceAndComments();
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char Get();
  bool TryConsume(char c);
  Status Expect(char c);
  Status Error(const std::string& message) const;

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  std::unordered_map<std::string, std::string> prefixes_;
  TripleStore* store_ = nullptr;
};

}  // namespace sofos

#endif  // SOFOS_RDF_TURTLE_PARSER_H_
