#include "rdf/turtle_parser.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/result.h"
#include "common/string_util.h"
#include "rdf/vocab.h"

namespace sofos {

namespace {

bool IsPnameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

bool IsBlankLabelChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

Status TurtleParser::Parse(std::string_view text, TripleStore* store) {
  text_ = text;
  pos_ = 0;
  line_ = 1;
  column_ = 1;
  prefixes_.clear();
  store_ = store;

  while (true) {
    SkipWhitespaceAndComments();
    if (AtEnd()) break;
    SOFOS_RETURN_IF_ERROR(ParseStatement());
  }
  return Status::OK();
}

Status TurtleParser::ParseFile(const std::string& path, TripleStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  return Parse(content, store).WithContext(path);
}

char TurtleParser::Get() {
  char c = text_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool TurtleParser::TryConsume(char c) {
  if (AtEnd() || Peek() != c) return false;
  Get();
  return true;
}

Status TurtleParser::Expect(char c) {
  if (AtEnd()) return Error(std::string("expected '") + c + "' but found end of input");
  if (Peek() != c) {
    return Error(std::string("expected '") + c + "' but found '" + Peek() + "'");
  }
  Get();
  return Status::OK();
}

Status TurtleParser::Error(const std::string& message) const {
  return Status::ParseError(StrFormat("turtle:%d:%d: %s", line_, column_,
                                      message.c_str()));
}

void TurtleParser::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (c == '#') {
      while (!AtEnd() && Peek() != '\n') Get();
    } else if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      Get();
    } else {
      break;
    }
  }
}

Status TurtleParser::ParseStatement() {
  // Directives.
  if (Peek() == '@') {
    Get();
    std::string word;
    while (!AtEnd() && std::isalpha(static_cast<unsigned char>(Peek()))) {
      word += Get();
    }
    if (StrEqualsIgnoreCase(word, "prefix")) return ParsePrefixDirective(false);
    if (StrEqualsIgnoreCase(word, "base")) {
      return Error("@base is not supported by the sofos Turtle subset");
    }
    return Error("unknown directive @" + word);
  }
  // SPARQL-style PREFIX (case-insensitive, no trailing dot).
  if ((Peek() == 'P' || Peek() == 'p') && text_.substr(pos_, 6).size() == 6 &&
      StrEqualsIgnoreCase(text_.substr(pos_, 6), "PREFIX")) {
    for (int i = 0; i < 6; ++i) Get();
    return ParsePrefixDirective(true);
  }
  if (Peek() == '(' || Peek() == '[') {
    return Error(std::string("Turtle construct '") + Peek() +
                 "' (collections/anonymous nodes) is not supported");
  }

  Term subject;
  SOFOS_RETURN_IF_ERROR(ParseTermInto(&subject, /*allow_literal=*/false));

  // predicateObjectList: verb objectList (';' verb objectList)* '.'
  while (true) {
    SkipWhitespaceAndComments();
    if (AtEnd()) return Error("unexpected end of input in statement");

    Term predicate;
    if (Peek() == 'a') {
      // `a` must be followed by whitespace to be the rdf:type keyword.
      size_t next = pos_ + 1;
      if (next >= text_.size() || text_[next] == ' ' || text_[next] == '\t' ||
          text_[next] == '\n' || text_[next] == '\r') {
        Get();
        predicate = Term::Iri(std::string(vocab::kRdfType));
      } else {
        SOFOS_RETURN_IF_ERROR(ParseTermInto(&predicate, /*allow_literal=*/false));
      }
    } else {
      SOFOS_RETURN_IF_ERROR(ParseTermInto(&predicate, /*allow_literal=*/false));
    }
    if (!predicate.is_iri()) return Error("predicate must be an IRI");

    // objectList
    while (true) {
      Term object;
      SOFOS_RETURN_IF_ERROR(ParseTermInto(&object, /*allow_literal=*/true));
      store_->Add(subject, predicate, object);
      SkipWhitespaceAndComments();
      if (!TryConsume(',')) break;
    }

    SkipWhitespaceAndComments();
    if (TryConsume(';')) {
      SkipWhitespaceAndComments();
      // Turtle allows a dangling ';' before the final '.'.
      if (!AtEnd() && Peek() == '.') {
        Get();
        return Status::OK();
      }
      continue;
    }
    return Expect('.');
  }
}

Status TurtleParser::ParsePrefixDirective(bool sparql_style) {
  SkipWhitespaceAndComments();
  std::string ns;
  while (!AtEnd() && IsPnameChar(Peek())) ns += Get();
  SOFOS_RETURN_IF_ERROR(Expect(':'));
  SkipWhitespaceAndComments();
  std::string iri;
  SOFOS_RETURN_IF_ERROR(ParseIriRef(&iri));
  prefixes_[ns] = iri;
  if (!sparql_style) {
    SkipWhitespaceAndComments();
    return Expect('.');
  }
  return Status::OK();
}

Status TurtleParser::ParseIriRef(std::string* out) {
  SOFOS_RETURN_IF_ERROR(Expect('<'));
  out->clear();
  while (!AtEnd() && Peek() != '>') {
    char c = Get();
    if (c == '\n') return Error("newline inside IRI");
    *out += c;
  }
  return Expect('>');
}

Status TurtleParser::ParsePrefixedName(std::string* out) {
  std::string ns;
  while (!AtEnd() && IsPnameChar(Peek()) && Peek() != ':') {
    // '.' cannot end a prefix label; simplest correct handling is to allow
    // it mid-name only.
    ns += Get();
  }
  SOFOS_RETURN_IF_ERROR(Expect(':'));
  std::string local;
  while (!AtEnd() && IsPnameChar(Peek())) local += Get();
  // A trailing '.' belongs to the statement terminator, not the name.
  while (!local.empty() && local.back() == '.') {
    local.pop_back();
    --pos_;
    --column_;
  }
  auto it = prefixes_.find(ns);
  if (it == prefixes_.end()) return Error("undefined prefix '" + ns + ":'");
  *out = it->second + local;
  return Status::OK();
}

Status TurtleParser::ParseTermInto(Term* out, bool allow_literal) {
  SkipWhitespaceAndComments();
  if (AtEnd()) return Error("unexpected end of input; expected an RDF term");
  char c = Peek();

  if (c == '<') {
    std::string iri;
    SOFOS_RETURN_IF_ERROR(ParseIriRef(&iri));
    *out = Term::Iri(std::move(iri));
    return Status::OK();
  }

  if (c == '_') {
    Get();
    SOFOS_RETURN_IF_ERROR(Expect(':'));
    std::string label;
    while (!AtEnd() && IsBlankLabelChar(Peek())) label += Get();
    if (label.empty()) return Error("empty blank node label");
    *out = Term::Blank(std::move(label));
    return Status::OK();
  }

  if (c == '(' || c == '[') {
    return Error(std::string("Turtle construct '") + c +
                 "' (collections/anonymous nodes) is not supported");
  }

  if (c == '"') {
    if (!allow_literal) return Error("literal not allowed in this position");
    return ParseLiteral(out);
  }

  if (std::isdigit(static_cast<unsigned char>(c)) || c == '+' || c == '-' ||
      ((c == 't' || c == 'f') && allow_literal &&
       (StrStartsWith(text_.substr(pos_), "true") ||
        StrStartsWith(text_.substr(pos_), "false")))) {
    if (!allow_literal) return Error("literal not allowed in this position");
    // Booleans could also be prefixed names (e.g. `true:x`); disambiguate by
    // checking the following character.
    if (c == 't' || c == 'f') {
      size_t len = (c == 't') ? 4 : 5;
      if (pos_ + len < text_.size() && IsPnameChar(text_[pos_ + len])) {
        std::string iri;
        SOFOS_RETURN_IF_ERROR(ParsePrefixedName(&iri));
        *out = Term::Iri(std::move(iri));
        return Status::OK();
      }
    }
    return ParseNumberOrBoolean(out);
  }

  // Prefixed name.
  std::string iri;
  SOFOS_RETURN_IF_ERROR(ParsePrefixedName(&iri));
  *out = Term::Iri(std::move(iri));
  return Status::OK();
}

Status TurtleParser::ParseLiteral(Term* out) {
  SOFOS_RETURN_IF_ERROR(Expect('"'));
  std::string raw;
  while (true) {
    if (AtEnd()) return Error("unterminated string literal");
    char c = Get();
    if (c == '"') break;
    if (c == '\\') {
      if (AtEnd()) return Error("dangling escape in string literal");
      raw += c;
      raw += Get();
      continue;
    }
    raw += c;
  }
  auto unescaped = UnescapeTurtleString(raw);
  if (!unescaped.ok()) return Error(unescaped.status().message());

  if (TryConsume('@')) {
    std::string lang;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '-')) {
      lang += Get();
    }
    if (lang.empty()) return Error("empty language tag");
    *out = Term::LangString(std::move(unescaped).value(), std::move(lang));
    return Status::OK();
  }

  if (!AtEnd() && Peek() == '^') {
    Get();
    SOFOS_RETURN_IF_ERROR(Expect('^'));
    std::string dt;
    if (!AtEnd() && Peek() == '<') {
      SOFOS_RETURN_IF_ERROR(ParseIriRef(&dt));
    } else {
      SOFOS_RETURN_IF_ERROR(ParsePrefixedName(&dt));
    }
    auto typed = Term::TypedLiteral(std::move(unescaped).value(), dt);
    if (!typed.ok()) return Error(typed.status().message());
    *out = std::move(typed).value();
    return Status::OK();
  }

  *out = Term::String(std::move(unescaped).value());
  return Status::OK();
}

Status TurtleParser::ParseNumberOrBoolean(Term* out) {
  char c = Peek();
  if (c == 't' || c == 'f') {
    size_t len = (c == 't') ? 4 : 5;
    std::string word(text_.substr(pos_, len));
    if (word == "true" || word == "false") {
      for (size_t i = 0; i < len; ++i) Get();
      *out = Term::Boolean(word == "true");
      return Status::OK();
    }
    return Error("malformed boolean literal");
  }

  std::string num;
  if (Peek() == '+' || Peek() == '-') num += Get();
  bool has_dot = false;
  bool has_exp = false;
  while (!AtEnd()) {
    char d = Peek();
    if (std::isdigit(static_cast<unsigned char>(d))) {
      num += Get();
    } else if (d == '.' && !has_dot && !has_exp) {
      // A '.' followed by a non-digit is the statement terminator.
      if (pos_ + 1 >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
        break;
      }
      has_dot = true;
      num += Get();
    } else if ((d == 'e' || d == 'E') && !has_exp) {
      has_exp = true;
      num += Get();
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) num += Get();
    } else {
      break;
    }
  }
  if (num.empty() || num == "+" || num == "-") {
    return Error("malformed numeric literal");
  }
  if (has_dot || has_exp) {
    auto value = ParseDouble(num);
    if (!value.ok()) return Error(value.status().message());
    auto term = Term::TypedLiteral(num, vocab::kXsdDouble);
    if (!term.ok()) return Error(term.status().message());
    *out = std::move(term).value();
  } else {
    auto value = ParseInt64(num);
    if (!value.ok()) return Error(value.status().message());
    *out = Term::Integer(value.value());
  }
  return Status::OK();
}

}  // namespace sofos
