#ifndef SOFOS_RDF_TRIPLE_H_
#define SOFOS_RDF_TRIPLE_H_

#include <tuple>

#include "rdf/dictionary.h"

namespace sofos {

/// A dictionary-encoded RDF triple: 12 bytes.
struct Triple {
  TermId s = kNullTermId;
  TermId p = kNullTermId;
  TermId o = kNullTermId;

  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
  bool operator!=(const Triple& other) const { return !(*this == other); }
  bool operator<(const Triple& other) const {
    return std::tie(s, p, o) < std::tie(other.s, other.p, other.o);
  }
};

/// A triple pattern over ids, kNullTermId meaning "wildcard". This is the
/// storage-level counterpart of a SPARQL triple pattern whose variables have
/// been stripped of names.
struct TripleIdPattern {
  TermId s = kNullTermId;
  TermId p = kNullTermId;
  TermId o = kNullTermId;

  bool Matches(const Triple& t) const {
    return (s == kNullTermId || s == t.s) && (p == kNullTermId || p == t.p) &&
           (o == kNullTermId || o == t.o);
  }
};

}  // namespace sofos

#endif  // SOFOS_RDF_TRIPLE_H_
