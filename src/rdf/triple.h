#ifndef SOFOS_RDF_TRIPLE_H_
#define SOFOS_RDF_TRIPLE_H_

#include <algorithm>
#include <iterator>
#include <tuple>
#include <vector>

#include "rdf/dictionary.h"

namespace sofos {

/// A dictionary-encoded RDF triple: 12 bytes.
struct Triple {
  TermId s = kNullTermId;
  TermId p = kNullTermId;
  TermId o = kNullTermId;

  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
  bool operator!=(const Triple& other) const { return !(*this == other); }
  bool operator<(const Triple& other) const {
    return std::tie(s, p, o) < std::tie(other.s, other.p, other.o);
  }
};

/// A triple pattern over ids, kNullTermId meaning "wildcard". This is the
/// storage-level counterpart of a SPARQL triple pattern whose variables have
/// been stripped of names.
struct TripleIdPattern {
  TermId s = kNullTermId;
  TermId p = kNullTermId;
  TermId o = kNullTermId;

  bool Matches(const Triple& t) const {
    return (s == kNullTermId || s == t.s) && (p == kNullTermId || p == t.p) &&
           (o == kNullTermId || o == t.o);
  }
};

/// Applies a sorted, deduplicated delta to a sorted, deduplicated triple
/// set: returns (base \ deletes) ∪ adds, sorted and deduplicated. A triple
/// present on both sides survives — the one definition of delta semantics,
/// shared by TripleStore::ApplyDelta (per-index, with tombstones), the
/// engine's base-snapshot mirror, and the update-stream generator.
inline std::vector<Triple> ApplySortedDelta(const std::vector<Triple>& base,
                                            const std::vector<Triple>& adds,
                                            const std::vector<Triple>& deletes) {
  std::vector<Triple> effective_deletes;
  std::set_difference(deletes.begin(), deletes.end(), adds.begin(), adds.end(),
                      std::back_inserter(effective_deletes));
  std::vector<Triple> stripped;
  stripped.reserve(base.size());
  std::set_difference(base.begin(), base.end(), effective_deletes.begin(),
                      effective_deletes.end(), std::back_inserter(stripped));
  std::vector<Triple> out;
  out.reserve(stripped.size() + adds.size());
  std::merge(stripped.begin(), stripped.end(), adds.begin(), adds.end(),
             std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace sofos

#endif  // SOFOS_RDF_TRIPLE_H_
