#include "rdf/term.h"

#include <cmath>
#include <cstdio>

#include "common/hash.h"
#include "common/string_util.h"
#include "rdf/vocab.h"

namespace sofos {

std::string FormatDoubleLexical(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "INF" : "-INF";
  // Shortest representation that round-trips a double.
  for (int precision = 1; precision <= 17; ++precision) {
    std::string candidate = StrFormat("%.*g", precision, value);
    double parsed = 0.0;
    if (std::sscanf(candidate.c_str(), "%lf", &parsed) == 1 && parsed == value) {
      return candidate;
    }
  }
  return StrFormat("%.17g", value);
}

Term Term::Iri(std::string iri) {
  Term t;
  t.kind_ = Kind::kIri;
  t.datatype_ = Datatype::kNone;
  t.lexical_ = std::move(iri);
  return t;
}

Term Term::Blank(std::string label) {
  Term t;
  t.kind_ = Kind::kBlank;
  t.datatype_ = Datatype::kNone;
  t.lexical_ = std::move(label);
  return t;
}

Term Term::String(std::string value) {
  Term t;
  t.kind_ = Kind::kLiteral;
  t.datatype_ = Datatype::kString;
  t.lexical_ = std::move(value);
  return t;
}

Term Term::LangString(std::string value, std::string lang) {
  Term t;
  t.kind_ = Kind::kLiteral;
  t.datatype_ = Datatype::kLangString;
  t.lexical_ = std::move(value);
  t.extra_ = std::move(lang);
  return t;
}

Term Term::Integer(int64_t value) {
  Term t;
  t.kind_ = Kind::kLiteral;
  t.datatype_ = Datatype::kInteger;
  t.lexical_ = std::to_string(value);
  return t;
}

Term Term::Double(double value) {
  Term t;
  t.kind_ = Kind::kLiteral;
  t.datatype_ = Datatype::kDouble;
  t.lexical_ = FormatDoubleLexical(value);
  return t;
}

Term Term::Boolean(bool value) {
  Term t;
  t.kind_ = Kind::kLiteral;
  t.datatype_ = Datatype::kBoolean;
  t.lexical_ = value ? "true" : "false";
  return t;
}

Result<Term> Term::TypedLiteral(std::string lexical, std::string_view datatype_iri) {
  if (datatype_iri == vocab::kXsdString) return Term::String(std::move(lexical));
  if (datatype_iri == vocab::kXsdInteger ||
      datatype_iri == std::string(vocab::kXsdNs) + "long" ||
      datatype_iri == std::string(vocab::kXsdNs) + "int") {
    SOFOS_ASSIGN_OR_RETURN(int64_t v, ParseInt64(lexical));
    return Term::Integer(v);
  }
  if (datatype_iri == vocab::kXsdDouble ||
      datatype_iri == std::string(vocab::kXsdNs) + "decimal" ||
      datatype_iri == std::string(vocab::kXsdNs) + "float") {
    SOFOS_ASSIGN_OR_RETURN(double v, ParseDouble(lexical));
    Term t;
    t.kind_ = Kind::kLiteral;
    t.datatype_ = Datatype::kDouble;
    t.lexical_ = std::move(lexical);  // keep the author's lexical form
    (void)v;
    return t;
  }
  if (datatype_iri == vocab::kXsdBoolean) {
    if (lexical != "true" && lexical != "false" && lexical != "0" && lexical != "1") {
      return Status::ParseError("malformed xsd:boolean literal: '" + lexical + "'");
    }
    return Term::Boolean(lexical == "true" || lexical == "1");
  }
  Term t;
  t.kind_ = Kind::kLiteral;
  t.datatype_ = Datatype::kOther;
  t.lexical_ = std::move(lexical);
  t.extra_ = std::string(datatype_iri);
  return t;
}

Term Term::FromRaw(Kind kind, Datatype datatype, std::string lexical,
                   std::string extra) {
  Term t;
  t.kind_ = kind;
  t.datatype_ = datatype;
  t.lexical_ = std::move(lexical);
  t.extra_ = std::move(extra);
  return t;
}

std::string Term::datatype_iri() const {
  switch (datatype_) {
    case Datatype::kNone:
      return "";
    case Datatype::kString:
      return std::string(vocab::kXsdString);
    case Datatype::kLangString:
      return std::string(vocab::kRdfLangString);
    case Datatype::kInteger:
      return std::string(vocab::kXsdInteger);
    case Datatype::kDouble:
      return std::string(vocab::kXsdDouble);
    case Datatype::kBoolean:
      return std::string(vocab::kXsdBoolean);
    case Datatype::kOther:
      return extra_;
  }
  return "";
}

Result<int64_t> Term::AsInt64() const {
  if (datatype_ == Datatype::kInteger) return ParseInt64(lexical_);
  if (datatype_ == Datatype::kDouble) {
    SOFOS_ASSIGN_OR_RETURN(double v, ParseDouble(lexical_));
    return static_cast<int64_t>(v);
  }
  return Status::TypeError("term is not numeric: " + ToNTriples());
}

Result<double> Term::AsDouble() const {
  if (!is_numeric()) return Status::TypeError("term is not numeric: " + ToNTriples());
  return ParseDouble(lexical_);
}

Result<bool> Term::AsBool() const {
  if (datatype_ != Datatype::kBoolean) {
    return Status::TypeError("term is not boolean: " + ToNTriples());
  }
  return lexical_ == "true" || lexical_ == "1";
}

std::string Term::ToNTriples() const {
  switch (kind_) {
    case Kind::kIri:
      return "<" + lexical_ + ">";
    case Kind::kBlank:
      return "_:" + lexical_;
    case Kind::kLiteral:
      break;
  }
  std::string out = "\"" + EscapeTurtleString(lexical_) + "\"";
  switch (datatype_) {
    case Datatype::kString:
      break;  // plain literal
    case Datatype::kLangString:
      out += "@" + extra_;
      break;
    default:
      out += "^^<" + datatype_iri() + ">";
  }
  return out;
}

bool Term::operator<(const Term& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  if (datatype_ != other.datatype_) return datatype_ < other.datatype_;
  if (lexical_ != other.lexical_) return lexical_ < other.lexical_;
  return extra_ < other.extra_;
}

uint64_t Term::Hash() const {
  uint64_t h = Fnv1a64(lexical_);
  h = HashCombine(h, static_cast<uint64_t>(kind_));
  h = HashCombine(h, static_cast<uint64_t>(datatype_));
  if (!extra_.empty()) h = HashCombine(h, Fnv1a64(extra_));
  return h;
}

}  // namespace sofos
