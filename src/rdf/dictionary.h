#ifndef SOFOS_RDF_DICTIONARY_H_
#define SOFOS_RDF_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

#include "rdf/term.h"

namespace sofos {

/// Dense integer handle for an interned RDF term. Id 0 is reserved as the
/// null/wildcard id (`kNullTermId`); valid ids start at 1.
using TermId = uint32_t;
inline constexpr TermId kNullTermId = 0;

/// Bidirectional Term <-> TermId mapping. Interning is append-only: a term,
/// once interned, keeps its id for the lifetime of the dictionary, so ids
/// may be stored in indexes and materialized views safely.
///
/// Thread safety: all member functions may be called concurrently. This is
/// the one mutable path shared by parallel query execution — aggregation
/// and expression projection intern freshly computed literals while other
/// executors decode results — so interning takes an exclusive lock and
/// lookups take a shared lock. Terms live in a deque, which never relocates
/// elements on append, so the reference returned by term() stays valid
/// after the lock is released (ids are never removed). Note that which
/// thread interns a new literal first is schedule-dependent, i.e. id
/// assignment order is not deterministic under concurrency; ids are private
/// handles and all externally visible results are decoded terms, so this
/// does not affect reproducibility.
class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not copyable (the id-to-term storage can be large). Moving
  // is NOT thread-safe: it may only happen while no other thread touches
  // either dictionary (stores are moved between experiments, not during
  // parallel execution).
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&& other) noexcept;
  Dictionary& operator=(Dictionary&& other) noexcept;

  /// Deep copy with identical id assignment. Takes the shared lock, so it
  /// may run concurrently with lookups and interning (terms interned after
  /// the clone starts are simply not part of the copy). Used to build
  /// epoch snapshots for online serving.
  Dictionary Clone() const;

  /// Returns the id of `term`, interning it first if needed.
  TermId Intern(const Term& term);

  /// Returns the id of `term` if already interned.
  std::optional<TermId> Lookup(const Term& term) const;

  /// The term for a valid id (1 <= id <= size()). The reference remains
  /// valid for the lifetime of the dictionary (append-only deque storage).
  const Term& term(TermId id) const;

  /// Number of interned terms.
  size_t size() const;

  /// Rough heap footprint, used for storage-amplification metrics.
  uint64_t MemoryBytes() const;

 private:
  mutable std::shared_mutex mu_;
  std::deque<Term> terms_;
  std::unordered_map<Term, TermId, TermHash> index_;
};

}  // namespace sofos

#endif  // SOFOS_RDF_DICTIONARY_H_
