#ifndef SOFOS_RDF_DICTIONARY_H_
#define SOFOS_RDF_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace sofos {

/// Dense integer handle for an interned RDF term. Id 0 is reserved as the
/// null/wildcard id (`kNullTermId`); valid ids start at 1.
using TermId = uint32_t;
inline constexpr TermId kNullTermId = 0;

/// Bidirectional Term <-> TermId mapping. Interning is append-only: a term,
/// once interned, keeps its id for the lifetime of the dictionary, so ids
/// may be stored in indexes and materialized views safely.
///
/// Not thread-safe; sofos is a single-threaded research system.
class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not copyable (the id-to-term vector can be large).
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Returns the id of `term`, interning it first if needed.
  TermId Intern(const Term& term);

  /// Returns the id of `term` if already interned.
  std::optional<TermId> Lookup(const Term& term) const;

  /// The term for a valid id (1 <= id <= size()).
  const Term& term(TermId id) const;

  /// Number of interned terms.
  size_t size() const { return terms_.size(); }

  /// Rough heap footprint, used for storage-amplification metrics.
  uint64_t MemoryBytes() const;

 private:
  std::vector<Term> terms_;
  std::unordered_map<Term, TermId, TermHash> index_;
};

}  // namespace sofos

#endif  // SOFOS_RDF_DICTIONARY_H_
