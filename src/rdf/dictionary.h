#ifndef SOFOS_RDF_DICTIONARY_H_
#define SOFOS_RDF_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace sofos {

/// Dense integer handle for an interned RDF term. Id 0 is reserved as the
/// null/wildcard id (`kNullTermId`); valid ids start at 1.
using TermId = uint32_t;
inline constexpr TermId kNullTermId = 0;

/// Bidirectional Term <-> TermId mapping. Interning is append-only: a term,
/// once interned, keeps its id for the lifetime of the dictionary, so ids
/// may be stored in indexes and materialized views safely.
///
/// Two storage modes, switched with SetFrontCoding():
///
///  - Plain (default): terms live whole in a deque plus an unordered_map
///    index — the historical layout, fastest to intern, ~150-250 bytes per
///    term for typical IRIs.
///  - Front-coded: IRIs are split at their last '/' or '#' into a shared
///    namespace prefix and a suffix. Prefixes live once in a sorted prefix
///    table (a std::map, so prefix ids are discovered in first-use order
///    but the table iterates sorted — the front-coding directory); suffix
///    and auxiliary bytes are appended to a byte arena, and each term
///    becomes a 16-byte packed entry {arena offset, prefix id, lengths,
///    kind, datatype}. Reverse lookup goes through an open-addressing
///    probe table of TermIds that re-derives each entry's hash from the
///    packed bytes (FNV-1a is seed-chainable, so hash(prefix + suffix) is
///    computed without materializing the string). Decoded terms are cached
///    lazily so term() can keep returning a stable `const Term&`.
///    Typical cost: ~45-55 bytes per term at LUBM scale, a 3-4x reduction.
///
/// Both modes intern and Lookup() byte-identically: a term round-trips
/// through Intern() + term() to the exact same kind/datatype/lexical/extra
/// bytes (Term::FromRaw), and ids assigned before a mode switch are
/// preserved by the switch.
///
/// Thread safety: all member functions may be called concurrently. This is
/// the one mutable path shared by parallel query execution — aggregation
/// and expression projection intern freshly computed literals while other
/// executors decode results — so interning takes an exclusive lock and
/// lookups take a shared lock. In plain mode terms live in a deque, which
/// never relocates elements on append; in front-coded mode term() returns
/// references into the lazy decode cache (unique_ptr targets, stable once
/// created) — either way the reference returned by term() stays valid
/// until the mode is switched (ids are never removed). SetFrontCoding()
/// itself requires exclusive use of the dictionary — it re-encodes the
/// storage and invalidates every reference previously returned by term()
/// — so callers switch modes only at load/layout-change time, never while
/// queries are in flight. Note that which thread interns a new literal
/// first is schedule-dependent, i.e. id assignment order is not
/// deterministic under concurrency; ids are private handles and all
/// externally visible results are decoded terms, so this does not affect
/// reproducibility.
class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not copyable (the id-to-term storage can be large). Moving
  // is NOT thread-safe: it may only happen while no other thread touches
  // either dictionary (stores are moved between experiments, not during
  // parallel execution).
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&& other) noexcept;
  Dictionary& operator=(Dictionary&& other) noexcept;

  /// Deep copy with identical id assignment (and the same storage mode).
  /// Takes the shared lock, so it may run concurrently with lookups and
  /// interning (terms interned after the clone starts are simply not part
  /// of the copy). Used to build epoch snapshots for online serving.
  Dictionary Clone() const;

  /// Returns the id of `term`, interning it first if needed.
  TermId Intern(const Term& term);

  /// Returns the id of `term` if already interned.
  std::optional<TermId> Lookup(const Term& term) const;

  /// The term for a valid id (1 <= id <= size()). The reference remains
  /// valid until the storage mode is switched (see class comment); with a
  /// fixed mode, for the lifetime of the dictionary.
  const Term& term(TermId id) const;

  /// Number of interned terms.
  size_t size() const;

  /// Switches between the plain and the front-coded storage (no-op when
  /// already in the requested mode). Every previously assigned id decodes
  /// to byte-identical terms afterwards. Requires exclusive use: no other
  /// thread may touch the dictionary during the switch, and references
  /// previously returned by term() are invalidated.
  void SetFrontCoding(bool enabled);
  bool front_coded() const;

  /// Number of distinct namespace prefixes in the front-coding table
  /// (0 in plain mode). Observability for stats/bench output.
  size_t NumPrefixes() const;

  /// Rough heap footprint, used for storage-amplification metrics.
  uint64_t MemoryBytes() const;

 private:
  /// Packed front-coded entry: suffix (and auxiliary) bytes live at
  /// [offset, offset + lexical_len + extra_len) in arena_; the full
  /// lexical form is prefix + suffix.
  struct Packed {
    uint32_t offset = 0;       // first suffix byte in arena_
    uint32_t prefix = 0;       // 1-based prefix id; 0 = no shared prefix
    uint32_t lexical_len = 0;  // suffix bytes
    uint16_t extra_len = 0;    // auxiliary bytes (lang tag / datatype IRI)
    Term::Kind kind = Term::Kind::kIri;
    Term::Datatype datatype = Term::Datatype::kNone;
  };

  // All *Locked helpers require mu_ held (shared for const, exclusive for
  // mutating ones).
  uint64_t PackedHashLocked(const Packed& entry) const;
  bool PackedEqualsLocked(const Packed& entry, const Term& term) const;
  /// Probe-table lookup; kNullTermId when absent.
  TermId FindPackedLocked(const Term& term, uint64_t hash) const;
  /// Appends `term` as the next id (encode + probe insert). Exclusive.
  TermId AppendPackedLocked(const Term& term, uint64_t hash);
  void ProbeInsertLocked(TermId id, uint64_t hash);
  void GrowProbeLocked();
  Term MaterializeLocked(const Packed& entry) const;

  mutable std::shared_mutex mu_;

  // ---- Plain mode ----
  std::deque<Term> terms_;
  std::unordered_map<Term, TermId, TermHash> index_;

  // ---- Front-coded mode ----
  bool front_coded_ = false;
  std::vector<Packed> packed_;
  std::vector<char> arena_;
  /// Sorted prefix table: prefix string -> 1-based id (std::less<> enables
  /// string_view probes without allocation).
  std::map<std::string, uint32_t, std::less<>> prefix_ids_;
  /// id-1 -> key of prefix_ids_ (map nodes are address-stable).
  std::vector<const std::string*> prefixes_;
  /// Open-addressing reverse index: power-of-two slot array of TermIds
  /// (kNullTermId = empty), ~0.5 max load factor.
  std::vector<TermId> probe_;
  /// Lazy decode cache, parallel to packed_: entries materialize on first
  /// term() call (deque + unique_ptr keep returned references stable).
  mutable std::deque<std::unique_ptr<const Term>> decoded_;
};

}  // namespace sofos

#endif  // SOFOS_RDF_DICTIONARY_H_
