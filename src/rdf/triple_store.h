#ifndef SOFOS_RDF_TRIPLE_STORE_H_
#define SOFOS_RDF_TRIPLE_STORE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace sofos {

class ThreadPool;

/// Outcome of merging a staged delta into a finalized store.
struct DeltaApplyResult {
  uint64_t adds_applied = 0;     // staged adds that were not already present
  uint64_t deletes_applied = 0;  // staged deletes that actually removed a triple
  uint64_t shards_rebuilt = 0;   // hash shards the delta touched (of 3 * shard_count)
  double merge_micros = 0.0;
};

/// Per-predicate statistics gathered at Finalize() time; used by the query
/// planner for selectivity estimation and by the cost models.
struct PredicateStats {
  uint64_t triples = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;
};

/// In-memory RDF triple store with dictionary encoding and six sorted
/// permutation indexes (SPO, SOP, PSO, POS, OSP, OPS — the RDF-3X layout).
/// Any triple pattern whose bound components form a prefix of one of the six
/// orders resolves to a binary-searched contiguous range, which makes both
/// scans and exact pattern counting cheap.
///
/// Sharded layout (see src/rdf/README.md for the full contract): the six
/// orders are grouped into three *families* by their leading field —
/// subject (SPO, SOP), predicate (PSO, POS), object (OSP, OPS) — and each
/// family is hash-partitioned into `shard_count()` buckets by a
/// deterministic mix of the leading field's TermId. Each bucket is an
/// immutable `Shard` behind a `std::shared_ptr`, holding the bucket's two
/// sorted runs. Because every Scan() with a bound leading field binds that
/// field to one value, it resolves to exactly one shard, and the range it
/// returns is byte-identical to the single-array layout for every shard
/// count (a sorted subset restricted to one key value does not depend on
/// what else shares its array). A separate canonical SPO array (also
/// copy-on-write behind a shared_ptr) serves full scans, triples(), and
/// delta normalization, so even the unbound pattern keeps its global sort
/// order. `shard_count == 1` reproduces the historical single-array layout
/// exactly.
///
/// Compact layout (SetCompactLayout): an alternate per-shard representation
/// for the subject and object families modeled on in-memory adjacency
/// stores — a sorted uint32 node table (the bucket's distinct leading-field
/// ids) with CSR offsets into a packed edge array holding the two minor
/// fields per triple in the family's primary order. Star-shaped access
/// (all triples of one subject/object) becomes one node lookup plus a
/// contiguous block, and per-triple index cost drops from two 12-byte
/// sorted runs to one 8-byte edge pair; the secondary orders (SOP, OPS)
/// are served by filtering the node block, which is cheap because a block
/// is one entity's adjacency. The predicate family keeps sorted runs: its
/// scans are the executor's morsel-partitioned exchange inputs and stay
/// zero-copy. Scan()/Count()/ScanPartitions() results are byte-identical
/// across layouts at every shard count — compact scans materialize into a
/// shared buffer carried by the returned ScanRange (see ScanRange::
/// backing()) in exactly the order the sorted run would have had. Every
/// shard additionally carries a predicate bloom filter (subject family)
/// so scans with a bound predicate skip shards that provably lack it.
///
/// Usage: Add() triples (interning terms through the embedded Dictionary),
/// then Finalize() to (re)build the indexes; Scan()/Count() require a
/// finalized store. Adding after Finalize() is allowed — the store becomes
/// unfinalized and must be finalized again (materialization of views relies
/// on this: the expanded graph G+ is the same store re-finalized).
///
/// Incremental mutation: a *finalized* store can alternatively absorb an
/// update batch through the staged-delta path — StageAdd()/StageDelete()
/// collect dictionary-encoded triples in side buffers, and ApplyDelta()
/// merges them into the canonical array plus *only the shards the delta
/// touches*: the delta is partitioned by each family's hash, untouched
/// buckets keep sharing their old immutable Shard (pointer-aliased across
/// epochs — the copy-on-write contract the snapshot tests assert), touched
/// buckets get a freshly merged replacement. For a delta of d triples
/// against n stored triples this costs O(n + d log d) in the worst case
/// (every bucket touched) and O(n/shard_count * touched + d log d) for
/// skewed deltas, versus Finalize()'s O(n log n) six-way re-sort.
/// Semantics are set-algebraic: the new graph is (G \ deletes) ∪ adds — a
/// triple staged on both sides ends up present; deletes of absent triples
/// and adds of present triples are no-ops (not counted in
/// DeltaApplyResult).
///
/// The two mutation paths must not interleave: Add()/ReplaceTriples()/
/// Finalize() SOFOS_CHECK-fail while a staged delta is pending (a stale
/// side buffer would silently resurrect or re-delete triples on the next
/// ApplyDelta), and ApplyDelta() requires a finalized store. Discard a
/// pending delta with DiscardStagedDelta() to return to the legacy path.
///
/// Thread safety (the contract the parallel offline pipeline, the batched
/// workload runner, and the online epoch snapshots rely on):
///  - Between Finalize()/ApplyDelta() and the next mutation, every const
///    member — Scan(), Count(), Contains(), NumTriples(), NumNodes(),
///    StatsFor(), triples(), dictionary() — is safe to call from any number
///    of threads concurrently: they only read the immutable canonical array
///    and shards. ScanRange pointers stay valid for that whole window, and
///    — new with the COW layout — for as long as *any* store (a Clone())
///    still references the shard that backs them.
///  - Intern() (and Dictionary access through mutable_dictionary()) is
///    internally synchronized and may run concurrently with the reads
///    above; it grows the dictionary but never touches the indexes. The
///    dictionary is shared between a store and its Clone()s (append-only,
///    ids never change), so this also holds across clones.
///  - Add(), Finalize(), ApplyDelta(), ReplaceTriples(), SetShardCount()
///    and move operations require exclusive access to *this store object*:
///    no concurrent calls of any kind on the same object. Mutating one
///    store never disturbs readers of another store that shares shards
///    with it — mutation replaces shard pointers, it never edits a
///    published Shard in place.
class TripleStore {
 public:
  /// The three hash-partitioned index families and their leading field.
  enum Family : int {
    kSubjectFamily = 0,    // SPO + SOP, partitioned by hash(s)
    kPredicateFamily = 1,  // PSO + POS, partitioned by hash(p)
    kObjectFamily = 2,     // OSP + OPS, partitioned by hash(o)
    kNumFamilies = 3,
  };

  TripleStore();

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  /// Moves steal the whole state and leave the source as a freshly
  /// constructed empty store (unfinalized, own dictionary) — so every
  /// entry point keeps well-defined behavior on a moved-from object
  /// instead of tripping over a null canonical pointer. Not noexcept:
  /// resetting the source allocates its fresh dictionary, which may throw
  /// under memory exhaustion (no standard container in this codebase
  /// stores TripleStore by value, so the strong-guarantee tradeoff never
  /// bites).
  TripleStore(TripleStore&& other);
  TripleStore& operator=(TripleStore&& other);

  /// Copy-on-write copy of a finalized store with no staged delta
  /// (SOFOS_CHECK): the clone shares the canonical array, every shard, and
  /// the (append-only, internally synchronized) dictionary with the
  /// original — O(shard_count) pointer copies plus the small statistics
  /// maps, independent of the number of triples. This is what pins one
  /// immutable graph state under an epoch snapshot while the original
  /// keeps absorbing deltas (see core::EngineSnapshot): a later mutation
  /// of either store swaps in fresh shard pointers on that store only, so
  /// the two diverge without ever copying untouched buckets. Query results
  /// from the clone are byte-identical to the original at clone time,
  /// forever.
  TripleStore Clone() const;

  /// The pre-COW baseline: a fully independent deep copy (own dictionary,
  /// own canonical array, own shards). O(n). Kept for bench_store's
  /// clone-vs-COW comparison and for callers that must sever the shared
  /// dictionary.
  TripleStore DeepClone() const;

  /// Interns `term` in the embedded dictionary.
  TermId Intern(const Term& term) { return dict_->Intern(term); }

  /// Adds a triple by id. Ids must come from this store's dictionary.
  /// Must not be called while a staged delta is pending (SOFOS_CHECK).
  void Add(TermId s, TermId p, TermId o);

  /// Convenience: interns the three terms and adds the triple.
  void Add(const Term& s, const Term& p, const Term& o);

  /// Sorts and deduplicates the triples, rebuilds the canonical array, all
  /// shards of all three families, and the statistics. Idempotent.
  /// O(n log n) total, but the per-shard sorts (3 * shard_count * 2 runs)
  /// fan out over `pool` when non-null; the result is identical either
  /// way. Must not be called while a staged delta is pending (SOFOS_CHECK).
  void Finalize(ThreadPool* pool = nullptr);

  /// ---- Sharding knobs ----

  /// Sets the number of hash buckets per family (clamped to [1, 256]).
  /// On a finalized store this re-partitions immediately (pool-parallel,
  /// O(n log(n/count))); otherwise it takes effect at the next Finalize().
  /// Scan()/Count()/query results are independent of the shard count by
  /// contract — only rebuild/clone costs change. Must not be called while
  /// a staged delta is pending (SOFOS_CHECK).
  void SetShardCount(size_t count, ThreadPool* pool = nullptr);
  size_t shard_count() const { return shard_count_; }

  /// Switches the subject and object families between the sorted-run
  /// layout (false, the default) and the compact CSR adjacency layout
  /// (true; see the class comment). On a finalized store this rebuilds the
  /// shards immediately (pool-parallel); otherwise it takes effect at the
  /// next Finalize(). Results are layout-invariant by contract — only
  /// memory footprint and scan materialization cost change. Must not be
  /// called while a staged delta is pending (SOFOS_CHECK).
  void SetCompactLayout(bool compact, ThreadPool* pool = nullptr);
  bool compact_layout() const { return compact_layout_; }

  /// Deterministic bucket of a term id at a given shard count (splitmix64
  /// finalizer mix, stable across platforms and runs).
  static size_t ShardIndexFor(TermId id, size_t shard_count);

  /// Test hooks for the COW aliasing contract: the identity (address) of
  /// the Shard object backing `family`'s bucket `shard`, and of the
  /// canonical array. Two stores returning the same identity share that
  /// bucket byte-for-byte; ApplyDelta() must change the identity of
  /// exactly the buckets the delta hashes into. Requires finalized().
  const void* ShardIdentity(Family family, size_t shard) const;
  const void* CanonicalIdentity() const;

  /// ---- Staged-delta mutation path (see class comment) ----

  /// Stages one triple for insertion/removal by the next ApplyDelta().
  /// Ids must come from this store's dictionary. Staging is allowed only on
  /// a finalized store (SOFOS_CHECK) — the delta is defined against the
  /// finalized state it will merge into.
  void StageAdd(TermId s, TermId p, TermId o);
  void StageDelete(TermId s, TermId p, TermId o);
  /// Convenience overloads that intern the terms first.
  void StageAdd(const Term& s, const Term& p, const Term& o);
  void StageDelete(const Term& s, const Term& p, const Term& o);

  size_t staged_adds() const { return delta_adds_.size(); }
  size_t staged_deletes() const { return delta_deletes_.size(); }
  bool HasStagedDelta() const {
    return !delta_adds_.empty() || !delta_deletes_.empty();
  }
  /// Drops the staged buffers without applying them.
  void DiscardStagedDelta();

  /// Merges the staged delta into the canonical array and the delta-touched
  /// shards (untouched shards keep their shared, pointer-aliased Shard) and
  /// refreshes the statistics; the store stays finalized and Scan() ranges
  /// taken from *this store* before the call are invalidated (ranges held
  /// via a Clone() stay valid — the clone still owns its shards). When
  /// `pool` is non-null the canonical merge and the per-shard merges run
  /// concurrently; results are identical either way.
  DeltaApplyResult ApplyDelta(ThreadPool* pool = nullptr);

  /// Replaces the triple set wholesale (dictionary is kept; superfluous
  /// terms stay interned and harmless). Used to roll an expanded graph G+
  /// back to a base snapshot G between experiments. Leaves the store
  /// unfinalized.
  void ReplaceTriples(std::vector<Triple> triples);

  bool finalized() const { return finalized_; }

  /// A contiguous range of matching triples (valid until the next
  /// mutation of every store sharing the underlying shard). Ranges served
  /// from a compact shard own their storage instead (a shared
  /// materialization buffer, see backing()), so copies of the range keep
  /// the triples alive regardless of later store mutations; the validity
  /// rule above is the weaker of the two and always safe to assume.
  class ScanRange {
   public:
    ScanRange() = default;
    ScanRange(const Triple* begin, const Triple* end) : begin_(begin), end_(end) {}
    ScanRange(const Triple* begin, const Triple* end,
              std::shared_ptr<const std::vector<Triple>> backing)
        : begin_(begin), end_(end), backing_(std::move(backing)) {}
    const Triple* begin() const { return begin_; }
    const Triple* end() const { return end_; }
    size_t size() const { return static_cast<size_t>(end_ - begin_); }
    bool empty() const { return begin_ == end_; }
    /// Non-null iff the range owns its triples (compact-layout scans);
    /// sub-ranges must share it to inherit the lifetime.
    const std::shared_ptr<const std::vector<Triple>>& backing() const {
      return backing_;
    }

   private:
    const Triple* begin_ = nullptr;
    const Triple* end_ = nullptr;
    std::shared_ptr<const std::vector<Triple>> backing_;
  };

  /// Returns all triples matching the pattern (kNullTermId = wildcard).
  /// Requires finalized(). The range is sorted in the order of the index
  /// that serves the bound prefix. Contents and order are independent of
  /// the shard count: a bound leading field resolves inside one shard
  /// (same bytes as the single-array subset), and the fully unbound
  /// pattern is served from the canonical SPO array.
  /// `bloom_skipped`, when non-null, is set to true iff the scan was
  /// proven empty by a shard's predicate bloom filter without touching the
  /// index (an observability hook for EXPLAIN ANALYZE; never affects the
  /// result). Which scans bloom-skip depends on the shard layout, so the
  /// counter — unlike the range contents — is not shard-count invariant.
  ScanRange Scan(TermId s, TermId p, TermId o,
                 bool* bloom_skipped = nullptr) const;
  ScanRange Scan(const TripleIdPattern& pattern) const {
    return Scan(pattern.s, pattern.p, pattern.o);
  }

  /// Splits Scan(s, p, o) into at most `max_partitions` contiguous,
  /// near-equal sub-ranges in index order (the morsels of the vectorized
  /// executor's exchange scans). Concatenating the partitions in return
  /// order yields exactly the Scan() range, so any order-preserving
  /// per-partition computation reduced in partition order is identical to a
  /// single full-range scan. Because a non-full Scan() lives inside one
  /// shard, these are naturally per-shard morsels; partition boundaries
  /// depend only on the range length, never on the shard layout, so morsel
  /// schedules (and Explain output) are shard-count-invariant. Never
  /// returns empty partitions; an empty scan yields an empty vector.
  /// Requires finalized(); partitions stay valid as long as the underlying
  /// ScanRange would.
  std::vector<ScanRange> ScanPartitions(TermId s, TermId p, TermId o,
                                        size_t max_partitions) const;

  /// The field comparison priority of the index Scan() would serve this
  /// bound-set from (0 = subject, 1 = predicate, 2 = object; e.g. SPO =
  /// {0,1,2}, POS = {1,2,0}). Triples inside a Scan() range are sorted by
  /// this priority. The vectorized hash join uses it to order bucket
  /// matches exactly like the index nested-loop join would emit them —
  /// the determinism contract between the two join algorithms. Depends
  /// only on which positions are bound, so callers may pass any non-null
  /// sentinel ids.
  static std::array<int, 3> ScanFieldOrder(bool s_bound, bool p_bound,
                                           bool o_bound);

  /// Exact number of triples matching the pattern. Requires finalized().
  /// Never materializes: compact shards answer from CSR offsets, sorted
  /// runs from binary-search bounds — so the planner's per-pattern
  /// cardinality pass stays cheap in either layout.
  uint64_t Count(TermId s, TermId p, TermId o) const;

  /// True iff the exact triple is present. Requires finalized().
  bool Contains(TermId s, TermId p, TermId o) const {
    return Count(s, p, o) > 0;
  }

  size_t NumTriples() const {
    return finalized_ && canonical_ != nullptr ? canonical_->size()
                                               : pending_.size();
  }
  size_t NumTerms() const { return dict_->size(); }

  /// Distinct terms used in subject or object position (graph nodes, the
  /// |I ∪ B ∪ L| of the paper's node-count cost model). Requires finalized().
  uint64_t NumNodes() const { return num_nodes_; }

  /// Distinct predicates. Requires finalized().
  uint64_t NumPredicates() const { return predicate_stats_.size(); }

  const PredicateStats* StatsFor(TermId predicate) const;
  const std::unordered_map<TermId, PredicateStats>& predicate_stats() const {
    return predicate_stats_;
  }

  /// Average matches when probing (?s p ?o) with a bound subject /
  /// object: triples(p) / distinct_subjects(p) resp. distinct_objects(p).
  /// 0 when the predicate is unknown. Global statistics — identical at
  /// every shard count and layout — so planner decisions built on them
  /// keep the determinism contract.
  double AvgSubjectFanout(TermId predicate) const;
  double AvgObjectFanout(TermId predicate) const;

  /// Rough heap footprint of indexes + dictionary, for storage metrics.
  /// Shards shared with clones are counted in every owner (the same bytes
  /// a deep copy would have duplicated).
  uint64_t MemoryBytes() const;

  Dictionary* mutable_dictionary() { return dict_.get(); }
  const Dictionary& dictionary() const { return *dict_; }

  /// All triples in SPO order (the canonical array). Requires finalized().
  const std::vector<Triple>& triples() const {
    return finalized_ && canonical_ != nullptr ? *canonical_ : pending_;
  }

 private:
  /// One immutable hash bucket of one family, in one of two layouts:
  ///
  ///  - Sorted runs (compact == false): the bucket's triples sorted by the
  ///    family's two permutation orders (runs[0] is the order whose enum
  ///    value is family * 2, runs[1] is family * 2 + 1).
  ///  - Compact CSR (compact == true; subject/object families only):
  ///    node_ids holds the bucket's distinct leading-field ids ascending,
  ///    node_offsets[i], node_offsets[i+1]) brackets node i's slice of
  ///    edges, and each edge stores the two minor fields in the family's
  ///    primary order (runs stay empty). The secondary order is recovered
  ///    by filtering a node's slice — see CompactScan().
  ///
  /// Predicate-family shards additionally carry the per-predicate
  /// statistics of the predicates hashing into the bucket (a predicate
  /// never spans shards); subject-family shards carry a bloom filter over
  /// their predicates so bound-predicate scans can skip shards wholesale.
  /// Published Shards are never modified — ApplyDelta() swaps in
  /// replacements — which is what makes Clone() a pointer copy.
  struct Shard {
    using Edge = std::array<TermId, 2>;
    static constexpr size_t kBloomWords = 16;  // 1024 bits, 2 probes

    std::array<std::vector<Triple>, 2> runs;
    std::unordered_map<TermId, PredicateStats> stats;  // predicate family only

    bool compact = false;
    std::vector<TermId> node_ids;
    std::vector<uint32_t> node_offsets;  // node_ids.size() + 1 when compact
    std::vector<Edge> edges;
    /// Predicate bloom filter (subject family only, both layouts); all-zero
    /// elsewhere and for empty shards, which correctly rejects every probe.
    std::array<uint64_t, kBloomWords> bloom{};

    uint64_t MemoryBytes() const {
      return (runs[0].capacity() + runs[1].capacity()) * sizeof(Triple) +
             node_ids.capacity() * sizeof(TermId) +
             node_offsets.capacity() * sizeof(uint32_t) +
             edges.capacity() * sizeof(Edge);
    }
  };

  /// Restores the freshly-constructed state (used on moved-from stores).
  void Reset();

  /// Rebuilds every shard of every family from the canonical array
  /// (pool-parallel per-shard sorts) plus all statistics.
  void BuildShards(ThreadPool* pool);

  /// Repartitions `triples` (given in canonical SPO order) into
  /// shard_count_ buckets by the hash of `field`. Bucket vectors stay in
  /// canonical relative order, i.e. SPO-sorted.
  std::vector<std::vector<Triple>> PartitionByField(
      const std::vector<Triple>& triples, int field) const;

  /// Recomputes predicate-family shard statistics (from its two runs).
  static void ComputeShardStats(Shard* shard);

  /// True when `family` stores its shards in the compact CSR layout under
  /// the current flag (the predicate family never does).
  bool FamilyCompact(int family) const {
    return compact_layout_ && family != kPredicateFamily;
  }

  /// Encodes `bucket` (sorted by the family's primary order) into `out`'s
  /// CSR arrays, and the inverse: decodes a compact shard back into
  /// primary-order triples (the delta-merge input).
  static void CompressShard(Shard* out, int family,
                            const std::vector<Triple>& bucket);
  static std::vector<Triple> DecompressShard(const Shard& shard, int family);

  /// (Re)derives a subject-family shard's predicate bloom from whichever
  /// layout it holds. Two bits per predicate from the MixId halves.
  static void ComputeShardBloom(Shard* shard);
  static bool BloomMayContain(const Shard& shard, TermId predicate);

  /// Scan()/Count() served from a compact shard: node binary search plus a
  /// slice walk, emitting exactly the bytes the sorted run would have.
  ScanRange CompactScan(const Shard& shard, int order, TermId s, TermId p,
                        TermId o) const;
  uint64_t CompactCount(const Shard& shard, int order, TermId s, TermId p,
                        TermId o) const;

  /// Distinct nodes (subject-or-object terms) of bucket `k`: the same hash
  /// partitions subjects (in the subject family) and objects (in the
  /// object family), so bucket node sets are disjoint across k and their
  /// sizes sum to NumNodes().
  uint64_t ComputeBucketNodes(size_t k) const;

  /// Re-derives predicate_stats_ (the merged map), bucket_nodes_ for the
  /// buckets listed in `dirty_buckets` (nullptr = all), and num_nodes_.
  void RefreshStats(const std::vector<bool>* dirty_buckets);

  std::shared_ptr<Dictionary> dict_;
  /// Canonical SPO-sorted triples; non-null and authoritative while
  /// finalized_. Shared copy-on-write with clones.
  std::shared_ptr<const std::vector<Triple>> canonical_;
  /// Staging buffer for the legacy Add()/ReplaceTriples() path: holds the
  /// full (possibly duplicated, unsorted) triple multiset while
  /// !finalized_. Empty while finalized.
  std::vector<Triple> pending_;
  size_t shard_count_ = 1;
  /// families_[f] has shard_count_ entries; all non-null while finalized_.
  std::array<std::vector<std::shared_ptr<const Shard>>, kNumFamilies> families_;
  /// Per-bucket distinct-node counts (see ComputeBucketNodes).
  std::vector<uint64_t> bucket_nodes_;
  std::vector<Triple> delta_adds_;     // staged, unsorted until ApplyDelta
  std::vector<Triple> delta_deletes_;  // staged, unsorted until ApplyDelta
  /// Merged view over the predicate-family shard maps (kept global so
  /// StatsFor()/predicate_stats() stay O(1)/iterable).
  std::unordered_map<TermId, PredicateStats> predicate_stats_;
  uint64_t num_nodes_ = 0;
  bool finalized_ = false;
  bool compact_layout_ = false;
};

}  // namespace sofos

#endif  // SOFOS_RDF_TRIPLE_STORE_H_
