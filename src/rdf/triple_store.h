#ifndef SOFOS_RDF_TRIPLE_STORE_H_
#define SOFOS_RDF_TRIPLE_STORE_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace sofos {

class ThreadPool;

/// Outcome of merging a staged delta into a finalized store.
struct DeltaApplyResult {
  uint64_t adds_applied = 0;     // staged adds that were not already present
  uint64_t deletes_applied = 0;  // staged deletes that actually removed a triple
  double merge_micros = 0.0;
};

/// Per-predicate statistics gathered at Finalize() time; used by the query
/// planner for selectivity estimation and by the cost models.
struct PredicateStats {
  uint64_t triples = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;
};

/// In-memory RDF triple store with dictionary encoding and six sorted
/// permutation indexes (SPO, SOP, PSO, POS, OSP, OPS — the RDF-3X layout).
/// Any triple pattern whose bound components form a prefix of one of the six
/// orders resolves to a binary-searched contiguous range, which makes both
/// scans and exact pattern counting cheap.
///
/// Usage: Add() triples (interning terms through the embedded Dictionary),
/// then Finalize() to (re)build the indexes; Scan()/Count() require a
/// finalized store. Adding after Finalize() is allowed — the store becomes
/// unfinalized and must be finalized again (materialization of views relies
/// on this: the expanded graph G+ is the same store re-finalized).
///
/// Incremental mutation: a *finalized* store can alternatively absorb an
/// update batch through the staged-delta path — StageAdd()/StageDelete()
/// collect dictionary-encoded triples in side buffers, and ApplyDelta()
/// merges them into all six permutation indexes with one linear merge pass
/// per order (the small delta is sorted, deletes act as tombstones during
/// the merge), leaving the store finalized throughout. For a delta of d
/// triples against n stored triples this costs O(n + d log d) instead of
/// Finalize()'s O(n log n) six-way re-sort. Semantics are set-algebraic:
/// the new graph is (G \ deletes) ∪ adds — a triple staged on both sides
/// ends up present; deletes of absent triples and adds of present triples
/// are no-ops (not counted in DeltaApplyResult).
///
/// The two mutation paths must not interleave: Add()/ReplaceTriples()/
/// Finalize() SOFOS_CHECK-fail while a staged delta is pending (a stale
/// side buffer would silently resurrect or re-delete triples on the next
/// ApplyDelta), and ApplyDelta() requires a finalized store. Discard a
/// pending delta with DiscardStagedDelta() to return to the legacy path.
///
/// Thread safety (the contract the parallel offline pipeline and the
/// batched workload runner rely on):
///  - Between Finalize() and the next mutation, every const member —
///    Scan(), Count(), Contains(), NumTriples(), NumNodes(), StatsFor(),
///    triples(), dictionary() — is safe to call from any number of threads
///    concurrently: they only read the immutable indexes. ScanRange
///    pointers stay valid for that whole window.
///  - Intern() (and Dictionary access through mutable_dictionary()) is
///    internally synchronized and may run concurrently with the reads
///    above; it grows the dictionary but never touches the indexes.
///  - Add(), Finalize(), ReplaceTriples() and move operations require
///    exclusive access: no concurrent calls of any kind.
class TripleStore {
 public:
  TripleStore() = default;

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  /// Deep copy of a finalized store with no staged delta (SOFOS_CHECK):
  /// identical triples, indexes, statistics, and dictionary ids. The clone
  /// is completely independent of the original — this is what pins one
  /// immutable graph state under an epoch snapshot while the original keeps
  /// absorbing deltas (see core::EngineSnapshot). O(n) memcpy-ish cost,
  /// the same order as one ApplyDelta merge pass.
  TripleStore Clone() const;

  /// Interns `term` in the embedded dictionary.
  TermId Intern(const Term& term) { return dict_.Intern(term); }

  /// Adds a triple by id. Ids must come from this store's dictionary.
  /// Must not be called while a staged delta is pending (SOFOS_CHECK).
  void Add(TermId s, TermId p, TermId o);

  /// Convenience: interns the three terms and adds the triple.
  void Add(const Term& s, const Term& p, const Term& o);

  /// Sorts and deduplicates the triples and rebuilds all six indexes and the
  /// statistics. Idempotent. O(n log n). When `pool` is non-null the five
  /// non-canonical permutation sorts run concurrently on it (the canonical
  /// SPO sort must finish first — deduplication feeds the other orders);
  /// the result is identical either way. Must not be called while a staged
  /// delta is pending (SOFOS_CHECK).
  void Finalize(ThreadPool* pool = nullptr);

  /// ---- Staged-delta mutation path (see class comment) ----

  /// Stages one triple for insertion/removal by the next ApplyDelta().
  /// Ids must come from this store's dictionary. Staging is allowed only on
  /// a finalized store (SOFOS_CHECK) — the delta is defined against the
  /// finalized state it will merge into.
  void StageAdd(TermId s, TermId p, TermId o);
  void StageDelete(TermId s, TermId p, TermId o);
  /// Convenience overloads that intern the terms first.
  void StageAdd(const Term& s, const Term& p, const Term& o);
  void StageDelete(const Term& s, const Term& p, const Term& o);

  size_t staged_adds() const { return delta_adds_.size(); }
  size_t staged_deletes() const { return delta_deletes_.size(); }
  bool HasStagedDelta() const {
    return !delta_adds_.empty() || !delta_deletes_.empty();
  }
  /// Drops the staged buffers without applying them.
  void DiscardStagedDelta();

  /// Merges the staged delta into all six indexes and refreshes the
  /// statistics; the store stays finalized and Scan() ranges taken before
  /// the call are invalidated. When `pool` is non-null the six per-order
  /// merges run concurrently; results are identical either way.
  DeltaApplyResult ApplyDelta(ThreadPool* pool = nullptr);

  /// Replaces the triple set wholesale (dictionary is kept; superfluous
  /// terms stay interned and harmless). Used to roll an expanded graph G+
  /// back to a base snapshot G between experiments. Leaves the store
  /// unfinalized.
  void ReplaceTriples(std::vector<Triple> triples);

  bool finalized() const { return finalized_; }

  /// A contiguous range of matching triples (valid until the next Finalize).
  class ScanRange {
   public:
    ScanRange() = default;
    ScanRange(const Triple* begin, const Triple* end) : begin_(begin), end_(end) {}
    const Triple* begin() const { return begin_; }
    const Triple* end() const { return end_; }
    size_t size() const { return static_cast<size_t>(end_ - begin_); }
    bool empty() const { return begin_ == end_; }

   private:
    const Triple* begin_ = nullptr;
    const Triple* end_ = nullptr;
  };

  /// Returns all triples matching the pattern (kNullTermId = wildcard).
  /// Requires finalized(). The range is sorted in the order of the index
  /// that serves the bound prefix.
  ScanRange Scan(TermId s, TermId p, TermId o) const;
  ScanRange Scan(const TripleIdPattern& pattern) const {
    return Scan(pattern.s, pattern.p, pattern.o);
  }

  /// Splits Scan(s, p, o) into at most `max_partitions` contiguous,
  /// near-equal sub-ranges in index order (the morsels of the vectorized
  /// executor's exchange scans). Concatenating the partitions in return
  /// order yields exactly the Scan() range, so any order-preserving
  /// per-partition computation reduced in partition order is identical to a
  /// single full-range scan. Never returns empty partitions; an empty scan
  /// yields an empty vector. Requires finalized(); partitions stay valid as
  /// long as the underlying ScanRange would.
  std::vector<ScanRange> ScanPartitions(TermId s, TermId p, TermId o,
                                        size_t max_partitions) const;

  /// The field comparison priority of the index Scan() would serve this
  /// bound-set from (0 = subject, 1 = predicate, 2 = object; e.g. SPO =
  /// {0,1,2}, POS = {1,2,0}). Triples inside a Scan() range are sorted by
  /// this priority. The vectorized hash join uses it to order bucket
  /// matches exactly like the index nested-loop join would emit them —
  /// the determinism contract between the two join algorithms. Depends
  /// only on which positions are bound, so callers may pass any non-null
  /// sentinel ids.
  static std::array<int, 3> ScanFieldOrder(bool s_bound, bool p_bound,
                                           bool o_bound);

  /// Exact number of triples matching the pattern. Requires finalized().
  uint64_t Count(TermId s, TermId p, TermId o) const { return Scan(s, p, o).size(); }

  /// True iff the exact triple is present. Requires finalized().
  bool Contains(TermId s, TermId p, TermId o) const {
    return Count(s, p, o) > 0;
  }

  size_t NumTriples() const { return triples_.size(); }
  size_t NumTerms() const { return dict_.size(); }

  /// Distinct terms used in subject or object position (graph nodes, the
  /// |I ∪ B ∪ L| of the paper's node-count cost model). Requires finalized().
  uint64_t NumNodes() const { return num_nodes_; }

  /// Distinct predicates. Requires finalized().
  uint64_t NumPredicates() const { return predicate_stats_.size(); }

  const PredicateStats* StatsFor(TermId predicate) const;
  const std::unordered_map<TermId, PredicateStats>& predicate_stats() const {
    return predicate_stats_;
  }

  /// Rough heap footprint of indexes + dictionary, for storage metrics.
  uint64_t MemoryBytes() const;

  Dictionary* mutable_dictionary() { return &dict_; }
  const Dictionary& dictionary() const { return dict_; }

  /// All triples in SPO order. Requires finalized().
  const std::vector<Triple>& triples() const { return triples_; }

 private:
  enum Order : int { kSPO = 0, kSOP, kPSO, kPOS, kOSP, kOPS, kNumOrders };

  /// Recomputes predicate_stats_ and num_nodes_ from the (already sorted)
  /// indexes; shared by Finalize() and ApplyDelta().
  void RebuildStats();

  Dictionary dict_;
  std::vector<Triple> triples_;  // canonical, SPO-sorted after Finalize
  // indexes_[kSPO] aliases triples_ conceptually but is stored separately to
  // keep the code uniform; the five extra orders are rebuilt in Finalize.
  std::array<std::vector<Triple>, kNumOrders> indexes_;
  std::vector<Triple> delta_adds_;     // staged, unsorted until ApplyDelta
  std::vector<Triple> delta_deletes_;  // staged, unsorted until ApplyDelta
  std::unordered_map<TermId, PredicateStats> predicate_stats_;
  uint64_t num_nodes_ = 0;
  bool finalized_ = false;
};

}  // namespace sofos

#endif  // SOFOS_RDF_TRIPLE_STORE_H_
