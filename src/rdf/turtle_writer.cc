#include "rdf/turtle_writer.h"

#include <fstream>

#include "common/string_util.h"

namespace sofos {

void TurtleWriter::AddPrefix(std::string prefix, std::string iri) {
  prefixes_.push_back(PrefixEntry{std::move(prefix), std::move(iri)});
}

std::string TurtleWriter::WriteNTriples(const TripleStore& store) const {
  std::string out;
  const Dictionary& dict = store.dictionary();
  for (const Triple& t : store.triples()) {
    out += dict.term(t.s).ToNTriples();
    out += ' ';
    out += dict.term(t.p).ToNTriples();
    out += ' ';
    out += dict.term(t.o).ToNTriples();
    out += " .\n";
  }
  return out;
}

std::string TurtleWriter::Abbreviate(const Term& term) const {
  if (term.is_iri()) {
    for (const PrefixEntry& entry : prefixes_) {
      if (StrStartsWith(term.lexical(), entry.iri)) {
        std::string local = term.lexical().substr(entry.iri.size());
        // Only abbreviate when the local part is a simple name.
        bool simple = !local.empty();
        for (char c : local) {
          if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-')) {
            simple = false;
            break;
          }
        }
        if (simple) return entry.prefix + ":" + local;
      }
    }
  }
  return term.ToNTriples();
}

std::string TurtleWriter::WriteTurtle(const TripleStore& store) const {
  std::string out;
  for (const PrefixEntry& entry : prefixes_) {
    out += "@prefix " + entry.prefix + ": <" + entry.iri + "> .\n";
  }
  if (!prefixes_.empty()) out += '\n';

  const Dictionary& dict = store.dictionary();
  const auto& triples = store.triples();  // SPO sorted: subjects contiguous
  for (size_t i = 0; i < triples.size();) {
    TermId subject = triples[i].s;
    out += Abbreviate(dict.term(subject));
    bool first = true;
    while (i < triples.size() && triples[i].s == subject) {
      out += first ? " " : " ;\n    ";
      first = false;
      out += Abbreviate(dict.term(triples[i].p));
      out += ' ';
      out += Abbreviate(dict.term(triples[i].o));
      ++i;
    }
    out += " .\n";
  }
  return out;
}

Status TurtleWriter::WriteNTriplesFile(const TripleStore& store,
                                       const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open file for writing: " + path);
  out << WriteNTriples(store);
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace sofos
