#ifndef SOFOS_RDF_TURTLE_WRITER_H_
#define SOFOS_RDF_TURTLE_WRITER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/triple_store.h"

namespace sofos {

/// Serializes a finalized TripleStore back to text. N-Triples output is
/// canonical (SPO-sorted, one triple per line) which makes round-trip
/// property tests straightforward; Turtle output groups predicates by
/// subject with `;` for readability.
class TurtleWriter {
 public:
  struct PrefixEntry {
    std::string prefix;  // e.g. "geo"
    std::string iri;     // e.g. "http://sofos.example.org/geo#"
  };

  /// Registers a namespace abbreviation used by WriteTurtle.
  void AddPrefix(std::string prefix, std::string iri);

  /// One N-Triples line per triple, in canonical SPO order.
  std::string WriteNTriples(const TripleStore& store) const;

  /// Turtle with prefix directives and subject grouping.
  std::string WriteTurtle(const TripleStore& store) const;

  /// Writes WriteNTriples() output to `path`.
  Status WriteNTriplesFile(const TripleStore& store, const std::string& path) const;

 private:
  std::string Abbreviate(const Term& term) const;

  std::vector<PrefixEntry> prefixes_;
};

}  // namespace sofos

#endif  // SOFOS_RDF_TURTLE_WRITER_H_
