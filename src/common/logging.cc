#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace sofos {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

void CheckFail(const char* condition, const char* file, int line,
               const std::string& detail) {
  std::fprintf(stderr, "[CHECK %s:%d] %s failed%s%s\n", file, line, condition,
               detail.empty() ? "" : ": ", detail.c_str());
  std::abort();
}

}  // namespace internal

}  // namespace sofos
