#ifndef SOFOS_COMMON_RNG_H_
#define SOFOS_COMMON_RNG_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sofos {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// splitmix64. All randomness in sofos (data generation, workload sampling,
/// random cost model, learned-model initialization) flows through this class
/// so that every experiment is reproducible bit-for-bit across platforms —
/// std::uniform_int_distribution does not guarantee that.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box–Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial.
  bool Chance(double p);

  /// Zipf-distributed rank in [0, n) with exponent `s` (s=0 → uniform).
  /// Uses inverse-CDF over precomputed weights; callers should reuse a
  /// ZipfSampler for large n — this convenience is O(n) per call.
  uint64_t Zipf(uint64_t n, double s);

  /// Picks a uniformly random element of `items` (must be non-empty).
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    assert(!items.empty());
    return items[Uniform(items.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = Uniform(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Precomputed Zipf sampler: O(log n) per draw after O(n) setup.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double exponent);

  uint64_t Sample(Rng* rng) const;
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace sofos

#endif  // SOFOS_COMMON_RNG_H_
