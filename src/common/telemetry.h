// TelemetryHistory: turns the MetricsRegistry's point-in-time snapshots
// into time series. A fixed-capacity ring of timestamped Collect()
// results supports sliding-window *rate* queries: counter deltas become
// per-second rates, histogram snapshots subtract into interval
// distributions (interval p50/p95/p99 rather than lifetime figures),
// gauges report their latest value. This is the substrate the
// queue-model admission policy (observed arrival/service rates) and the
// self-driving re-selection loop (drift over time) read from, and what
// the server's HISTORY verb / GET /history endpoint render.
//
// Threading: Sample() and Window() are mutex-guarded and may race freely
// with each other and with the optional background sampler thread;
// MetricsRegistry::Collect() is itself thread-safe against concurrent
// recording. The clock is injectable so tests drive deterministic
// windows without sleeping.
#ifndef SOFOS_COMMON_TELEMETRY_H_
#define SOFOS_COMMON_TELEMETRY_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/latency_histogram.h"
#include "common/metrics_registry.h"

namespace sofos {

/// One retained sample: everything Collect() saw, stamped with the
/// history clock.
struct TelemetrySample {
  double at_seconds = 0.0;
  std::vector<MetricSample> samples;
};

struct TelemetryOptions {
  /// Ring capacity. At the server's default 1 s sampling period, 360
  /// samples retain a 6-minute window in ~360 * |instruments| *
  /// sizeof(MetricSample) — a few hundred KiB, fixed.
  size_t capacity = 360;
  /// Injectable clock in seconds (monotonic). Defaults to steady_clock.
  std::function<double()> clock_seconds;
};

/// A window report derived from the newest retained sample and the oldest
/// sample still inside the window.
struct TelemetryWindow {
  /// True when at least two samples fell inside the window (rates need a
  /// baseline). When false every map below is empty.
  bool valid = false;
  double window_seconds = 0.0;  // actual span between the two samples
  size_t samples_in_window = 0;
  double newest_at_seconds = 0.0;

  struct CounterRate {
    uint64_t delta = 0;
    double per_second = 0.0;
  };
  /// Counter name -> delta over the window and per-second rate. Counters
  /// that first appear mid-window are treated as starting from zero.
  std::map<std::string, CounterRate> rates;
  /// Histogram name -> interval distribution (newest minus oldest).
  std::map<std::string, LatencyHistogram::Snapshot> intervals;
  /// Gauge name -> value in the newest sample.
  std::map<std::string, double> gauges;

  /// Sums the per-second rates of every counter whose name starts with
  /// `prefix` (e.g. all `sofos_server_requests_total{...}` label
  /// variants) into *out. Returns false — leaving *out untouched — when
  /// the window is invalid or no counter matches, so callers can tell
  /// "rate is zero" from "rate is unknown".
  bool SumRatePerSecond(const std::string& prefix, double* out) const;

  /// Merges every interval histogram whose name starts with `prefix` and
  /// reports the merged mean in micros plus the merged observation count.
  /// Returns false when the window is invalid, nothing matches, or the
  /// merged interval is empty (a mean of zero observations is undefined).
  bool MergedIntervalMean(const std::string& prefix, double* mean_micros,
                          uint64_t* count) const;
};

class TelemetryHistory {
 public:
  explicit TelemetryHistory(const MetricsRegistry* registry,
                            TelemetryOptions options = {});
  ~TelemetryHistory();

  TelemetryHistory(const TelemetryHistory&) = delete;
  TelemetryHistory& operator=(const TelemetryHistory&) = delete;

  /// Takes one sample now: Collect() + timestamp, pushed into the ring
  /// (evicting the oldest at capacity). Returns the sample's timestamp.
  double Sample();

  /// Derives rates/intervals between the newest retained sample and the
  /// oldest sample no older than `window_seconds` before it. Needs >= 2
  /// samples in the window, else returns {valid = false}.
  TelemetryWindow Window(double window_seconds) const;

  /// Window() rendered as one JSON object:
  /// {"valid":true,"window_seconds":..,"samples":..,
  ///  "rates":{"name":{"delta":..,"per_second":..},...},
  ///  "intervals":{"name":{"count":..,"p50":..,"p95":..,"p99":..,"mean":..},...},
  ///  "gauges":{"name":..,...}}
  std::string WindowJson(double window_seconds) const;

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Starts the background sampler: one Sample() every `period_seconds`
  /// until StopSampler() (or destruction). No-op if already running.
  void StartSampler(double period_seconds);
  void StopSampler();

 private:
  double NowSeconds() const;
  void SamplerLoop(double period_seconds);

  const MetricsRegistry* registry_;
  const size_t capacity_;
  std::function<double()> clock_seconds_;

  mutable std::mutex mu_;
  std::deque<TelemetrySample> ring_;

  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
  std::thread sampler_;
};

}  // namespace sofos

#endif  // SOFOS_COMMON_TELEMETRY_H_
