#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace sofos {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // xoshiro must not be seeded with all zeros; splitmix cannot produce four
  // consecutive zeros, but keep a belt-and-braces guard.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of bound.
  uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  ZipfSampler sampler(n, s);
  return sampler.Sample(this);
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  assert(k <= n);
  // Floyd's algorithm for distinct sampling, then shuffle for random order.
  std::vector<size_t> picked;
  picked.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(Uniform(j + 1));
    if (std::find(picked.begin(), picked.end(), t) != picked.end()) {
      picked.push_back(j);
    } else {
      picked.push_back(t);
    }
  }
  Shuffle(&picked);
  return picked;
}

ZipfSampler::ZipfSampler(uint64_t n, double exponent) : n_(n) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace sofos
