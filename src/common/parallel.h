#ifndef SOFOS_COMMON_PARALLEL_H_
#define SOFOS_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <future>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"

namespace sofos {

/// A half-open index range [begin, end).
struct IndexRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Splits [0, n) into at most `max_chunks` contiguous ranges of near-equal
/// size (the first `n % chunks` ranges are one element longer). Returns
/// ranges in ascending order; never returns empty ranges.
inline std::vector<IndexRange> ChunkIndexRanges(size_t n, size_t max_chunks) {
  std::vector<IndexRange> ranges;
  if (n == 0) return ranges;
  size_t chunks = max_chunks < 1 ? 1 : (max_chunks > n ? n : max_chunks);
  size_t base = n / chunks, extra = n % chunks;
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    size_t len = base + (c < extra ? 1 : 0);
    ranges.push_back(IndexRange{begin, begin + len});
    begin += len;
  }
  return ranges;
}

namespace internal {

/// Joins every future, capturing the first exception (caller-chunk error
/// included) and rethrowing only after all tasks finished — unwinding
/// before the join would leave running tasks with dangling references to
/// the caller's stack (fn, captured locals).
inline void JoinAll(std::vector<std::future<void>>* futures,
                    std::exception_ptr first_error) {
  for (std::future<void>& future : *futures) {
    try {
      future.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace internal

/// Runs fn(i) for every i in [0, n), fanning chunks out over `pool`.
///
/// - `pool == nullptr` (or a single worker, or n <= 1) degrades to the plain
///   serial loop — byte-identical to legacy single-threaded behavior.
/// - Indices within a chunk run in ascending order; chunks run concurrently,
///   so fn must only touch per-index state (e.g. write slot i of a
///   preallocated vector). Determinism then comes for free: every index
///   writes the same slot no matter the schedule.
/// - The caller executes the first chunk itself (no idle caller, and tasks
///   never wait on same-pool tasks, which could deadlock a full pool).
/// - Returns only after every index completed, even when fn throws; the
///   first exception (ties broken toward the caller's own chunk) is
///   rethrown after the join.
template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t n, Fn&& fn) {
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<IndexRange> ranges = ChunkIndexRanges(n, pool->num_threads() + 1);
  std::vector<std::future<void>> futures;
  futures.reserve(ranges.size() - 1);
  for (size_t c = 1; c < ranges.size(); ++c) {
    IndexRange range = ranges[c];
    futures.push_back(pool->Submit([range, &fn] {
      for (size_t i = range.begin; i < range.end; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  try {
    for (size_t i = ranges[0].begin; i < ranges[0].end; ++i) fn(i);
  } catch (...) {
    first_error = std::current_exception();
  }
  internal::JoinAll(&futures, first_error);
}

/// Like ParallelFor but submits one task per index, so items of wildly
/// different cost (lattice view queries, workload queries) balance
/// dynamically instead of being pinned to a static chunk. The caller
/// executes index 0 inline, then helps drain the queue
/// (ThreadPool::TryRunOneTask) before blocking on in-flight tasks, so it
/// works alongside the workers for the whole fan-out. Same exception
/// contract as ParallelFor: all indices finish before the first error is
/// rethrown. Use ParallelFor for cheap uniform bodies where per-task queue
/// overhead would dominate.
template <typename Fn>
void ParallelForEach(ThreadPool* pool, size_t n, Fn&& fn) {
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n - 1);
  for (size_t i = 1; i < n; ++i) {
    futures.push_back(pool->Submit([i, &fn] { fn(i); }));
  }
  std::exception_ptr first_error;
  try {
    fn(0);
    while (pool->TryRunOneTask()) {
    }
  } catch (...) {
    first_error = std::current_exception();
  }
  internal::JoinAll(&futures, first_error);
}

/// The fallible fan-out used by the engine's parallel entry points: fn(i)
/// returns a Status; once any index fails, indices that have not started
/// yet are skipped (mirroring a serial loop's early exit), and the error
/// of the *smallest* failing index is returned — the one the serial loop
/// would have hit first — independent of scheduling.
template <typename Fn>
Status ParallelForEachStatus(ThreadPool* pool, size_t n, Fn&& fn) {
  std::vector<Status> statuses(n, Status::OK());
  std::atomic<bool> failed{false};
  ParallelForEach(pool, n, [&](size_t i) {
    if (failed.load(std::memory_order_relaxed)) return;
    Status status = fn(i);
    if (!status.ok()) {
      statuses[i] = std::move(status);
      failed.store(true, std::memory_order_relaxed);
    }
  });
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

}  // namespace sofos

#endif  // SOFOS_COMMON_PARALLEL_H_
