#ifndef SOFOS_COMMON_RESULT_H_
#define SOFOS_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace sofos {

/// Result<T> carries either a value of type T or a non-OK Status, in the
/// style of arrow::Result / absl::StatusOr. Accessing the value of an
/// errored Result is a programming error (checked with assert in debug
/// builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from a non-OK status. Constructing a Result from
  /// an OK status is a programming error and is converted to kInternal.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; OK if this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T ValueOr(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<Status, T> repr_;
};

/// Evaluates `rexpr` (a Result<T> expression). On error, returns the status
/// from the enclosing function; on success, assigns the value to `lhs`.
/// `lhs` may be a declaration: SOFOS_ASSIGN_OR_RETURN(auto x, F());
#define SOFOS_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  SOFOS_ASSIGN_OR_RETURN_IMPL_(                                        \
      SOFOS_RESULT_CONCAT_(_sofos_result_, __LINE__), lhs, rexpr)

#define SOFOS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define SOFOS_RESULT_CONCAT_(a, b) SOFOS_RESULT_CONCAT_IMPL_(a, b)
#define SOFOS_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace sofos

#endif  // SOFOS_COMMON_RESULT_H_
