#ifndef SOFOS_COMMON_THREAD_POOL_H_
#define SOFOS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/latency_histogram.h"
#include "common/timer.h"

namespace sofos {

class MetricsRegistry;

/// Fixed-size task pool: `num_threads` workers pull closures from a shared
/// FIFO queue. No work stealing — sofos fans out coarse, independent units
/// (one lattice node, one workload query), so a single queue with one
/// condition variable is both simpler and contention-free at our task
/// granularity.
///
/// Thread safety: Submit() may be called from any thread, including from
/// inside a running task (tasks must not *wait* on tasks submitted to the
/// same pool, though — with all workers blocked in waits the queue would
/// deadlock; ParallelFor in common/parallel.h runs one chunk inline on the
/// caller for exactly this reason).
///
/// Destruction drains nothing: queued-but-unstarted tasks are abandoned
/// (their futures are broken). Callers that need completion must wait on
/// the returned futures before letting the pool die.
class ThreadPool {
 public:
  /// Hard cap on workers per pool: oversubscribing beyond any plausible
  /// core count only adds scheduling overhead, and an unchecked size (e.g.
  /// a negative CLI value cast to unsigned) must not exhaust the process
  /// thread limit.
  static constexpr size_t kMaxThreads = 256;

  /// Spawns `num_threads` workers, clamped to [1, kMaxThreads].
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. The future also
  /// transports exceptions thrown by `fn` (sofos code reports errors via
  /// Status instead, but the pool stays general).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs one queued task on the calling thread, if any is pending.
  /// Returns false when the queue is empty (in-flight tasks on workers do
  /// not count). Lets a caller that is waiting on its own fan-out help
  /// drain the queue instead of idling; exceptions stay captured in the
  /// task's future, they never escape here.
  bool TryRunOneTask();

  /// `std::thread::hardware_concurrency()` with a floor of 1 (the standard
  /// allows it to return 0 when undetectable).
  static unsigned DefaultNumThreads();

  /// Tasks currently queued (not yet claimed by a worker or TryRunOneTask).
  size_t QueueDepth() const;

  /// Lifetime queue-wait (enqueue → dequeue) latency distribution.
  LatencyHistogram::Snapshot QueueWaitSnapshot() const {
    return queue_wait_.TakeSnapshot();
  }
  /// Lifetime task-run (dequeue → completion) latency distribution.
  LatencyHistogram::Snapshot TaskRunSnapshot() const {
    return task_run_.TakeSnapshot();
  }

  /// Registers a collector on `registry` exporting this pool's telemetry
  /// as `sofos_pool_queue_wait_micros` / `sofos_pool_task_micros`
  /// (histograms) and `sofos_pool_queue_depth` (gauge) — the arrival/
  /// service-time signals the queue-model admission policy reads. Returns
  /// the collector id; the caller MUST UnregisterCollector(id) before the
  /// pool is destroyed (the collector captures `this`).
  uint64_t BridgeMetrics(MetricsRegistry* registry);

 private:
  /// A queued closure stamped with its enqueue time, so the dequeue side
  /// can attribute queue-wait without a per-task allocation.
  struct QueuedTask {
    std::function<void()> fn;
    WallTimer queued;
  };

  void Enqueue(std::function<void()> fn);
  void WorkerLoop();
  void RunTask(QueuedTask task);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  // Record paths are lock-free (relaxed atomics); the histograms outlive
  // every worker, so tasks record without touching the queue mutex.
  LatencyHistogram queue_wait_;
  LatencyHistogram task_run_;
};

}  // namespace sofos

#endif  // SOFOS_COMMON_THREAD_POOL_H_
