#ifndef SOFOS_COMMON_THREAD_POOL_H_
#define SOFOS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sofos {

/// Fixed-size task pool: `num_threads` workers pull closures from a shared
/// FIFO queue. No work stealing — sofos fans out coarse, independent units
/// (one lattice node, one workload query), so a single queue with one
/// condition variable is both simpler and contention-free at our task
/// granularity.
///
/// Thread safety: Submit() may be called from any thread, including from
/// inside a running task (tasks must not *wait* on tasks submitted to the
/// same pool, though — with all workers blocked in waits the queue would
/// deadlock; ParallelFor in common/parallel.h runs one chunk inline on the
/// caller for exactly this reason).
///
/// Destruction drains nothing: queued-but-unstarted tasks are abandoned
/// (their futures are broken). Callers that need completion must wait on
/// the returned futures before letting the pool die.
class ThreadPool {
 public:
  /// Hard cap on workers per pool: oversubscribing beyond any plausible
  /// core count only adds scheduling overhead, and an unchecked size (e.g.
  /// a negative CLI value cast to unsigned) must not exhaust the process
  /// thread limit.
  static constexpr size_t kMaxThreads = 256;

  /// Spawns `num_threads` workers, clamped to [1, kMaxThreads].
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. The future also
  /// transports exceptions thrown by `fn` (sofos code reports errors via
  /// Status instead, but the pool stays general).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs one queued task on the calling thread, if any is pending.
  /// Returns false when the queue is empty (in-flight tasks on workers do
  /// not count). Lets a caller that is waiting on its own fan-out help
  /// drain the queue instead of idling; exceptions stay captured in the
  /// task's future, they never escape here.
  bool TryRunOneTask();

  /// `std::thread::hardware_concurrency()` with a floor of 1 (the standard
  /// allows it to return 0 when undetectable).
  static unsigned DefaultNumThreads();

 private:
  void Enqueue(std::function<void()> fn);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sofos

#endif  // SOFOS_COMMON_THREAD_POOL_H_
