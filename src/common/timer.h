#ifndef SOFOS_COMMON_TIMER_H_
#define SOFOS_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace sofos {

/// Monotonic wall-clock stopwatch. Started on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in microseconds since construction / last Restart().
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }
  double ElapsedSeconds() const { return ElapsedMicros() / 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sofos

#endif  // SOFOS_COMMON_TIMER_H_
