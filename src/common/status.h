#ifndef SOFOS_COMMON_STATUS_H_
#define SOFOS_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace sofos {

/// Error categories used across the sofos libraries. The set deliberately
/// mirrors the categories used by embedded database engines (RocksDB-style):
/// a small closed enum, with free-form detail in the message.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kParseError = 5,
  kTypeError = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kResourceExhausted = 9,
};

/// Returns a stable human-readable name for a status code ("ParseError", ...).
std::string_view StatusCodeName(StatusCode code);

/// Value-type status object used instead of exceptions on all library
/// boundaries. A default-constructed Status is OK. Statuses are cheap to
/// copy (the message is empty in the OK case).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prefixes the message with additional context, keeping the code.
  /// No-op on OK statuses.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define SOFOS_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::sofos::Status _sofos_status = (expr);           \
    if (!_sofos_status.ok()) return _sofos_status;    \
  } while (0)

}  // namespace sofos

#endif  // SOFOS_COMMON_STATUS_H_
