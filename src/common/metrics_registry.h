// MetricsRegistry: one process-wide (or per-engine) home for named
// counters, gauges and latency histograms, with a single snapshot API.
//
// Design notes:
//  - Record paths are lock-free: Counter/Gauge are a single relaxed
//    atomic, histograms are common/latency_histogram.h (relaxed atomic
//    buckets). The registry mutex is only taken on get-or-create and on
//    snapshot, never per-record.
//  - Instruments live in std::deques so handed-out pointers stay stable
//    for the registry's lifetime; callers cache the pointer once and
//    record through it forever.
//  - Names follow the Prometheus convention documented in
//    docs/OBSERVABILITY.md: sofos_<subsystem>_<what>_<unit|total>, with
//    optional {label="value"} suffixes baked into the name (the registry
//    treats the full string as the identity).
//  - Collectors: subsystems that keep their own bespoke stats structs
//    (server endpoint metrics, result cache shards) register a callback
//    that contributes samples at snapshot time, so METRICS / STATS see
//    every counter in the process without those subsystems migrating
//    their hot paths.
#ifndef SOFOS_COMMON_METRICS_REGISTRY_H_
#define SOFOS_COMMON_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/latency_histogram.h"

namespace sofos {

// Monotonic counter. Add() is a relaxed fetch_add; never decreases.
class MetricCounter {
 public:
  void Add(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time gauge. Set() overwrites; Add() nudges.
class MetricGauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// A flattened sample contributed by a collector callback (or produced by
// the registry's own snapshot). `kind` selects which field is meaningful.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;  // full name incl. any {label="..."} suffix
  Kind kind = Kind::kCounter;
  uint64_t counter_value = 0;
  double gauge_value = 0.0;
  LatencyHistogram::Snapshot histogram;  // kind == kHistogram only
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by full name. Pointers remain valid for the registry's
  // lifetime. A name keeps its first-registered type: asking for the same
  // name as a different instrument type returns the existing instrument's
  // slot for that type (a fresh, disconnected instrument) — callers are
  // expected to keep names unique across types.
  MetricCounter* Counter(const std::string& name);
  MetricGauge* Gauge(const std::string& name);
  LatencyHistogram* Histogram(const std::string& name);

  // Collector callbacks contribute extra samples at snapshot time (e.g.
  // a server bridging its per-endpoint metrics). Returns an id usable
  // with UnregisterCollector; callbacks must be thread-safe.
  using Collector = std::function<void(std::vector<MetricSample>*)>;
  uint64_t RegisterCollector(Collector fn);
  void UnregisterCollector(uint64_t id);

  // One snapshot API: every owned instrument plus every collector's
  // samples, sorted by name (owned instruments first on name ties).
  std::vector<MetricSample> Collect() const;

  // Prometheus text exposition (docs/OBSERVABILITY.md documents the
  // grammar). Counters/gauges are `name value`; histograms are rendered
  // as summaries: name{quantile="0.5|0.95|0.99"}, name_sum, name_count.
  std::string PrometheusText() const;

  // Compact one-line JSON object {"name":value,...}; histograms expand to
  // {"count":..,"p50":..,"p95":..,"p99":..,"mean":..}.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, MetricCounter*> counter_index_;
  std::map<std::string, MetricGauge*> gauge_index_;
  std::map<std::string, LatencyHistogram*> histogram_index_;
  std::deque<MetricCounter> counters_;
  std::deque<MetricGauge> gauges_;
  std::deque<LatencyHistogram> histograms_;
  uint64_t next_collector_id_ = 1;
  std::vector<std::pair<uint64_t, Collector>> collectors_;
};

}  // namespace sofos

#endif  // SOFOS_COMMON_METRICS_REGISTRY_H_
