#ifndef SOFOS_COMMON_LOGGING_H_
#define SOFOS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace sofos {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// kWarning so that library code stays quiet in tests and benchmarks.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Not thread-safe by design —
/// sofos is a single-threaded research system (documented in README).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Prints the failed condition (plus optional detail) to stderr and aborts.
[[noreturn]] void CheckFail(const char* condition, const char* file, int line,
                            const std::string& detail);

}  // namespace internal

#define SOFOS_LOG(level)                                             \
  ::sofos::internal::LogMessage(::sofos::LogLevel::k##level, __FILE__, __LINE__)

/// Invariant check that stays armed in release builds (unlike assert, which
/// NDEBUG strips from the default RelWithDebInfo build). Used for contract
/// violations that would otherwise corrupt state silently, e.g. interleaving
/// the legacy Add()/Finalize() mutation path with a pending staged delta.
#define SOFOS_CHECK(cond, detail)                                           \
  ((cond) ? static_cast<void>(0)                                            \
          : ::sofos::internal::CheckFail(#cond, __FILE__, __LINE__, (detail)))

}  // namespace sofos

#endif  // SOFOS_COMMON_LOGGING_H_
