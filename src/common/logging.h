#ifndef SOFOS_COMMON_LOGGING_H_
#define SOFOS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace sofos {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// kWarning so that library code stays quiet in tests and benchmarks.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Not thread-safe by design —
/// sofos is a single-threaded research system (documented in README).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SOFOS_LOG(level)                                             \
  ::sofos::internal::LogMessage(::sofos::LogLevel::k##level, __FILE__, __LINE__)

}  // namespace sofos

#endif  // SOFOS_COMMON_LOGGING_H_
