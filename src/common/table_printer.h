#ifndef SOFOS_COMMON_TABLE_PRINTER_H_
#define SOFOS_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sofos {

/// Renders aligned text tables for the benchmark harnesses, mimicking the
/// tables/series the SOFOS demo GUI displays. Supports plain aligned output
/// and GitHub-flavoured markdown.
class TablePrinter {
 public:
  enum class Style { kAligned, kMarkdown, kCsv };

  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Convenience cell formatting helpers.
  static std::string Cell(double value, int precision = 2);
  static std::string Cell(uint64_t value);
  static std::string Cell(int64_t value);

  size_t num_rows() const { return rows_.size(); }

  std::string ToString(Style style = Style::kAligned) const;

  /// Prints to stdout.
  void Print(Style style = Style::kAligned) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sofos

#endif  // SOFOS_COMMON_TABLE_PRINTER_H_
