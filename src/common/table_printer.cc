#include "common/table_printer.h"

#include <cstdio>

#include "common/string_util.h"

namespace sofos {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Cell(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

std::string TablePrinter::Cell(uint64_t value) {
  return StrFormat("%llu", static_cast<unsigned long long>(value));
}

std::string TablePrinter::Cell(int64_t value) {
  return StrFormat("%lld", static_cast<long long>(value));
}

std::string TablePrinter::ToString(Style style) const {
  if (style == Style::kCsv) {
    std::string out = StrJoin(headers_, ",");
    out += '\n';
    for (const auto& row : rows_) {
      out += StrJoin(row, ",");
      out += '\n';
    }
    return out;
  }

  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    line += (style == Style::kMarkdown) ? "| " : "";
    for (size_t i = 0; i < headers_.size(); ++i) {
      std::string cell = i < cells.size() ? cells[i] : "";
      cell.resize(widths[i], ' ');
      line += cell;
      if (i + 1 < headers_.size()) {
        line += (style == Style::kMarkdown) ? " | " : "  ";
      }
    }
    if (style == Style::kMarkdown) line += " |";
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  if (style == Style::kMarkdown) {
    out += "|";
    for (size_t i = 0; i < headers_.size(); ++i) {
      out += std::string(widths[i] + 2, '-');
      out += "|";
    }
    out += '\n';
  } else {
    size_t total = 0;
    for (size_t w : widths) total += w;
    total += 2 * (widths.empty() ? 0 : widths.size() - 1);
    out += std::string(total, '-');
    out += '\n';
  }
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print(Style style) const {
  std::fputs(ToString(style).c_str(), stdout);
}

}  // namespace sofos
