#include "common/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace sofos {
namespace {

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendJsonKey(const std::string& name, std::string* out) {
  out->push_back('"');
  for (char c : name) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
  *out += "\":";
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

bool TelemetryWindow::SumRatePerSecond(const std::string& prefix,
                                       double* out) const {
  if (!valid) return false;
  double total = 0.0;
  bool any = false;
  for (const auto& [name, rate] : rates) {
    if (!StartsWith(name, prefix)) continue;
    total += rate.per_second;
    any = true;
  }
  if (any) *out = total;
  return any;
}

bool TelemetryWindow::MergedIntervalMean(const std::string& prefix,
                                         double* mean_micros,
                                         uint64_t* count) const {
  if (!valid) return false;
  LatencyHistogram::Snapshot merged;
  bool any = false;
  for (const auto& [name, h] : intervals) {
    if (!StartsWith(name, prefix)) continue;
    merged.Merge(h);
    any = true;
  }
  if (!any || merged.count == 0) return false;
  *mean_micros = merged.MeanMicros();
  *count = merged.count;
  return true;
}

TelemetryHistory::TelemetryHistory(const MetricsRegistry* registry,
                                   TelemetryOptions options)
    : registry_(registry),
      capacity_(std::max<size_t>(2, options.capacity)),
      clock_seconds_(std::move(options.clock_seconds)) {}

TelemetryHistory::~TelemetryHistory() { StopSampler(); }

double TelemetryHistory::NowSeconds() const {
  return clock_seconds_ ? clock_seconds_() : SteadyNowSeconds();
}

double TelemetryHistory::Sample() {
  // Collect outside the ring lock: collectors may take their own locks
  // and Window() readers should not wait on them.
  TelemetrySample sample;
  sample.at_seconds = NowSeconds();
  sample.samples = registry_->Collect();
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(sample));
  while (ring_.size() > capacity_) ring_.pop_front();
  return ring_.back().at_seconds;
}

size_t TelemetryHistory::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

TelemetryWindow TelemetryHistory::Window(double window_seconds) const {
  TelemetryWindow win;
  const TelemetrySample* newest = nullptr;
  const TelemetrySample* oldest = nullptr;
  // Copy the two boundary samples out under the lock; the rate math then
  // runs lock-free. Boundary selection: newest retained sample, plus the
  // oldest retained sample within `window_seconds` of it.
  TelemetrySample newest_copy, oldest_copy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < 2) return win;
    newest = &ring_.back();
    const double horizon = newest->at_seconds - window_seconds;
    size_t in_window = 0;
    for (const TelemetrySample& s : ring_) {
      if (s.at_seconds >= horizon) {
        if (oldest == nullptr) oldest = &s;
        ++in_window;
      }
    }
    if (oldest == nullptr || oldest == newest || in_window < 2) return win;
    win.samples_in_window = in_window;
    newest_copy = *newest;
    oldest_copy = *oldest;
  }
  const double span = newest_copy.at_seconds - oldest_copy.at_seconds;
  win.valid = true;
  win.window_seconds = span;
  win.newest_at_seconds = newest_copy.at_seconds;

  // Index the older sample by name; Collect() output is name-sorted but a
  // map keeps the pairing robust to instruments appearing mid-window.
  std::map<std::string, const MetricSample*> old_index;
  for (const MetricSample& s : oldest_copy.samples) old_index[s.name] = &s;

  for (const MetricSample& s : newest_copy.samples) {
    auto it = old_index.find(s.name);
    const MetricSample* old_s =
        (it != old_index.end() && it->second->kind == s.kind) ? it->second
                                                              : nullptr;
    switch (s.kind) {
      case MetricSample::Kind::kCounter: {
        // A counter born mid-window baselines at 0; a counter that went
        // backwards (instrument replaced) clamps to 0 delta.
        const uint64_t before = old_s ? old_s->counter_value : 0;
        TelemetryWindow::CounterRate rate;
        rate.delta = s.counter_value >= before ? s.counter_value - before : 0;
        rate.per_second =
            span > 0 ? static_cast<double>(rate.delta) / span : 0.0;
        win.rates[s.name] = rate;
        break;
      }
      case MetricSample::Kind::kGauge:
        win.gauges[s.name] = s.gauge_value;
        break;
      case MetricSample::Kind::kHistogram:
        win.intervals[s.name] =
            old_s ? s.histogram.Subtract(old_s->histogram) : s.histogram;
        break;
    }
  }
  return win;
}

std::string TelemetryHistory::WindowJson(double window_seconds) const {
  TelemetryWindow win = Window(window_seconds);
  std::string out = "{\"valid\":";
  out += win.valid ? "true" : "false";
  out += ",\"window_seconds\":" + JsonNumber(win.window_seconds);
  out += ",\"samples\":" + std::to_string(win.samples_in_window);
  out += ",\"rates\":{";
  bool first = true;
  for (const auto& [name, rate] : win.rates) {
    if (!first) out += ",";
    first = false;
    AppendJsonKey(name, &out);
    out += "{\"delta\":" + std::to_string(rate.delta) +
           ",\"per_second\":" + JsonNumber(rate.per_second) + "}";
  }
  out += "},\"intervals\":{";
  first = true;
  for (const auto& [name, h] : win.intervals) {
    if (!first) out += ",";
    first = false;
    AppendJsonKey(name, &out);
    out += "{\"count\":" + std::to_string(h.count) +
           ",\"p50\":" + JsonNumber(h.Percentile(0.50)) +
           ",\"p95\":" + JsonNumber(h.Percentile(0.95)) +
           ",\"p99\":" + JsonNumber(h.Percentile(0.99)) +
           ",\"mean\":" + JsonNumber(h.MeanMicros()) + "}";
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : win.gauges) {
    if (!first) out += ",";
    first = false;
    AppendJsonKey(name, &out);
    out += JsonNumber(v);
  }
  out += "}}";
  return out;
}

void TelemetryHistory::StartSampler(double period_seconds) {
  std::lock_guard<std::mutex> lock(sampler_mu_);
  if (sampler_.joinable()) return;
  sampler_stop_ = false;
  sampler_ = std::thread([this, period_seconds] { SamplerLoop(period_seconds); });
}

void TelemetryHistory::StopSampler() {
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    if (!sampler_.joinable()) return;
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  sampler_.join();
  std::lock_guard<std::mutex> lock(sampler_mu_);
  sampler_ = std::thread();
}

void TelemetryHistory::SamplerLoop(double period_seconds) {
  const auto period = std::chrono::duration<double>(
      std::max(0.001, period_seconds));
  std::unique_lock<std::mutex> lock(sampler_mu_);
  while (!sampler_stop_) {
    lock.unlock();
    Sample();
    lock.lock();
    // wait_for (not wait_until) drifts by sampling cost per tick; rate
    // math divides by observed timestamps, so drift never skews rates.
    sampler_cv_.wait_for(lock, period, [this] { return sampler_stop_; });
  }
}

}  // namespace sofos
