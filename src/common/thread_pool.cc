#include "common/thread_pool.h"

#include <algorithm>

namespace sofos {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::min(kMaxThreads, std::max<size_t>(1, num_threads));
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

unsigned ThreadPool::DefaultNumThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    fn = std::move(queue_.front());
    queue_.pop_front();
  }
  fn();
  return true;
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
  }
}

}  // namespace sofos
