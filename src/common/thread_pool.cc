#include "common/thread_pool.h"

#include <algorithm>

#include "common/metrics_registry.h"

namespace sofos {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::min(kMaxThreads, std::max<size_t>(1, num_threads));
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

unsigned ThreadPool::DefaultNumThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t ThreadPool::BridgeMetrics(MetricsRegistry* registry) {
  return registry->RegisterCollector([this](std::vector<MetricSample>* out) {
    MetricSample wait;
    wait.name = "sofos_pool_queue_wait_micros";
    wait.kind = MetricSample::Kind::kHistogram;
    wait.histogram = queue_wait_.TakeSnapshot();
    out->push_back(std::move(wait));
    MetricSample run;
    run.name = "sofos_pool_task_micros";
    run.kind = MetricSample::Kind::kHistogram;
    run.histogram = task_run_.TakeSnapshot();
    out->push_back(std::move(run));
    MetricSample depth;
    depth.name = "sofos_pool_queue_depth";
    depth.kind = MetricSample::Kind::kGauge;
    depth.gauge_value = static_cast<double>(QueueDepth());
    out->push_back(std::move(depth));
  });
}

void ThreadPool::RunTask(QueuedTask task) {
  queue_wait_.Record(task.queued.ElapsedMicros());
  WallTimer run_timer;
  task.fn();
  task_run_.Record(run_timer.ElapsedMicros());
}

bool ThreadPool::TryRunOneTask() {
  QueuedTask task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  RunTask(std::move(task));
  return true;
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(QueuedTask{std::move(fn), WallTimer()});
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTask(std::move(task));
  }
}

}  // namespace sofos
