#ifndef SOFOS_COMMON_LATENCY_HISTOGRAM_H_
#define SOFOS_COMMON_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>

#include "common/string_util.h"

namespace sofos {

/// Fixed-bucket, lock-free latency histogram over microseconds.
///
/// Buckets are geometric with ratio 1.5: bucket 0 covers [0, 1) us and
/// bucket i >= 1 covers [1.5^(i-1), 1.5^i) us, so 56 buckets reach ~55
/// minutes and every percentile estimate is within one bucket ratio (50%)
/// of the true value — plenty for latency SLO reporting, at a fixed 56 * 8
/// bytes of state and one relaxed atomic increment per sample.
///
/// Thread safety: Record() may be called from any number of threads
/// concurrently (relaxed atomics — counts are statistically, not causally,
/// ordered); TakeSnapshot() may run concurrently with recording and sees
/// some valid recent state. Reset() requires no concurrent Record().
///
/// This is the one latency shape shared by the online server's STATS
/// endpoint and the offline WorkloadReport, so p50/p95/p99 figures from
/// both are directly comparable.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 56;

  /// Frozen copy of the counters: a plain value type (copyable, mergeable)
  /// with the percentile math.
  struct Snapshot {
    std::array<uint64_t, kNumBuckets> counts{};
    uint64_t count = 0;
    double sum_micros = 0.0;

    /// Upper-bound estimate of the p-quantile (0 < p <= 1) in micros:
    /// the upper boundary of the bucket holding the ceil(p * count)-th
    /// sample. 0 when empty.
    double Percentile(double p) const {
      if (count == 0) return 0.0;
      uint64_t rank = static_cast<uint64_t>(std::ceil(p * static_cast<double>(count)));
      if (rank < 1) rank = 1;
      uint64_t seen = 0;
      for (size_t i = 0; i < kNumBuckets; ++i) {
        seen += counts[i];
        if (seen >= rank) return BucketUpperMicros(i);
      }
      return BucketUpperMicros(kNumBuckets - 1);
    }

    double P50() const { return Percentile(0.50); }
    double P95() const { return Percentile(0.95); }
    double P99() const { return Percentile(0.99); }
    double MeanMicros() const {
      return count == 0 ? 0.0 : sum_micros / static_cast<double>(count);
    }

    void Merge(const Snapshot& other) {
      for (size_t i = 0; i < kNumBuckets; ++i) counts[i] += other.counts[i];
      count += other.count;
      sum_micros += other.sum_micros;
    }

    /// Interval delta: the samples recorded between `older` and this
    /// snapshot of the *same live histogram*. Counts of a live instrument
    /// are monotone, so per-bucket subtraction yields a valid histogram of
    /// just the interval — Percentile() on the result gives interval
    /// p50/p95/p99 rather than lifetime figures (the telemetry history's
    /// sliding-window view). Subtraction saturates at zero per bucket, so
    /// snapshots taken under concurrent recording (relaxed atomics — the
    /// fields may be a few samples apart) degrade gracefully instead of
    /// wrapping.
    Snapshot Subtract(const Snapshot& older) const {
      Snapshot delta;
      for (size_t i = 0; i < kNumBuckets; ++i) {
        delta.counts[i] =
            counts[i] >= older.counts[i] ? counts[i] - older.counts[i] : 0;
        delta.count += delta.counts[i];
      }
      delta.sum_micros =
          sum_micros >= older.sum_micros ? sum_micros - older.sum_micros : 0.0;
      return delta;
    }

    /// "p50=... p95=... p99=..." with FormatMicros units.
    std::string SummaryString() const {
      return StrFormat("p50=%s p95=%s p99=%s", FormatMicros(P50()).c_str(),
                       FormatMicros(P95()).c_str(), FormatMicros(P99()).c_str());
    }
  };

  void Record(double micros) {
    if (micros < 0) micros = 0;
    counts_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Accumulate in nanoseconds to keep integer atomics (no atomic double
    // fetch_add in C++17); sub-nanosecond truncation is noise here.
    sum_nanos_.fetch_add(static_cast<uint64_t>(micros * 1e3),
                         std::memory_order_relaxed);
  }

  Snapshot TakeSnapshot() const {
    Snapshot snap;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    }
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum_micros =
        static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) / 1e3;
    return snap;
  }

  /// Zeroes all counters. Not safe against concurrent Record().
  void Reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_nanos_.store(0, std::memory_order_relaxed);
  }

  static size_t BucketFor(double micros) {
    if (micros < 1.0) return 0;
    // bucket i covers [1.5^(i-1), 1.5^i)
    size_t i = 1 + static_cast<size_t>(std::log(micros) / std::log(1.5));
    return i < kNumBuckets ? i : kNumBuckets - 1;
  }

  static double BucketUpperMicros(size_t bucket) {
    if (bucket == 0) return 1.0;
    return std::pow(1.5, static_cast<double>(bucket));
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> counts_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
};

}  // namespace sofos

#endif  // SOFOS_COMMON_LATENCY_HISTOGRAM_H_
