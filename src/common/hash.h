#ifndef SOFOS_COMMON_HASH_H_
#define SOFOS_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sofos {

/// 64-bit FNV-1a over raw bytes. Deterministic across platforms; used for
/// dictionary hashing and the learned model's feature-hashing trick.
inline uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t Fnv1a64(std::string_view s, uint64_t seed = 0xcbf29ce484222325ULL) {
  return Fnv1a64(s.data(), s.size(), seed);
}

/// boost-style hash combiner with 64-bit mixing.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // Derived from the 64-bit splitmix finalizer.
  value ^= value >> 30;
  value *= 0xbf58476d1ce4e5b9ULL;
  value ^= value >> 27;
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace sofos

#endif  // SOFOS_COMMON_HASH_H_
