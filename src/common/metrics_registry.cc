#include "common/metrics_registry.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <set>

namespace sofos {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  // %.17g round-trips but is noisy; %.6g matches the precision the rest
  // of the JSON emitters in this repo use.
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// `name{label="x"}` -> `name`; used for # TYPE lines, which apply to the
// base metric family, not to each labeled series.
std::string BaseName(const std::string& name) {
  size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

// Splice extra labels (quantile="0.5") into a possibly-labeled name:
// h{view="a"} + quantile -> h{view="a",quantile="0.5"}.
std::string WithLabel(const std::string& name, const std::string& label) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) return name + "{" + label + "}";
  std::string out = name;
  out.insert(out.size() - 1, "," + label);
  return out;
}

// Suffix a histogram series name before its label block:
// h{view="a"} + _sum -> h_sum{view="a"}.
std::string WithSuffix(const std::string& name, const std::string& suffix) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) return name + suffix;
  return name.substr(0, brace) + suffix + name.substr(brace);
}

// Prometheus exposition escaping for one label *value*: backslash, double
// quote, and newline must be escaped (the exposition format's only three
// escapes inside quoted label values).
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

// True when name[pos...] starts a `key=` run (a Prometheus label key
// followed by '='): the lookahead that tells a value-terminating quote
// apart from a quote embedded in the value.
bool StartsLabelKey(const std::string& name, size_t pos) {
  size_t i = pos;
  if (i >= name.size()) return false;
  char c = name[i];
  if (!(std::isalpha(static_cast<unsigned char>(c)) || c == '_')) return false;
  for (++i; i < name.size(); ++i) {
    c = name[i];
    if (c == '=') return true;
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
  }
  return false;
}

// Re-renders a possibly-labeled instrument name with every label *value*
// escaped per the exposition format. Instrument identity bakes raw label
// values into the name string (docs/OBSERVABILITY.md), so a value
// containing '"' or '\' would otherwise render invalid exposition text.
// A value's closing quote is recognized by lookahead: a '"' followed by
// `,key=` or by the final `}` ends the value; any other '"' (or '\', or
// '\n') is part of the value and gets escaped.
std::string EscapePrometheusName(const std::string& name) {
  size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') return name;
  std::string out = name.substr(0, brace + 1);
  size_t i = brace + 1;
  const size_t end = name.size() - 1;  // index of the final '}'
  while (i < end) {
    // Copy `key="` verbatim.
    while (i < end && name[i] != '"') out.push_back(name[i++]);
    if (i >= end) break;
    out.push_back(name[i++]);  // the opening quote
    // The raw value runs to the terminating quote (see lookahead above).
    std::string raw;
    while (i < end) {
      if (name[i] == '"' &&
          (i + 1 == end ||
           (name[i + 1] == ',' && StartsLabelKey(name, i + 2)))) {
        break;
      }
      raw.push_back(name[i++]);
    }
    out += EscapeLabelValue(raw);
    if (i < end) out.push_back(name[i++]);  // the closing quote
  }
  out.push_back('}');
  return out;
}

void EscapeJson(const std::string& in, std::string* out) {
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

MetricCounter* MetricsRegistry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return it->second;
  counters_.emplace_back();
  counter_index_[name] = &counters_.back();
  return &counters_.back();
}

MetricGauge* MetricsRegistry::Gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return it->second;
  gauges_.emplace_back();
  gauge_index_[name] = &gauges_.back();
  return &gauges_.back();
}

LatencyHistogram* MetricsRegistry::Histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return it->second;
  histograms_.emplace_back();
  histogram_index_[name] = &histograms_.back();
  return &histograms_.back();
}

uint64_t MetricsRegistry::RegisterCollector(Collector fn) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(fn));
  return id;
}

void MetricsRegistry::UnregisterCollector(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(
      std::remove_if(collectors_.begin(), collectors_.end(),
                     [id](const auto& entry) { return entry.first == id; }),
      collectors_.end());
}

std::vector<MetricSample> MetricsRegistry::Collect() const {
  std::vector<MetricSample> samples;
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples.reserve(counter_index_.size() + gauge_index_.size() +
                    histogram_index_.size());
    for (const auto& [name, counter] : counter_index_) {
      MetricSample s;
      s.name = name;
      s.kind = MetricSample::Kind::kCounter;
      s.counter_value = counter->Value();
      samples.push_back(std::move(s));
    }
    for (const auto& [name, gauge] : gauge_index_) {
      MetricSample s;
      s.name = name;
      s.kind = MetricSample::Kind::kGauge;
      s.gauge_value = gauge->Value();
      samples.push_back(std::move(s));
    }
    for (const auto& [name, hist] : histogram_index_) {
      MetricSample s;
      s.name = name;
      s.kind = MetricSample::Kind::kHistogram;
      s.histogram = hist->TakeSnapshot();
      samples.push_back(std::move(s));
    }
    for (const auto& [id, fn] : collectors_) {
      (void)id;
      collectors.push_back(fn);
    }
  }
  // Collector callbacks run outside the registry lock so they may freely
  // take their own locks (cache shard mutexes etc.) without ordering
  // constraints against Counter()/Gauge() calls elsewhere.
  for (const auto& fn : collectors) fn(&samples);
  std::stable_sort(samples.begin(), samples.end(),
                   [](const MetricSample& a, const MetricSample& b) {
                     return a.name < b.name;
                   });
  return samples;
}

std::string MetricsRegistry::PrometheusText() const {
  std::vector<MetricSample> samples = Collect();
  std::string out;
  std::set<std::string> typed;  // base names already given a # TYPE line
  for (const MetricSample& s : samples) {
    // Escape label values once per sample; registry identity keeps them
    // raw, the exposition format needs \" and \\ inside quoted values.
    std::string name = EscapePrometheusName(s.name);
    std::string base = BaseName(name);
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        if (typed.insert(base).second)
          out += "# TYPE " + base + " counter\n";
        out += name + " " + std::to_string(s.counter_value) + "\n";
        break;
      case MetricSample::Kind::kGauge:
        if (typed.insert(base).second)
          out += "# TYPE " + base + " gauge\n";
        out += name + " " + FormatDouble(s.gauge_value) + "\n";
        break;
      case MetricSample::Kind::kHistogram: {
        if (typed.insert(base).second)
          out += "# TYPE " + base + " summary\n";
        const LatencyHistogram::Snapshot& h = s.histogram;
        out += WithLabel(name, "quantile=\"0.5\"") + " " +
               FormatDouble(h.Percentile(0.50)) + "\n";
        out += WithLabel(name, "quantile=\"0.95\"") + " " +
               FormatDouble(h.Percentile(0.95)) + "\n";
        out += WithLabel(name, "quantile=\"0.99\"") + " " +
               FormatDouble(h.Percentile(0.99)) + "\n";
        out += WithSuffix(name, "_sum") + " " +
               FormatDouble(h.sum_micros) + "\n";
        out += WithSuffix(name, "_count") + " " +
               std::to_string(h.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::vector<MetricSample> samples = Collect();
  std::string out = "{";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    EscapeJson(s.name, &out);
    out += "\":";
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out += std::to_string(s.counter_value);
        break;
      case MetricSample::Kind::kGauge:
        out += FormatDouble(s.gauge_value);
        break;
      case MetricSample::Kind::kHistogram: {
        const LatencyHistogram::Snapshot& h = s.histogram;
        out += "{\"count\":" + std::to_string(h.count) +
               ",\"p50\":" + FormatDouble(h.Percentile(0.50)) +
               ",\"p95\":" + FormatDouble(h.Percentile(0.95)) +
               ",\"p99\":" + FormatDouble(h.Percentile(0.99)) +
               ",\"mean\":" + FormatDouble(h.MeanMicros()) + "}";
        break;
      }
    }
  }
  out += "}";
  return out;
}

}  // namespace sofos
