// Lightweight tracing: RAII spans with parent/child links collected into
// a TraceContext, serializable as JSON for the server's TRACE verb.
//
// Cost model: tracing is opt-in per query. Every span site takes a
// `TraceContext*` that is nullptr in the common case; the guard then does
// nothing but a pointer test on construction and destruction, so leaving
// the instrumentation compiled into hot paths costs approximately one
// predictable branch (<2% on bench_exec, asserted by the bench baseline).
//
// Thread handoff: spans carry explicit ids, so a parent span's id can be
// captured by value into a worker closure and passed as `parent_id` when
// the worker opens its own span on another thread — the tree survives the
// thread boundary without thread-local state. Span collection is a single
// mutex-guarded vector; spans are appended on *close* (one lock per span,
// only when tracing is live).
#ifndef SOFOS_COMMON_TRACE_H_
#define SOFOS_COMMON_TRACE_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace sofos {

struct TraceSpan {
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root
  std::string name;
  double start_micros = 0.0;  // relative to the context's origin
  double end_micros = 0.0;
  uint64_t thread_hash = 0;  // hashed std::thread::id of the recording thread
};

class TraceContext {
 public:
  TraceContext()
      : origin_(std::chrono::steady_clock::now()) {}
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed) + 1; }

  double NowMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  void AddSpan(TraceSpan span) {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(std::move(span));
  }

  std::vector<TraceSpan> Spans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

  // [{"id":1,"parent":0,"name":"...","start_us":..,"end_us":..,
  //   "dur_us":..,"thread":..}, ...] sorted by start time.
  std::string ToJson() const {
    std::vector<TraceSpan> spans = Spans();
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceSpan& a, const TraceSpan& b) {
                       return a.start_micros < b.start_micros;
                     });
    std::ostringstream out;
    out << "[";
    for (size_t i = 0; i < spans.size(); ++i) {
      const TraceSpan& s = spans[i];
      if (i) out << ",";
      out << "{\"id\":" << s.id << ",\"parent\":" << s.parent_id
          << ",\"name\":\"";
      for (char c : s.name) {
        if (c == '"' || c == '\\') out << '\\';
        out << (static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
      }
      out << "\",\"start_us\":" << FormatMicrosJson(s.start_micros)
          << ",\"end_us\":" << FormatMicrosJson(s.end_micros)
          << ",\"dur_us\":" << FormatMicrosJson(s.end_micros - s.start_micros)
          << ",\"thread\":" << s.thread_hash << "}";
    }
    out << "]";
    return out.str();
  }

  static uint64_t CurrentThreadHash() {
    return std::hash<std::thread::id>{}(std::this_thread::get_id());
  }

 private:
  static std::string FormatMicrosJson(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
  }

  std::chrono::steady_clock::time_point origin_;
  std::atomic<uint64_t> next_id_{0};
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
};

// RAII span guard. With a null context every member is a no-op, so spans
// may be opened unconditionally in hot paths.
class ScopedSpan {
 public:
  ScopedSpan() = default;

  ScopedSpan(TraceContext* ctx, const char* name, uint64_t parent_id = 0)
      : ctx_(ctx) {
    if (!ctx_) return;
    span_.id = ctx_->NextId();
    span_.parent_id = parent_id;
    span_.name = name;
    span_.start_micros = ctx_->NowMicros();
    span_.thread_hash = TraceContext::CurrentThreadHash();
  }

  ScopedSpan(ScopedSpan&& other) noexcept
      : ctx_(other.ctx_), span_(std::move(other.span_)) {
    other.ctx_ = nullptr;
  }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      Close();
      ctx_ = other.ctx_;
      span_ = std::move(other.span_);
      other.ctx_ = nullptr;
    }
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { Close(); }

  // The span's id, for parenting child spans (possibly on other threads).
  // 0 when tracing is disabled — a valid "no parent" value downstream.
  uint64_t id() const { return ctx_ ? span_.id : 0; }
  bool enabled() const { return ctx_ != nullptr; }

  // Close early (before scope exit); idempotent.
  void Close() {
    if (!ctx_) return;
    span_.end_micros = ctx_->NowMicros();
    ctx_->AddSpan(std::move(span_));
    ctx_ = nullptr;
  }

 private:
  TraceContext* ctx_ = nullptr;
  TraceSpan span_;
};

}  // namespace sofos

#endif  // SOFOS_COMMON_TRACE_H_
