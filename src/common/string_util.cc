#include "common/string_util.h"

#include <cerrno>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace sofos {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

namespace {
bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view StrTrim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && IsAsciiSpace(s[begin])) ++begin;
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

bool StrStartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool StrEndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string StrToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

bool StrEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i];
    char cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

Result<int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty integer literal");
  int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  if (*begin == '+') ++begin;  // from_chars rejects leading '+'
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::ParseError("malformed integer literal: '" + std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty numeric literal");
  // std::from_chars for double is not available on all libstdc++ versions in
  // strict mode; strtod on a NUL-terminated copy is portable and exact enough.
  std::string buf(s);
  errno = 0;
  char* endptr = nullptr;
  double value = std::strtod(buf.c_str(), &endptr);
  if (errno == ERANGE) {
    return Status::OutOfRange("numeric literal out of range: '" + buf + "'");
  }
  if (endptr != buf.c_str() + buf.size() || buf.empty()) {
    return Status::ParseError("malformed numeric literal: '" + buf + "'");
  }
  return value;
}

std::string EscapeTurtleString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeTurtleString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (i + 1 >= s.size()) {
      return Status::ParseError("dangling backslash in string literal");
    }
    char e = s[++i];
    switch (e) {
      case '\\':
        out += '\\';
        break;
      case '"':
        out += '"';
        break;
      case '\'':
        out += '\'';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 'b':
        out += '\b';
        break;
      case 'f':
        out += '\f';
        break;
      default:
        return Status::ParseError(std::string("unsupported escape \\") + e);
    }
  }
  return out;
}

std::string NormalizeSparql(const std::string& sparql) {
  std::string out;
  out.reserve(sparql.size());
  bool pending_space = false;
  char quote = 0;     // the delimiter of the string literal being copied
  bool escaped = false;
  for (char c : sparql) {
    if (quote != 0) {
      // Inside a literal every byte is significant.
      out += c;
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == quote) {
        quote = 0;
      }
      continue;
    }
    if (IsAsciiSpace(c)) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    if (c == '"' || c == '\'') quote = c;
    out += c;
  }
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.2f %s", value, kUnits[unit]);
}

std::string FormatMicros(double micros) {
  if (micros < 1000.0) return StrFormat("%.1f us", micros);
  if (micros < 1e6) return StrFormat("%.2f ms", micros / 1000.0);
  return StrFormat("%.2f s", micros / 1e6);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace sofos
