#ifndef SOFOS_COMMON_STRING_UTIL_H_
#define SOFOS_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace sofos {

/// Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view input, char sep);

/// Joins `pieces` with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

bool StrStartsWith(std::string_view s, std::string_view prefix);
bool StrEndsWith(std::string_view s, std::string_view suffix);

/// ASCII lower-casing (sufficient for SPARQL keywords).
std::string StrToLower(std::string_view s);
std::string StrToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool StrEqualsIgnoreCase(std::string_view a, std::string_view b);

/// Strict integer parse of the full string (optional sign, decimal digits).
Result<int64_t> ParseInt64(std::string_view s);

/// Strict floating-point parse of the full string.
Result<double> ParseDouble(std::string_view s);

/// Escapes a string for embedding in a Turtle/N-Triples double-quoted
/// literal (backslash, quote, newline, tab, carriage return).
std::string EscapeTurtleString(std::string_view s);

/// Inverse of EscapeTurtleString; errors on malformed escapes.
Result<std::string> UnescapeTurtleString(std::string_view s);

/// Collapses runs of whitespace outside quoted string literals to one
/// space and trims the ends, preserving every byte inside literals (two
/// queries differing only in literal whitespace are different queries).
/// The canonical query text used for cache keys and workload recording.
std::string NormalizeSparql(const std::string& sparql);

/// Formats a byte count with binary units ("3.2 MiB").
std::string FormatBytes(uint64_t bytes);

/// Formats a duration in microseconds adaptively ("1.24 ms", "3.1 s").
std::string FormatMicros(double micros);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace sofos

#endif  // SOFOS_COMMON_STRING_UTIL_H_
