#include "datagen/registry.h"

#include "datagen/geo.h"
#include "datagen/lubm.h"
#include "datagen/swdf.h"

namespace sofos {
namespace datagen {

Result<Scale> ParseScale(const std::string& name) {
  if (name == "tiny") return Scale::kTiny;
  if (name == "demo") return Scale::kDemo;
  if (name == "full") return Scale::kFull;
  return Status::InvalidArgument("unknown scale '" + name +
                                 "' (expected tiny|demo|full)");
}

std::string ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      return "tiny";
    case Scale::kDemo:
      return "demo";
    case Scale::kFull:
      return "full";
  }
  return "?";
}

std::vector<std::string> DatasetNames() { return {"lubm", "geopop", "swdf"}; }

Result<DatasetSpec> GenerateByName(const std::string& name, Scale scale,
                                   uint64_t seed, TripleStore* store) {
  if (name == "geopop") {
    GeoPopConfig config;
    config.seed = seed;
    switch (scale) {
      case Scale::kTiny:
        config.num_countries = 12;
        config.num_languages = 8;
        config.year_min = 2016;
        config.year_max = 2019;
        break;
      case Scale::kDemo:
        break;  // defaults
      case Scale::kFull:
        config.num_countries = 180;
        config.num_languages = 60;
        config.year_min = 2000;
        config.year_max = 2019;
        break;
    }
    return GenerateGeoPop(config, store);
  }
  if (name == "lubm") {
    LubmConfig config;
    config.seed = seed;
    switch (scale) {
      case Scale::kTiny:
        config.num_universities = 1;
        config.min_departments = 3;
        config.max_departments = 5;
        config.min_students = 10;
        config.max_students = 25;
        break;
      case Scale::kDemo:
        break;
      case Scale::kFull:
        config.num_universities = 8;
        config.min_students = 60;
        config.max_students = 150;
        break;
    }
    return GenerateLubm(config, store);
  }
  if (name == "swdf") {
    SwdfConfig config;
    config.seed = seed;
    switch (scale) {
      case Scale::kTiny:
        config.num_conferences = 2;
        config.num_years = 3;
        config.num_authors = 80;
        config.num_countries = 8;
        config.max_papers_per_track = 10;
        break;
      case Scale::kDemo:
        break;
      case Scale::kFull:
        config.num_conferences = 12;
        config.num_years = 8;
        config.num_authors = 1500;
        config.num_countries = 40;
        break;
    }
    return GenerateSwdf(config, store);
  }
  return Status::NotFound("unknown dataset '" + name +
                          "' (expected lubm|geopop|swdf)");
}

}  // namespace datagen
}  // namespace sofos
