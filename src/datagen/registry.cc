#include "datagen/registry.h"

#include <algorithm>
#include <cmath>

#include "datagen/geo.h"
#include "datagen/lubm.h"
#include "datagen/swdf.h"

namespace sofos {
namespace datagen {

Result<Scale> ParseScale(const std::string& name) {
  if (name == "tiny") return Scale::kTiny;
  if (name == "demo") return Scale::kDemo;
  if (name == "full") return Scale::kFull;
  return Status::InvalidArgument("unknown scale '" + name +
                                 "' (expected tiny|demo|full)");
}

std::string ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      return "tiny";
    case Scale::kDemo:
      return "demo";
    case Scale::kFull:
      return "full";
  }
  return "?";
}

Result<ScaleSpec> ParseScaleSpec(const std::string& text) {
  ScaleSpec spec;
  auto tier = ParseScale(text);
  if (tier.ok()) {
    spec.tier = tier.value();
    return spec;
  }
  // "<digits>[k|m]": an explicit triple target.
  uint64_t value = 0;
  size_t i = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + static_cast<uint64_t>(text[i] - '0');
    if (value > 1000000000000ULL) break;  // overflow guard; bounds reject it
    ++i;
  }
  uint64_t multiplier = 1;
  if (i < text.size()) {
    const char suffix = text[i];
    if (suffix == 'k' || suffix == 'K') {
      multiplier = 1000;
    } else if (suffix == 'm' || suffix == 'M') {
      multiplier = 1000000;
    }
    if (multiplier == 1 || i + 1 != text.size()) i = 0;  // reject
  }
  if (i == 0 || value == 0) {
    return Status::InvalidArgument(
        "unknown scale '" + text +
        "' (expected tiny|demo|full or a triple target like 100k, 1m)");
  }
  spec.target_triples = value * multiplier;
  if (spec.target_triples < 1000 || spec.target_triples > 200000000ULL) {
    return Status::InvalidArgument("scale target '" + text +
                                   "' out of range [1k, 200m]");
  }
  return spec;
}

std::vector<std::string> DatasetNames() { return {"lubm", "geopop", "swdf"}; }

Result<DatasetSpec> GenerateByName(const std::string& name, Scale scale,
                                   uint64_t seed, TripleStore* store) {
  if (name == "geopop") {
    GeoPopConfig config;
    config.seed = seed;
    switch (scale) {
      case Scale::kTiny:
        config.num_countries = 12;
        config.num_languages = 8;
        config.year_min = 2016;
        config.year_max = 2019;
        break;
      case Scale::kDemo:
        break;  // defaults
      case Scale::kFull:
        config.num_countries = 180;
        config.num_languages = 60;
        config.year_min = 2000;
        config.year_max = 2019;
        break;
    }
    return GenerateGeoPop(config, store);
  }
  if (name == "lubm") {
    LubmConfig config;
    config.seed = seed;
    switch (scale) {
      case Scale::kTiny:
        config.num_universities = 1;
        config.min_departments = 3;
        config.max_departments = 5;
        config.min_students = 10;
        config.max_students = 25;
        break;
      case Scale::kDemo:
        break;
      case Scale::kFull:
        config.num_universities = 8;
        config.min_students = 60;
        config.max_students = 150;
        break;
    }
    return GenerateLubm(config, store);
  }
  if (name == "swdf") {
    SwdfConfig config;
    config.seed = seed;
    switch (scale) {
      case Scale::kTiny:
        config.num_conferences = 2;
        config.num_years = 3;
        config.num_authors = 80;
        config.num_countries = 8;
        config.max_papers_per_track = 10;
        break;
      case Scale::kDemo:
        break;
      case Scale::kFull:
        config.num_conferences = 12;
        config.num_years = 8;
        config.num_authors = 1500;
        config.num_countries = 40;
        break;
    }
    return GenerateSwdf(config, store);
  }
  return Status::NotFound("unknown dataset '" + name +
                          "' (expected lubm|geopop|swdf)");
}

Result<DatasetSpec> GenerateByName(const std::string& name,
                                   const ScaleSpec& scale, uint64_t seed,
                                   TripleStore* store) {
  if (scale.target_triples == 0) {
    return GenerateByName(name, scale.tier, seed, store);
  }
  if (name == "lubm") {
    return GenerateLubm(LubmConfigForTriples(scale.target_triples, seed),
                        store);
  }
  // geopop and swdf grow on several schema axes at once; the exponents
  // below split the linear scale factor f (relative to the ~measured demo
  // output) so that slow-saturating real-world axes (languages, years,
  // conference editions) grow sublinearly while the bulk axis (countries /
  // papers) absorbs the rest. Targets land within a few tens of percent —
  // callers needing exact counts use lubm.
  if (name == "geopop") {
    const double f = static_cast<double>(scale.target_triples) /
                     6200.0;  // calibrated: measured output per unit f
    GeoPopConfig config;
    config.seed = seed;
    const double year_growth = std::min(4.0, std::pow(f, 0.15));
    const int span = std::max(10, static_cast<int>(10.0 * year_growth + 0.5));
    config.year_max = 2019;
    config.year_min = 2019 - span + 1;
    config.num_languages = std::max(
        8, std::min(200, static_cast<int>(24.0 * std::pow(f, 0.25) + 0.5)));
    config.num_countries = std::max(
        4, static_cast<int>(60.0 * f / (static_cast<double>(span) / 10.0) +
                            0.5));
    return GenerateGeoPop(config, store);
  }
  if (name == "swdf") {
    const double f = static_cast<double>(scale.target_triples) /
                     15300.0;  // calibrated: measured output per unit f
    SwdfConfig config;
    config.seed = seed;
    const double conf_growth = std::max(1.0, std::pow(f, 0.3));
    const double year_growth = std::min(4.0, std::max(1.0, std::pow(f, 0.15)));
    config.num_conferences =
        std::max(2, static_cast<int>(6.0 * conf_growth + 0.5));
    config.num_years = std::max(1, static_cast<int>(5.0 * year_growth + 0.5));
    config.num_authors =
        std::max(80, static_cast<int>(400.0 * std::pow(f, 0.5) + 0.5));
    config.num_countries = std::max(
        8, std::min(120, static_cast<int>(20.0 * std::pow(f, 0.3) + 0.5)));
    // Papers per track absorb whatever the sublinear axes left over.
    const double residual =
        std::max(1.0, f / ((static_cast<double>(config.num_conferences) / 6.0) *
                           (static_cast<double>(config.num_years) / 5.0)));
    config.min_papers_per_track = std::max(
        5, std::min(4000, static_cast<int>(5.0 * residual + 0.5)));
    config.max_papers_per_track = std::max(
        config.min_papers_per_track + 1,
        std::min(8000, static_cast<int>(25.0 * residual + 0.5)));
    return GenerateSwdf(config, store);
  }
  return Status::NotFound("unknown dataset '" + name +
                          "' (expected lubm|geopop|swdf)");
}

}  // namespace datagen
}  // namespace sofos
