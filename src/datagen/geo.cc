#include "datagen/geo.h"

#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"

namespace sofos {
namespace datagen {

namespace {

Term Geo(const std::string& local) { return Term::Iri(std::string(kGeoNs) + local); }

const char* kContinents[] = {"Europe", "Asia", "Africa", "NorthAmerica",
                             "SouthAmerica", "Oceania"};

}  // namespace

DatasetSpec GenerateGeoPop(const GeoPopConfig& config, TripleStore* store) {
  Rng rng(config.seed);

  const Term p_part_of = Geo("partOf");
  const Term p_name = Geo("name");
  const Term p_country = Geo("country");
  const Term p_language = Geo("language");
  const Term p_year = Geo("year");
  const Term p_population = Geo("population");
  const Term p_spoken_in = Geo("spokenIn");
  const Term p_type = Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  const Term c_country = Geo("Country");
  const Term c_language_cls = Geo("Language");
  const Term c_observation = Geo("Observation");

  // Languages with Zipf-skewed popularity: low ranks are spoken in many
  // countries (like English/French in DBpedia), high ranks in few.
  std::vector<Term> languages;
  for (int l = 0; l < config.num_languages; ++l) {
    Term lang = Geo("lang/L" + std::to_string(l));
    languages.push_back(lang);
    store->Add(lang, p_type, c_language_cls);
    store->Add(lang, p_name, Term::String("Language-" + std::to_string(l)));
  }
  ZipfSampler lang_sampler(static_cast<uint64_t>(config.num_languages),
                           config.language_skew);

  int obs_id = 0;
  for (int c = 0; c < config.num_countries; ++c) {
    Term country = Geo("country/C" + std::to_string(c));
    const char* continent = kContinents[rng.Uniform(6)];
    store->Add(country, p_type, c_country);
    store->Add(country, p_name, Term::String("Country-" + std::to_string(c)));
    store->Add(country, p_part_of, Geo("continent/" + std::string(continent)));

    // 1-3 official languages per country, Zipf-sampled.
    int num_langs = 1 + static_cast<int>(rng.Uniform(3));
    std::vector<size_t> lang_ids;
    while (static_cast<int>(lang_ids.size()) < num_langs) {
      size_t pick = lang_sampler.Sample(&rng);
      bool dup = false;
      for (size_t seen : lang_ids) dup |= (seen == pick);
      if (!dup) lang_ids.push_back(pick);
    }

    // Base population per country: log-uniformly spread between ~100k and
    // ~100M so that aggregates have realistic skew.
    double base_pop = std::pow(10.0, rng.UniformDouble(5.0, 8.0));

    for (size_t lang_idx : lang_ids) {
      const Term& lang = languages[lang_idx];
      store->Add(lang, p_spoken_in, country);
      // Speaker share of this language within the country.
      double share = rng.UniformDouble(0.05, 1.0);
      for (int year = config.year_min; year <= config.year_max; ++year) {
        // ~1% yearly growth plus noise.
        double growth =
            std::pow(1.01, year - config.year_min) * rng.UniformDouble(0.97, 1.03);
        int64_t pop = static_cast<int64_t>(base_pop * share * growth);
        Term obs = Term::Blank("obs" + std::to_string(obs_id++));
        store->Add(obs, p_type, c_observation);
        store->Add(obs, p_country, country);
        store->Add(obs, p_language, lang);
        store->Add(obs, p_year, Term::Integer(year));
        store->Add(obs, p_population, Term::Integer(pop));
      }
    }
  }
  store->Finalize();

  DatasetSpec spec;
  spec.name = "geopop";
  spec.description =
      "DBpedia-style geography KG (paper Figure 1): population observations "
      "per country, language and year, with continent membership";
  spec.facet_sparql = StrFormat(
      "PREFIX geo: <%s>\n"
      "SELECT ?continent ?country ?language ?year (SUM(?pop) AS ?agg) WHERE {\n"
      "  ?obs geo:country ?country .\n"
      "  ?obs geo:language ?language .\n"
      "  ?obs geo:year ?year .\n"
      "  ?obs geo:population ?pop .\n"
      "  ?country geo:partOf ?continent .\n"
      "} GROUP BY ?continent ?country ?language ?year",
      kGeoNs);
  spec.dim_vars = {"continent", "country", "language", "year"};
  spec.dim_labels = {"Continent", "Country", "Language", "Year"};
  return spec;
}

}  // namespace datagen
}  // namespace sofos
