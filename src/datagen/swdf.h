#ifndef SOFOS_DATAGEN_SWDF_H_
#define SOFOS_DATAGEN_SWDF_H_

#include <cstdint>

#include "datagen/dataset.h"

namespace sofos {
namespace datagen {

/// Semantic Web Dogfood-style bibliographic generator — the third demo
/// dataset (paper §4): conference editions, tracks, papers, authors and
/// their countries.
struct SwdfConfig {
  int num_conferences = 6;
  int num_years = 5;           // editions per conference
  int first_year = 2015;
  int min_tracks = 3;
  int max_tracks = 6;
  int min_papers_per_track = 5;
  int max_papers_per_track = 25;
  int num_authors = 400;
  int num_countries = 20;
  /// Zipf exponent for author productivity.
  double author_skew = 1.0;
  uint64_t seed = 42;
};

inline constexpr const char* kSwdfNs = "http://sofos.example.org/swdf#";

/// Generates the bibliographic KG and returns the publication facet:
///
///   SELECT ?conference ?year ?track ?country (COUNT(?paper) AS ?agg)
///   WHERE { authorship pattern } GROUP BY ...
///
/// counting author-contributions per conference, year, track and author
/// country (a paper with k authors contributes k rows, as in real SWDF
/// affiliation analytics).
DatasetSpec GenerateSwdf(const SwdfConfig& config, TripleStore* store);

}  // namespace datagen
}  // namespace sofos

#endif  // SOFOS_DATAGEN_SWDF_H_
