#include "datagen/swdf.h"

#include "common/rng.h"
#include "common/string_util.h"

namespace sofos {
namespace datagen {

namespace {

Term S(const std::string& local) { return Term::Iri(std::string(kSwdfNs) + local); }

}  // namespace

DatasetSpec GenerateSwdf(const SwdfConfig& config, TripleStore* store) {
  Rng rng(config.seed);

  const Term p_type = Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  const Term p_of_conf = S("ofConference");
  const Term p_year = S("year");
  const Term p_at_edition = S("atEdition");
  const Term p_in_track = S("inTrack");
  const Term p_creator = S("creator");
  const Term p_based_near = S("basedNear");
  const Term p_name = S("name");
  const Term p_title = S("title");
  const Term p_pages = S("pages");

  const Term c_conference = S("Conference");
  const Term c_edition = S("Edition");
  const Term c_track = S("Track");
  const Term c_paper = S("Paper");
  const Term c_person = S("Person");

  // Authors with Zipf-skewed productivity, each based in one country.
  std::vector<Term> authors;
  for (int a = 0; a < config.num_authors; ++a) {
    Term author = S("person/A" + std::to_string(a));
    authors.push_back(author);
    store->Add(author, p_type, c_person);
    store->Add(author, p_name, Term::String("Author-" + std::to_string(a)));
    store->Add(author, p_based_near,
               S("country/K" + std::to_string(rng.Uniform(
                                   static_cast<uint64_t>(config.num_countries)))));
  }
  ZipfSampler author_sampler(static_cast<uint64_t>(config.num_authors),
                             config.author_skew);

  const char* kTrackNames[] = {"Research", "InUse", "Resources", "Demo",
                               "Industry", "Workshop"};
  int paper_id = 0;
  for (int c = 0; c < config.num_conferences; ++c) {
    Term conf = S("conf/C" + std::to_string(c));
    store->Add(conf, p_type, c_conference);
    store->Add(conf, p_name, Term::String("Conf-" + std::to_string(c)));

    for (int y = 0; y < config.num_years; ++y) {
      int year = config.first_year + y;
      Term edition = S("edition/C" + std::to_string(c) + "Y" + std::to_string(year));
      store->Add(edition, p_type, c_edition);
      store->Add(edition, p_of_conf, conf);
      store->Add(edition, p_year, Term::Integer(year));

      int tracks = static_cast<int>(
          rng.UniformInt(config.min_tracks, config.max_tracks));
      for (int t = 0; t < tracks; ++t) {
        Term track = S("track/" + std::string(kTrackNames[t % 6]));
        store->Add(track, p_type, c_track);

        int papers = static_cast<int>(rng.UniformInt(
            config.min_papers_per_track, config.max_papers_per_track));
        for (int p = 0; p < papers; ++p) {
          Term paper = S("paper/P" + std::to_string(paper_id));
          store->Add(paper, p_type, c_paper);
          store->Add(paper, p_at_edition, edition);
          store->Add(paper, p_in_track, track);
          store->Add(paper, p_title,
                     Term::String("Paper-" + std::to_string(paper_id)));
          store->Add(paper, p_pages, Term::Integer(rng.UniformInt(4, 16)));
          ++paper_id;

          // 1-4 authors, Zipf-sampled without replacement.
          int num_authors = 1 + static_cast<int>(rng.Uniform(4));
          std::vector<size_t> picked;
          int guard = 0;
          while (static_cast<int>(picked.size()) < num_authors && guard++ < 50) {
            size_t pick = author_sampler.Sample(&rng);
            bool dup = false;
            for (size_t seen : picked) dup |= (seen == pick);
            if (!dup) picked.push_back(pick);
          }
          for (size_t a : picked) store->Add(paper, p_creator, authors[a]);
        }
      }
    }
  }
  store->Finalize();

  DatasetSpec spec;
  spec.name = "swdf";
  spec.description =
      "Semantic Web Dogfood-style bibliographic KG: author contributions "
      "per conference, year, track and author country";
  spec.facet_sparql = StrFormat(
      "PREFIX swdf: <%s>\n"
      "SELECT ?conference ?year ?track ?country (COUNT(?paper) AS ?agg) WHERE {\n"
      "  ?paper swdf:atEdition ?edition .\n"
      "  ?edition swdf:ofConference ?conference .\n"
      "  ?edition swdf:year ?year .\n"
      "  ?paper swdf:inTrack ?track .\n"
      "  ?paper swdf:creator ?author .\n"
      "  ?author swdf:basedNear ?country .\n"
      "} GROUP BY ?conference ?year ?track ?country",
      kSwdfNs);
  spec.dim_vars = {"conference", "year", "track", "country"};
  spec.dim_labels = {"Conference", "Year", "Track", "AuthorCountry"};
  return spec;
}

}  // namespace datagen
}  // namespace sofos
