#include "datagen/lubm.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"

namespace sofos {
namespace datagen {

namespace {

/// Expected triples per university under the default per-department ranges
/// (measured over the seeded generator; the per-department randomness makes
/// individual universities vary, the mean is stable within a few percent).
constexpr double kTriplesPerUniversity = 4175.0;

}  // namespace

LubmConfig LubmConfigForTriples(uint64_t target_triples, uint64_t seed) {
  LubmConfig config;
  config.seed = seed;
  config.num_universities = std::max(
      1, static_cast<int>(static_cast<double>(target_triples) /
                              kTriplesPerUniversity +
                          0.5));
  return config;
}

DatasetSpec GenerateLubm(const LubmConfig& config, TripleStore* store) {
  Rng rng(config.seed);

  // The fixed vocabulary is interned once and triples are added by id:
  // per-triple cost is then an append plus at most one literal intern,
  // instead of three term constructions and three dictionary probes — the
  // difference between seconds and minutes at the million-university-triple
  // scales this generator now targets. The rng draw sequence is identical
  // to the term-based version, so a given (config, seed) produces the same
  // graph.
  auto iri = [store](std::string local) {
    return store->Intern(Term::Iri(std::string(kLubmNs) + std::move(local)));
  };
  auto str = [store](std::string value) {
    return store->Intern(Term::String(std::move(value)));
  };
  auto integer = [store](int64_t value) {
    return store->Intern(Term::Integer(value));
  };

  const TermId p_type = store->Intern(
      Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"));
  const TermId p_sub_org = iri("subOrganizationOf");
  const TermId p_works_for = iri("worksFor");
  const TermId p_member_of = iri("memberOf");
  const TermId p_takes = iri("takesCourse");
  const TermId p_teacher = iri("teacherOf");
  const TermId p_advisor = iri("advisor");
  const TermId p_offered_by = iri("offeredBy");
  const TermId p_course_level = iri("courseLevel");
  const TermId p_student_type = iri("studentType");
  const TermId p_name = iri("name");
  const TermId p_email = iri("emailAddress");
  const TermId p_age = iri("age");
  const TermId p_credits = iri("credits");
  const TermId p_author = iri("publicationAuthor");

  const TermId c_university = iri("University");
  const TermId c_department = iri("Department");
  const TermId c_professor = iri("Professor");
  const TermId c_student = iri("Student");
  const TermId c_course = iri("Course");
  const TermId c_publication = iri("Publication");

  const TermId lvl_under = str("undergraduate");
  const TermId lvl_grad = str("graduate");
  const TermId st_under = str("undergrad");
  const TermId st_grad = str("grad");

  int64_t pub_id = 0;
  for (int u = 0; u < config.num_universities; ++u) {
    std::string uname = "U" + std::to_string(u);
    TermId univ = iri("univ/" + uname);
    store->Add(univ, p_type, c_university);
    store->Add(univ, p_name, str("University-" + std::to_string(u)));

    int departments = static_cast<int>(
        rng.UniformInt(config.min_departments, config.max_departments));
    for (int d = 0; d < departments; ++d) {
      std::string dname = uname + "D" + std::to_string(d);
      TermId dept = iri("dept/" + dname);
      store->Add(dept, p_type, c_department);
      store->Add(dept, p_sub_org, univ);
      store->Add(dept, p_name, str("Department-" + dname));

      // Courses: ~70% undergraduate, 30% graduate (the UBA split).
      int courses = static_cast<int>(
          rng.UniformInt(config.min_courses, config.max_courses));
      std::vector<TermId> course_ids;
      for (int c = 0; c < courses; ++c) {
        TermId course = iri("course/" + dname + "C" + std::to_string(c));
        course_ids.push_back(course);
        store->Add(course, p_type, c_course);
        store->Add(course, p_offered_by, dept);
        store->Add(course, p_course_level, rng.Chance(0.7) ? lvl_under : lvl_grad);
        store->Add(course, p_credits, integer(rng.UniformInt(2, 6)));
      }

      // Faculty: one professor per ~3 courses; each teaches 1-3 courses and
      // writes publications.
      int professors = std::max(1, courses / 3);
      std::vector<TermId> prof_ids;
      for (int f = 0; f < professors; ++f) {
        TermId prof = iri("prof/" + dname + "P" + std::to_string(f));
        prof_ids.push_back(prof);
        store->Add(prof, p_type, c_professor);
        store->Add(prof, p_works_for, dept);
        store->Add(prof, p_name, str("Prof-" + dname + "-" + std::to_string(f)));
        store->Add(prof, p_email,
                   str("prof" + std::to_string(f) + "@" + dname + ".edu"));
        int teaches = 1 + static_cast<int>(rng.Uniform(3));
        for (int t = 0; t < teaches; ++t) {
          store->Add(prof, p_teacher, rng.Pick(course_ids));
        }
        int pubs = static_cast<int>(rng.Uniform(4));
        for (int p = 0; p < pubs; ++p) {
          TermId pub = iri("pub/P" + std::to_string(pub_id++));
          store->Add(pub, p_type, c_publication);
          store->Add(pub, p_author, prof);
        }
      }

      // Students: grad students take graduate + undergrad courses; each
      // student registers for 2-4 courses.
      int students = static_cast<int>(
          rng.UniformInt(config.min_students, config.max_students));
      for (int s = 0; s < students; ++s) {
        TermId student = iri("student/" + dname + "S" + std::to_string(s));
        bool grad = rng.Chance(0.25);
        store->Add(student, p_type, c_student);
        store->Add(student, p_member_of, dept);
        store->Add(student, p_student_type, grad ? st_grad : st_under);
        store->Add(student, p_age, integer(grad ? rng.UniformInt(22, 30)
                                                : rng.UniformInt(18, 23)));
        if (grad && !prof_ids.empty()) {
          store->Add(student, p_advisor, rng.Pick(prof_ids));
        }
        int registrations = 2 + static_cast<int>(rng.Uniform(3));
        for (int r = 0; r < registrations; ++r) {
          store->Add(student, p_takes, rng.Pick(course_ids));
        }
      }
    }
  }
  store->Finalize();

  DatasetSpec spec;
  spec.name = "lubm";
  spec.description =
      "LUBM-style university KG: course registrations by university, "
      "department, course level and student type";
  spec.facet_sparql = StrFormat(
      "PREFIX lubm: <%s>\n"
      "SELECT ?university ?department ?level ?stype (COUNT(?student) AS ?agg) "
      "WHERE {\n"
      "  ?student lubm:takesCourse ?course .\n"
      "  ?student lubm:studentType ?stype .\n"
      "  ?course lubm:courseLevel ?level .\n"
      "  ?course lubm:offeredBy ?department .\n"
      "  ?department lubm:subOrganizationOf ?university .\n"
      "} GROUP BY ?university ?department ?level ?stype",
      kLubmNs);
  spec.dim_vars = {"university", "department", "level", "stype"};
  spec.dim_labels = {"University", "Department", "CourseLevel", "StudentType"};
  return spec;
}

}  // namespace datagen
}  // namespace sofos
