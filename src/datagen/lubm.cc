#include "datagen/lubm.h"

#include "common/rng.h"
#include "common/string_util.h"

namespace sofos {
namespace datagen {

namespace {

Term L(const std::string& local) { return Term::Iri(std::string(kLubmNs) + local); }

}  // namespace

DatasetSpec GenerateLubm(const LubmConfig& config, TripleStore* store) {
  Rng rng(config.seed);

  const Term p_type = Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  const Term p_sub_org = L("subOrganizationOf");
  const Term p_works_for = L("worksFor");
  const Term p_member_of = L("memberOf");
  const Term p_takes = L("takesCourse");
  const Term p_teacher = L("teacherOf");
  const Term p_advisor = L("advisor");
  const Term p_offered_by = L("offeredBy");
  const Term p_course_level = L("courseLevel");
  const Term p_student_type = L("studentType");
  const Term p_name = L("name");
  const Term p_email = L("emailAddress");
  const Term p_age = L("age");
  const Term p_credits = L("credits");
  const Term p_author = L("publicationAuthor");

  const Term c_university = L("University");
  const Term c_department = L("Department");
  const Term c_professor = L("Professor");
  const Term c_student = L("Student");
  const Term c_course = L("Course");
  const Term c_publication = L("Publication");

  const Term lvl_under = Term::String("undergraduate");
  const Term lvl_grad = Term::String("graduate");
  const Term st_under = Term::String("undergrad");
  const Term st_grad = Term::String("grad");

  int pub_id = 0;
  for (int u = 0; u < config.num_universities; ++u) {
    std::string uname = "U" + std::to_string(u);
    Term univ = L("univ/" + uname);
    store->Add(univ, p_type, c_university);
    store->Add(univ, p_name, Term::String("University-" + std::to_string(u)));

    int departments = static_cast<int>(
        rng.UniformInt(config.min_departments, config.max_departments));
    for (int d = 0; d < departments; ++d) {
      std::string dname = uname + "D" + std::to_string(d);
      Term dept = L("dept/" + dname);
      store->Add(dept, p_type, c_department);
      store->Add(dept, p_sub_org, univ);
      store->Add(dept, p_name, Term::String("Department-" + dname));

      // Courses: ~70% undergraduate, 30% graduate (the UBA split).
      int courses = static_cast<int>(
          rng.UniformInt(config.min_courses, config.max_courses));
      std::vector<Term> course_terms;
      for (int c = 0; c < courses; ++c) {
        Term course = L("course/" + dname + "C" + std::to_string(c));
        course_terms.push_back(course);
        store->Add(course, p_type, c_course);
        store->Add(course, p_offered_by, dept);
        store->Add(course, p_course_level, rng.Chance(0.7) ? lvl_under : lvl_grad);
        store->Add(course, p_credits,
                   Term::Integer(rng.UniformInt(2, 6)));
      }

      // Faculty: one professor per ~3 courses; each teaches 1-3 courses and
      // writes publications.
      int professors = std::max(1, courses / 3);
      std::vector<Term> prof_terms;
      for (int f = 0; f < professors; ++f) {
        Term prof = L("prof/" + dname + "P" + std::to_string(f));
        prof_terms.push_back(prof);
        store->Add(prof, p_type, c_professor);
        store->Add(prof, p_works_for, dept);
        store->Add(prof, p_name, Term::String("Prof-" + dname + "-" + std::to_string(f)));
        store->Add(prof, p_email,
                   Term::String("prof" + std::to_string(f) + "@" + dname + ".edu"));
        int teaches = 1 + static_cast<int>(rng.Uniform(3));
        for (int t = 0; t < teaches; ++t) {
          store->Add(prof, p_teacher, rng.Pick(course_terms));
        }
        int pubs = static_cast<int>(rng.Uniform(4));
        for (int p = 0; p < pubs; ++p) {
          Term pub = L("pub/P" + std::to_string(pub_id++));
          store->Add(pub, p_type, c_publication);
          store->Add(pub, p_author, prof);
        }
      }

      // Students: grad students take graduate + undergrad courses; each
      // student registers for 2-4 courses.
      int students = static_cast<int>(
          rng.UniformInt(config.min_students, config.max_students));
      for (int s = 0; s < students; ++s) {
        Term student = L("student/" + dname + "S" + std::to_string(s));
        bool grad = rng.Chance(0.25);
        store->Add(student, p_type, c_student);
        store->Add(student, p_member_of, dept);
        store->Add(student, p_student_type, grad ? st_grad : st_under);
        store->Add(student, p_age,
                   Term::Integer(grad ? rng.UniformInt(22, 30)
                                      : rng.UniformInt(18, 23)));
        if (grad && !prof_terms.empty()) {
          store->Add(student, p_advisor, rng.Pick(prof_terms));
        }
        int registrations = 2 + static_cast<int>(rng.Uniform(3));
        for (int r = 0; r < registrations; ++r) {
          store->Add(student, p_takes, rng.Pick(course_terms));
        }
      }
    }
  }
  store->Finalize();

  DatasetSpec spec;
  spec.name = "lubm";
  spec.description =
      "LUBM-style university KG: course registrations by university, "
      "department, course level and student type";
  spec.facet_sparql = StrFormat(
      "PREFIX lubm: <%s>\n"
      "SELECT ?university ?department ?level ?stype (COUNT(?student) AS ?agg) "
      "WHERE {\n"
      "  ?student lubm:takesCourse ?course .\n"
      "  ?student lubm:studentType ?stype .\n"
      "  ?course lubm:courseLevel ?level .\n"
      "  ?course lubm:offeredBy ?department .\n"
      "  ?department lubm:subOrganizationOf ?university .\n"
      "} GROUP BY ?university ?department ?level ?stype",
      kLubmNs);
  spec.dim_vars = {"university", "department", "level", "stype"};
  spec.dim_labels = {"University", "Department", "CourseLevel", "StudentType"};
  return spec;
}

}  // namespace datagen
}  // namespace sofos
