#ifndef SOFOS_DATAGEN_REGISTRY_H_
#define SOFOS_DATAGEN_REGISTRY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "datagen/dataset.h"

namespace sofos {
namespace datagen {

/// Scale knob shared by benches and the CLI: "tiny" keeps every experiment
/// sub-second, "demo" approximates the live demonstration, "full" is for
/// longer benchmark runs.
enum class Scale { kTiny, kDemo, kFull };

Result<Scale> ParseScale(const std::string& name);
std::string ScaleName(Scale scale);

/// Parsed scale argument: one of the named tiers, or an explicit triple
/// target for million-scale runs.
struct ScaleSpec {
  Scale tier = Scale::kDemo;
  /// 0 = use the named tier; otherwise generate approximately this many
  /// triples. All three generators support targets; lubm tracks them the
  /// closest (it scales by whole universities at ~4.3k triples each),
  /// geopop and swdf grow several schema axes at once and land within a
  /// few tens of percent.
  uint64_t target_triples = 0;
};

/// Accepts the named tiers (tiny|demo|full) or a triple count with an
/// optional magnitude suffix: "100k", "1m", "250000". Targets are bounded
/// to [1k, 200m].
Result<ScaleSpec> ParseScaleSpec(const std::string& text);

/// Names of all registered datasets ("lubm", "geopop", "swdf").
std::vector<std::string> DatasetNames();

/// Generates dataset `name` at `scale` with `seed` into `store` (finalized).
Result<DatasetSpec> GenerateByName(const std::string& name, Scale scale,
                                   uint64_t seed, TripleStore* store);

/// As above, honoring an explicit triple target when the spec carries one.
Result<DatasetSpec> GenerateByName(const std::string& name,
                                   const ScaleSpec& scale, uint64_t seed,
                                   TripleStore* store);

}  // namespace datagen
}  // namespace sofos

#endif  // SOFOS_DATAGEN_REGISTRY_H_
