#ifndef SOFOS_DATAGEN_REGISTRY_H_
#define SOFOS_DATAGEN_REGISTRY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "datagen/dataset.h"

namespace sofos {
namespace datagen {

/// Scale knob shared by benches and the CLI: "tiny" keeps every experiment
/// sub-second, "demo" approximates the live demonstration, "full" is for
/// longer benchmark runs.
enum class Scale { kTiny, kDemo, kFull };

Result<Scale> ParseScale(const std::string& name);
std::string ScaleName(Scale scale);

/// Names of all registered datasets ("lubm", "geopop", "swdf").
std::vector<std::string> DatasetNames();

/// Generates dataset `name` at `scale` with `seed` into `store` (finalized).
Result<DatasetSpec> GenerateByName(const std::string& name, Scale scale,
                                   uint64_t seed, TripleStore* store);

}  // namespace datagen
}  // namespace sofos

#endif  // SOFOS_DATAGEN_REGISTRY_H_
