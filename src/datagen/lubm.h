#ifndef SOFOS_DATAGEN_LUBM_H_
#define SOFOS_DATAGEN_LUBM_H_

#include <cstdint>

#include "datagen/dataset.h"

namespace sofos {
namespace datagen {

/// Scaled-down deterministic reimplementation of the LUBM university
/// benchmark schema (Guo, Pan & Heflin, JWS 2005) — the first of the three
/// demo datasets (paper §4). The generator follows the original UBA tool's
/// entity ratios at laptop scale.
struct LubmConfig {
  int num_universities = 3;
  int min_departments = 5;
  int max_departments = 12;
  /// Students per department range (undergrad + grad).
  int min_students = 30;
  int max_students = 80;
  /// Courses per department range.
  int min_courses = 10;
  int max_courses = 20;
  uint64_t seed = 42;
};

inline constexpr const char* kLubmNs = "http://sofos.example.org/lubm#";

/// Config whose expected output size is approximately `target_triples`:
/// the per-department ranges keep their defaults (the schema's shape does
/// not change with scale, matching the original UBA tool) and only the
/// university count grows — ~4.3k triples per university, so 1M-100M
/// triple graphs are a few hundred to ~23k universities.
LubmConfig LubmConfigForTriples(uint64_t target_triples, uint64_t seed = 42);

/// Generates a university KG and returns its enrollment facet:
///
///   SELECT ?university ?department ?level ?stype (COUNT(?student) AS ?agg)
///   WHERE { registration pattern } GROUP BY ...
///
/// which counts course registrations by university, department, course
/// level (undergraduate/graduate course) and student type. The graph also
/// carries non-facet triples (names, emails, advisors, teachers,
/// publications) so that view materialization competes with realistic
/// background data.
DatasetSpec GenerateLubm(const LubmConfig& config, TripleStore* store);

}  // namespace datagen
}  // namespace sofos

#endif  // SOFOS_DATAGEN_LUBM_H_
