#ifndef SOFOS_DATAGEN_DATASET_H_
#define SOFOS_DATAGEN_DATASET_H_

#include <string>
#include <vector>

#include "rdf/triple_store.h"

namespace sofos {
namespace datagen {

/// A generated dataset plus the analytical facet the SOFOS demo attaches to
/// it (paper §4 "Configuration": each dataset comes with query facets, each
/// given as a SPARQL query template).
struct DatasetSpec {
  std::string name;
  std::string description;

  /// The facet as a SPARQL analytical query template
  /// SELECT dims... (agg(?u) AS ?agg) WHERE { P } GROUP BY dims...
  std::string facet_sparql;

  /// The facet's grouping dimensions, in lattice bit order.
  std::vector<std::string> dim_vars;

  /// Human-readable label per dimension, parallel to dim_vars.
  std::vector<std::string> dim_labels;
};

}  // namespace datagen
}  // namespace sofos

#endif  // SOFOS_DATAGEN_DATASET_H_
