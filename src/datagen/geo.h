#ifndef SOFOS_DATAGEN_GEO_H_
#define SOFOS_DATAGEN_GEO_H_

#include <cstdint>

#include "datagen/dataset.h"

namespace sofos {
namespace datagen {

/// Configuration for the GeoPop generator (the DBpedia-style substitute
/// reproducing the paper's running example, Figure 1: countries, continents,
/// languages, years, population observations).
struct GeoPopConfig {
  int num_countries = 60;
  int num_languages = 24;
  int year_min = 2010;
  int year_max = 2019;
  /// Zipf exponent for language popularity (0 = uniform).
  double language_skew = 1.1;
  uint64_t seed = 42;
};

/// Namespace used for all GeoPop IRIs.
inline constexpr const char* kGeoNs = "http://sofos.example.org/geo#";

/// Generates a synthetic geography knowledge graph into `store` (left
/// unfinalized is NOT the case: the store is finalized before returning)
/// and returns the dataset spec with the population facet:
///
///   SELECT ?continent ?country ?language ?year (SUM(?pop) AS ?agg)
///   WHERE { observation pattern } GROUP BY ?continent ?country ?language ?year
///
/// Every (country, language, year) combination yields one observation blank
/// node carrying the population count for that slice — the exact data-cube
/// shape the paper aggregates over ("the amount of population per country
/// speaking each language").
DatasetSpec GenerateGeoPop(const GeoPopConfig& config, TripleStore* store);

}  // namespace datagen
}  // namespace sofos

#endif  // SOFOS_DATAGEN_GEO_H_
