#ifndef SOFOS_SPARQL_VALUE_H_
#define SOFOS_SPARQL_VALUE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "rdf/term.h"

namespace sofos {
namespace sparql {

/// Runtime value produced by expression evaluation. Distinct from Term:
/// numerics are decoded, and an explicit unbound state exists.
class Value {
 public:
  enum class Type {
    kUnbound = 0,
    kBool,
    kInt,
    kDouble,
    kString,  // plain or language-tagged literal
    kIri,
    kBlank,
    kOpaque,  // literal with an unrecognized datatype
  };

  Value() : type_(Type::kUnbound) {}

  static Value Unbound() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t i);
  static Value MakeDouble(double d);
  static Value String(std::string s, std::string lang = "");
  static Value Iri(std::string iri);
  static Value Blank(std::string label);

  /// Decodes an RDF term into a runtime value. Malformed numeric lexical
  /// forms decay to kOpaque (they cannot occur for terms built through the
  /// Term factories, only for hostile input).
  static Value FromTerm(const Term& term);

  /// Encodes the value back into an RDF term; TypeError for kUnbound.
  Result<Term> ToTerm() const;

  Type type() const { return type_; }
  bool is_unbound() const { return type_ == Type::kUnbound; }
  bool is_numeric() const { return type_ == Type::kInt || type_ == Type::kDouble; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const { return type_ == Type::kInt ? static_cast<double>(int_) : double_; }
  const std::string& string_value() const { return str_; }
  const std::string& lang() const { return lang_; }

  /// SPARQL effective boolean value; TypeError for IRIs/blanks/unbound.
  Result<bool> EffectiveBool() const;

  /// SPARQL operator comparison (<, =, ...): -1/0/+1. TypeError when the
  /// operands are not comparable (e.g. number vs IRI with an ordering op).
  /// Equality between incomparable types is fine and returns "not equal"
  /// through the `equality_only` path.
  Result<int> Compare(const Value& other, bool equality_only) const;

  /// Total deterministic order across all types (unbound < blank < iri <
  /// bool < numeric < string < opaque); never errors. Used by ORDER BY,
  /// MIN/MAX, and canonical result sorting.
  int TotalCompare(const Value& other) const;

  /// Human-readable form for diagnostics.
  std::string ToString() const;

 private:
  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;   // string/iri/blank lexical, opaque lexical
  std::string lang_;  // language tag or opaque datatype IRI
};

}  // namespace sparql
}  // namespace sofos

#endif  // SOFOS_SPARQL_VALUE_H_
