#include "sparql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace sofos {
namespace sparql {

std::string_view TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kEof:
      return "end of input";
    case TokenType::kIdent:
      return "identifier";
    case TokenType::kVar:
      return "variable";
    case TokenType::kIriRef:
      return "IRI";
    case TokenType::kPname:
      return "prefixed name";
    case TokenType::kString:
      return "string";
    case TokenType::kInteger:
      return "integer";
    case TokenType::kDouble:
      return "double";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kLBrace:
      return "'{'";
    case TokenType::kRBrace:
      return "'}'";
    case TokenType::kDot:
      return "'.'";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kComma:
      return "','";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNe:
      return "'!='";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kGe:
      return "'>='";
    case TokenType::kAndAnd:
      return "'&&'";
    case TokenType::kOrOr:
      return "'||'";
    case TokenType::kBang:
      return "'!'";
    case TokenType::kPlus:
      return "'+'";
    case TokenType::kMinus:
      return "'-'";
    case TokenType::kSlash:
      return "'/'";
    case TokenType::kLangTag:
      return "language tag";
    case TokenType::kDtypeSep:
      return "'^^'";
    case TokenType::kA:
      return "'a'";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsPnameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

Lexer::Lexer(std::string_view input) : input_(input) {}

char Lexer::Peek(size_t ahead) const {
  if (pos_ + ahead >= input_.size()) return '\0';
  return input_[pos_ + ahead];
}

char Lexer::Get() {
  char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

Status Lexer::MakeError(const std::string& message) const {
  return Status::ParseError(
      StrFormat("sparql:%d:%d: %s", line_, column_, message.c_str()));
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (c == '#') {
      while (!AtEnd() && Peek() != '\n') Get();
    } else if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      Get();
    } else {
      break;
    }
  }
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    SOFOS_ASSIGN_OR_RETURN(Token token, NextToken());
    bool done = token.type == TokenType::kEof;
    tokens.push_back(std::move(token));
    if (done) return tokens;
  }
}

Result<Token> Lexer::NextToken() {
  SkipWhitespaceAndComments();
  Token token;
  token.line = line_;
  token.column = column_;
  if (AtEnd()) {
    token.type = TokenType::kEof;
    return token;
  }

  char c = Peek();

  // Variables.
  if (c == '?' || c == '$') {
    Get();
    std::string name;
    while (!AtEnd() && IsIdentChar(Peek())) name += Get();
    if (name.empty()) return MakeError("empty variable name");
    token.type = TokenType::kVar;
    token.text = std::move(name);
    return token;
  }

  // IRI reference vs less-than: scan ahead for a '>' with no whitespace.
  if (c == '<') {
    size_t scan = pos_ + 1;
    bool is_iri = false;
    while (scan < input_.size()) {
      char d = input_[scan];
      if (d == '>') {
        is_iri = true;
        break;
      }
      if (d == ' ' || d == '\t' || d == '\n' || d == '\r' || d == '<') break;
      ++scan;
    }
    if (is_iri) {
      Get();  // '<'
      std::string iri;
      while (Peek() != '>') iri += Get();
      Get();  // '>'
      token.type = TokenType::kIriRef;
      token.text = std::move(iri);
      return token;
    }
    Get();
    if (Peek() == '=') {
      Get();
      token.type = TokenType::kLe;
    } else {
      token.type = TokenType::kLt;
    }
    return token;
  }

  // Strings.
  if (c == '"') {
    Get();
    std::string raw;
    while (true) {
      if (AtEnd()) return MakeError("unterminated string literal");
      char d = Get();
      if (d == '"') break;
      if (d == '\\') {
        if (AtEnd()) return MakeError("dangling escape in string literal");
        raw += d;
        raw += Get();
        continue;
      }
      raw += d;
    }
    auto unescaped = UnescapeTurtleString(raw);
    if (!unescaped.ok()) return MakeError(unescaped.status().message());
    token.type = TokenType::kString;
    token.text = std::move(unescaped).value();
    return token;
  }

  // Numbers.
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
    std::string num;
    bool has_dot = false, has_exp = false;
    while (!AtEnd()) {
      char d = Peek();
      if (std::isdigit(static_cast<unsigned char>(d))) {
        num += Get();
      } else if (d == '.' && !has_dot && !has_exp &&
                 std::isdigit(static_cast<unsigned char>(Peek(1)))) {
        has_dot = true;
        num += Get();
      } else if ((d == 'e' || d == 'E') && !has_exp &&
                 (std::isdigit(static_cast<unsigned char>(Peek(1))) ||
                  ((Peek(1) == '+' || Peek(1) == '-') &&
                   std::isdigit(static_cast<unsigned char>(Peek(2)))))) {
        has_exp = true;
        num += Get();
        if (Peek() == '+' || Peek() == '-') num += Get();
      } else {
        break;
      }
    }
    token.type = (has_dot || has_exp) ? TokenType::kDouble : TokenType::kInteger;
    token.text = std::move(num);
    return token;
  }

  // Language tags (only valid right after a string; parser enforces that).
  if (c == '@') {
    Get();
    std::string tag;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '-')) {
      tag += Get();
    }
    if (tag.empty()) return MakeError("empty language tag");
    token.type = TokenType::kLangTag;
    token.text = std::move(tag);
    return token;
  }

  // Identifiers, keywords, prefixed names, and the `a` keyword.
  if (IsIdentStart(c)) {
    std::string word;
    while (!AtEnd() && IsPnameChar(Peek())) word += Get();
    if (!AtEnd() && Peek() == ':') {
      Get();
      std::string local;
      while (!AtEnd() && IsPnameChar(Peek())) local += Get();
      token.type = TokenType::kPname;
      token.text = word + ":" + local;
      return token;
    }
    if (word == "a") {
      token.type = TokenType::kA;
      return token;
    }
    token.type = TokenType::kIdent;
    token.text = std::move(word);
    return token;
  }

  // Prefixed name with empty prefix (":local").
  if (c == ':') {
    Get();
    std::string local;
    while (!AtEnd() && IsPnameChar(Peek())) local += Get();
    token.type = TokenType::kPname;
    token.text = ":" + local;
    return token;
  }

  Get();
  switch (c) {
    case '(':
      token.type = TokenType::kLParen;
      return token;
    case ')':
      token.type = TokenType::kRParen;
      return token;
    case '{':
      token.type = TokenType::kLBrace;
      return token;
    case '}':
      token.type = TokenType::kRBrace;
      return token;
    case '.':
      token.type = TokenType::kDot;
      return token;
    case ';':
      token.type = TokenType::kSemicolon;
      return token;
    case ',':
      token.type = TokenType::kComma;
      return token;
    case '*':
      token.type = TokenType::kStar;
      return token;
    case '+':
      token.type = TokenType::kPlus;
      return token;
    case '-':
      token.type = TokenType::kMinus;
      return token;
    case '/':
      token.type = TokenType::kSlash;
      return token;
    case '=':
      token.type = TokenType::kEq;
      return token;
    case '!':
      if (Peek() == '=') {
        Get();
        token.type = TokenType::kNe;
      } else {
        token.type = TokenType::kBang;
      }
      return token;
    case '>':
      if (Peek() == '=') {
        Get();
        token.type = TokenType::kGe;
      } else {
        token.type = TokenType::kGt;
      }
      return token;
    case '&':
      if (Peek() == '&') {
        Get();
        token.type = TokenType::kAndAnd;
        return token;
      }
      return MakeError("unexpected '&' (did you mean '&&'?)");
    case '|':
      if (Peek() == '|') {
        Get();
        token.type = TokenType::kOrOr;
        return token;
      }
      return MakeError("unexpected '|' (did you mean '||'?)");
    case '^':
      if (Peek() == '^') {
        Get();
        token.type = TokenType::kDtypeSep;
        return token;
      }
      return MakeError("unexpected '^' (did you mean '^^'?)");
    default:
      return MakeError(StrFormat("unexpected character '%c'", c));
  }
}

}  // namespace sparql
}  // namespace sofos
