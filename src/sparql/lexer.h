#ifndef SOFOS_SPARQL_LEXER_H_
#define SOFOS_SPARQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace sofos {
namespace sparql {

enum class TokenType {
  kEof,
  kIdent,     // SELECT, WHERE, SUM, ... (keywords resolved by the parser)
  kVar,       // ?name or $name (text = name without the sigil)
  kIriRef,    // <...> (text = iri)
  kPname,     // prefixed name (text = "ns:local", expanded by the parser)
  kString,    // "..." (text = unescaped contents)
  kInteger,   // 42
  kDouble,    // 4.2, 1e3
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kDot,
  kSemicolon,
  kComma,
  kStar,
  kEq,        // =
  kNe,        // !=
  kLt,        // <
  kLe,        // <=
  kGt,        // >
  kGe,        // >=
  kAndAnd,    // &&
  kOrOr,      // ||
  kBang,      // !
  kPlus,
  kMinus,
  kSlash,
  kLangTag,   // @en (text = tag)
  kDtypeSep,  // ^^
  kA,         // the bare keyword `a` (rdf:type)
};

std::string_view TokenTypeName(TokenType type);

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;
  int line = 0;
  int column = 0;
};

/// Tokenizes a SPARQL query string. `<` is tokenized as kIriRef when it
/// starts a well-formed IRI reference (no whitespace before the closing
/// `>`), and as the less-than operator otherwise — this resolves the classic
/// SPARQL lexing ambiguity without parser feedback.
class Lexer {
 public:
  explicit Lexer(std::string_view input);

  /// Tokenizes the whole input. The final token is always kEof.
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> NextToken();
  void SkipWhitespaceAndComments();
  Status MakeError(const std::string& message) const;

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;

  char Peek(size_t ahead = 0) const;
  char Get();
  bool AtEnd() const { return pos_ >= input_.size(); }
};

}  // namespace sparql
}  // namespace sofos

#endif  // SOFOS_SPARQL_LEXER_H_
