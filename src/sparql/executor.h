#ifndef SOFOS_SPARQL_EXECUTOR_H_
#define SOFOS_SPARQL_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/triple_store.h"
#include "sparql/binding.h"
#include "sparql/planner.h"

namespace sofos {

class ThreadPool;
class TraceContext;

namespace sparql {

/// Per-operator actuals, collected only when ExecOptions::analyze is set
/// (EXPLAIN ANALYZE). One entry per physical operator in pipeline order:
/// per plan step a scan/join slot plus an optional FILTER slot, then the
/// serial tail (AGGREGATE / HAVING / PROJECT / DISTINCT / ORDER BY /
/// SLICE) as applicable. The slot layout is derived from the Plan alone,
/// so it is identical across ExecMode, dop, and shard count; `rows_out`
/// is additive over morsels and therefore also schedule-invariant for
/// fully drained queries, while `batches`, `micros` and `morsels`
/// describe the schedule actually used. Under an exchange, fragment-slot
/// `micros` is the summed busy time across morsel workers (a CPU-like
/// figure); at dop 1 it is plain inclusive wall time, and self time
/// (inclusive minus child inclusive) sums to ~exec_micros.
struct OperatorStats {
  std::string label;            // "SCAN <pattern>", "FILTER <expr>", ...
  uint64_t est_rows = 0;        // planner estimate (pattern steps only)
  uint64_t rows_out = 0;        // live rows emitted by this operator
  uint64_t batches = 0;         // successful Next() calls
  double micros = 0.0;          // inclusive time spent in Next()
  uint64_t hash_build_rows = 0; // HJOIN: build-side triples
  double build_micros = 0.0;    // HJOIN: build time (caller thread)
  uint64_t morsels = 0;         // fragment slots: morsels merged in
  uint64_t bloom_skips = 0;     // scans proven empty by a shard bloom
};

/// Execution counters. The paper's online module reports per-query work;
/// these counters feed its statistics (Sofos GUI panel ④) and the learned
/// cost model's training features.
///
/// Timing mirrors WorkloadReport's wall/CPU split: `exec_micros` is the
/// elapsed wall-clock time of Run(); `cpu_micros` is the aggregate busy
/// time across every thread that worked on the query (morsel workers plus
/// the caller's non-blocked time). A serial run has cpu ≈ exec; a parallel
/// run has cpu > exec, and exec shows the latency win directly. Keeping
/// them separate stops parallel work from being double-counted as latency
/// in cost-model training features.
///
/// Row counters are additive over morsels with a fixed plan, so for fully
/// drained queries they are independent of the thread count and of
/// batch/morsel boundaries. Queries that stop pulling early (LIMIT with no
/// pipeline breaker above the scan) count only the work actually consumed,
/// which does vary with the schedule — the serial path stops mid-scan,
/// the exchange merges whole consumed morsels. `morsels` and `dop`
/// describe the schedule actually used and, like the timing fields, may
/// differ across thread counts.
struct ExecStats {
  uint64_t rows_scanned = 0;       // triples touched by scans and joins
  uint64_t intermediate_rows = 0;  // rows flowing between pattern steps
  uint64_t filtered_rows = 0;      // rows dropped by FILTER/HAVING
  uint64_t output_rows = 0;
  double plan_micros = 0.0;
  double exec_micros = 0.0;  // wall clock of Run()
  double cpu_micros = 0.0;   // aggregated per-worker busy time
  uint64_t morsels = 0;      // leaf partitions executed (0 = no exchange)
  uint32_t dop = 1;          // intra-query parallelism actually used
  /// Per-operator actuals; empty unless ExecOptions::analyze was set.
  std::vector<OperatorStats> operators;
};

/// Which engine executes the plan. kBatch is the default vectorized engine
/// (operators exchange columnar RowBatches, leaf scans are morsel-driven
/// when a pool is supplied); kVolcano is the legacy row-at-a-time pull
/// pipeline, kept as the reference semantics the batch engine is tested
/// against and as the bench baseline.
enum class ExecMode { kBatch, kVolcano };

/// Per-query execution knobs. Defaults give the serial batch engine, whose
/// results (rows, order, interned literals) are byte-identical to kVolcano.
struct ExecOptions {
  ExecMode mode = ExecMode::kBatch;
  /// Pool serving morsel workers; nullptr = run everything on the caller.
  ThreadPool* pool = nullptr;
  /// Intra-query parallelism degree: number of morsel workers the exchange
  /// operator spawns (clamped to the morsel count). <= 1 disables the
  /// exchange; results are identical at every dop by construction (morsel
  /// outputs are reduced in deterministic partition order).
  unsigned dop = 1;
  /// Rows per RowBatch between operators.
  size_t batch_size = 1024;
  /// Target leaf-scan triples per morsel for large scans. Small leading
  /// scans are split finer (~8 morsels per worker) because the planner
  /// starts from the smallest pattern, whose rows fan out through the
  /// joins; see Executor::RunBatch. Partitioning never affects results,
  /// and row counters are additive over morsels.
  size_t morsel_rows = 16 * 1024;
  /// Collect per-operator actuals into ExecStats::operators (EXPLAIN
  /// ANALYZE). Off by default: the instrumented wrappers time every
  /// Next() call, which is not free on the hot path.
  bool analyze = false;
  /// When non-null, the executor records spans (hash builds, morsel
  /// fragments) into this context; null costs one branch per span site.
  TraceContext* trace = nullptr;
  /// Span id the executor's root span is parented under (0 = root) —
  /// lets engine-level phase spans own the executor subtree.
  uint64_t trace_parent = 0;
};

/// A fixed-capacity columnar batch of solution rows: one uint32 TermId
/// vector per variable slot plus an optional selection vector. Operators
/// fill batches bottom-up; FILTER/DISTINCT/slice drop rows by shrinking
/// `sel` instead of moving data. Row order (physical index order, filtered
/// through `sel` in ascending order) is the row-at-a-time stream order —
/// batch boundaries never affect results.
class RowBatch {
 public:
  RowBatch() = default;

  /// (Re)shapes the batch to `width` columns of `capacity` rows, clears all
  /// cells to kNullTermId and drops the selection vector.
  void Reset(size_t width, size_t capacity);

  /// Like Reset but leaves cell contents undefined — for operators that
  /// overwrite every column of every row they emit (joins copy the full
  /// probe row; aggregate/sort outputs write all cells).
  void ResetShape(size_t width, size_t capacity);

  size_t width() const { return width_; }
  size_t capacity() const { return capacity_; }
  size_t rows() const { return rows_; }
  void set_rows(size_t rows) { rows_ = rows; }

  TermId* Col(size_t c) { return data_.data() + c * capacity_; }
  const TermId* Col(size_t c) const { return data_.data() + c * capacity_; }
  TermId At(size_t c, size_t r) const { return Col(c)[r]; }

  /// Number of live rows (selection applied).
  size_t ActiveCount() const { return has_sel_ ? sel_.size() : rows_; }
  /// Physical index of the i-th live row; ascending in i.
  uint32_t ActiveIndex(size_t i) const {
    return has_sel_ ? sel_[i] : static_cast<uint32_t>(i);
  }
  bool has_sel() const { return has_sel_; }
  const std::vector<uint32_t>& sel() const { return sel_; }
  /// Installs a selection vector (indices must be ascending physical rows).
  void SetSel(std::vector<uint32_t> sel) {
    sel_ = std::move(sel);
    has_sel_ = true;
  }

  /// Copies physical row `r` into `out` (resized to width).
  void GatherRow(uint32_t r, Row* out) const;

 private:
  size_t width_ = 0;
  size_t capacity_ = 0;
  size_t rows_ = 0;
  std::vector<TermId> data_;  // column-major: data_[c * capacity_ + r]
  std::vector<uint32_t> sel_;
  bool has_sel_ = false;
};

/// Pull-based (Volcano) operator interface. Next() produces rows until it
/// returns false. Errors abort the query. Legacy engine (ExecMode::kVolcano).
class Operator {
 public:
  virtual ~Operator() = default;
  virtual Result<bool> Next(Row* row) = 0;
};

/// Vectorized operator interface: Next() fills `out` with the next batch
/// (possibly with a selection vector) and returns false at end of stream.
class BatchOperator {
 public:
  virtual ~BatchOperator() = default;
  virtual Result<bool> Next(RowBatch* out) = 0;
};

/// Builds the operator tree for `plan` and runs it to completion.
///
/// The dictionary is mutable because aggregation and expression projection
/// intern freshly computed literals (sums, averages); interning never
/// invalidates the store's indexes.
///
/// Determinism contract: for a fixed plan, the output row stream — and the
/// order in which fresh literals are interned — is identical across
/// ExecMode and across every dop/pool/batch_size/morsel_rows setting. The
/// exchange operator guarantees this by reducing morsel outputs in
/// partition order, and the hash join by emitting per-probe matches in the
/// index order the nested-loop join would use (PatternStep::match_order).
///
/// Thread safety: one Executor serves one query, but any number of
/// Executors may Run() concurrently over the same finalized store — they
/// perform const index scans only, and Dictionary::Intern is internally
/// synchronized (see rdf/dictionary.h). Morsel workers submitted to
/// options.pool only scan the store and write fragment-local state; all
/// interning operators (aggregate, project) run on the caller thread. An
/// Executor whose exchange fans out may itself be running inside a task of
/// the same pool: while waiting, it helps drain the queue
/// (ThreadPool::TryRunOneTask), so nested fan-outs cannot deadlock.
class Executor {
 public:
  Executor(const Plan* plan, const TripleStore* store, Dictionary* dict,
           ExecOptions options = {});

  /// Runs the full pipeline and appends output rows (in output_vars layout).
  Status Run(std::vector<Row>* out, ExecStats* stats);

  /// One-line rendering of the physical schedule the batch engine would use
  /// for `plan` under `options` (dop, morsel count/size, batch size) — the
  /// EXPLAIN companion to Plan::ToString().
  static std::string DescribePhysical(const Plan& plan, const TripleStore& store,
                                      const ExecOptions& options);

  /// EXPLAIN ANALYZE rendering: the plan tree with per-operator actuals
  /// (rows/batches/self-micros next to the planner's estimates) plus a
  /// totals line. `stats` must come from a Run() with options.analyze set;
  /// with no collected operators, renders the plan with a note instead.
  static std::string RenderAnalyze(const Plan& plan, const ExecStats& stats);

 private:
  std::unique_ptr<Operator> BuildVolcanoPipeline(ExecStats* stats);
  Status RunVolcano(std::vector<Row>* out, ExecStats* stats);
  Status RunBatch(std::vector<Row>* out, ExecStats* stats);

  const Plan* plan_;
  const TripleStore* store_;
  Dictionary* dict_;
  ExecOptions options_;
};

}  // namespace sparql
}  // namespace sofos

#endif  // SOFOS_SPARQL_EXECUTOR_H_
