#ifndef SOFOS_SPARQL_EXECUTOR_H_
#define SOFOS_SPARQL_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/triple_store.h"
#include "sparql/binding.h"
#include "sparql/planner.h"

namespace sofos {
namespace sparql {

/// Execution counters. The paper's online module reports per-query work;
/// these counters feed its statistics (Sofos GUI panel ④) and the learned
/// cost model's training features.
struct ExecStats {
  uint64_t rows_scanned = 0;       // triples touched by scans and joins
  uint64_t intermediate_rows = 0;  // rows flowing between pattern steps
  uint64_t filtered_rows = 0;      // rows dropped by FILTER/HAVING
  uint64_t output_rows = 0;
  double plan_micros = 0.0;
  double exec_micros = 0.0;
};

/// Pull-based (Volcano) operator interface. Next() produces rows until it
/// returns false. Errors abort the query.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual Result<bool> Next(Row* row) = 0;
};

/// Builds the operator tree for `plan` and runs it to completion.
///
/// The dictionary is mutable because aggregation and expression projection
/// intern freshly computed literals (sums, averages); interning never
/// invalidates the store's indexes.
///
/// Thread safety: one Executor serves one query, but any number of
/// Executors may Run() concurrently over the same finalized store — they
/// perform const index scans only, and Dictionary::Intern is internally
/// synchronized (see rdf/dictionary.h). This is what the engine's batched
/// workload runner and the parallel lattice profiler do.
class Executor {
 public:
  Executor(const Plan* plan, const TripleStore* store, Dictionary* dict);

  /// Runs the full pipeline and appends output rows (in output_vars layout).
  Status Run(std::vector<Row>* out, ExecStats* stats);

 private:
  std::unique_ptr<Operator> BuildPipeline(ExecStats* stats);

  const Plan* plan_;
  const TripleStore* store_;
  Dictionary* dict_;
};

}  // namespace sparql
}  // namespace sofos

#endif  // SOFOS_SPARQL_EXECUTOR_H_
