#include "sparql/expression.h"

#include <cmath>
#include <regex>

#include "common/string_util.h"

namespace sofos {
namespace sparql {

Value ExprEvaluator::Decode(TermId id) const {
  if (id == kNullTermId) return Value::Unbound();
  return Value::FromTerm(dict_->term(id));
}

Result<Value> ExprEvaluator::Eval(const Expr& expr, const Row& row) const {
  switch (expr.kind) {
    case Expr::Kind::kVar: {
      auto slot = vars_->Get(expr.var);
      if (!slot.has_value()) return Value::Unbound();
      if (static_cast<size_t>(*slot) >= row.size()) return Value::Unbound();
      return Decode(row[*slot]);
    }
    case Expr::Kind::kLiteral:
      return Value::FromTerm(expr.literal);
    case Expr::Kind::kBinary:
      return EvalBinary(expr, row);
    case Expr::Kind::kUnary: {
      SOFOS_ASSIGN_OR_RETURN(Value v, Eval(*expr.operand, row));
      if (expr.uop == UnaryOp::kNot) {
        SOFOS_ASSIGN_OR_RETURN(bool b, v.EffectiveBool());
        return Value::Bool(!b);
      }
      if (v.type() == Value::Type::kInt) return Value::Int(-v.int_value());
      if (v.type() == Value::Type::kDouble) return Value::MakeDouble(-v.double_value());
      return Status::TypeError("unary '-' on non-numeric value " + v.ToString());
    }
    case Expr::Kind::kAggregate: {
      if (expr.agg_slot < 0 || agg_base_ < 0) {
        return Status::Internal(
            "aggregate expression evaluated outside an aggregation context");
      }
      size_t slot = static_cast<size_t>(agg_base_ + expr.agg_slot);
      if (slot >= row.size()) return Status::Internal("aggregate slot out of range");
      return Decode(row[slot]);
    }
    case Expr::Kind::kFunction:
      return EvalFunction(expr, row);
  }
  return Status::Internal("corrupt expression node");
}

Result<bool> ExprEvaluator::EvalBool(const Expr& expr, const Row& row) const {
  SOFOS_ASSIGN_OR_RETURN(Value v, Eval(expr, row));
  return v.EffectiveBool();
}

Result<Value> ExprEvaluator::EvalBinary(const Expr& expr, const Row& row) const {
  // Short-circuit logical operators (SPARQL tolerates an error on one side
  // when the other side determines the outcome; we implement the strict
  // variant: left side errors propagate).
  if (expr.bop == BinaryOp::kAnd) {
    SOFOS_ASSIGN_OR_RETURN(bool lhs, EvalBool(*expr.lhs, row));
    if (!lhs) return Value::Bool(false);
    SOFOS_ASSIGN_OR_RETURN(bool rhs, EvalBool(*expr.rhs, row));
    return Value::Bool(rhs);
  }
  if (expr.bop == BinaryOp::kOr) {
    SOFOS_ASSIGN_OR_RETURN(bool lhs, EvalBool(*expr.lhs, row));
    if (lhs) return Value::Bool(true);
    SOFOS_ASSIGN_OR_RETURN(bool rhs, EvalBool(*expr.rhs, row));
    return Value::Bool(rhs);
  }

  SOFOS_ASSIGN_OR_RETURN(Value lhs, Eval(*expr.lhs, row));
  SOFOS_ASSIGN_OR_RETURN(Value rhs, Eval(*expr.rhs, row));

  switch (expr.bop) {
    case BinaryOp::kEq:
    case BinaryOp::kNe: {
      SOFOS_ASSIGN_OR_RETURN(int c, lhs.Compare(rhs, /*equality_only=*/true));
      bool eq = c == 0;
      return Value::Bool(expr.bop == BinaryOp::kEq ? eq : !eq);
    }
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      SOFOS_ASSIGN_OR_RETURN(int c, lhs.Compare(rhs, /*equality_only=*/false));
      switch (expr.bop) {
        case BinaryOp::kLt:
          return Value::Bool(c < 0);
        case BinaryOp::kLe:
          return Value::Bool(c <= 0);
        case BinaryOp::kGt:
          return Value::Bool(c > 0);
        default:
          return Value::Bool(c >= 0);
      }
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (!lhs.is_numeric() || !rhs.is_numeric()) {
        return Status::TypeError("arithmetic on non-numeric values: " +
                                 lhs.ToString() + ", " + rhs.ToString());
      }
      bool both_int =
          lhs.type() == Value::Type::kInt && rhs.type() == Value::Type::kInt;
      if (expr.bop == BinaryOp::kDiv) {
        double denom = rhs.double_value();
        if (denom == 0.0) return Status::TypeError("division by zero");
        return Value::MakeDouble(lhs.double_value() / denom);
      }
      if (both_int) {
        int64_t a = lhs.int_value(), b = rhs.int_value();
        switch (expr.bop) {
          case BinaryOp::kAdd:
            return Value::Int(a + b);
          case BinaryOp::kSub:
            return Value::Int(a - b);
          default:
            return Value::Int(a * b);
        }
      }
      double a = lhs.double_value(), b = rhs.double_value();
      switch (expr.bop) {
        case BinaryOp::kAdd:
          return Value::MakeDouble(a + b);
        case BinaryOp::kSub:
          return Value::MakeDouble(a - b);
        default:
          return Value::MakeDouble(a * b);
      }
    }
    default:
      return Status::Internal("unhandled binary operator");
  }
}

Result<Value> ExprEvaluator::EvalFunction(const Expr& expr, const Row& row) const {
  const std::string& name = expr.func_name;

  if (name == "BOUND") {
    if (expr.args.size() != 1 || expr.args[0]->kind != Expr::Kind::kVar) {
      return Status::TypeError("BOUND expects a single variable argument");
    }
    auto slot = vars_->Get(expr.args[0]->var);
    bool bound = slot.has_value() && static_cast<size_t>(*slot) < row.size() &&
                 row[*slot] != kNullTermId;
    return Value::Bool(bound);
  }

  if (name == "STR") {
    if (expr.args.size() != 1) return Status::TypeError("STR expects one argument");
    SOFOS_ASSIGN_OR_RETURN(Value v, Eval(*expr.args[0], row));
    switch (v.type()) {
      case Value::Type::kUnbound:
        return Status::TypeError("STR of unbound value");
      case Value::Type::kBool:
      case Value::Type::kInt:
      case Value::Type::kDouble:
        return Value::String(v.ToString());
      default:
        return Value::String(v.string_value());
    }
  }

  if (name == "ABS") {
    if (expr.args.size() != 1) return Status::TypeError("ABS expects one argument");
    SOFOS_ASSIGN_OR_RETURN(Value v, Eval(*expr.args[0], row));
    if (v.type() == Value::Type::kInt) {
      return Value::Int(v.int_value() < 0 ? -v.int_value() : v.int_value());
    }
    if (v.type() == Value::Type::kDouble) {
      return Value::MakeDouble(std::fabs(v.double_value()));
    }
    return Status::TypeError("ABS of non-numeric value " + v.ToString());
  }

  if (name == "REGEX") {
    if (expr.args.size() < 2 || expr.args.size() > 3) {
      return Status::TypeError("REGEX expects 2 or 3 arguments");
    }
    SOFOS_ASSIGN_OR_RETURN(Value text, Eval(*expr.args[0], row));
    SOFOS_ASSIGN_OR_RETURN(Value pattern, Eval(*expr.args[1], row));
    if (text.type() != Value::Type::kString ||
        pattern.type() != Value::Type::kString) {
      return Status::TypeError("REGEX expects string arguments");
    }
    auto flags = std::regex::ECMAScript;
    if (expr.args.size() == 3) {
      SOFOS_ASSIGN_OR_RETURN(Value f, Eval(*expr.args[2], row));
      if (f.type() == Value::Type::kString && f.string_value().find('i') !=
                                                  std::string::npos) {
        flags |= std::regex::icase;
      }
    }
    try {
      std::regex re(pattern.string_value(), flags);
      return Value::Bool(std::regex_search(text.string_value(), re));
    } catch (const std::regex_error&) {
      return Status::TypeError("malformed REGEX pattern: " + pattern.string_value());
    }
  }

  return Status::Unimplemented("function " + name + " is not supported");
}

}  // namespace sparql
}  // namespace sofos
