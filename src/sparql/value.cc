#include "sparql/value.h"

#include <cmath>

#include "common/string_util.h"

namespace sofos {
namespace sparql {

Value Value::Bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.type_ = Type::kInt;
  v.int_ = i;
  return v;
}

Value Value::MakeDouble(double d) {
  Value v;
  v.type_ = Type::kDouble;
  v.double_ = d;
  return v;
}

Value Value::String(std::string s, std::string lang) {
  Value v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  v.lang_ = std::move(lang);
  return v;
}

Value Value::Iri(std::string iri) {
  Value v;
  v.type_ = Type::kIri;
  v.str_ = std::move(iri);
  return v;
}

Value Value::Blank(std::string label) {
  Value v;
  v.type_ = Type::kBlank;
  v.str_ = std::move(label);
  return v;
}

Value Value::FromTerm(const Term& term) {
  switch (term.kind()) {
    case Term::Kind::kIri:
      return Iri(term.lexical());
    case Term::Kind::kBlank:
      return Blank(term.lexical());
    case Term::Kind::kLiteral:
      break;
  }
  switch (term.datatype()) {
    case Term::Datatype::kString:
      return String(term.lexical());
    case Term::Datatype::kLangString:
      return String(term.lexical(), term.lang());
    case Term::Datatype::kInteger: {
      auto i = term.AsInt64();
      if (i.ok()) return Int(i.value());
      break;
    }
    case Term::Datatype::kDouble: {
      auto d = term.AsDouble();
      if (d.ok()) return MakeDouble(d.value());
      break;
    }
    case Term::Datatype::kBoolean: {
      auto b = term.AsBool();
      if (b.ok()) return Bool(b.value());
      break;
    }
    default:
      break;
  }
  Value v;
  v.type_ = Type::kOpaque;
  v.str_ = term.lexical();
  v.lang_ = term.datatype_iri();
  return v;
}

Result<Term> Value::ToTerm() const {
  switch (type_) {
    case Type::kUnbound:
      return Status::TypeError("cannot convert unbound value to a term");
    case Type::kBool:
      return Term::Boolean(bool_);
    case Type::kInt:
      return Term::Integer(int_);
    case Type::kDouble:
      return Term::Double(double_);
    case Type::kString:
      return lang_.empty() ? Term::String(str_) : Term::LangString(str_, lang_);
    case Type::kIri:
      return Term::Iri(str_);
    case Type::kBlank:
      return Term::Blank(str_);
    case Type::kOpaque:
      return Term::TypedLiteral(str_, lang_);
  }
  return Status::Internal("corrupt value");
}

Result<bool> Value::EffectiveBool() const {
  switch (type_) {
    case Type::kBool:
      return bool_;
    case Type::kInt:
      return int_ != 0;
    case Type::kDouble:
      return double_ != 0.0 && !std::isnan(double_);
    case Type::kString:
      return !str_.empty();
    default:
      return Status::TypeError("no effective boolean value for " + ToString());
  }
}

namespace {
int Sign(int64_t v) { return v < 0 ? -1 : (v > 0 ? 1 : 0); }
int SignD(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }
}  // namespace

Result<int> Value::Compare(const Value& other, bool equality_only) const {
  if (is_unbound() || other.is_unbound()) {
    return Status::TypeError("comparison with unbound value");
  }
  if (is_numeric() && other.is_numeric()) {
    if (type_ == Type::kInt && other.type_ == Type::kInt) {
      return Sign((int_ > other.int_) - (int_ < other.int_));
    }
    return SignD(double_value(), other.double_value());
  }
  if (type_ == Type::kString && other.type_ == Type::kString) {
    int c = str_.compare(other.str_);
    if (c != 0) return c < 0 ? -1 : 1;
    int lc = lang_.compare(other.lang_);
    return lc < 0 ? -1 : (lc > 0 ? 1 : 0);
  }
  if (type_ == Type::kBool && other.type_ == Type::kBool) {
    return static_cast<int>(bool_) - static_cast<int>(other.bool_);
  }
  if ((type_ == Type::kIri && other.type_ == Type::kIri) ||
      (type_ == Type::kBlank && other.type_ == Type::kBlank)) {
    if (equality_only) return str_ == other.str_ ? 0 : 1;
    int c = str_.compare(other.str_);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (equality_only) return 1;  // incomparable types are simply "not equal"
  return Status::TypeError("cannot order " + ToString() + " against " +
                           other.ToString());
}

int Value::TotalCompare(const Value& other) const {
  auto rank = [](const Value& v) {
    switch (v.type_) {
      case Type::kUnbound:
        return 0;
      case Type::kBlank:
        return 1;
      case Type::kIri:
        return 2;
      case Type::kBool:
        return 3;
      case Type::kInt:
      case Type::kDouble:
        return 4;
      case Type::kString:
        return 5;
      case Type::kOpaque:
        return 6;
    }
    return 7;
  };
  int ra = rank(*this), rb = rank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type_) {
    case Type::kUnbound:
      return 0;
    case Type::kBool:
      return static_cast<int>(bool_) - static_cast<int>(other.bool_);
    case Type::kInt:
    case Type::kDouble:
      return SignD(double_value(), other.double_value());
    default: {
      int c = str_.compare(other.str_);
      if (c != 0) return c < 0 ? -1 : 1;
      int lc = lang_.compare(other.lang_);
      return lc < 0 ? -1 : (lc > 0 ? 1 : 0);
    }
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case Type::kUnbound:
      return "UNBOUND";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kInt:
      return std::to_string(int_);
    case Type::kDouble:
      return FormatDoubleLexical(double_);
    case Type::kString:
      return "\"" + str_ + (lang_.empty() ? "\"" : "\"@" + lang_);
    case Type::kIri:
      return "<" + str_ + ">";
    case Type::kBlank:
      return "_:" + str_;
    case Type::kOpaque:
      return "\"" + str_ + "\"^^<" + lang_ + ">";
  }
  return "?";
}

}  // namespace sparql
}  // namespace sofos
