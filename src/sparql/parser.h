#ifndef SOFOS_SPARQL_PARSER_H_
#define SOFOS_SPARQL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sparql/ast.h"
#include "sparql/lexer.h"

namespace sofos {
namespace sparql {

/// Recursive-descent parser for the sofos SPARQL subset:
///
///   PREFIX ns: <iri>
///   SELECT [DISTINCT] (?var | (expr AS ?alias))+ | *
///   WHERE { triple patterns with ';'/',' lists, `a`, FILTER (expr) }
///   GROUP BY ?var... HAVING (expr) ORDER BY [ASC|DESC](expr) LIMIT n OFFSET n
///
/// Aggregates: COUNT(*), COUNT([DISTINCT] expr), SUM/AVG/MIN/MAX([DISTINCT] expr).
/// Functions: STR, BOUND, REGEX, ABS. Unsupported SPARQL constructs (UNION,
/// OPTIONAL, subqueries, property paths, ...) yield a ParseError naming the
/// construct rather than a generic syntax error.
class Parser {
 public:
  /// Parses a complete SELECT query.
  static Result<Query> Parse(std::string_view text);

  /// Parses a standalone expression (used by tests and the facet loader).
  static Result<ExprPtr> ParseExpression(std::string_view text);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery();
  Status ParsePrologue(Query* query);
  Status ParseSelectClause(Query* query);
  Status ParseWhereClause(Query* query);
  Status ParseTriplesBlock(Query* query);
  Status ParseSolutionModifiers(Query* query);
  Result<PatternTerm> ParsePatternTerm(bool allow_literal);
  Result<Term> ParseTermLiteral();

  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOrExpr();
  Result<ExprPtr> ParseAndExpr();
  Result<ExprPtr> ParseRelationalExpr();
  Result<ExprPtr> ParseAdditiveExpr();
  Result<ExprPtr> ParseMultiplicativeExpr();
  Result<ExprPtr> ParseUnaryExpr();
  Result<ExprPtr> ParsePrimaryExpr();
  Result<ExprPtr> ParseAggregateOrFunction(const std::string& name);

  const Token& Peek(size_t ahead = 0) const;
  const Token& Get();
  bool Check(TokenType type) const { return Peek().type == type; }
  bool CheckKeyword(std::string_view keyword) const;
  bool TryConsume(TokenType type);
  bool TryConsumeKeyword(std::string_view keyword);
  Status Expect(TokenType type);
  Status ExpectKeyword(std::string_view keyword);
  Status ErrorAt(const Token& token, const std::string& message) const;
  Result<std::string> ExpandPname(const Token& token) const;

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace sparql
}  // namespace sofos

#endif  // SOFOS_SPARQL_PARSER_H_
