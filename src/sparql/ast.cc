#include "sparql/ast.h"

#include "common/string_util.h"

namespace sofos {
namespace sparql {

std::string AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
  }
  return "?";
}

ExprPtr Expr::MakeVar(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kVar;
  e->var = std::move(name);
  return e;
}

ExprPtr Expr::MakeLiteral(Term term) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(term);
  return e;
}

ExprPtr Expr::MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->bop = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Expr::MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->uop = op;
  e->operand = std::move(operand);
  return e;
}

ExprPtr Expr::MakeAggregate(AggKind agg, ExprPtr arg, bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAggregate;
  e->agg = agg;
  e->agg_arg = std::move(arg);
  e->agg_distinct = distinct;
  return e;
}

ExprPtr Expr::MakeCountStar() {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAggregate;
  e->agg = AggKind::kCount;
  e->count_star = true;
  return e;
}

ExprPtr Expr::MakeFunction(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kFunction;
  e->func_name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->var = var;
  e->literal = literal;
  e->bop = bop;
  if (lhs) e->lhs = lhs->Clone();
  if (rhs) e->rhs = rhs->Clone();
  e->uop = uop;
  if (operand) e->operand = operand->Clone();
  e->agg = agg;
  e->agg_distinct = agg_distinct;
  e->count_star = count_star;
  if (agg_arg) e->agg_arg = agg_arg->Clone();
  e->agg_slot = agg_slot;
  e->func_name = func_name;
  for (const auto& a : args) e->args.push_back(a->Clone());
  return e;
}

namespace {

std::string BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return "||";
    case BinaryOp::kAnd:
      return "&&";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kVar:
      return "?" + var;
    case Kind::kLiteral:
      return literal.ToNTriples();
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + BinaryOpSymbol(bop) + " " +
             rhs->ToString() + ")";
    case Kind::kUnary:
      return (uop == UnaryOp::kNot ? "(!" : "(-") + operand->ToString() + ")";
    case Kind::kAggregate: {
      std::string inner = count_star ? "*"
                                     : (agg_distinct ? "DISTINCT " : "") +
                                           (agg_arg ? agg_arg->ToString() : "?");
      return AggKindName(agg) + "(" + inner + ")";
    }
    case Kind::kFunction: {
      std::string out = func_name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

bool Expr::ContainsAggregate() const {
  if (kind == Kind::kAggregate) return true;
  if (lhs && lhs->ContainsAggregate()) return true;
  if (rhs && rhs->ContainsAggregate()) return true;
  if (operand && operand->ContainsAggregate()) return true;
  for (const auto& a : args) {
    if (a->ContainsAggregate()) return true;
  }
  return false;
}

void Expr::CollectVars(std::vector<std::string>* out) const {
  switch (kind) {
    case Kind::kVar:
      out->push_back(var);
      return;
    case Kind::kLiteral:
      return;
    case Kind::kBinary:
      lhs->CollectVars(out);
      rhs->CollectVars(out);
      return;
    case Kind::kUnary:
      operand->CollectVars(out);
      return;
    case Kind::kAggregate:
      if (agg_arg) agg_arg->CollectVars(out);
      return;
    case Kind::kFunction:
      for (const auto& a : args) a->CollectVars(out);
      return;
  }
}

std::string SelectItem::ToString() const {
  if (expr && expr->kind == Expr::Kind::kVar && expr->var == alias) {
    return "?" + alias;
  }
  return "(" + (expr ? expr->ToString() : "?") + " AS ?" + alias + ")";
}

bool Query::IsAggregateQuery() const {
  if (!group_by.empty() || !having.empty()) return true;
  for (const auto& item : select) {
    if (item.expr && item.expr->ContainsAggregate()) return true;
  }
  return false;
}

std::string Query::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  if (select_all) {
    out += "*";
  } else {
    for (size_t i = 0; i < select.size(); ++i) {
      if (i) out += " ";
      out += select[i].ToString();
    }
  }
  out += " WHERE {\n";
  for (const auto& tp : where) {
    out += "  " + tp.ToString() + " .\n";
  }
  for (const auto& f : filters) {
    out += "  FILTER " + f->ToString() + "\n";
  }
  out += "}";
  if (!group_by.empty()) {
    out += " GROUP BY";
    for (const auto& v : group_by) out += " ?" + v;
  }
  for (size_t i = 0; i < having.size(); ++i) {
    out += i == 0 ? " HAVING " : " ";
    out += having[i]->ToString();
  }
  if (!order_by.empty()) {
    out += " ORDER BY";
    for (const auto& key : order_by) {
      out += key.ascending ? " ASC(" : " DESC(";
      out += key.expr->ToString();
      out += ")";
    }
  }
  if (limit >= 0) out += StrFormat(" LIMIT %lld", static_cast<long long>(limit));
  if (offset > 0) out += StrFormat(" OFFSET %lld", static_cast<long long>(offset));
  return out;
}

}  // namespace sparql
}  // namespace sofos
