#include "sparql/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/hash.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "sparql/delta_join.h"
#include "sparql/expression.h"
#include "sparql/value.h"

namespace sofos {
namespace sparql {

namespace {

uint64_t HashRow(const Row& row) {
  return Fnv1a64(row.data(), row.size() * sizeof(TermId));
}

struct RowHash {
  size_t operator()(const Row& row) const { return static_cast<size_t>(HashRow(row)); }
};

inline TermId TripleField(const Triple& t, int f) {
  switch (f) {
    case 0:
      return t.s;
    case 1:
      return t.p;
    default:
      return t.o;
  }
}

/// Binds the variable positions of `step` from `triple` into `row`.
/// Returns false when a repeated variable binds inconsistently (e.g. the
/// pattern `?x ?p ?x` against a triple whose s != o) or when the triple
/// conflicts with values already present in the row.
bool BindStep(const PatternStep& step, const Triple& triple, Row* row) {
  const TermId fields[3] = {triple.s, triple.p, triple.o};
  for (int i = 0; i < 3; ++i) {
    int slot = step.slots[i];
    if (slot < 0) continue;
    TermId current = (*row)[static_cast<size_t>(slot)];
    if (current == kNullTermId) {
      (*row)[static_cast<size_t>(slot)] = fields[i];
    } else if (current != fields[i]) {
      return false;
    }
  }
  return true;
}

/// Column-wise counterpart of BindStep: binds into physical row `j` of a
/// batch. Identical accept/reject semantics.
bool BindStepAt(const PatternStep& step, const Triple& triple, RowBatch* batch,
                size_t j) {
  const TermId fields[3] = {triple.s, triple.p, triple.o};
  for (int i = 0; i < 3; ++i) {
    int slot = step.slots[i];
    if (slot < 0) continue;
    TermId* col = batch->Col(static_cast<size_t>(slot));
    if (col[j] == kNullTermId) {
      col[j] = fields[i];
    } else if (col[j] != fields[i]) {
      return false;
    }
  }
  return true;
}

/// Clears the slots `step` may have written into row `j` (after a failed
/// bind, so the next attempt starts from nulls like a fresh row).
void UnbindStepAt(const PatternStep& step, RowBatch* batch, size_t j) {
  for (int i = 0; i < 3; ++i) {
    if (step.slots[i] >= 0) {
      batch->Col(static_cast<size_t>(step.slots[i]))[j] = kNullTermId;
    }
  }
}

/// Copies physical row `r` of `src` into physical row `j` of `dst` (all
/// columns; both batches share the same width).
inline void CopyRowInto(const RowBatch& src, uint32_t r, RowBatch* dst, size_t j) {
  for (size_t c = 0; c < src.width(); ++c) {
    dst->Col(c)[j] = src.At(c, r);
  }
}

// ---------------------------------------------------------------------------
// Aggregate accumulation, shared verbatim by the row and batch engines so
// the two can never diverge (the batch engine's byte-identity contract).
// ---------------------------------------------------------------------------

struct AggAccum {
  uint64_t count = 0;
  int64_t isum = 0;
  double dsum = 0.0;
  bool saw_double = false;
  bool has_best = false;
  Value best;
  std::unordered_set<TermId> distinct_ids;
};

Status AggAccumulate(const Expr& spec, const Row& in, const ExprEvaluator& eval,
                     Dictionary* dict, AggAccum* acc) {
  if (spec.count_star) {
    ++acc->count;
    return Status::OK();
  }
  auto value = eval.Eval(*spec.agg_arg, in);
  // SPARQL semantics: rows whose aggregate expression errors (including
  // unbound) are skipped by the aggregate, not the whole group.
  if (!value.ok() || value.value().is_unbound()) return Status::OK();
  const Value& v = value.value();

  if (spec.agg_distinct) {
    SOFOS_ASSIGN_OR_RETURN(Term term, v.ToTerm());
    TermId id = dict->Intern(term);
    if (!acc->distinct_ids.insert(id).second) return Status::OK();
  }

  ++acc->count;
  switch (spec.agg) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      if (!v.is_numeric()) break;  // non-numeric values are skipped
      if (v.type() == Value::Type::kDouble) {
        acc->saw_double = true;
        acc->dsum += v.double_value();
      } else {
        acc->isum += v.int_value();
      }
      break;
    case AggKind::kMin:
      if (!acc->has_best || v.TotalCompare(acc->best) < 0) {
        acc->best = v;
        acc->has_best = true;
      }
      break;
    case AggKind::kMax:
      if (!acc->has_best || v.TotalCompare(acc->best) > 0) {
        acc->best = v;
        acc->has_best = true;
      }
      break;
  }
  return Status::OK();
}

Result<TermId> AggFinalize(const Expr& spec, const AggAccum& acc,
                           Dictionary* dict) {
  Value result;
  switch (spec.agg) {
    case AggKind::kCount:
      result = Value::Int(static_cast<int64_t>(acc.count));
      break;
    case AggKind::kSum:
      if (acc.saw_double) {
        result = Value::MakeDouble(acc.dsum + static_cast<double>(acc.isum));
      } else {
        result = Value::Int(acc.isum);  // SUM of empty input is 0
      }
      break;
    case AggKind::kAvg:
      if (acc.count == 0) return kNullTermId;
      result = Value::MakeDouble((acc.dsum + static_cast<double>(acc.isum)) /
                                 static_cast<double>(acc.count));
      break;
    case AggKind::kMin:
    case AggKind::kMax:
      if (!acc.has_best) return kNullTermId;
      result = acc.best;
      break;
  }
  SOFOS_ASSIGN_OR_RETURN(Term term, result.ToTerm());
  return dict->Intern(term);
}

// ---------------------------------------------------------------------------
// Legacy row-at-a-time (Volcano) operators — ExecMode::kVolcano. Kept as
// the reference semantics the batch engine is asserted against and as the
// bench baseline.
// ---------------------------------------------------------------------------

/// Scan of the first pattern step.
class ScanOp : public Operator {
 public:
  ScanOp(const TripleStore* store, const PatternStep* step, size_t width,
         ExecStats* stats, OperatorStats* op_slot = nullptr)
      : step_(step), width_(width), stats_(stats) {
    bool skipped = false;
    range_ = store->Scan(step->consts[0], step->consts[1], step->consts[2],
                         op_slot != nullptr ? &skipped : nullptr);
    if (skipped) ++op_slot->bloom_skips;
    next_ = range_.begin();
  }

  Result<bool> Next(Row* row) override {
    while (next_ != range_.end()) {
      const Triple& t = *next_++;
      ++stats_->rows_scanned;
      row->assign(width_, kNullTermId);
      if (BindStep(*step_, t, row)) return true;
    }
    return false;
  }

 private:
  const PatternStep* step_;
  size_t width_;
  ExecStats* stats_;
  TripleStore::ScanRange range_;
  const Triple* next_ = nullptr;
};

/// Index nested-loop join: for every input row, substitutes the bound
/// variables into the pattern and scans the matching index range.
class IndexJoinOp : public Operator {
 public:
  IndexJoinOp(std::unique_ptr<Operator> child, const TripleStore* store,
              const PatternStep* step, ExecStats* stats,
              OperatorStats* op_slot = nullptr)
      : child_(std::move(child)),
        store_(store),
        step_(step),
        stats_(stats),
        op_slot_(op_slot) {}

  Result<bool> Next(Row* row) override {
    while (true) {
      while (cursor_ != range_.end()) {
        const Triple& t = *cursor_++;
        ++stats_->rows_scanned;
        *row = current_;
        if (BindStep(*step_, t, row)) return true;
      }
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(&current_));
      if (!has) return false;
      ++stats_->intermediate_rows;
      TermId ids[3];
      for (int i = 0; i < 3; ++i) {
        if (step_->slots[i] >= 0) {
          ids[i] = current_[static_cast<size_t>(step_->slots[i])];  // may be null
        } else {
          ids[i] = step_->consts[i];
        }
      }
      bool skipped = false;
      range_ = store_->Scan(ids[0], ids[1], ids[2],
                            op_slot_ != nullptr ? &skipped : nullptr);
      if (skipped) ++op_slot_->bloom_skips;
      cursor_ = range_.begin();
    }
  }

 private:
  std::unique_ptr<Operator> child_;
  const TripleStore* store_;
  const PatternStep* step_;
  ExecStats* stats_;
  OperatorStats* op_slot_;
  Row current_;
  TripleStore::ScanRange range_;
  const Triple* cursor_ = nullptr;
};

/// FILTER evaluation; SPARQL semantics: an evaluation error removes the row.
class FilterOp : public Operator {
 public:
  FilterOp(std::unique_ptr<Operator> child, std::vector<const Expr*> filters,
           const Dictionary* dict, const VariableTable* vars, ExecStats* stats,
           int agg_base = -1)
      : child_(std::move(child)),
        filters_(std::move(filters)),
        eval_(dict, vars, agg_base),
        stats_(stats) {}

  Result<bool> Next(Row* row) override {
    while (true) {
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(row));
      if (!has) return false;
      bool pass = true;
      for (const Expr* f : filters_) {
        auto verdict = eval_.EvalBool(*f, *row);
        if (!verdict.ok() || !verdict.value()) {
          pass = false;
          break;
        }
      }
      if (pass) return true;
      ++stats_->filtered_rows;
    }
  }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<const Expr*> filters_;
  ExprEvaluator eval_;
  ExecStats* stats_;
};

/// Hash aggregation. Materializes all groups on the first Next() call and
/// then streams [group vars..., agg results...] rows.
class AggregateOp : public Operator {
 public:
  AggregateOp(std::unique_ptr<Operator> child, const Plan* plan,
              const Dictionary* dict, Dictionary* mutable_dict, ExecStats* stats)
      : child_(std::move(child)),
        plan_(plan),
        eval_(dict, &plan->pattern_vars),
        dict_(mutable_dict),
        stats_(stats) {}

  Result<bool> Next(Row* row) override {
    if (!materialized_) {
      SOFOS_RETURN_IF_ERROR(Materialize());
      materialized_ = true;
    }
    if (cursor_ >= results_.size()) return false;
    *row = results_[cursor_++];
    return true;
  }

 private:
  Status Materialize() {
    const size_t num_groups_vars = plan_->group_slots.size();
    const size_t num_aggs = plan_->agg_specs.size();
    // Group key -> accumulators. std::map keeps the output deterministic.
    std::map<Row, std::vector<AggAccum>> groups;

    Row in;
    while (true) {
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(&in));
      if (!has) break;
      ++stats_->intermediate_rows;
      Row key(num_groups_vars);
      for (size_t i = 0; i < num_groups_vars; ++i) {
        key[i] = in[static_cast<size_t>(plan_->group_slots[i])];
      }
      auto [it, inserted] = groups.try_emplace(std::move(key));
      if (inserted) it->second.resize(num_aggs);
      for (size_t a = 0; a < num_aggs; ++a) {
        SOFOS_RETURN_IF_ERROR(
            AggAccumulate(*plan_->agg_specs[a], in, eval_, dict_, &it->second[a]));
      }
    }

    // SPARQL: an aggregate query with no GROUP BY over an empty input still
    // produces one group (COUNT = 0, SUM = 0, others unbound).
    if (groups.empty() && num_groups_vars == 0) {
      groups.try_emplace(Row{}).first->second.resize(num_aggs);
    }

    for (auto& [key, accums] : groups) {
      Row out(num_groups_vars + num_aggs, kNullTermId);
      std::copy(key.begin(), key.end(), out.begin());
      for (size_t a = 0; a < num_aggs; ++a) {
        SOFOS_ASSIGN_OR_RETURN(TermId id,
                               AggFinalize(*plan_->agg_specs[a], accums[a], dict_));
        out[num_groups_vars + a] = id;
      }
      results_.push_back(std::move(out));
    }
    return Status::OK();
  }

  std::unique_ptr<Operator> child_;
  const Plan* plan_;
  ExprEvaluator eval_;
  Dictionary* dict_;
  ExecStats* stats_;
  bool materialized_ = false;
  std::vector<Row> results_;
  size_t cursor_ = 0;
};

/// Projection into the output layout; expression results are interned.
/// Expression evaluation errors yield unbound outputs (SPARQL semantics).
class ProjectOp : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child, const Plan* plan,
            const Dictionary* dict, Dictionary* mutable_dict,
            const VariableTable* input_vars, int agg_base)
      : child_(std::move(child)),
        plan_(plan),
        eval_(dict, input_vars, agg_base),
        dict_(mutable_dict) {}

  Result<bool> Next(Row* row) override {
    Row in;
    SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(&in));
    if (!has) return false;
    row->assign(plan_->outputs.size(), kNullTermId);
    for (size_t i = 0; i < plan_->outputs.size(); ++i) {
      const Plan::OutputItem& item = plan_->outputs[i];
      if (item.direct_slot >= 0) {
        (*row)[i] = in[static_cast<size_t>(item.direct_slot)];
        continue;
      }
      if (item.expr == nullptr) continue;
      auto value = eval_.Eval(*item.expr, in);
      if (!value.ok() || value.value().is_unbound()) continue;
      auto term = value.value().ToTerm();
      if (!term.ok()) continue;
      (*row)[i] = dict_->Intern(term.value());
    }
    return true;
  }

 private:
  std::unique_ptr<Operator> child_;
  const Plan* plan_;
  ExprEvaluator eval_;
  Dictionary* dict_;
};

class DistinctOp : public Operator {
 public:
  explicit DistinctOp(std::unique_ptr<Operator> child) : child_(std::move(child)) {}

  Result<bool> Next(Row* row) override {
    while (true) {
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(row));
      if (!has) return false;
      if (seen_.insert(*row).second) return true;
    }
  }

 private:
  std::unique_ptr<Operator> child_;
  std::unordered_set<Row, RowHash> seen_;
};

/// ORDER BY: materializes and sorts by evaluated keys using the total
/// order (evaluation errors sort as unbound, i.e. first).
class OrderByOp : public Operator {
 public:
  OrderByOp(std::unique_ptr<Operator> child, const Plan* plan,
            const Dictionary* dict, int agg_base)
      : child_(std::move(child)),
        plan_(plan),
        eval_(dict, &plan->output_vars, agg_base) {}

  Result<bool> Next(Row* row) override {
    if (!materialized_) {
      SOFOS_RETURN_IF_ERROR(Materialize());
      materialized_ = true;
    }
    if (cursor_ >= rows_.size()) return false;
    *row = std::move(rows_[cursor_++].row);
    return true;
  }

 private:
  struct Keyed {
    Row row;
    std::vector<Value> keys;
  };

  Status Materialize() {
    Row in;
    while (true) {
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(&in));
      if (!has) break;
      Keyed keyed;
      keyed.row = in;
      for (const auto& [expr, asc] : plan_->order_keys) {
        (void)asc;
        auto v = eval_.Eval(*expr, in);
        keyed.keys.push_back(v.ok() ? v.value() : Value::Unbound());
      }
      rows_.push_back(std::move(keyed));
    }
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Keyed& a, const Keyed& b) {
                       for (size_t i = 0; i < plan_->order_keys.size(); ++i) {
                         int c = a.keys[i].TotalCompare(b.keys[i]);
                         if (c != 0) {
                           return plan_->order_keys[i].second ? c < 0 : c > 0;
                         }
                       }
                       return false;
                     });
    return Status::OK();
  }

  std::unique_ptr<Operator> child_;
  const Plan* plan_;
  ExprEvaluator eval_;
  bool materialized_ = false;
  std::vector<Keyed> rows_;
  size_t cursor_ = 0;
};

class SliceOp : public Operator {
 public:
  SliceOp(std::unique_ptr<Operator> child, int64_t offset, int64_t limit)
      : child_(std::move(child)), offset_(offset), limit_(limit) {}

  Result<bool> Next(Row* row) override {
    while (skipped_ < offset_) {
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(row));
      if (!has) return false;
      ++skipped_;
    }
    if (limit_ >= 0 && emitted_ >= limit_) return false;
    SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    ++emitted_;
    return true;
  }

 private:
  std::unique_ptr<Operator> child_;
  int64_t offset_;
  int64_t limit_;
  int64_t skipped_ = 0;
  int64_t emitted_ = 0;
};

/// Produces no rows; used for plans that are provably empty. Aggregate
/// handling still applies above it, so COUNT over an impossible pattern
/// correctly returns 0.
class EmptyOp : public Operator {
 public:
  Result<bool> Next(Row*) override { return false; }
};

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE instrumentation (ExecOptions::analyze): a plan-derived
// slot layout shared by both engines, plus timing wrappers that record
// per-operator actuals into ExecStats::operators. The layout depends only
// on the Plan, so the slot sequence — and with it the ANALYZE output shape
// — is identical across ExecMode, dop and shard count.
// ---------------------------------------------------------------------------

struct SlotLayout {
  std::vector<int> step_op;      // slot of step i's scan/join operator
  std::vector<int> step_filter;  // slot of step i's FILTER, -1 if none
  int aggregate = -1;
  int having = -1;
  int project = -1;
  int distinct = -1;
  int order_by = -1;
  int slice = -1;
  size_t fragment_slots = 0;  // leading slots instantiated per morsel fragment
  size_t total = 0;
};

SlotLayout ComputeSlotLayout(const Plan& plan) {
  SlotLayout layout;
  int next = 0;
  if (plan.empty_guaranteed || plan.steps.empty()) {
    next = 1;  // single EMPTY leaf
  } else {
    for (const PatternStep& step : plan.steps) {
      layout.step_op.push_back(next++);
      layout.step_filter.push_back(step.filters.empty() ? -1 : next++);
    }
  }
  layout.fragment_slots = static_cast<size_t>(next);
  if (plan.is_aggregate) {
    layout.aggregate = next++;
    if (!plan.having.empty()) layout.having = next++;
  }
  layout.project = next++;
  if (plan.distinct) layout.distinct = next++;
  if (!plan.order_keys.empty()) layout.order_by = next++;
  if (plan.limit >= 0 || plan.offset > 0) layout.slice = next++;
  layout.total = static_cast<size_t>(next);
  return layout;
}

std::vector<OperatorStats> BuildOperatorSlots(const Plan& plan,
                                              const SlotLayout& layout) {
  std::vector<OperatorStats> slots(layout.total);
  if (plan.empty_guaranteed || plan.steps.empty()) {
    slots[0].label = "EMPTY";
  } else {
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      const PatternStep& step = plan.steps[i];
      const char* op = i == 0 ? "SCAN"
                              : (step.algo == JoinAlgo::kHashProbe ? "HJOIN"
                                                                   : "IJOIN");
      OperatorStats& s = slots[static_cast<size_t>(layout.step_op[i])];
      s.label = StrFormat("%s %s", op, step.pattern.ToString().c_str());
      s.est_rows = step.est_cardinality;
      if (layout.step_filter[i] >= 0) {
        std::string label = "FILTER ";
        for (size_t k = 0; k < step.filters.size(); ++k) {
          if (k) label += " && ";
          label += step.filters[k]->ToString();
        }
        slots[static_cast<size_t>(layout.step_filter[i])].label =
            std::move(label);
      }
    }
  }
  if (layout.aggregate >= 0) slots[layout.aggregate].label = "AGGREGATE";
  if (layout.having >= 0) slots[layout.having].label = "HAVING";
  slots[layout.project].label = "PROJECT";
  if (layout.distinct >= 0) slots[layout.distinct].label = "DISTINCT";
  if (layout.order_by >= 0) slots[layout.order_by].label = "ORDER BY";
  if (layout.slice >= 0) slots[layout.slice].label = "SLICE";
  return slots;
}

/// Times every Next() call of the wrapped operator and counts its output.
/// `micros` is inclusive (contains the whole subtree below); the renderer
/// subtracts child time to show self time.
class TimedOp : public Operator {
 public:
  TimedOp(std::unique_ptr<Operator> inner, OperatorStats* slot)
      : inner_(std::move(inner)), slot_(slot) {}

  Result<bool> Next(Row* row) override {
    WallTimer timer;
    auto result = inner_->Next(row);
    slot_->micros += timer.ElapsedMicros();
    if (result.ok() && result.value()) {
      ++slot_->batches;
      ++slot_->rows_out;
    }
    return result;
  }

 private:
  std::unique_ptr<Operator> inner_;
  OperatorStats* slot_;
};

class TimedBatchOp : public BatchOperator {
 public:
  TimedBatchOp(std::unique_ptr<BatchOperator> inner, OperatorStats* slot)
      : inner_(std::move(inner)), slot_(slot) {}

  Result<bool> Next(RowBatch* out) override {
    WallTimer timer;
    auto result = inner_->Next(out);
    slot_->micros += timer.ElapsedMicros();
    if (result.ok() && result.value()) {
      ++slot_->batches;
      slot_->rows_out += out->ActiveCount();
    }
    return result;
  }

 private:
  std::unique_ptr<BatchOperator> inner_;
  OperatorStats* slot_;
};

}  // namespace

// ---------------------------------------------------------------------------
// RowBatch
// ---------------------------------------------------------------------------

void RowBatch::Reset(size_t width, size_t capacity) {
  ResetShape(width, capacity);
  std::fill(data_.begin(), data_.end(), kNullTermId);
}

void RowBatch::ResetShape(size_t width, size_t capacity) {
  width_ = width;
  capacity_ = capacity;
  rows_ = 0;
  data_.resize(width * capacity);
  sel_.clear();
  has_sel_ = false;
}

void RowBatch::GatherRow(uint32_t r, Row* out) const {
  out->resize(width_);
  for (size_t c = 0; c < width_; ++c) {
    (*out)[c] = At(c, r);
  }
}

namespace {

// ---------------------------------------------------------------------------
// Batch (vectorized) operators — ExecMode::kBatch.
// ---------------------------------------------------------------------------

class BatchEmptyOp : public BatchOperator {
 public:
  Result<bool> Next(RowBatch*) override { return false; }
};

/// Morsel leaf: scans a (partition of a) pattern range into batches.
class BatchScanOp : public BatchOperator {
 public:
  BatchScanOp(TripleStore::ScanRange range, const PatternStep* step, size_t width,
              size_t batch_size, ExecStats* stats)
      : range_(std::move(range)),  // owns the backing of compact-layout scans
        next_(range_.begin()),
        end_(range_.end()),
        step_(step),
        width_(width),
        batch_size_(batch_size),
        stats_(stats) {}

  Result<bool> Next(RowBatch* out) override {
    if (next_ == end_) return false;
    out->Reset(width_, batch_size_);
    size_t j = 0;
    while (next_ != end_ && j < batch_size_) {
      const Triple& t = *next_++;
      ++stats_->rows_scanned;
      if (BindStepAt(*step_, t, out, j)) {
        ++j;
      } else {
        UnbindStepAt(*step_, out, j);
      }
    }
    out->set_rows(j);
    return j > 0 || next_ != end_;
  }

 private:
  TripleStore::ScanRange range_;
  const Triple* next_;
  const Triple* end_;
  const PatternStep* step_;
  size_t width_;
  size_t batch_size_;
  ExecStats* stats_;
};

/// Key of a shared-build join hash table: the probe values at the step's
/// key positions (unused positions stay 0, which no valid id uses).
struct HashKey {
  std::array<TermId, 3> v{{kNullTermId, kNullTermId, kNullTermId}};
  bool operator==(const HashKey& other) const { return v == other.v; }
};

struct HashKeyHash {
  size_t operator()(const HashKey& k) const {
    return static_cast<size_t>(Fnv1a64(k.v.data(), sizeof(k.v)));
  }
};

/// Orders triples by an explicit field priority (PatternStep::match_order).
struct TripleFieldLess {
  std::array<int, 3> order;
  bool operator()(const Triple& x, const Triple& y) const {
    for (int f : order) {
      TermId a = TripleField(x, f), b = TripleField(y, f);
      if (a != b) return a < b;
    }
    return false;
  }
};

}  // namespace

namespace internal {

/// Shared build side of a hash-join step: one contiguous triple array
/// grouped by join-key value plus a key → (offset, length) index — a flat
/// layout so a build of n triples costs two passes and one hash map, not
/// one heap-allocated bucket per distinct key (keys are near-unique in
/// star-shaped facet patterns). Built once on the caller thread, then
/// read-only — every morsel worker probes it concurrently without
/// synchronization.
struct JoinHashTable {
  struct Range {
    uint32_t offset = 0;
    uint32_t length = 0;
  };
  std::unordered_map<HashKey, Range, HashKeyHash> ranges;
  std::vector<Triple> triples;
};

}  // namespace internal

namespace {

using internal::JoinHashTable;

std::unique_ptr<JoinHashTable> BuildJoinHashTable(const TripleStore* store,
                                                  const PatternStep& step,
                                                  ExecStats* stats,
                                                  OperatorStats* op_slot = nullptr) {
  auto table = std::make_unique<JoinHashTable>();
  bool skipped = false;
  TripleStore::ScanRange range =
      store->Scan(step.consts[0], step.consts[1], step.consts[2],
                  op_slot != nullptr ? &skipped : nullptr);
  if (skipped) ++op_slot->bloom_skips;
  stats->rows_scanned += range.size();

  auto key_of = [&step](const Triple& t) {
    HashKey key;
    for (int pos : step.key_positions) {
      key.v[static_cast<size_t>(pos)] = TripleField(t, pos);
    }
    return key;
  };

  // Pass 1: per-key counts -> contiguous offsets.
  table->ranges.reserve(range.size());
  for (const Triple& t : range) {
    ++table->ranges[key_of(t)].length;
  }
  uint32_t offset = 0;
  for (auto& [key, r] : table->ranges) {
    (void)key;
    r.offset = offset;
    offset += r.length;
    r.length = 0;  // reused as the placement cursor in pass 2
  }

  // Pass 2: stable placement in scan order, so each key's run keeps the
  // build index's relative order.
  table->triples.resize(range.size());
  for (const Triple& t : range) {
    JoinHashTable::Range& r = table->ranges[key_of(t)];
    table->triples[r.offset + r.length++] = t;
  }

  // Each run must match the index order a nested-loop probe would scan
  // (PatternStep::match_order) so both algorithms emit identical row
  // streams. The build scan's index order already guarantees this for
  // every reachable bound-set/key combination, so the check below is a
  // cheap O(n) verification pass in practice — but it keeps the contract
  // independent of TripleStore's index-selection details.
  TripleFieldLess less{step.match_order};
  for (const auto& [key, r] : table->ranges) {
    (void)key;
    Triple* begin = table->triples.data() + r.offset;
    Triple* end = begin + r.length;
    if (!std::is_sorted(begin, end, less)) std::sort(begin, end, less);
  }
  return table;
}

/// Join step over batches. With a hash table it is the probe side of a
/// shared-build hash join; without one it is a vectorized index nested-loop
/// join. Both emit, per probe row (in stream order), the matching triples
/// in PatternStep::match_order — so the output stream is identical either
/// way, and identical to the legacy row engine.
class BatchJoinOp : public BatchOperator {
 public:
  BatchJoinOp(std::unique_ptr<BatchOperator> child, const TripleStore* store,
              const PatternStep* step, const JoinHashTable* table, size_t width,
              size_t batch_size, ExecStats* stats,
              OperatorStats* op_slot = nullptr)
      : child_(std::move(child)),
        store_(store),
        step_(step),
        table_(table),
        width_(width),
        batch_size_(batch_size),
        stats_(stats),
        op_slot_(op_slot) {}

  Result<bool> Next(RowBatch* out) override {
    out->ResetShape(width_, batch_size_);
    size_t j = 0;
    while (j < batch_size_) {
      if (cursor_ != cursor_end_) {
        const Triple& t = *cursor_++;
        ++stats_->rows_scanned;
        CopyRowInto(input_, probe_row_, out, j);
        if (BindStepAt(*step_, t, out, j)) ++j;
        continue;
      }
      SOFOS_ASSIGN_OR_RETURN(bool more, AdvanceProbe());
      if (!more) break;
    }
    out->set_rows(j);
    return j > 0;
  }

 private:
  /// Moves to the next probe row that has at least one candidate match;
  /// pulls child batches as needed. Returns false at end of input.
  Result<bool> AdvanceProbe() {
    while (true) {
      while (pos_ < input_.ActiveCount()) {
        probe_row_ = input_.ActiveIndex(pos_++);
        ++stats_->intermediate_rows;
        if (BeginMatches()) return true;
      }
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(&input_));
      if (!has) return false;
      pos_ = 0;
    }
  }

  /// Points cursor_ at the candidate matches of probe_row_. Returns false
  /// when the row has none.
  bool BeginMatches() {
    TermId ids[3];
    for (int i = 0; i < 3; ++i) {
      if (step_->slots[i] >= 0) {
        ids[i] = input_.At(static_cast<size_t>(step_->slots[i]), probe_row_);
      } else {
        ids[i] = step_->consts[i];
      }
    }
    if (table_ != nullptr) {
      HashKey key;
      bool keys_bound = true;
      for (int pos : step_->key_positions) {
        if (ids[pos] == kNullTermId) {
          keys_bound = false;  // defensive: fall back to an index probe
          break;
        }
        key.v[static_cast<size_t>(pos)] = ids[pos];
      }
      if (keys_bound) {
        auto it = table_->ranges.find(key);
        if (it == table_->ranges.end()) {
          cursor_ = cursor_end_ = nullptr;
          return false;
        }
        cursor_ = table_->triples.data() + it->second.offset;
        cursor_end_ = cursor_ + it->second.length;
        return true;
      }
    }
    // Keep the range alive in a member: compact-layout scans own their
    // triples, and cursor_ must stay valid across Next() calls.
    bool skipped = false;
    probe_range_ = store_->Scan(ids[0], ids[1], ids[2],
                                op_slot_ != nullptr ? &skipped : nullptr);
    if (skipped) ++op_slot_->bloom_skips;
    cursor_ = probe_range_.begin();
    cursor_end_ = probe_range_.end();
    return cursor_ != cursor_end_;
  }

  std::unique_ptr<BatchOperator> child_;
  const TripleStore* store_;
  const PatternStep* step_;
  const JoinHashTable* table_;
  size_t width_;
  size_t batch_size_;
  ExecStats* stats_;
  OperatorStats* op_slot_;
  RowBatch input_;
  size_t pos_ = 0;
  uint32_t probe_row_ = 0;
  TripleStore::ScanRange probe_range_;
  const Triple* cursor_ = nullptr;
  const Triple* cursor_end_ = nullptr;
};

/// FILTER/HAVING over batches: refines the selection vector in place, never
/// moves row data. Skips fully-filtered batches instead of emitting them.
class BatchFilterOp : public BatchOperator {
 public:
  BatchFilterOp(std::unique_ptr<BatchOperator> child,
                std::vector<const Expr*> filters, const Dictionary* dict,
                const VariableTable* vars, ExecStats* stats, int agg_base = -1)
      : child_(std::move(child)),
        filters_(std::move(filters)),
        eval_(dict, vars, agg_base),
        stats_(stats) {}

  Result<bool> Next(RowBatch* out) override {
    while (true) {
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(out));
      if (!has) return false;
      std::vector<uint32_t> keep;
      keep.reserve(out->ActiveCount());
      for (size_t i = 0; i < out->ActiveCount(); ++i) {
        uint32_t r = out->ActiveIndex(i);
        out->GatherRow(r, &scratch_);
        bool pass = true;
        for (const Expr* f : filters_) {
          auto verdict = eval_.EvalBool(*f, scratch_);
          if (!verdict.ok() || !verdict.value()) {
            pass = false;
            break;
          }
        }
        if (pass) {
          keep.push_back(r);
        } else {
          ++stats_->filtered_rows;
        }
      }
      if (keep.empty()) continue;
      out->SetSel(std::move(keep));
      return true;
    }
  }

 private:
  std::unique_ptr<BatchOperator> child_;
  std::vector<const Expr*> filters_;
  ExprEvaluator eval_;
  ExecStats* stats_;
  Row scratch_;
};

/// Hash aggregation over batches. Accumulation runs in stream order with
/// the shared AggAccumulate (identical values, including float addition
/// order, to the row engine); output groups are sorted by key, matching the
/// row engine's std::map materialization byte for byte.
class BatchAggregateOp : public BatchOperator {
 public:
  BatchAggregateOp(std::unique_ptr<BatchOperator> child, const Plan* plan,
                   const Dictionary* dict, Dictionary* mutable_dict,
                   size_t batch_size, ExecStats* stats)
      : child_(std::move(child)),
        plan_(plan),
        eval_(dict, &plan->pattern_vars),
        dict_(mutable_dict),
        batch_size_(batch_size),
        stats_(stats) {}

  Result<bool> Next(RowBatch* out) override {
    if (!materialized_) {
      SOFOS_RETURN_IF_ERROR(Materialize());
      materialized_ = true;
    }
    if (cursor_ >= results_.size()) return false;
    const size_t width = plan_->group_slots.size() + plan_->agg_specs.size();
    out->ResetShape(width, batch_size_);
    size_t j = 0;
    while (cursor_ < results_.size() && j < batch_size_) {
      const Row& row = results_[cursor_++];
      for (size_t c = 0; c < width; ++c) out->Col(c)[j] = row[c];
      ++j;
    }
    out->set_rows(j);
    return true;
  }

 private:
  Status Materialize() {
    const size_t num_group_vars = plan_->group_slots.size();
    const size_t num_aggs = plan_->agg_specs.size();
    // Open-addressed-in-spirit grouping: a hash index over insertion-ordered
    // group storage, much cheaper than the row engine's std::map of rows;
    // the deterministic sorted output order is restored at the end.
    std::unordered_map<Row, size_t, RowHash> index;
    std::vector<std::pair<Row, std::vector<AggAccum>>> groups;

    RowBatch in;
    Row key(num_group_vars);
    while (true) {
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(&in));
      if (!has) break;
      for (size_t i = 0; i < in.ActiveCount(); ++i) {
        uint32_t r = in.ActiveIndex(i);
        ++stats_->intermediate_rows;
        for (size_t g = 0; g < num_group_vars; ++g) {
          key[g] = in.At(static_cast<size_t>(plan_->group_slots[g]), r);
        }
        auto [it, inserted] = index.try_emplace(key, groups.size());
        if (inserted) {
          groups.emplace_back(key, std::vector<AggAccum>(num_aggs));
        }
        std::vector<AggAccum>& accums = groups[it->second].second;
        in.GatherRow(r, &scratch_);
        for (size_t a = 0; a < num_aggs; ++a) {
          SOFOS_RETURN_IF_ERROR(AggAccumulate(*plan_->agg_specs[a], scratch_,
                                              eval_, dict_, &accums[a]));
        }
      }
    }

    // SPARQL: an aggregate query with no GROUP BY over an empty input still
    // produces one group (COUNT = 0, SUM = 0, others unbound).
    if (groups.empty() && num_group_vars == 0) {
      groups.emplace_back(Row{}, std::vector<AggAccum>(num_aggs));
    }

    // Ascending group-key order — exactly the row engine's std::map order.
    std::vector<size_t> order(groups.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&groups](size_t a, size_t b) {
      return groups[a].first < groups[b].first;
    });

    results_.reserve(groups.size());
    for (size_t g : order) {
      Row out(num_group_vars + num_aggs, kNullTermId);
      std::copy(groups[g].first.begin(), groups[g].first.end(), out.begin());
      for (size_t a = 0; a < num_aggs; ++a) {
        SOFOS_ASSIGN_OR_RETURN(
            TermId id, AggFinalize(*plan_->agg_specs[a], groups[g].second[a], dict_));
        out[num_group_vars + a] = id;
      }
      results_.push_back(std::move(out));
    }
    return Status::OK();
  }

  std::unique_ptr<BatchOperator> child_;
  const Plan* plan_;
  ExprEvaluator eval_;
  Dictionary* dict_;
  size_t batch_size_;
  ExecStats* stats_;
  Row scratch_;
  bool materialized_ = false;
  std::vector<Row> results_;
  size_t cursor_ = 0;
};

/// Projection into the output layout; expression results are interned (on
/// the caller thread — projection always runs above the exchange).
class BatchProjectOp : public BatchOperator {
 public:
  BatchProjectOp(std::unique_ptr<BatchOperator> child, const Plan* plan,
                 const Dictionary* dict, Dictionary* mutable_dict,
                 const VariableTable* input_vars, int agg_base)
      : child_(std::move(child)),
        plan_(plan),
        eval_(dict, input_vars, agg_base),
        dict_(mutable_dict) {}

  Result<bool> Next(RowBatch* out) override {
    while (true) {
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(&in_));
      if (!has) return false;
      const size_t n = in_.ActiveCount();
      if (n == 0) continue;
      const size_t width = plan_->outputs.size();
      out->Reset(width, n);
      for (size_t i = 0; i < n; ++i) {
        uint32_t r = in_.ActiveIndex(i);
        bool gathered = false;
        for (size_t c = 0; c < width; ++c) {
          const Plan::OutputItem& item = plan_->outputs[c];
          if (item.direct_slot >= 0) {
            out->Col(c)[i] = in_.At(static_cast<size_t>(item.direct_slot), r);
            continue;
          }
          if (item.expr == nullptr) continue;
          if (!gathered) {
            in_.GatherRow(r, &scratch_);
            gathered = true;
          }
          auto value = eval_.Eval(*item.expr, scratch_);
          if (!value.ok() || value.value().is_unbound()) continue;
          auto term = value.value().ToTerm();
          if (!term.ok()) continue;
          out->Col(c)[i] = dict_->Intern(term.value());
        }
      }
      out->set_rows(n);
      return true;
    }
  }

 private:
  std::unique_ptr<BatchOperator> child_;
  const Plan* plan_;
  ExprEvaluator eval_;
  Dictionary* dict_;
  RowBatch in_;
  Row scratch_;
};

class BatchDistinctOp : public BatchOperator {
 public:
  explicit BatchDistinctOp(std::unique_ptr<BatchOperator> child)
      : child_(std::move(child)) {}

  Result<bool> Next(RowBatch* out) override {
    while (true) {
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(out));
      if (!has) return false;
      std::vector<uint32_t> keep;
      keep.reserve(out->ActiveCount());
      for (size_t i = 0; i < out->ActiveCount(); ++i) {
        uint32_t r = out->ActiveIndex(i);
        out->GatherRow(r, &scratch_);
        if (seen_.insert(scratch_).second) keep.push_back(r);
      }
      if (keep.empty()) continue;
      out->SetSel(std::move(keep));
      return true;
    }
  }

 private:
  std::unique_ptr<BatchOperator> child_;
  std::unordered_set<Row, RowHash> seen_;
  Row scratch_;
};

/// ORDER BY over batches: materializes rows plus evaluated keys, stable-sorts
/// with the same comparator as the row engine, streams batches back out.
class BatchOrderByOp : public BatchOperator {
 public:
  BatchOrderByOp(std::unique_ptr<BatchOperator> child, const Plan* plan,
                 const Dictionary* dict, int agg_base, size_t batch_size)
      : child_(std::move(child)),
        plan_(plan),
        eval_(dict, &plan->output_vars, agg_base),
        batch_size_(batch_size) {}

  Result<bool> Next(RowBatch* out) override {
    if (!materialized_) {
      SOFOS_RETURN_IF_ERROR(Materialize());
      materialized_ = true;
    }
    if (cursor_ >= rows_.size()) return false;
    const size_t width = plan_->outputs.size();
    out->ResetShape(width, batch_size_);
    size_t j = 0;
    while (cursor_ < rows_.size() && j < batch_size_) {
      const Row& row = rows_[cursor_++].row;
      for (size_t c = 0; c < width; ++c) out->Col(c)[j] = row[c];
      ++j;
    }
    out->set_rows(j);
    return true;
  }

 private:
  struct Keyed {
    Row row;
    std::vector<Value> keys;
  };

  Status Materialize() {
    RowBatch in;
    while (true) {
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(&in));
      if (!has) break;
      for (size_t i = 0; i < in.ActiveCount(); ++i) {
        Keyed keyed;
        in.GatherRow(in.ActiveIndex(i), &keyed.row);
        for (const auto& [expr, asc] : plan_->order_keys) {
          (void)asc;
          auto v = eval_.Eval(*expr, keyed.row);
          keyed.keys.push_back(v.ok() ? v.value() : Value::Unbound());
        }
        rows_.push_back(std::move(keyed));
      }
    }
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Keyed& a, const Keyed& b) {
                       for (size_t i = 0; i < plan_->order_keys.size(); ++i) {
                         int c = a.keys[i].TotalCompare(b.keys[i]);
                         if (c != 0) {
                           return plan_->order_keys[i].second ? c < 0 : c > 0;
                         }
                       }
                       return false;
                     });
    return Status::OK();
  }

  std::unique_ptr<BatchOperator> child_;
  const Plan* plan_;
  ExprEvaluator eval_;
  size_t batch_size_;
  bool materialized_ = false;
  std::vector<Keyed> rows_;
  size_t cursor_ = 0;
};

/// OFFSET/LIMIT over batches; stops pulling its child once the limit is
/// reached (so upstream work — including exchange morsels — can stop).
class BatchSliceOp : public BatchOperator {
 public:
  BatchSliceOp(std::unique_ptr<BatchOperator> child, int64_t offset, int64_t limit)
      : child_(std::move(child)), offset_(offset), limit_(limit) {}

  Result<bool> Next(RowBatch* out) override {
    while (true) {
      if (limit_ >= 0 && emitted_ >= limit_) return false;
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(out));
      if (!has) return false;
      std::vector<uint32_t> keep;
      for (size_t i = 0; i < out->ActiveCount(); ++i) {
        if (skipped_ < offset_) {
          ++skipped_;
          continue;
        }
        if (limit_ >= 0 && emitted_ >= limit_) break;
        keep.push_back(out->ActiveIndex(i));
        ++emitted_;
      }
      if (keep.empty()) continue;
      out->SetSel(std::move(keep));
      return true;
    }
  }

 private:
  std::unique_ptr<BatchOperator> child_;
  int64_t offset_;
  int64_t limit_;
  int64_t skipped_ = 0;
  int64_t emitted_ = 0;
};

// ---------------------------------------------------------------------------
// Exchange: morsel-driven parallel execution of a pipeline fragment.
// ---------------------------------------------------------------------------

/// Runs one fragment instance (scan → joins → filters) per leaf morsel on
/// the thread pool and streams the per-morsel outputs back to the caller in
/// deterministic partition order. Workers claim morsels from a shared
/// counter (dynamic load balance); each worker drains its fragment into a
/// private buffer, then publishes it. The consumer — the query's caller
/// thread — never blocks idle: while its next morsel is pending it helps
/// drain the pool queue (TryRunOneTask), which also makes nested fan-outs
/// (a query running inside a pool task, as in the batched workload runner)
/// deadlock-free.
///
/// Determinism: concatenating morsel outputs in partition order yields
/// exactly the single-fragment full-range stream, so results are identical
/// at every dop. Row counters merge additively per consumed morsel, also in
/// partition order. Errors surface for the smallest failing morsel.
class ExchangeOp : public BatchOperator {
 public:
  using FragmentFactory = std::function<std::unique_ptr<BatchOperator>(
      TripleStore::ScanRange, ExecStats*)>;

  ExchangeOp(FragmentFactory factory,
             std::vector<TripleStore::ScanRange> morsels, ThreadPool* pool,
             unsigned dop, ExecStats* stats, TraceContext* trace = nullptr,
             uint64_t parent_span = 0)
      : factory_(std::move(factory)),
        morsels_(std::move(morsels)),
        pool_(pool),
        stats_(stats),
        trace_(trace),
        parent_span_(parent_span),
        slots_(morsels_.size()) {
    size_t workers = std::min<size_t>(dop, morsels_.size());
    futures_.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      futures_.push_back(pool_->Submit([this] { WorkerLoop(); }));
    }
  }

  ~ExchangeOp() override {
    abort_.store(true, std::memory_order_relaxed);
    JoinWorkers();
    // Account the work of morsels that were executed but never consumed
    // (an upstream LIMIT stopped pulling): their row counters stay
    // unmerged — the deterministic counters reflect consumed morsels only —
    // but their CPU time was really spent.
    for (size_t m = consume_; m < slots_.size(); ++m) {
      if (slots_[m].done) stats_->cpu_micros += slots_[m].cpu_micros;
    }
    stats_->cpu_micros -= wait_micros_;
  }

  Result<bool> Next(RowBatch* out) override {
    while (consume_ < slots_.size()) {
      Slot& slot = slots_[consume_];
      WaitForSlot(consume_);
      if (!slot.status.ok()) return slot.status;
      if (batch_cursor_ < slot.batches.size()) {
        *out = std::move(slot.batches[batch_cursor_++]);
        return true;
      }
      // Morsel fully consumed: merge its counters (partition order) and
      // free its buffers before moving on.
      stats_->rows_scanned += slot.stats.rows_scanned;
      stats_->intermediate_rows += slot.stats.intermediate_rows;
      stats_->filtered_rows += slot.stats.filtered_rows;
      stats_->cpu_micros += slot.cpu_micros;
      // Per-operator actuals (EXPLAIN ANALYZE): the fragment's slots are a
      // prefix of the main layout, merged by index. Fragment `micros`
      // accumulates across workers, making it a per-operator CPU figure.
      for (size_t i = 0; i < slot.stats.operators.size() &&
                         i < stats_->operators.size();
           ++i) {
        OperatorStats& dst = stats_->operators[i];
        const OperatorStats& src = slot.stats.operators[i];
        dst.rows_out += src.rows_out;
        dst.batches += src.batches;
        dst.micros += src.micros;
        dst.bloom_skips += src.bloom_skips;
        ++dst.morsels;
      }
      slot.batches.clear();
      slot.batches.shrink_to_fit();
      ++consume_;
      batch_cursor_ = 0;
    }
    return false;
  }

 private:
  struct Slot {
    std::vector<RowBatch> batches;
    ExecStats stats;
    Status status = Status::OK();
    double cpu_micros = 0.0;
    bool done = false;
  };

  void WorkerLoop() {
    while (!abort_.load(std::memory_order_relaxed)) {
      size_t m = next_morsel_.fetch_add(1, std::memory_order_relaxed);
      if (m >= morsels_.size()) return;
      RunMorsel(m);
    }
  }

  void RunMorsel(size_t m) {
    ScopedSpan span(trace_, "exchange.morsel", parent_span_);
    WallTimer timer;
    ExecStats fstats;
    std::vector<RowBatch> batches;
    Status status = Status::OK();
    std::unique_ptr<BatchOperator> fragment = factory_(morsels_[m], &fstats);
    while (true) {
      RowBatch batch;
      auto has = fragment->Next(&batch);
      if (!has.ok()) {
        status = has.status();
        break;
      }
      if (!has.value()) break;
      if (batch.ActiveCount() > 0) batches.push_back(std::move(batch));
    }
    double cpu = timer.ElapsedMicros();
    {
      std::lock_guard<std::mutex> lock(mu_);
      Slot& slot = slots_[m];
      slot.batches = std::move(batches);
      slot.stats = fstats;
      slot.status = std::move(status);
      slot.cpu_micros = cpu;
      slot.done = true;
    }
    cv_.notify_all();
  }

  void WaitForSlot(size_t m) {
    WallTimer timer;
    std::unique_lock<std::mutex> lock(mu_);
    while (!slots_[m].done) {
      lock.unlock();
      // Work on the pool queue instead of idling; this may run our own
      // pending morsels (their time is then counted as worker CPU, and
      // excluded here via wait_micros_) or other queries' tasks.
      if (!pool_->TryRunOneTask()) {
        lock.lock();
        if (!slots_[m].done) {
          cv_.wait_for(lock, std::chrono::microseconds(200));
        }
        lock.unlock();
      }
      lock.lock();
    }
    wait_micros_ += timer.ElapsedMicros();
  }

  void JoinWorkers() {
    for (std::future<void>& future : futures_) {
      while (future.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready) {
        if (!pool_->TryRunOneTask()) {
          future.wait_for(std::chrono::microseconds(200));
        }
      }
      try {
        future.get();
      } catch (...) {
        // Fragment code reports errors via Status; an exception here would
        // be a bug in operator code. Swallow rather than terminate: the
        // per-slot Status still carries the user-visible error.
      }
    }
    futures_.clear();
  }

  FragmentFactory factory_;
  std::vector<TripleStore::ScanRange> morsels_;
  ThreadPool* pool_;
  ExecStats* stats_;
  TraceContext* trace_;
  uint64_t parent_span_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  std::vector<std::future<void>> futures_;
  std::atomic<size_t> next_morsel_{0};
  std::atomic<bool> abort_{false};

  // Consumer state (caller thread only).
  size_t consume_ = 0;
  size_t batch_cursor_ = 0;
  double wait_micros_ = 0.0;
};

}  // namespace

namespace {

/// The exchange schedule for a leaf scan of `leaf_rows` triples under
/// `options` — shared by RunBatch and DescribePhysical so EXPLAIN always
/// reports exactly what execution would do. Large scans split at
/// morsel_rows; small leading scans (the planner starts from the smallest
/// pattern, which then fans out through the joins) split finer, about
/// kMorselsPerWorker per worker, so they still parallelize.
struct MorselSchedule {
  size_t num_morsels = 0;
  unsigned dop = 1;      // workers the exchange would actually use
  bool exchange = false; // false: run one fragment inline on the caller
};

MorselSchedule ComputeMorselSchedule(size_t leaf_rows,
                                     const ExecOptions& options) {
  constexpr size_t kMorselsPerWorker = 8;
  MorselSchedule schedule;
  const size_t morsel_rows = std::max<size_t>(1, options.morsel_rows);
  const unsigned dop = options.dop < 1 ? 1 : options.dop;
  const size_t by_size = (leaf_rows + morsel_rows - 1) / morsel_rows;
  schedule.num_morsels = std::min<size_t>(
      leaf_rows,
      std::max<size_t>(by_size, static_cast<size_t>(dop) * kMorselsPerWorker));
  schedule.exchange =
      options.pool != nullptr && dop > 1 && schedule.num_morsels > 1;
  schedule.dop =
      schedule.exchange
          ? static_cast<unsigned>(std::min<size_t>(dop, schedule.num_morsels))
          : 1;
  return schedule;
}

}  // namespace

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

Executor::Executor(const Plan* plan, const TripleStore* store, Dictionary* dict,
                   ExecOptions options)
    : plan_(plan), store_(store), dict_(dict), options_(options) {}

std::unique_ptr<Operator> Executor::BuildVolcanoPipeline(ExecStats* stats) {
  std::unique_ptr<Operator> op;
  const size_t width = plan_->pattern_vars.size();

  const bool analyze = options_.analyze;
  SlotLayout layout;
  if (analyze) {
    layout = ComputeSlotLayout(*plan_);
    if (stats->operators.size() != layout.total) {
      stats->operators = BuildOperatorSlots(*plan_, layout);
    }
  }
  // Wraps `inner` with the timing instrumentation when ANALYZE is on.
  auto timed = [&](std::unique_ptr<Operator> inner,
                   int slot) -> std::unique_ptr<Operator> {
    if (!analyze || slot < 0) return inner;
    return std::make_unique<TimedOp>(std::move(inner),
                                     &stats->operators[slot]);
  };
  auto op_slot = [&](int slot) -> OperatorStats* {
    return analyze && slot >= 0 ? &stats->operators[slot] : nullptr;
  };

  if (plan_->empty_guaranteed || plan_->steps.empty()) {
    op = timed(std::make_unique<EmptyOp>(), analyze ? 0 : -1);
  } else {
    for (size_t i = 0; i < plan_->steps.size(); ++i) {
      const PatternStep& step = plan_->steps[i];
      const int slot = analyze ? layout.step_op[i] : -1;
      if (i == 0) {
        op = std::make_unique<ScanOp>(store_, &step, width, stats,
                                      op_slot(slot));
      } else {
        op = std::make_unique<IndexJoinOp>(std::move(op), store_, &step, stats,
                                           op_slot(slot));
      }
      op = timed(std::move(op), slot);
      if (!step.filters.empty()) {
        op = timed(std::make_unique<FilterOp>(std::move(op), step.filters,
                                              dict_, &plan_->pattern_vars,
                                              stats),
                   analyze ? layout.step_filter[i] : -1);
      }
    }
  }

  int agg_base = -1;
  const VariableTable* project_input = &plan_->pattern_vars;
  if (plan_->is_aggregate) {
    op = timed(std::make_unique<AggregateOp>(std::move(op), plan_, dict_, dict_,
                                             stats),
               layout.aggregate);
    agg_base = static_cast<int>(plan_->group_slots.size());
    project_input = &plan_->group_vars;
    if (!plan_->having.empty()) {
      // HAVING is evaluated over the aggregate output layout: group vars
      // first, then one slot per aggregate (reached via agg_base).
      op = timed(std::make_unique<FilterOp>(std::move(op), plan_->having,
                                            dict_, &plan_->group_vars, stats,
                                            agg_base),
                 layout.having);
    }
  }

  op = timed(std::make_unique<ProjectOp>(std::move(op), plan_, dict_, dict_,
                                         project_input, agg_base),
             layout.project);
  if (plan_->distinct) {
    op = timed(std::make_unique<DistinctOp>(std::move(op)), layout.distinct);
  }
  if (!plan_->order_keys.empty()) {
    op = timed(std::make_unique<OrderByOp>(std::move(op), plan_, dict_,
                                           agg_base),
               layout.order_by);
  }
  if (plan_->limit >= 0 || plan_->offset > 0) {
    op = timed(std::make_unique<SliceOp>(std::move(op), plan_->offset,
                                         plan_->limit),
               layout.slice);
  }
  return op;
}

Status Executor::RunVolcano(std::vector<Row>* out, ExecStats* stats) {
  ScopedSpan run_span(options_.trace, "exec.volcano", options_.trace_parent);
  std::unique_ptr<Operator> root = BuildVolcanoPipeline(stats);
  Row row;
  while (true) {
    SOFOS_ASSIGN_OR_RETURN(bool has, root->Next(&row));
    if (!has) break;
    out->push_back(row);
  }
  return Status::OK();
}

Status Executor::RunBatch(std::vector<Row>* out, ExecStats* stats) {
  const size_t width = plan_->pattern_vars.size();
  const size_t batch_size = std::max<size_t>(1, options_.batch_size);

  const bool analyze = options_.analyze;
  SlotLayout layout;
  if (analyze) {
    layout = ComputeSlotLayout(*plan_);
    if (stats->operators.size() != layout.total) {
      stats->operators = BuildOperatorSlots(*plan_, layout);
    }
  }
  ScopedSpan run_span(options_.trace, "exec.batch", options_.trace_parent);

  // Shared-build sides of the plan's hash joins: built once here on the
  // caller thread, then probed read-only by every morsel worker.
  std::vector<std::unique_ptr<internal::JoinHashTable>> tables(
      plan_->steps.size());
  if (!plan_->empty_guaranteed) {
    for (size_t i = 1; i < plan_->steps.size(); ++i) {
      if (plan_->steps[i].algo == JoinAlgo::kHashProbe) {
        ScopedSpan build_span(options_.trace, "exec.hash_build",
                              run_span.id());
        WallTimer build_timer;
        OperatorStats* slot =
            analyze ? &stats->operators[layout.step_op[i]] : nullptr;
        tables[i] = BuildJoinHashTable(store_, plan_->steps[i], stats, slot);
        if (slot != nullptr) {
          slot->hash_build_rows += tables[i]->triples.size();
          slot->build_micros += build_timer.ElapsedMicros();
        }
      }
    }
  }

  // One fragment = scan → joins → pushed-down filters, instantiated per
  // morsel with fragment-local stats. Under ANALYZE each fragment operator
  // is wrapped to record actuals into the leading `fragment_slots` entries
  // of `fstats->operators` (the main stats inline, a fragment-local vector
  // under the exchange — merged back by index in partition order).
  auto make_fragment =
      [this, width, batch_size, &tables, analyze, &layout](
          TripleStore::ScanRange range,
          ExecStats* fstats) -> std::unique_ptr<BatchOperator> {
    auto timed = [&](std::unique_ptr<BatchOperator> inner,
                     int slot) -> std::unique_ptr<BatchOperator> {
      if (!analyze || slot < 0) return inner;
      return std::make_unique<TimedBatchOp>(std::move(inner),
                                            &fstats->operators[slot]);
    };
    if (analyze && fstats->operators.size() < layout.fragment_slots) {
      fstats->operators.resize(layout.fragment_slots);
    }
    std::unique_ptr<BatchOperator> op = std::make_unique<BatchScanOp>(
        range, &plan_->steps[0], width, batch_size, fstats);
    op = timed(std::move(op), analyze ? layout.step_op[0] : -1);
    if (!plan_->steps[0].filters.empty()) {
      op = timed(std::make_unique<BatchFilterOp>(std::move(op),
                                                 plan_->steps[0].filters, dict_,
                                                 &plan_->pattern_vars, fstats),
                 analyze ? layout.step_filter[0] : -1);
    }
    for (size_t i = 1; i < plan_->steps.size(); ++i) {
      const PatternStep& step = plan_->steps[i];
      const int slot = analyze ? layout.step_op[i] : -1;
      op = std::make_unique<BatchJoinOp>(
          std::move(op), store_, &step, tables[i].get(), width, batch_size,
          fstats, slot >= 0 ? &fstats->operators[slot] : nullptr);
      op = timed(std::move(op), slot);
      if (!step.filters.empty()) {
        op = timed(std::make_unique<BatchFilterOp>(std::move(op), step.filters,
                                                   dict_, &plan_->pattern_vars,
                                                   fstats),
                   analyze ? layout.step_filter[i] : -1);
      }
    }
    return op;
  };

  // Leaf scheduling: morsel-partition the first pattern's range and fan the
  // fragments out when a pool is available; otherwise run one fragment over
  // the full range inline (see ComputeMorselSchedule). Row counters are
  // additive over morsels and therefore independent of the partitioning
  // for fully-drained queries. A bound leading pattern resolves inside one
  // shard of the COW store, so the morsels are per-shard slices; the full
  // scan morselizes the canonical array — either way partition boundaries
  // depend only on range length, keeping schedules (and Explain) identical
  // at every shard count.
  std::unique_ptr<BatchOperator> op;
  if (plan_->empty_guaranteed || plan_->steps.empty()) {
    op = std::make_unique<BatchEmptyOp>();
    if (analyze) {
      op = std::make_unique<TimedBatchOp>(std::move(op), &stats->operators[0]);
    }
  } else {
    const PatternStep& leaf = plan_->steps.front();
    bool leaf_skipped = false;
    TripleStore::ScanRange full =
        store_->Scan(leaf.consts[0], leaf.consts[1], leaf.consts[2],
                     analyze ? &leaf_skipped : nullptr);
    if (leaf_skipped) ++stats->operators[layout.step_op[0]].bloom_skips;
    MorselSchedule schedule = ComputeMorselSchedule(full.size(), options_);
    if (schedule.exchange) {
      std::vector<TripleStore::ScanRange> morsels = store_->ScanPartitions(
          leaf.consts[0], leaf.consts[1], leaf.consts[2],
          schedule.num_morsels);
      stats->morsels = morsels.size();
      stats->dop = static_cast<uint32_t>(
          std::min<size_t>(schedule.dop, morsels.size()));
      op = std::make_unique<ExchangeOp>(make_fragment, std::move(morsels),
                                        options_.pool, schedule.dop, stats,
                                        options_.trace, run_span.id());
    } else {
      op = make_fragment(full, stats);
    }
  }

  // Serial tail: aggregation, HAVING, projection, DISTINCT, ORDER BY, slice
  // — everything that interns literals or is an inherent pipeline breaker
  // runs on the caller thread, consuming the deterministic batch stream.
  auto timed_tail = [&](std::unique_ptr<BatchOperator> inner,
                        int slot) -> std::unique_ptr<BatchOperator> {
    if (!analyze || slot < 0) return inner;
    return std::make_unique<TimedBatchOp>(std::move(inner),
                                          &stats->operators[slot]);
  };
  int agg_base = -1;
  const VariableTable* project_input = &plan_->pattern_vars;
  if (plan_->is_aggregate) {
    op = timed_tail(std::make_unique<BatchAggregateOp>(std::move(op), plan_,
                                                       dict_, dict_, batch_size,
                                                       stats),
                    layout.aggregate);
    agg_base = static_cast<int>(plan_->group_slots.size());
    project_input = &plan_->group_vars;
    if (!plan_->having.empty()) {
      op = timed_tail(std::make_unique<BatchFilterOp>(std::move(op),
                                                      plan_->having, dict_,
                                                      &plan_->group_vars, stats,
                                                      agg_base),
                      layout.having);
    }
  }
  op = timed_tail(std::make_unique<BatchProjectOp>(std::move(op), plan_, dict_,
                                                   dict_, project_input,
                                                   agg_base),
                  layout.project);
  if (plan_->distinct) {
    op = timed_tail(std::make_unique<BatchDistinctOp>(std::move(op)),
                    layout.distinct);
  }
  if (!plan_->order_keys.empty()) {
    op = timed_tail(std::make_unique<BatchOrderByOp>(std::move(op), plan_,
                                                     dict_, agg_base,
                                                     batch_size),
                    layout.order_by);
  }
  if (plan_->limit >= 0 || plan_->offset > 0) {
    op = timed_tail(std::make_unique<BatchSliceOp>(std::move(op),
                                                   plan_->offset, plan_->limit),
                    layout.slice);
  }

  RowBatch batch;
  while (true) {
    SOFOS_ASSIGN_OR_RETURN(bool has, op->Next(&batch));
    if (!has) break;
    for (size_t i = 0; i < batch.ActiveCount(); ++i) {
      out->emplace_back();
      batch.GatherRow(batch.ActiveIndex(i), &out->back());
    }
  }
  // `op` (and with it any ExchangeOp, which joins its workers in its
  // destructor) dies here, before `tables` and `make_fragment` go out of
  // scope.
  op.reset();
  return Status::OK();
}

Status Executor::Run(std::vector<Row>* out, ExecStats* stats) {
  WallTimer timer;
  Status status = options_.mode == ExecMode::kVolcano ? RunVolcano(out, stats)
                                                      : RunBatch(out, stats);
  double wall = timer.ElapsedMicros();
  stats->exec_micros += wall;
  // The caller thread's busy time; ExchangeOp already added worker CPU and
  // subtracted the consumer's blocked time.
  stats->cpu_micros += wall;
  if (!status.ok()) return status;
  stats->output_rows += out->size();
  return Status::OK();
}

std::string Executor::DescribePhysical(const Plan& plan, const TripleStore& store,
                                       const ExecOptions& options) {
  if (options.mode == ExecMode::kVolcano) {
    return "PHYSICAL volcano (row-at-a-time, serial)\n";
  }
  if (plan.empty_guaranteed || plan.steps.empty()) {
    return "PHYSICAL batch (empty plan)\n";
  }
  const PatternStep& leaf = plan.steps.front();
  const size_t leaf_rows = static_cast<size_t>(
      store.Count(leaf.consts[0], leaf.consts[1], leaf.consts[2]));
  MorselSchedule schedule = ComputeMorselSchedule(leaf_rows, options);
  size_t hash_joins = 0;
  for (const PatternStep& step : plan.steps) {
    if (step.algo == JoinAlgo::kHashProbe) ++hash_joins;
  }
  const size_t rows_per_morsel =
      schedule.num_morsels == 0 ? 0 : leaf_rows / schedule.num_morsels;
  return StrFormat(
      "PHYSICAL batch size=%zu dop=%u morsels=%zu (~%zu leaf rows each) "
      "hash_joins=%zu%s\n",
      options.batch_size, schedule.dop, schedule.num_morsels, rows_per_morsel,
      hash_joins,
      schedule.exchange ? "  EXCHANGE" : "  (serial: no pool or single morsel)");
}

namespace {

/// Self time of slot `i`: inclusive micros minus the child's inclusive
/// micros (the previous slot in the linear pipeline). Clamped at 0 — under
/// an exchange, fragment-slot micros are summed across workers, so the
/// serial tail's first slot can measure less than its "child".
double SelfMicros(const std::vector<OperatorStats>& slots, size_t i) {
  double self = slots[i].micros - (i > 0 ? slots[i - 1].micros : 0.0);
  return self < 0.0 ? 0.0 : self;
}

}  // namespace

std::string Executor::RenderAnalyze(const Plan& plan, const ExecStats& stats) {
  SlotLayout layout = ComputeSlotLayout(plan);
  std::string out;
  if (stats.operators.size() != layout.total) {
    // Stats were not collected with ANALYZE (or the plan changed); render
    // the estimates-only plan rather than mismatched actuals.
    return plan.ToString() + "ANALYZE: no operator stats collected\n";
  }
  for (size_t i = 0; i < stats.operators.size(); ++i) {
    const OperatorStats& slot = stats.operators[i];
    const bool is_fragment = i < layout.fragment_slots;
    const bool is_filter = slot.label.rfind("FILTER", 0) == 0;
    // FILTER slots indent under their step, matching Plan::ToString.
    out += is_filter ? "   " + slot.label : slot.label;
    if (is_fragment && !is_filter && slot.label != "EMPTY") {
      out += StrFormat("  [est=%llu]",
                       static_cast<unsigned long long>(slot.est_rows));
    }
    out += StrFormat("  (actual rows=%llu batches=%llu self=%.1fus",
                     static_cast<unsigned long long>(slot.rows_out),
                     static_cast<unsigned long long>(slot.batches),
                     SelfMicros(stats.operators, i));
    if (slot.hash_build_rows > 0 || slot.build_micros > 0) {
      out += StrFormat(" build_rows=%llu build=%.1fus",
                       static_cast<unsigned long long>(slot.hash_build_rows),
                       slot.build_micros);
    }
    if (is_fragment) {
      out += StrFormat(" morsels=%llu bloom_skips=%llu",
                       static_cast<unsigned long long>(slot.morsels),
                       static_cast<unsigned long long>(slot.bloom_skips));
    }
    out += ")\n";
  }
  out += StrFormat(
      "TOTALS output_rows=%llu rows_scanned=%llu intermediate_rows=%llu "
      "filtered_rows=%llu plan=%.1fus exec=%.1fus cpu=%.1fus dop=%u "
      "morsels=%llu\n",
      static_cast<unsigned long long>(stats.output_rows),
      static_cast<unsigned long long>(stats.rows_scanned),
      static_cast<unsigned long long>(stats.intermediate_rows),
      static_cast<unsigned long long>(stats.filtered_rows), stats.plan_micros,
      stats.exec_micros, stats.cpu_micros, stats.dop,
      static_cast<unsigned long long>(stats.morsels));
  return out;
}

// ---------------------------------------------------------------------------
// Seeded BGP evaluation (delta_join.h) — the Δ-pattern-join primitive of
// incremental view maintenance. Lives in this TU to reuse the batch
// engine's private machinery (BindStep, BuildJoinHashTable, HashKey): the
// maintenance delta path must emit exactly the match streams a full
// evaluation would, and sharing the code is how that stays true.
// ---------------------------------------------------------------------------

VariableTable BgpVariables(const std::vector<TriplePattern>& patterns) {
  VariableTable vars;
  for (const TriplePattern& tp : patterns) {
    for (const PatternTerm* term : {&tp.s, &tp.p, &tp.o}) {
      if (term->is_var()) vars.GetOrAdd(term->var());
    }
  }
  return vars;
}

Result<SeededJoinResult> EvaluateSeededBgp(
    const TripleStore& store, const VariableTable& vars,
    const std::vector<TriplePattern>& patterns,
    const std::vector<size_t>& remaining, const std::vector<int>& bound_slots,
    const std::vector<Row>& seeds) {
  SeededJoinResult out;
  if (seeds.empty()) return out;
  if (remaining.empty()) {
    out.rows = seeds;
    out.seed_index.resize(seeds.size());
    for (size_t i = 0; i < seeds.size(); ++i) {
      out.seed_index[i] = static_cast<uint32_t>(i);
    }
    return out;
  }

  // ---- Resolve constants and estimate cardinalities (planner step 1). ----
  struct Candidate {
    const TriplePattern* pattern = nullptr;
    std::array<TermId, 3> consts{{kNullTermId, kNullTermId, kNullTermId}};
    std::array<const std::string*, 3> vars{{nullptr, nullptr, nullptr}};
    uint64_t est = 0;
  };
  const Dictionary& dict = store.dictionary();
  std::vector<Candidate> candidates;
  candidates.reserve(remaining.size());
  for (size_t idx : remaining) {
    if (idx >= patterns.size()) {
      return Status::Internal("EvaluateSeededBgp: pattern index out of range");
    }
    const TriplePattern& tp = patterns[idx];
    Candidate c;
    c.pattern = &tp;
    const PatternTerm* positions[3] = {&tp.s, &tp.p, &tp.o};
    for (int i = 0; i < 3; ++i) {
      if (positions[i]->is_var()) {
        c.vars[i] = &positions[i]->var();
      } else {
        auto id = dict.Lookup(positions[i]->term());
        if (!id.has_value()) return out;  // constant absent: sub-BGP is empty
        c.consts[i] = *id;
      }
    }
    c.est = store.Count(c.consts[0], c.consts[1], c.consts[2]);
    candidates.push_back(std::move(c));
  }

  // ---- Greedy order (planner step 2, seeds pre-binding bound_slots). ----
  std::unordered_set<std::string> bound;
  for (int slot : bound_slots) {
    if (slot < 0 || static_cast<size_t>(slot) >= vars.size()) {
      return Status::Internal("EvaluateSeededBgp: bound slot out of range");
    }
    bound.insert(vars.names()[static_cast<size_t>(slot)]);
  }
  std::vector<PatternStep> steps;
  steps.reserve(candidates.size());
  std::vector<bool> used(candidates.size(), false);
  for (size_t step_idx = 0; step_idx < candidates.size(); ++step_idx) {
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      bool connected = false;
      for (const auto* var : candidates[i].vars) {
        if (var != nullptr && bound.count(*var) > 0) {
          connected = true;
          break;
        }
      }
      // Prefer connected patterns; break ties by cardinality, then by the
      // position in `remaining` (first wins) — fully deterministic.
      if (best >= 0 && !connected && best_connected) continue;
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected &&
           candidates[i].est < candidates[static_cast<size_t>(best)].est)) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    Candidate& chosen = candidates[static_cast<size_t>(best)];
    used[static_cast<size_t>(best)] = true;

    PatternStep step;
    step.pattern = *chosen.pattern;
    step.consts = chosen.consts;
    step.est_cardinality = chosen.est;
    step.connected = best_connected;
    for (int i = 0; i < 3; ++i) {
      if (chosen.vars[i] != nullptr && bound.count(*chosen.vars[i]) > 0) {
        step.key_positions.push_back(i);
      }
    }
    for (int i = 0; i < 3; ++i) {
      if (chosen.vars[i] != nullptr) {
        auto slot = vars.Get(*chosen.vars[i]);
        if (!slot.has_value()) {
          return Status::Internal("EvaluateSeededBgp: variable ?" +
                                  *chosen.vars[i] + " missing from layout");
        }
        step.slots[i] = *slot;
        bound.insert(*chosen.vars[i]);
      } else {
        step.slots[i] = -1;
      }
    }
    bool bound_pos[3];
    for (int f = 0; f < 3; ++f) {
      bound_pos[f] = step.consts[f] != kNullTermId ||
                     std::find(step.key_positions.begin(),
                               step.key_positions.end(),
                               f) != step.key_positions.end();
    }
    step.match_order =
        TripleStore::ScanFieldOrder(bound_pos[0], bound_pos[1], bound_pos[2]);
    steps.push_back(std::move(step));
  }

  // ---- Materialized stage-by-stage execution. ----
  const size_t width = vars.size();
  std::vector<Row> cur = seeds;
  for (const Row& row : cur) {
    if (row.size() != width) {
      return Status::Internal("EvaluateSeededBgp: seed width mismatch");
    }
  }
  std::vector<uint32_t> sidx(cur.size());
  for (size_t i = 0; i < sidx.size(); ++i) sidx[i] = static_cast<uint32_t>(i);

  ExecStats build_stats;
  for (const PatternStep& step : steps) {
    if (cur.empty()) break;
    // Same hash-build-vs-index-probe decision as the batch planner, with
    // the *actual* probe-side row count instead of an estimate.
    std::unique_ptr<internal::JoinHashTable> table;
    if (!step.key_positions.empty() && step.est_cardinality > 0 &&
        step.est_cardinality <= kHashBuildMaxRows &&
        cur.size() >= kHashProbeMinRows &&
        cur.size() >= kHashProbePerBuildRow * step.est_cardinality) {
      table = BuildJoinHashTable(&store, step, &build_stats);
    }
    std::vector<Row> next;
    std::vector<uint32_t> nidx;
    for (size_t r = 0; r < cur.size(); ++r) {
      const Row& row = cur[r];
      TermId ids[3];
      for (int i = 0; i < 3; ++i) {
        ids[i] = step.slots[i] >= 0 ? row[static_cast<size_t>(step.slots[i])]
                                    : step.consts[i];
      }
      const Triple* begin = nullptr;
      const Triple* end = nullptr;
      TripleStore::ScanRange range;  // keeps compact-layout backing alive
      if (table != nullptr) {
        HashKey key;
        for (int pos : step.key_positions) {
          key.v[static_cast<size_t>(pos)] = ids[pos];
        }
        auto it = table->ranges.find(key);
        if (it == table->ranges.end()) continue;
        begin = table->triples.data() + it->second.offset;
        end = begin + it->second.length;
      } else {
        range = store.Scan(ids[0], ids[1], ids[2]);
        begin = range.begin();
        end = range.end();
      }
      for (const Triple* t = begin; t != end; ++t) {
        ++out.rows_scanned;
        Row extended = row;
        if (BindStep(step, *t, &extended)) {
          next.push_back(std::move(extended));
          nidx.push_back(sidx[r]);
        }
      }
    }
    cur = std::move(next);
    sidx = std::move(nidx);
  }
  out.rows_scanned += build_stats.rows_scanned;
  out.rows = std::move(cur);
  out.seed_index = std::move(sidx);
  return out;
}

}  // namespace sparql
}  // namespace sofos
