#include "sparql/executor.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/timer.h"
#include "sparql/expression.h"
#include "sparql/value.h"

namespace sofos {
namespace sparql {

namespace {

uint64_t HashRow(const Row& row) {
  return Fnv1a64(row.data(), row.size() * sizeof(TermId));
}

struct RowHash {
  size_t operator()(const Row& row) const { return static_cast<size_t>(HashRow(row)); }
};

/// Binds the variable positions of `step` from `triple` into `row`.
/// Returns false when a repeated variable binds inconsistently (e.g. the
/// pattern `?x ?p ?x` against a triple whose s != o) or when the triple
/// conflicts with values already present in the row.
bool BindStep(const PatternStep& step, const Triple& triple, Row* row) {
  const TermId fields[3] = {triple.s, triple.p, triple.o};
  for (int i = 0; i < 3; ++i) {
    int slot = step.slots[i];
    if (slot < 0) continue;
    TermId current = (*row)[static_cast<size_t>(slot)];
    if (current == kNullTermId) {
      (*row)[static_cast<size_t>(slot)] = fields[i];
    } else if (current != fields[i]) {
      return false;
    }
  }
  return true;
}

/// Scan of the first pattern step.
class ScanOp : public Operator {
 public:
  ScanOp(const TripleStore* store, const PatternStep* step, size_t width,
         ExecStats* stats)
      : step_(step), width_(width), stats_(stats) {
    range_ = store->Scan(step->consts[0], step->consts[1], step->consts[2]);
    next_ = range_.begin();
  }

  Result<bool> Next(Row* row) override {
    while (next_ != range_.end()) {
      const Triple& t = *next_++;
      ++stats_->rows_scanned;
      row->assign(width_, kNullTermId);
      if (BindStep(*step_, t, row)) return true;
    }
    return false;
  }

 private:
  const PatternStep* step_;
  size_t width_;
  ExecStats* stats_;
  TripleStore::ScanRange range_;
  const Triple* next_ = nullptr;
};

/// Index nested-loop join: for every input row, substitutes the bound
/// variables into the pattern and scans the matching index range.
class IndexJoinOp : public Operator {
 public:
  IndexJoinOp(std::unique_ptr<Operator> child, const TripleStore* store,
              const PatternStep* step, ExecStats* stats)
      : child_(std::move(child)), store_(store), step_(step), stats_(stats) {}

  Result<bool> Next(Row* row) override {
    while (true) {
      while (cursor_ != range_.end()) {
        const Triple& t = *cursor_++;
        ++stats_->rows_scanned;
        *row = current_;
        if (BindStep(*step_, t, row)) return true;
      }
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(&current_));
      if (!has) return false;
      ++stats_->intermediate_rows;
      TermId ids[3];
      for (int i = 0; i < 3; ++i) {
        if (step_->slots[i] >= 0) {
          ids[i] = current_[static_cast<size_t>(step_->slots[i])];  // may be null
        } else {
          ids[i] = step_->consts[i];
        }
      }
      range_ = store_->Scan(ids[0], ids[1], ids[2]);
      cursor_ = range_.begin();
    }
  }

 private:
  std::unique_ptr<Operator> child_;
  const TripleStore* store_;
  const PatternStep* step_;
  ExecStats* stats_;
  Row current_;
  TripleStore::ScanRange range_;
  const Triple* cursor_ = nullptr;
};

/// FILTER evaluation; SPARQL semantics: an evaluation error removes the row.
class FilterOp : public Operator {
 public:
  FilterOp(std::unique_ptr<Operator> child, std::vector<const Expr*> filters,
           const Dictionary* dict, const VariableTable* vars, ExecStats* stats,
           int agg_base = -1)
      : child_(std::move(child)),
        filters_(std::move(filters)),
        eval_(dict, vars, agg_base),
        stats_(stats) {}

  Result<bool> Next(Row* row) override {
    while (true) {
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(row));
      if (!has) return false;
      bool pass = true;
      for (const Expr* f : filters_) {
        auto verdict = eval_.EvalBool(*f, *row);
        if (!verdict.ok() || !verdict.value()) {
          pass = false;
          break;
        }
      }
      if (pass) return true;
      ++stats_->filtered_rows;
    }
  }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<const Expr*> filters_;
  ExprEvaluator eval_;
  ExecStats* stats_;
};

/// Hash aggregation. Materializes all groups on the first Next() call and
/// then streams [group vars..., agg results...] rows.
class AggregateOp : public Operator {
 public:
  AggregateOp(std::unique_ptr<Operator> child, const Plan* plan,
              const Dictionary* dict, Dictionary* mutable_dict, ExecStats* stats)
      : child_(std::move(child)),
        plan_(plan),
        eval_(dict, &plan->pattern_vars),
        dict_(mutable_dict),
        stats_(stats) {}

  Result<bool> Next(Row* row) override {
    if (!materialized_) {
      SOFOS_RETURN_IF_ERROR(Materialize());
      materialized_ = true;
    }
    if (cursor_ >= results_.size()) return false;
    *row = results_[cursor_++];
    return true;
  }

 private:
  struct Accum {
    uint64_t count = 0;
    int64_t isum = 0;
    double dsum = 0.0;
    bool saw_double = false;
    bool has_best = false;
    Value best;
    std::unordered_set<TermId> distinct_ids;
  };

  Status Materialize() {
    const size_t num_groups_vars = plan_->group_slots.size();
    const size_t num_aggs = plan_->agg_specs.size();
    // Group key -> accumulators. std::map keeps the output deterministic.
    std::map<Row, std::vector<Accum>> groups;

    Row in;
    while (true) {
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(&in));
      if (!has) break;
      ++stats_->intermediate_rows;
      Row key(num_groups_vars);
      for (size_t i = 0; i < num_groups_vars; ++i) {
        key[i] = in[static_cast<size_t>(plan_->group_slots[i])];
      }
      auto [it, inserted] = groups.try_emplace(std::move(key));
      if (inserted) it->second.resize(num_aggs);
      for (size_t a = 0; a < num_aggs; ++a) {
        SOFOS_RETURN_IF_ERROR(Accumulate(*plan_->agg_specs[a], in, &it->second[a]));
      }
    }

    // SPARQL: an aggregate query with no GROUP BY over an empty input still
    // produces one group (COUNT = 0, SUM = 0, others unbound).
    if (groups.empty() && num_groups_vars == 0) {
      groups.try_emplace(Row{}).first->second.resize(num_aggs);
    }

    for (auto& [key, accums] : groups) {
      Row out(num_groups_vars + num_aggs, kNullTermId);
      std::copy(key.begin(), key.end(), out.begin());
      for (size_t a = 0; a < num_aggs; ++a) {
        SOFOS_ASSIGN_OR_RETURN(
            TermId id, Finalize(*plan_->agg_specs[a], accums[a]));
        out[num_groups_vars + a] = id;
      }
      results_.push_back(std::move(out));
    }
    return Status::OK();
  }

  Status Accumulate(const Expr& spec, const Row& in, Accum* acc) {
    if (spec.count_star) {
      ++acc->count;
      return Status::OK();
    }
    auto value = eval_.Eval(*spec.agg_arg, in);
    // SPARQL semantics: rows whose aggregate expression errors (including
    // unbound) are skipped by the aggregate, not the whole group.
    if (!value.ok() || value.value().is_unbound()) return Status::OK();
    const Value& v = value.value();

    if (spec.agg_distinct) {
      SOFOS_ASSIGN_OR_RETURN(Term term, v.ToTerm());
      TermId id = dict_->Intern(term);
      if (!acc->distinct_ids.insert(id).second) return Status::OK();
    }

    ++acc->count;
    switch (spec.agg) {
      case AggKind::kCount:
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        if (!v.is_numeric()) break;  // non-numeric values are skipped
        if (v.type() == Value::Type::kDouble) {
          acc->saw_double = true;
          acc->dsum += v.double_value();
        } else {
          acc->isum += v.int_value();
        }
        break;
      case AggKind::kMin:
        if (!acc->has_best || v.TotalCompare(acc->best) < 0) {
          acc->best = v;
          acc->has_best = true;
        }
        break;
      case AggKind::kMax:
        if (!acc->has_best || v.TotalCompare(acc->best) > 0) {
          acc->best = v;
          acc->has_best = true;
        }
        break;
    }
    return Status::OK();
  }

  Result<TermId> Finalize(const Expr& spec, const Accum& acc) {
    Value result;
    switch (spec.agg) {
      case AggKind::kCount:
        result = Value::Int(static_cast<int64_t>(acc.count));
        break;
      case AggKind::kSum:
        if (acc.saw_double) {
          result = Value::MakeDouble(acc.dsum + static_cast<double>(acc.isum));
        } else {
          result = Value::Int(acc.isum);  // SUM of empty input is 0
        }
        break;
      case AggKind::kAvg:
        if (acc.count == 0) return kNullTermId;
        result = Value::MakeDouble(
            (acc.dsum + static_cast<double>(acc.isum)) /
            static_cast<double>(acc.count));
        break;
      case AggKind::kMin:
      case AggKind::kMax:
        if (!acc.has_best) return kNullTermId;
        result = acc.best;
        break;
    }
    SOFOS_ASSIGN_OR_RETURN(Term term, result.ToTerm());
    return dict_->Intern(term);
  }

  std::unique_ptr<Operator> child_;
  const Plan* plan_;
  ExprEvaluator eval_;
  Dictionary* dict_;
  ExecStats* stats_;
  bool materialized_ = false;
  std::vector<Row> results_;
  size_t cursor_ = 0;
};

/// Projection into the output layout; expression results are interned.
/// Expression evaluation errors yield unbound outputs (SPARQL semantics).
class ProjectOp : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child, const Plan* plan,
            const Dictionary* dict, Dictionary* mutable_dict,
            const VariableTable* input_vars, int agg_base)
      : child_(std::move(child)),
        plan_(plan),
        eval_(dict, input_vars, agg_base),
        dict_(mutable_dict) {}

  Result<bool> Next(Row* row) override {
    Row in;
    SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(&in));
    if (!has) return false;
    row->assign(plan_->outputs.size(), kNullTermId);
    for (size_t i = 0; i < plan_->outputs.size(); ++i) {
      const Plan::OutputItem& item = plan_->outputs[i];
      if (item.direct_slot >= 0) {
        (*row)[i] = in[static_cast<size_t>(item.direct_slot)];
        continue;
      }
      if (item.expr == nullptr) continue;
      auto value = eval_.Eval(*item.expr, in);
      if (!value.ok() || value.value().is_unbound()) continue;
      auto term = value.value().ToTerm();
      if (!term.ok()) continue;
      (*row)[i] = dict_->Intern(term.value());
    }
    return true;
  }

 private:
  std::unique_ptr<Operator> child_;
  const Plan* plan_;
  ExprEvaluator eval_;
  Dictionary* dict_;
};

class DistinctOp : public Operator {
 public:
  explicit DistinctOp(std::unique_ptr<Operator> child) : child_(std::move(child)) {}

  Result<bool> Next(Row* row) override {
    while (true) {
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(row));
      if (!has) return false;
      if (seen_.insert(*row).second) return true;
    }
  }

 private:
  std::unique_ptr<Operator> child_;
  std::unordered_set<Row, RowHash> seen_;
};

/// ORDER BY: materializes and sorts by evaluated keys using the total
/// order (evaluation errors sort as unbound, i.e. first).
class OrderByOp : public Operator {
 public:
  OrderByOp(std::unique_ptr<Operator> child, const Plan* plan,
            const Dictionary* dict, int agg_base)
      : child_(std::move(child)),
        plan_(plan),
        eval_(dict, &plan->output_vars, agg_base) {}

  Result<bool> Next(Row* row) override {
    if (!materialized_) {
      SOFOS_RETURN_IF_ERROR(Materialize());
      materialized_ = true;
    }
    if (cursor_ >= rows_.size()) return false;
    *row = std::move(rows_[cursor_++].row);
    return true;
  }

 private:
  struct Keyed {
    Row row;
    std::vector<Value> keys;
  };

  Status Materialize() {
    Row in;
    while (true) {
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(&in));
      if (!has) break;
      Keyed keyed;
      keyed.row = in;
      for (const auto& [expr, asc] : plan_->order_keys) {
        (void)asc;
        auto v = eval_.Eval(*expr, in);
        keyed.keys.push_back(v.ok() ? v.value() : Value::Unbound());
      }
      rows_.push_back(std::move(keyed));
    }
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Keyed& a, const Keyed& b) {
                       for (size_t i = 0; i < plan_->order_keys.size(); ++i) {
                         int c = a.keys[i].TotalCompare(b.keys[i]);
                         if (c != 0) {
                           return plan_->order_keys[i].second ? c < 0 : c > 0;
                         }
                       }
                       return false;
                     });
    return Status::OK();
  }

  std::unique_ptr<Operator> child_;
  const Plan* plan_;
  ExprEvaluator eval_;
  bool materialized_ = false;
  std::vector<Keyed> rows_;
  size_t cursor_ = 0;
};

class SliceOp : public Operator {
 public:
  SliceOp(std::unique_ptr<Operator> child, int64_t offset, int64_t limit)
      : child_(std::move(child)), offset_(offset), limit_(limit) {}

  Result<bool> Next(Row* row) override {
    while (skipped_ < offset_) {
      SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(row));
      if (!has) return false;
      ++skipped_;
    }
    if (limit_ >= 0 && emitted_ >= limit_) return false;
    SOFOS_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    ++emitted_;
    return true;
  }

 private:
  std::unique_ptr<Operator> child_;
  int64_t offset_;
  int64_t limit_;
  int64_t skipped_ = 0;
  int64_t emitted_ = 0;
};

/// Produces no rows; used for plans that are provably empty. Aggregate
/// handling still applies above it, so COUNT over an impossible pattern
/// correctly returns 0.
class EmptyOp : public Operator {
 public:
  Result<bool> Next(Row*) override { return false; }
};

}  // namespace

Executor::Executor(const Plan* plan, const TripleStore* store, Dictionary* dict)
    : plan_(plan), store_(store), dict_(dict) {}

std::unique_ptr<Operator> Executor::BuildPipeline(ExecStats* stats) {
  std::unique_ptr<Operator> op;
  const size_t width = plan_->pattern_vars.size();

  if (plan_->empty_guaranteed) {
    op = std::make_unique<EmptyOp>();
  } else {
    for (size_t i = 0; i < plan_->steps.size(); ++i) {
      const PatternStep& step = plan_->steps[i];
      if (i == 0) {
        op = std::make_unique<ScanOp>(store_, &step, width, stats);
      } else {
        op = std::make_unique<IndexJoinOp>(std::move(op), store_, &step, stats);
      }
      if (!step.filters.empty()) {
        op = std::make_unique<FilterOp>(std::move(op), step.filters, dict_,
                                        &plan_->pattern_vars, stats);
      }
    }
  }

  int agg_base = -1;
  const VariableTable* project_input = &plan_->pattern_vars;
  if (plan_->is_aggregate) {
    op = std::make_unique<AggregateOp>(std::move(op), plan_, dict_, dict_, stats);
    agg_base = static_cast<int>(plan_->group_slots.size());
    project_input = &plan_->group_vars;
    if (!plan_->having.empty()) {
      // HAVING is evaluated over the aggregate output layout: group vars
      // first, then one slot per aggregate (reached via agg_base).
      op = std::make_unique<FilterOp>(std::move(op), plan_->having, dict_,
                                      &plan_->group_vars, stats, agg_base);
    }
  }

  op = std::make_unique<ProjectOp>(std::move(op), plan_, dict_, dict_,
                                   project_input, agg_base);
  if (plan_->distinct) op = std::make_unique<DistinctOp>(std::move(op));
  if (!plan_->order_keys.empty()) {
    op = std::make_unique<OrderByOp>(std::move(op), plan_, dict_, agg_base);
  }
  if (plan_->limit >= 0 || plan_->offset > 0) {
    op = std::make_unique<SliceOp>(std::move(op), plan_->offset, plan_->limit);
  }
  return op;
}

Status Executor::Run(std::vector<Row>* out, ExecStats* stats) {
  WallTimer timer;
  std::unique_ptr<Operator> root = BuildPipeline(stats);
  Row row;
  while (true) {
    SOFOS_ASSIGN_OR_RETURN(bool has, root->Next(&row));
    if (!has) break;
    out->push_back(row);
  }
  stats->output_rows += out->size();
  stats->exec_micros += timer.ElapsedMicros();
  return Status::OK();
}

}  // namespace sparql
}  // namespace sofos
