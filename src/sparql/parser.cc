#include "sparql/parser.h"

#include "common/string_util.h"
#include "rdf/vocab.h"

namespace sofos {
namespace sparql {

namespace {

const char* kUnsupported[] = {"UNION",     "OPTIONAL", "CONSTRUCT", "DESCRIBE",
                              "ASK",       "INSERT",   "DELETE",    "GRAPH",
                              "SERVICE",   "MINUS",    "EXISTS",    "VALUES",
                              "BIND"};

bool IsAggName(const std::string& name, AggKind* kind) {
  if (StrEqualsIgnoreCase(name, "COUNT")) {
    *kind = AggKind::kCount;
    return true;
  }
  if (StrEqualsIgnoreCase(name, "SUM")) {
    *kind = AggKind::kSum;
    return true;
  }
  if (StrEqualsIgnoreCase(name, "AVG")) {
    *kind = AggKind::kAvg;
    return true;
  }
  if (StrEqualsIgnoreCase(name, "MIN")) {
    *kind = AggKind::kMin;
    return true;
  }
  if (StrEqualsIgnoreCase(name, "MAX")) {
    *kind = AggKind::kMax;
    return true;
  }
  return false;
}

bool IsFuncName(const std::string& name) {
  return StrEqualsIgnoreCase(name, "STR") || StrEqualsIgnoreCase(name, "BOUND") ||
         StrEqualsIgnoreCase(name, "REGEX") || StrEqualsIgnoreCase(name, "ABS");
}

}  // namespace

Result<Query> Parser::Parse(std::string_view text) {
  Lexer lexer(text);
  SOFOS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<ExprPtr> Parser::ParseExpression(std::string_view text) {
  Lexer lexer(text);
  SOFOS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  SOFOS_ASSIGN_OR_RETURN(ExprPtr expr, parser.ParseExpr());
  if (!parser.Check(TokenType::kEof)) {
    return parser.ErrorAt(parser.Peek(), "trailing input after expression");
  }
  return expr;
}

const Token& Parser::Peek(size_t ahead) const {
  size_t idx = pos_ + ahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;  // EOF token
  return tokens_[idx];
}

const Token& Parser::Get() {
  const Token& token = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

bool Parser::CheckKeyword(std::string_view keyword) const {
  return Peek().type == TokenType::kIdent &&
         StrEqualsIgnoreCase(Peek().text, keyword);
}

bool Parser::TryConsume(TokenType type) {
  if (!Check(type)) return false;
  Get();
  return true;
}

bool Parser::TryConsumeKeyword(std::string_view keyword) {
  if (!CheckKeyword(keyword)) return false;
  Get();
  return true;
}

Status Parser::Expect(TokenType type) {
  if (Check(type)) {
    Get();
    return Status::OK();
  }
  return ErrorAt(Peek(), StrFormat("expected %s but found %s",
                                   std::string(TokenTypeName(type)).c_str(),
                                   std::string(TokenTypeName(Peek().type)).c_str()));
}

Status Parser::ExpectKeyword(std::string_view keyword) {
  if (CheckKeyword(keyword)) {
    Get();
    return Status::OK();
  }
  return ErrorAt(Peek(), "expected keyword '" + std::string(keyword) + "'");
}

Status Parser::ErrorAt(const Token& token, const std::string& message) const {
  return Status::ParseError(
      StrFormat("sparql:%d:%d: %s", token.line, token.column, message.c_str()));
}

Result<std::string> Parser::ExpandPname(const Token& token) const {
  size_t colon = token.text.find(':');
  std::string prefix = token.text.substr(0, colon);
  std::string local = token.text.substr(colon + 1);
  auto it = prefixes_.find(prefix);
  if (it == prefixes_.end()) {
    return ErrorAt(token, "undefined prefix '" + prefix + ":'");
  }
  return it->second + local;
}

Result<Query> Parser::ParseQuery() {
  Query query;
  SOFOS_RETURN_IF_ERROR(ParsePrologue(&query));
  SOFOS_RETURN_IF_ERROR(ParseSelectClause(&query));
  SOFOS_RETURN_IF_ERROR(ParseWhereClause(&query));
  SOFOS_RETURN_IF_ERROR(ParseSolutionModifiers(&query));
  if (!Check(TokenType::kEof)) {
    return ErrorAt(Peek(), "trailing input after query");
  }
  query.prefixes = prefixes_;
  return query;
}

Status Parser::ParsePrologue(Query* query) {
  (void)query;
  while (CheckKeyword("PREFIX")) {
    Get();
    if (!Check(TokenType::kPname)) {
      return ErrorAt(Peek(), "expected prefix name after PREFIX");
    }
    Token pname = Get();
    size_t colon = pname.text.find(':');
    if (colon == std::string::npos || colon + 1 != pname.text.size()) {
      return ErrorAt(pname, "PREFIX declaration must end with ':'");
    }
    std::string ns = pname.text.substr(0, colon);
    if (!Check(TokenType::kIriRef)) {
      return ErrorAt(Peek(), "expected IRI in PREFIX declaration");
    }
    prefixes_[ns] = Get().text;
  }
  return Status::OK();
}

Status Parser::ParseSelectClause(Query* query) {
  for (const char* construct : kUnsupported) {
    if (CheckKeyword(construct)) {
      return ErrorAt(Peek(), std::string(construct) +
                                 " is not supported by the sofos SPARQL subset");
    }
  }
  SOFOS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  if (TryConsumeKeyword("DISTINCT")) query->distinct = true;

  if (TryConsume(TokenType::kStar)) {
    query->select_all = true;
    return Status::OK();
  }

  while (true) {
    if (Check(TokenType::kVar)) {
      Token var = Get();
      SelectItem item;
      item.alias = var.text;
      item.expr = Expr::MakeVar(var.text);
      query->select.push_back(std::move(item));
    } else if (Check(TokenType::kLParen)) {
      Get();
      SelectItem item;
      SOFOS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      SOFOS_RETURN_IF_ERROR(ExpectKeyword("AS"));
      if (!Check(TokenType::kVar)) {
        return ErrorAt(Peek(), "expected variable after AS");
      }
      item.alias = Get().text;
      SOFOS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      query->select.push_back(std::move(item));
    } else {
      break;
    }
  }
  if (query->select.empty()) {
    return ErrorAt(Peek(), "SELECT clause must name at least one variable");
  }
  return Status::OK();
}

Status Parser::ParseWhereClause(Query* query) {
  TryConsumeKeyword("WHERE");
  SOFOS_RETURN_IF_ERROR(Expect(TokenType::kLBrace));

  while (!Check(TokenType::kRBrace)) {
    if (Check(TokenType::kEof)) {
      return ErrorAt(Peek(), "unterminated WHERE block");
    }
    for (const char* construct : kUnsupported) {
      if (CheckKeyword(construct)) {
        return ErrorAt(Peek(), std::string(construct) +
                                   " is not supported by the sofos SPARQL subset");
      }
    }
    if (TryConsumeKeyword("FILTER")) {
      SOFOS_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      SOFOS_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
      SOFOS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      query->filters.push_back(std::move(expr));
      TryConsume(TokenType::kDot);  // optional '.' after FILTER
      continue;
    }
    SOFOS_RETURN_IF_ERROR(ParseTriplesBlock(query));
  }
  return Expect(TokenType::kRBrace);
}

Status Parser::ParseTriplesBlock(Query* query) {
  SOFOS_ASSIGN_OR_RETURN(PatternTerm subject, ParsePatternTerm(false));

  while (true) {
    PatternTerm predicate;
    if (TryConsume(TokenType::kA)) {
      predicate = PatternTerm::Const(Term::Iri(std::string(vocab::kRdfType)));
    } else {
      SOFOS_ASSIGN_OR_RETURN(predicate, ParsePatternTerm(false));
    }

    while (true) {
      SOFOS_ASSIGN_OR_RETURN(PatternTerm object, ParsePatternTerm(true));
      query->where.push_back(TriplePattern{subject, predicate, object});
      if (!TryConsume(TokenType::kComma)) break;
    }

    if (TryConsume(TokenType::kSemicolon)) {
      // Dangling ';' before '.' or '}' is tolerated (as in Turtle).
      if (Check(TokenType::kDot) || Check(TokenType::kRBrace)) break;
      continue;
    }
    break;
  }
  TryConsume(TokenType::kDot);
  return Status::OK();
}

Result<PatternTerm> Parser::ParsePatternTerm(bool allow_literal) {
  const Token& token = Peek();
  switch (token.type) {
    case TokenType::kVar:
      return PatternTerm::Var(Get().text);
    case TokenType::kIriRef:
      return PatternTerm::Const(Term::Iri(Get().text));
    case TokenType::kPname: {
      Token pname = Get();
      if (StrStartsWith(pname.text, "_:")) {
        return PatternTerm::Const(Term::Blank(pname.text.substr(2)));
      }
      SOFOS_ASSIGN_OR_RETURN(std::string iri, ExpandPname(pname));
      return PatternTerm::Const(Term::Iri(std::move(iri)));
    }
    case TokenType::kString:
    case TokenType::kInteger:
    case TokenType::kDouble:
    case TokenType::kMinus:
    case TokenType::kPlus: {
      if (!allow_literal) {
        return ErrorAt(token, "literal not allowed in this position");
      }
      SOFOS_ASSIGN_OR_RETURN(Term term, ParseTermLiteral());
      return PatternTerm::Const(std::move(term));
    }
    case TokenType::kIdent:
      if (StrEqualsIgnoreCase(token.text, "true") ||
          StrEqualsIgnoreCase(token.text, "false")) {
        if (!allow_literal) {
          return ErrorAt(token, "literal not allowed in this position");
        }
        return PatternTerm::Const(
            Term::Boolean(StrEqualsIgnoreCase(Get().text, "true")));
      }
      return ErrorAt(token, "unexpected identifier '" + token.text +
                                "' in triple pattern");
    default:
      return ErrorAt(token, std::string("unexpected ") +
                                std::string(TokenTypeName(token.type)) +
                                " in triple pattern");
  }
}

Result<Term> Parser::ParseTermLiteral() {
  const Token& token = Peek();
  if (token.type == TokenType::kString) {
    std::string value = Get().text;
    if (Check(TokenType::kLangTag)) {
      return Term::LangString(std::move(value), Get().text);
    }
    if (TryConsume(TokenType::kDtypeSep)) {
      std::string dt;
      if (Check(TokenType::kIriRef)) {
        dt = Get().text;
      } else if (Check(TokenType::kPname)) {
        SOFOS_ASSIGN_OR_RETURN(dt, ExpandPname(Get()));
      } else {
        return ErrorAt(Peek(), "expected datatype IRI after '^^'");
      }
      return Term::TypedLiteral(std::move(value), dt);
    }
    return Term::String(std::move(value));
  }

  bool negative = false;
  if (token.type == TokenType::kMinus || token.type == TokenType::kPlus) {
    negative = token.type == TokenType::kMinus;
    Get();
  }
  const Token& num = Peek();
  if (num.type == TokenType::kInteger) {
    SOFOS_ASSIGN_OR_RETURN(int64_t value, ParseInt64(Get().text));
    return Term::Integer(negative ? -value : value);
  }
  if (num.type == TokenType::kDouble) {
    SOFOS_ASSIGN_OR_RETURN(double value, ParseDouble(Get().text));
    return Term::Double(negative ? -value : value);
  }
  return ErrorAt(num, "expected a literal");
}

Status Parser::ParseSolutionModifiers(Query* query) {
  if (TryConsumeKeyword("GROUP")) {
    SOFOS_RETURN_IF_ERROR(ExpectKeyword("BY"));
    while (Check(TokenType::kVar)) query->group_by.push_back(Get().text);
    if (query->group_by.empty()) {
      return ErrorAt(Peek(), "GROUP BY requires at least one variable");
    }
  }
  if (TryConsumeKeyword("HAVING")) {
    SOFOS_RETURN_IF_ERROR(Expect(TokenType::kLParen));
    SOFOS_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
    SOFOS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    query->having.push_back(std::move(expr));
    while (TryConsume(TokenType::kLParen)) {
      SOFOS_ASSIGN_OR_RETURN(ExprPtr more, ParseExpr());
      SOFOS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      query->having.push_back(std::move(more));
    }
  }
  if (TryConsumeKeyword("ORDER")) {
    SOFOS_RETURN_IF_ERROR(ExpectKeyword("BY"));
    while (true) {
      OrderKey key;
      if (TryConsumeKeyword("ASC") || TryConsumeKeyword("DESC")) {
        key.ascending = StrEqualsIgnoreCase(tokens_[pos_ - 1].text, "ASC");
        SOFOS_RETURN_IF_ERROR(Expect(TokenType::kLParen));
        SOFOS_ASSIGN_OR_RETURN(key.expr, ParseExpr());
        SOFOS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      } else if (Check(TokenType::kVar)) {
        key.expr = Expr::MakeVar(Get().text);
      } else if (Check(TokenType::kLParen)) {
        Get();
        SOFOS_ASSIGN_OR_RETURN(key.expr, ParseExpr());
        SOFOS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      } else {
        break;
      }
      query->order_by.push_back(std::move(key));
    }
    if (query->order_by.empty()) {
      return ErrorAt(Peek(), "ORDER BY requires at least one sort key");
    }
  }
  if (TryConsumeKeyword("LIMIT")) {
    if (!Check(TokenType::kInteger)) {
      return ErrorAt(Peek(), "expected integer after LIMIT");
    }
    SOFOS_ASSIGN_OR_RETURN(query->limit, ParseInt64(Get().text));
  }
  if (TryConsumeKeyword("OFFSET")) {
    if (!Check(TokenType::kInteger)) {
      return ErrorAt(Peek(), "expected integer after OFFSET");
    }
    SOFOS_ASSIGN_OR_RETURN(query->offset, ParseInt64(Get().text));
  }
  return Status::OK();
}

Result<ExprPtr> Parser::ParseExpr() { return ParseOrExpr(); }

Result<ExprPtr> Parser::ParseOrExpr() {
  SOFOS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAndExpr());
  while (TryConsume(TokenType::kOrOr)) {
    SOFOS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAndExpr());
    lhs = Expr::MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAndExpr() {
  SOFOS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRelationalExpr());
  while (TryConsume(TokenType::kAndAnd)) {
    SOFOS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRelationalExpr());
    lhs = Expr::MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseRelationalExpr() {
  SOFOS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditiveExpr());
  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq:
      op = BinaryOp::kEq;
      break;
    case TokenType::kNe:
      op = BinaryOp::kNe;
      break;
    case TokenType::kLt:
      op = BinaryOp::kLt;
      break;
    case TokenType::kLe:
      op = BinaryOp::kLe;
      break;
    case TokenType::kGt:
      op = BinaryOp::kGt;
      break;
    case TokenType::kGe:
      op = BinaryOp::kGe;
      break;
    default:
      return lhs;
  }
  Get();
  SOFOS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditiveExpr());
  return Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
}

Result<ExprPtr> Parser::ParseAdditiveExpr() {
  SOFOS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicativeExpr());
  while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
    BinaryOp op = Get().type == TokenType::kPlus ? BinaryOp::kAdd : BinaryOp::kSub;
    SOFOS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicativeExpr());
    lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseMultiplicativeExpr() {
  SOFOS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnaryExpr());
  while (Check(TokenType::kStar) || Check(TokenType::kSlash)) {
    BinaryOp op = Get().type == TokenType::kStar ? BinaryOp::kMul : BinaryOp::kDiv;
    SOFOS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnaryExpr());
    lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseUnaryExpr() {
  if (TryConsume(TokenType::kBang)) {
    SOFOS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnaryExpr());
    return Expr::MakeUnary(UnaryOp::kNot, std::move(operand));
  }
  if (TryConsume(TokenType::kMinus)) {
    SOFOS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnaryExpr());
    return Expr::MakeUnary(UnaryOp::kNeg, std::move(operand));
  }
  TryConsume(TokenType::kPlus);
  return ParsePrimaryExpr();
}

Result<ExprPtr> Parser::ParsePrimaryExpr() {
  const Token& token = Peek();
  switch (token.type) {
    case TokenType::kLParen: {
      Get();
      SOFOS_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
      SOFOS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return expr;
    }
    case TokenType::kVar:
      return Expr::MakeVar(Get().text);
    case TokenType::kIriRef:
      return Expr::MakeLiteral(Term::Iri(Get().text));
    case TokenType::kPname: {
      Token pname = Get();
      if (StrStartsWith(pname.text, "_:")) {
        return Expr::MakeLiteral(Term::Blank(pname.text.substr(2)));
      }
      SOFOS_ASSIGN_OR_RETURN(std::string iri, ExpandPname(pname));
      return Expr::MakeLiteral(Term::Iri(std::move(iri)));
    }
    case TokenType::kString:
    case TokenType::kInteger:
    case TokenType::kDouble: {
      SOFOS_ASSIGN_OR_RETURN(Term term, ParseTermLiteral());
      return Expr::MakeLiteral(std::move(term));
    }
    case TokenType::kIdent: {
      std::string name = token.text;
      if (StrEqualsIgnoreCase(name, "true") || StrEqualsIgnoreCase(name, "false")) {
        Get();
        return Expr::MakeLiteral(Term::Boolean(StrEqualsIgnoreCase(name, "true")));
      }
      AggKind agg;
      if (IsAggName(name, &agg) || IsFuncName(name)) {
        Get();
        return ParseAggregateOrFunction(name);
      }
      return ErrorAt(token, "unexpected identifier '" + name + "' in expression");
    }
    default:
      return ErrorAt(token, std::string("unexpected ") +
                                std::string(TokenTypeName(token.type)) +
                                " in expression");
  }
}

Result<ExprPtr> Parser::ParseAggregateOrFunction(const std::string& name) {
  SOFOS_RETURN_IF_ERROR(Expect(TokenType::kLParen));
  AggKind agg;
  if (IsAggName(name, &agg)) {
    if (agg == AggKind::kCount && TryConsume(TokenType::kStar)) {
      SOFOS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return Expr::MakeCountStar();
    }
    bool distinct = TryConsumeKeyword("DISTINCT");
    SOFOS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
    SOFOS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    if (arg->ContainsAggregate()) {
      return Status::ParseError("nested aggregates are not allowed");
    }
    return Expr::MakeAggregate(agg, std::move(arg), distinct);
  }

  std::vector<ExprPtr> args;
  if (!Check(TokenType::kRParen)) {
    while (true) {
      SOFOS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      args.push_back(std::move(arg));
      if (!TryConsume(TokenType::kComma)) break;
    }
  }
  SOFOS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
  return Expr::MakeFunction(StrToUpper(name), std::move(args));
}

}  // namespace sparql
}  // namespace sofos
