#ifndef SOFOS_SPARQL_EXPRESSION_H_
#define SOFOS_SPARQL_EXPRESSION_H_

#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "sparql/binding.h"
#include "sparql/value.h"

namespace sofos {
namespace sparql {

/// Evaluates expression trees against solution rows.
///
/// Aggregate nodes (Expr::kAggregate with agg_slot >= 0) read their
/// precomputed result from the row at `agg_base + agg_slot`; the aggregate
/// operator produces rows with that layout. Evaluating an aggregate node
/// with agg_slot < 0 is an Internal error (the algebra builder assigns
/// slots before execution).
class ExprEvaluator {
 public:
  ExprEvaluator(const Dictionary* dict, const VariableTable* vars, int agg_base = -1)
      : dict_(dict), vars_(vars), agg_base_(agg_base) {}

  Result<Value> Eval(const Expr& expr, const Row& row) const;

  /// Effective boolean value of the expression, for FILTER/HAVING.
  Result<bool> EvalBool(const Expr& expr, const Row& row) const;

 private:
  Result<Value> EvalBinary(const Expr& expr, const Row& row) const;
  Result<Value> EvalFunction(const Expr& expr, const Row& row) const;
  Value Decode(TermId id) const;

  const Dictionary* dict_;
  const VariableTable* vars_;
  int agg_base_;
};

}  // namespace sparql
}  // namespace sofos

#endif  // SOFOS_SPARQL_EXPRESSION_H_
