#ifndef SOFOS_SPARQL_AST_H_
#define SOFOS_SPARQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace sofos {
namespace sparql {

/// A subject/predicate/object position in a triple pattern: either a
/// concrete RDF term or a variable.
class PatternTerm {
 public:
  PatternTerm() = default;

  static PatternTerm Var(std::string name) {
    PatternTerm t;
    t.is_var_ = true;
    t.var_ = std::move(name);
    return t;
  }
  static PatternTerm Const(Term term) {
    PatternTerm t;
    t.is_var_ = false;
    t.term_ = std::move(term);
    return t;
  }

  bool is_var() const { return is_var_; }
  const std::string& var() const { return var_; }
  const Term& term() const { return term_; }

  /// SPARQL surface syntax for this position.
  std::string ToString() const {
    return is_var_ ? "?" + var_ : term_.ToNTriples();
  }

  bool operator==(const PatternTerm& other) const {
    if (is_var_ != other.is_var_) return false;
    return is_var_ ? var_ == other.var_ : term_ == other.term_;
  }

 private:
  bool is_var_ = false;
  Term term_;
  std::string var_;
};

/// A SPARQL triple pattern (paper §3: a query is a set of triple patterns).
struct TriplePattern {
  PatternTerm s, p, o;

  std::string ToString() const {
    return s.ToString() + " " + p.ToString() + " " + o.ToString();
  }
  bool operator==(const TriplePattern& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
};

enum class BinaryOp {
  kOr,
  kAnd,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

enum class UnaryOp { kNot, kNeg };

/// Aggregation expressions supported by analytical queries (paper §3:
/// agg ∈ {SUM, AVG, COUNT, MAX, MIN}).
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

std::string AggKindName(AggKind kind);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression tree for FILTER / HAVING / projection expressions.
struct Expr {
  enum class Kind { kVar, kLiteral, kBinary, kUnary, kAggregate, kFunction };

  Kind kind = Kind::kLiteral;

  // kVar
  std::string var;

  // kLiteral
  Term literal;

  // kBinary
  BinaryOp bop = BinaryOp::kAnd;
  ExprPtr lhs, rhs;

  // kUnary
  UnaryOp uop = UnaryOp::kNot;
  ExprPtr operand;

  // kAggregate
  AggKind agg = AggKind::kCount;
  bool agg_distinct = false;
  bool count_star = false;
  ExprPtr agg_arg;   // null for COUNT(*)
  int agg_slot = -1;  // assigned by the algebra builder

  // kFunction — supported: STR, BOUND, REGEX, ABS
  std::string func_name;
  std::vector<ExprPtr> args;

  static ExprPtr MakeVar(std::string name);
  static ExprPtr MakeLiteral(Term term);
  static ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
  static ExprPtr MakeAggregate(AggKind agg, ExprPtr arg, bool distinct);
  static ExprPtr MakeCountStar();
  static ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args);

  /// Deep copy.
  ExprPtr Clone() const;

  /// SPARQL surface syntax (fully parenthesized).
  std::string ToString() const;

  /// True if any kAggregate node appears in the tree.
  bool ContainsAggregate() const;

  /// Appends the names of all non-aggregate variables referenced.
  void CollectVars(std::vector<std::string>* out) const;
};

/// One item of the SELECT clause: either a bare variable (expr is a kVar and
/// alias equals the variable name) or `(expr AS ?alias)`.
struct SelectItem {
  std::string alias;
  ExprPtr expr;

  std::string ToString() const;
};

struct OrderKey {
  ExprPtr expr;
  bool ascending = true;
};

/// Parsed SPARQL SELECT query (the subset described in the README).
struct Query {
  std::unordered_map<std::string, std::string> prefixes;
  bool distinct = false;
  bool select_all = false;  // SELECT *
  std::vector<SelectItem> select;
  std::vector<TriplePattern> where;
  std::vector<ExprPtr> filters;
  std::vector<std::string> group_by;
  std::vector<ExprPtr> having;
  std::vector<OrderKey> order_by;
  int64_t limit = -1;   // -1 = unlimited
  int64_t offset = 0;

  /// True if any select item / HAVING clause contains an aggregate or a
  /// GROUP BY is present.
  bool IsAggregateQuery() const;

  /// Round-trips the query to SPARQL text (canonical form; used by the
  /// rewriter and EXPLAIN output).
  std::string ToString() const;
};

}  // namespace sparql
}  // namespace sofos

#endif  // SOFOS_SPARQL_AST_H_
