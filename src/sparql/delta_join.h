#ifndef SOFOS_SPARQL_DELTA_JOIN_H_
#define SOFOS_SPARQL_DELTA_JOIN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "sparql/binding.h"

namespace sofos {
namespace sparql {

/// Output of a seeded BGP evaluation: one fully-extended row per solution,
/// in deterministic (seed-major, match-order-minor) order, plus the index
/// of the seed row each solution grew from — so callers folding signed
/// delta bindings can recover each solution's sign/weight.
struct SeededJoinResult {
  std::vector<Row> rows;
  std::vector<uint32_t> seed_index;
  uint64_t rows_scanned = 0;
};

/// Slot layout for a BGP: every variable of `patterns`, first occurrence
/// in (pattern, s/p/o) order. Seed rows passed to EvaluateSeededBgp must
/// use this width and layout.
VariableTable BgpVariables(const std::vector<TriplePattern>& patterns);

/// Evaluates the sub-BGP `patterns[remaining[...]]` once per seed row —
/// the Δ-pattern-join primitive of incremental view maintenance: a seed
/// binds the variables of the already-matched (delta) patterns, and the
/// remaining patterns are joined against `store` starting from it.
///
/// `bound_slots` lists the slots (in `vars` layout) bound in *every* seed;
/// it drives the same greedy ordering, join-key derivation, match-order
/// and hash-build-vs-index-probe decisions the batch planner makes
/// (planner.h thresholds), so per-seed match streams are emitted in
/// PatternStep::match_order — deterministic and identical to what a full
/// evaluation of the BGP would produce for those bindings. Unbound seed
/// slots act as wildcards. Stages reuse the batch executor's shared-build
/// hash-table machinery; the whole evaluation is serial and allocates
/// O(result) rows.
///
/// With `remaining` empty, echoes the seeds. A constant term absent from
/// the dictionary proves the sub-BGP empty (no rows).
Result<SeededJoinResult> EvaluateSeededBgp(
    const TripleStore& store, const VariableTable& vars,
    const std::vector<TriplePattern>& patterns,
    const std::vector<size_t>& remaining, const std::vector<int>& bound_slots,
    const std::vector<Row>& seeds);

}  // namespace sparql
}  // namespace sofos

#endif  // SOFOS_SPARQL_DELTA_JOIN_H_
