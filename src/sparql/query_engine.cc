#include "sparql/query_engine.h"

#include <algorithm>

#include "common/timer.h"
#include "sparql/parser.h"
#include "sparql/planner.h"

namespace sofos {
namespace sparql {

std::string QueryResult::ToTable(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < var_names.size(); ++i) {
    if (i) out += " | ";
    out += "?" + var_names[i];
  }
  out += '\n';
  out += std::string(60, '-');
  out += '\n';
  size_t shown = 0;
  for (size_t r = 0; r < rows.size() && shown < max_rows; ++r, ++shown) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c) out += " | ";
      out += bound[r][c] ? rows[r][c].ToNTriples() : "UNBOUND";
    }
    out += '\n';
  }
  if (rows.size() > max_rows) {
    out += "... (" + std::to_string(rows.size() - max_rows) + " more rows)\n";
  }
  return out;
}

void QueryResult::SortCanonical() {
  std::vector<size_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    for (size_t c = 0; c < rows[a].size(); ++c) {
      if (bound[a][c] != bound[b][c]) return !bound[a][c];
      if (bound[a][c] && rows[a][c] != rows[b][c]) return rows[a][c] < rows[b][c];
    }
    return false;
  });
  std::vector<std::vector<Term>> new_rows;
  std::vector<std::vector<bool>> new_bound;
  new_rows.reserve(rows.size());
  new_bound.reserve(bound.size());
  for (size_t i : order) {
    new_rows.push_back(std::move(rows[i]));
    new_bound.push_back(std::move(bound[i]));
  }
  rows = std::move(new_rows);
  bound = std::move(new_bound);
}

namespace {

/// Decodes executor output rows (TermIds) into the result's Term rows.
void DecodeRows(const std::vector<Row>& raw, const Plan& plan,
                const Dictionary& dict, QueryResult* result) {
  result->var_names = plan.output_vars.names();
  result->rows.reserve(raw.size());
  result->bound.reserve(raw.size());
  for (const Row& row : raw) {
    std::vector<Term> terms;
    std::vector<bool> is_bound;
    terms.reserve(row.size());
    is_bound.reserve(row.size());
    for (TermId id : row) {
      if (id == kNullTermId) {
        terms.emplace_back();
        is_bound.push_back(false);
      } else {
        terms.push_back(dict.term(id));
        is_bound.push_back(true);
      }
    }
    result->rows.push_back(std::move(terms));
    result->bound.push_back(std::move(is_bound));
  }
}

}  // namespace

Result<QueryResult> QueryEngine::Execute(std::string_view sparql) {
  SOFOS_ASSIGN_OR_RETURN(Query query, Parser::Parse(sparql));
  return Execute(&query);
}

Result<QueryResult> QueryEngine::Execute(Query* query) {
  if (!store_->finalized()) {
    return Status::Internal("query engine requires a finalized store");
  }
  QueryResult result;
  WallTimer plan_timer;
  SOFOS_ASSIGN_OR_RETURN(Plan plan, Planner::Build(query, *store_));
  result.stats.plan_micros = plan_timer.ElapsedMicros();

  std::vector<Row> raw;
  Executor executor(&plan, store_, store_->mutable_dictionary(), options_);
  SOFOS_RETURN_IF_ERROR(executor.Run(&raw, &result.stats));

  DecodeRows(raw, plan, store_->dictionary(), &result);
  return result;
}

Result<std::string> QueryEngine::Explain(std::string_view sparql) {
  SOFOS_ASSIGN_OR_RETURN(Query query, Parser::Parse(sparql));
  SOFOS_ASSIGN_OR_RETURN(Plan plan, Planner::Build(&query, *store_));
  return plan.ToString() + Executor::DescribePhysical(plan, *store_, options_);
}

Result<std::string> QueryEngine::Analyze(std::string_view sparql,
                                         QueryResult* result_out) {
  if (!store_->finalized()) {
    return Status::Internal("query engine requires a finalized store");
  }
  SOFOS_ASSIGN_OR_RETURN(Query query, Parser::Parse(sparql));

  ExecOptions options = options_;
  options.analyze = true;

  QueryResult result;
  WallTimer plan_timer;
  SOFOS_ASSIGN_OR_RETURN(Plan plan, Planner::Build(&query, *store_));
  result.stats.plan_micros = plan_timer.ElapsedMicros();

  std::vector<Row> raw;
  Executor executor(&plan, store_, store_->mutable_dictionary(), options);
  SOFOS_RETURN_IF_ERROR(executor.Run(&raw, &result.stats));

  std::string text = "EXPLAIN ANALYZE\n" +
                     Executor::DescribePhysical(plan, *store_, options) +
                     Executor::RenderAnalyze(plan, result.stats);
  if (result_out != nullptr) {
    DecodeRows(raw, plan, store_->dictionary(), &result);
    *result_out = std::move(result);
  }
  return text;
}

}  // namespace sparql
}  // namespace sofos
