#ifndef SOFOS_SPARQL_PLANNER_H_
#define SOFOS_SPARQL_PLANNER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "sparql/binding.h"

namespace sofos {
namespace sparql {

/// Physical join algorithm of one pattern step (batch engine). The first
/// step is always kScan. kIndexLoop probes the store's permutation indexes
/// once per input row; kHashProbe probes a hash table built once from the
/// step's full pattern scan (the build side), shared read-only by every
/// morsel worker. Both algorithms emit the matches of each probe row in
/// the same order (see TripleStore::ScanFieldOrder), so the choice never
/// changes query results — only speed.
enum class JoinAlgo { kScan, kIndexLoop, kHashProbe };

/// Hash-probe decision thresholds (Planner::Build). A step becomes a hash
/// join when its build side has at most kHashBuildMaxRows triples, the
/// probe-side hint (the largest pattern joined so far — pipelines fan out)
/// reaches kHashProbeMinRows, and the probe is at least 2x the build:
/// replacing an O(log n) index probe with an O(1) bucket lookup only
/// amortizes the build passes when each build triple is probed about twice
/// — measured on the bundled datasets, a 1:1 ratio is a wash that loses
/// the build cost. Below the thresholds the index nested-loop join wins.
inline constexpr uint64_t kHashBuildMaxRows = 4ull << 20;
inline constexpr uint64_t kHashProbeMinRows = 64;
inline constexpr uint64_t kHashProbePerBuildRow = 2;

/// The probe-side hint above (largest pattern so far) underestimates
/// pipelines that *fan out*: joining through a high-fanout predicate (e.g.
/// university –member→ student) multiplies the width beyond any single
/// pattern. Planner::Build therefore also tracks a width estimate that
/// compounds per-step predicate fanouts (TripleStore::AvgSubjectFanout /
/// AvgObjectFanout) and uses it as an additional hash-probe trigger — but
/// only once the estimated width reaches this floor. Fanout products are
/// noisy small-sample estimates at toy scale, and the bundled demo
/// datasets (≲ 20k triples) must keep bit-identical plans across releases
/// (tests assert plan strings); at the million-triple scales where the
/// width actually exceeds this floor, the compounding is dominated by real
/// fanout and the hint is reliable.
inline constexpr uint64_t kFanoutHintMinRows = 64ull << 10;

/// One basic-graph-pattern step in execution order. The first step is an
/// index scan (morsel-partitioned under the exchange operator); every
/// later step joins the rows produced so far against its pattern.
struct PatternStep {
  TriplePattern pattern;           // surface form, for EXPLAIN
  std::array<int, 3> slots;        // var slot per position (-1 = constant)
  std::array<TermId, 3> consts;    // constant id per position (kNullTermId = var)
  uint64_t est_cardinality = 0;    // exact count of the pattern in isolation
  bool connected = false;          // shares a variable with earlier steps
  std::vector<const Expr*> filters;  // filters fully bound after this step

  // ---- Physical (batch-engine) annotations ----
  JoinAlgo algo = JoinAlgo::kIndexLoop;
  /// Positions (0=s, 1=p, 2=o) whose variable is already bound by earlier
  /// steps — the equi-join key of this step. Empty for cross products.
  std::vector<int> key_positions;
  /// Field priority of the index an index-loop probe would scan (bound set
  /// = constants + keys); the hash join sorts its buckets by this order so
  /// both algorithms emit matches identically.
  std::array<int, 3> match_order{{0, 1, 2}};
};

/// Physical plan for the linear pipeline:
///   scan → (index join)* → [aggregate → having] → project → distinct →
///   order → slice.
struct Plan {
  VariableTable pattern_vars;
  std::vector<PatternStep> steps;
  bool empty_guaranteed = false;  // constant term absent from the dictionary

  // Aggregation (populated iff is_aggregate).
  bool is_aggregate = false;
  std::vector<const Expr*> agg_specs;  // kAggregate nodes, slot i = agg_specs[i]
  std::vector<int> group_slots;        // pattern_vars slots of GROUP BY vars
  std::vector<std::string> group_names;
  VariableTable group_vars;            // layout of aggregate output rows
  std::vector<const Expr*> having;

  // Projection.
  struct OutputItem {
    std::string name;
    const Expr* expr = nullptr;  // evaluated when direct_slot < 0
    int direct_slot = -1;        // copy-through slot in the input layout
  };
  std::vector<OutputItem> outputs;
  VariableTable output_vars;

  bool distinct = false;
  std::vector<std::pair<const Expr*, bool>> order_keys;  // expr, ascending
  int64_t limit = -1;
  int64_t offset = 0;

  /// EXPLAIN-style rendering: one line per pipeline stage with estimates.
  std::string ToString() const;
};

/// Builds a physical plan. Join order: start from the pattern with the
/// smallest exact cardinality, then greedily add the connected pattern with
/// the smallest cardinality (falling back to a cross product only when no
/// remaining pattern shares a variable). Filters are pushed to the earliest
/// step at which all their variables are bound.
///
/// `query` is mutated only to assign Expr::agg_slot on aggregate nodes; the
/// plan stores pointers into the query, which must outlive it.
class Planner {
 public:
  static Result<Plan> Build(Query* query, const TripleStore& store);
};

}  // namespace sparql
}  // namespace sofos

#endif  // SOFOS_SPARQL_PLANNER_H_
