#ifndef SOFOS_SPARQL_PLANNER_H_
#define SOFOS_SPARQL_PLANNER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "sparql/binding.h"

namespace sofos {
namespace sparql {

/// One basic-graph-pattern step in execution order. The first step is an
/// index scan; every later step is an index nested-loop join against the
/// rows produced so far.
struct PatternStep {
  TriplePattern pattern;           // surface form, for EXPLAIN
  std::array<int, 3> slots;        // var slot per position (-1 = constant)
  std::array<TermId, 3> consts;    // constant id per position (kNullTermId = var)
  uint64_t est_cardinality = 0;    // exact count of the pattern in isolation
  bool connected = false;          // shares a variable with earlier steps
  std::vector<const Expr*> filters;  // filters fully bound after this step
};

/// Physical plan for the linear pipeline:
///   scan → (index join)* → [aggregate → having] → project → distinct →
///   order → slice.
struct Plan {
  VariableTable pattern_vars;
  std::vector<PatternStep> steps;
  bool empty_guaranteed = false;  // constant term absent from the dictionary

  // Aggregation (populated iff is_aggregate).
  bool is_aggregate = false;
  std::vector<const Expr*> agg_specs;  // kAggregate nodes, slot i = agg_specs[i]
  std::vector<int> group_slots;        // pattern_vars slots of GROUP BY vars
  std::vector<std::string> group_names;
  VariableTable group_vars;            // layout of aggregate output rows
  std::vector<const Expr*> having;

  // Projection.
  struct OutputItem {
    std::string name;
    const Expr* expr = nullptr;  // evaluated when direct_slot < 0
    int direct_slot = -1;        // copy-through slot in the input layout
  };
  std::vector<OutputItem> outputs;
  VariableTable output_vars;

  bool distinct = false;
  std::vector<std::pair<const Expr*, bool>> order_keys;  // expr, ascending
  int64_t limit = -1;
  int64_t offset = 0;

  /// EXPLAIN-style rendering: one line per pipeline stage with estimates.
  std::string ToString() const;
};

/// Builds a physical plan. Join order: start from the pattern with the
/// smallest exact cardinality, then greedily add the connected pattern with
/// the smallest cardinality (falling back to a cross product only when no
/// remaining pattern shares a variable). Filters are pushed to the earliest
/// step at which all their variables are bound.
///
/// `query` is mutated only to assign Expr::agg_slot on aggregate nodes; the
/// plan stores pointers into the query, which must outlive it.
class Planner {
 public:
  static Result<Plan> Build(Query* query, const TripleStore& store);
};

}  // namespace sparql
}  // namespace sofos

#endif  // SOFOS_SPARQL_PLANNER_H_
