#ifndef SOFOS_SPARQL_BINDING_H_
#define SOFOS_SPARQL_BINDING_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"

namespace sofos {
namespace sparql {

/// A solution row: one TermId per variable slot, kNullTermId = unbound.
using Row = std::vector<TermId>;

/// Maps variable names to dense row slots.
class VariableTable {
 public:
  /// Returns the slot of `name`, creating it if absent.
  int GetOrAdd(const std::string& name) {
    auto it = slots_.find(name);
    if (it != slots_.end()) return it->second;
    int slot = static_cast<int>(names_.size());
    names_.push_back(name);
    slots_.emplace(name, slot);
    return slot;
  }

  /// Returns the slot of `name` if present.
  std::optional<int> Get(const std::string& name) const {
    auto it = slots_.find(name);
    if (it == slots_.end()) return std::nullopt;
    return it->second;
  }

  const std::vector<std::string>& names() const { return names_; }
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> slots_;
};

}  // namespace sparql
}  // namespace sofos

#endif  // SOFOS_SPARQL_BINDING_H_
