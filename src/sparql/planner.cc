#include "sparql/planner.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace sofos {
namespace sparql {

namespace {

/// Collects the variable names used by a pattern.
void PatternVars(const TriplePattern& tp, std::vector<std::string>* out) {
  if (tp.s.is_var()) out->push_back(tp.s.var());
  if (tp.p.is_var()) out->push_back(tp.p.var());
  if (tp.o.is_var()) out->push_back(tp.o.var());
}

/// Walks select/having/order expressions, assigning slots to aggregate
/// nodes and collecting them in discovery order. Shared identical aggregates
/// are not deduplicated — simpler, and harmless at sofos scale.
void AssignAggSlots(Expr* expr, std::vector<const Expr*>* specs) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kAggregate) {
    expr->agg_slot = static_cast<int>(specs->size());
    specs->push_back(expr);
    return;  // aggregates cannot nest
  }
  AssignAggSlots(expr->lhs.get(), specs);
  AssignAggSlots(expr->rhs.get(), specs);
  AssignAggSlots(expr->operand.get(), specs);
  for (auto& arg : expr->args) AssignAggSlots(arg.get(), specs);
}

}  // namespace

Result<Plan> Planner::Build(Query* query, const TripleStore& store) {
  if (!store.finalized()) {
    return Status::Internal("planner requires a finalized triple store");
  }
  if (query->where.empty()) {
    return Status::InvalidArgument("empty WHERE clause");
  }

  Plan plan;

  // ---- Resolve constants and estimate pattern cardinalities. ----
  struct Candidate {
    const TriplePattern* pattern;
    std::array<TermId, 3> consts{kNullTermId, kNullTermId, kNullTermId};
    std::array<const std::string*, 3> vars{nullptr, nullptr, nullptr};
    uint64_t est = 0;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(query->where.size());

  const Dictionary& dict = store.dictionary();
  for (const TriplePattern& tp : query->where) {
    Candidate c;
    c.pattern = &tp;
    const PatternTerm* positions[3] = {&tp.s, &tp.p, &tp.o};
    for (int i = 0; i < 3; ++i) {
      if (positions[i]->is_var()) {
        c.vars[i] = &positions[i]->var();
      } else {
        auto id = dict.Lookup(positions[i]->term());
        if (!id.has_value()) {
          // The constant does not occur in the graph: the whole BGP is empty.
          plan.empty_guaranteed = true;
          c.consts[i] = kNullTermId;
        } else {
          c.consts[i] = *id;
        }
      }
    }
    if (!plan.empty_guaranteed) {
      c.est = store.Count(c.consts[0], c.consts[1], c.consts[2]);
    }
    candidates.push_back(std::move(c));
  }

  // ---- Greedy join ordering. ----
  std::vector<bool> used(candidates.size(), false);
  std::unordered_set<std::string> bound_vars;

  for (size_t step_idx = 0; step_idx < candidates.size(); ++step_idx) {
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      bool connected = false;
      for (const auto* var : candidates[i].vars) {
        if (var != nullptr && bound_vars.count(*var) > 0) {
          connected = true;
          break;
        }
      }
      if (step_idx == 0) connected = true;  // first step: pure cardinality
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected &&
           candidates[i].est < candidates[static_cast<size_t>(best)].est)) {
        // Prefer connected patterns; break ties by cardinality.
        if (best >= 0 && !connected && best_connected) continue;
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    Candidate& chosen = candidates[static_cast<size_t>(best)];
    used[static_cast<size_t>(best)] = true;

    PatternStep step;
    step.pattern = *chosen.pattern;
    step.consts = chosen.consts;
    step.est_cardinality = chosen.est;
    step.connected = best_connected;
    // Join keys: positions whose variable is bound by *earlier* steps
    // (bound_vars does not yet contain this step's own variables).
    if (step_idx > 0) {
      for (int i = 0; i < 3; ++i) {
        if (chosen.vars[i] != nullptr && bound_vars.count(*chosen.vars[i]) > 0) {
          step.key_positions.push_back(i);
        }
      }
    }
    for (int i = 0; i < 3; ++i) {
      if (chosen.vars[i] != nullptr) {
        step.slots[i] = plan.pattern_vars.GetOrAdd(*chosen.vars[i]);
        bound_vars.insert(*chosen.vars[i]);
      } else {
        step.slots[i] = -1;
      }
    }
    plan.steps.push_back(std::move(step));
  }

  // ---- Physical join algorithm per step (batch engine). ----
  // The choice must not depend on the execution thread count: the plan is
  // part of the determinism contract (same plan at every dop).
  {
    // Probe-side size hint for step i: the largest pattern joined so far.
    // Join orders start from the smallest pattern and fan out, so the
    // pipeline width at step i is usually driven by the biggest earlier
    // pattern; the first scan alone would grossly underestimate it.
    uint64_t probe_hint = 0;
    // Compounded pipeline-width estimate: per-step predicate fanout
    // multiplied along the pipeline (floored by each pattern's own
    // cardinality). Participates in the hash-probe decision only above
    // kFanoutHintMinRows — see the constant's comment for why the toy-
    // scale plans must stay independent of it.
    double est_width = 0.0;
    constexpr double kWidthCap = 1e18;
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      PatternStep& step = plan.steps[i];
      bool bound[3];
      for (int f = 0; f < 3; ++f) {
        bound[f] = step.consts[f] != kNullTermId ||
                   std::find(step.key_positions.begin(),
                             step.key_positions.end(),
                             f) != step.key_positions.end();
      }
      step.match_order = TripleStore::ScanFieldOrder(bound[0], bound[1], bound[2]);
      // Expected matches per probe row: the predicate's average fanout on
      // the joined side (a constant predicate probed through a subject /
      // object join key). 1.0 when unknown or not a keyed predicate probe.
      double fanout = 1.0;
      if (step.consts[1] != kNullTermId) {
        const bool s_keyed = std::find(step.key_positions.begin(),
                                       step.key_positions.end(),
                                       0) != step.key_positions.end();
        const bool o_keyed = std::find(step.key_positions.begin(),
                                       step.key_positions.end(),
                                       2) != step.key_positions.end();
        if (s_keyed) {
          fanout = store.AvgSubjectFanout(step.consts[1]);
        } else if (o_keyed) {
          fanout = store.AvgObjectFanout(step.consts[1]);
        }
        if (fanout < 1.0) fanout = 1.0;
      }
      if (i == 0) {
        step.algo = JoinAlgo::kScan;
        probe_hint = step.est_cardinality;
        est_width = static_cast<double>(step.est_cardinality);
        continue;
      }
      const uint64_t width_hint =
          est_width >= static_cast<double>(kFanoutHintMinRows)
              ? static_cast<uint64_t>(est_width)
              : 0;
      const uint64_t effective_hint = std::max(probe_hint, width_hint);
      // Hash-probe when the build side (the pattern's full scan) is worth
      // materializing: bounded size and a probe side large enough — in
      // absolute rows and relative to the build — to amortize it.
      step.algo = JoinAlgo::kIndexLoop;
      if (step.connected && !step.key_positions.empty() &&
          step.est_cardinality > 0 &&
          step.est_cardinality <= kHashBuildMaxRows &&
          effective_hint >= kHashProbeMinRows &&
          effective_hint >= kHashProbePerBuildRow * step.est_cardinality) {
        step.algo = JoinAlgo::kHashProbe;
      }
      probe_hint = std::max(probe_hint, step.est_cardinality);
      est_width = std::min(
          std::max(est_width * fanout,
                   static_cast<double>(step.est_cardinality)),
          kWidthCap);
    }
  }

  // ---- Push filters to the earliest step where their vars are bound. ----
  {
    // Vars bound after each step (prefix union).
    std::vector<std::unordered_set<std::string>> bound_after(plan.steps.size());
    std::unordered_set<std::string> acc;
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      std::vector<std::string> vars;
      PatternVars(plan.steps[i].pattern, &vars);
      for (auto& v : vars) acc.insert(v);
      bound_after[i] = acc;
    }
    for (const ExprPtr& filter : query->filters) {
      if (filter->ContainsAggregate()) {
        return Status::InvalidArgument(
            "aggregates are not allowed in WHERE-clause FILTERs");
      }
      std::vector<std::string> vars;
      filter->CollectVars(&vars);
      size_t target = plan.steps.size() - 1;
      for (size_t i = 0; i < plan.steps.size(); ++i) {
        bool all_bound = true;
        for (const auto& v : vars) {
          // BOUND(?v) may legitimately reference never-bound vars; such
          // filters stay at the last step via all_bound=false fallthrough.
          if (bound_after[i].count(v) == 0) {
            all_bound = false;
            break;
          }
        }
        if (all_bound) {
          target = i;
          break;
        }
      }
      plan.steps[target].filters.push_back(filter.get());
    }
  }

  // ---- Aggregation layout. ----
  plan.is_aggregate = query->IsAggregateQuery();
  if (plan.is_aggregate) {
    for (auto& item : query->select) AssignAggSlots(item.expr.get(), &plan.agg_specs);
    for (auto& h : query->having) AssignAggSlots(h.get(), &plan.agg_specs);
    for (auto& k : query->order_by) AssignAggSlots(k.expr.get(), &plan.agg_specs);

    for (const std::string& name : query->group_by) {
      auto slot = plan.pattern_vars.Get(name);
      if (!slot.has_value()) {
        return Status::InvalidArgument("GROUP BY variable ?" + name +
                                       " does not occur in the WHERE clause");
      }
      plan.group_slots.push_back(*slot);
      plan.group_names.push_back(name);
      plan.group_vars.GetOrAdd(name);
    }
    for (size_t i = 0; i < plan.agg_specs.size(); ++i) {
      plan.group_vars.GetOrAdd("__agg" + std::to_string(i));
    }
    for (const auto& h : query->having) plan.having.push_back(h.get());

    // Validate that non-aggregate select items are grouped variables.
    for (const auto& item : query->select) {
      if (item.expr->ContainsAggregate()) continue;
      std::vector<std::string> vars;
      item.expr->CollectVars(&vars);
      for (const auto& v : vars) {
        if (std::find(query->group_by.begin(), query->group_by.end(), v) ==
            query->group_by.end()) {
          return Status::InvalidArgument(
              "variable ?" + v +
              " is projected but neither grouped nor aggregated");
        }
      }
    }
  }

  // ---- Projection layout. ----
  const VariableTable& input_vars =
      plan.is_aggregate ? plan.group_vars : plan.pattern_vars;
  if (query->select_all) {
    if (plan.is_aggregate) {
      return Status::InvalidArgument("SELECT * cannot be combined with GROUP BY");
    }
    for (const std::string& name : plan.pattern_vars.names()) {
      Plan::OutputItem out;
      out.name = name;
      out.direct_slot = *plan.pattern_vars.Get(name);
      plan.outputs.push_back(std::move(out));
      plan.output_vars.GetOrAdd(name);
    }
  } else {
    for (const auto& item : query->select) {
      Plan::OutputItem out;
      out.name = item.alias;
      if (item.expr->kind == Expr::Kind::kVar) {
        auto slot = input_vars.Get(item.expr->var);
        out.direct_slot = slot.has_value() ? *slot : -1;
        // A bare var that is neither bound nor computable stays unbound;
        // SPARQL permits projecting unknown variables.
        if (!slot.has_value()) out.expr = item.expr.get();
      } else {
        out.expr = item.expr.get();
      }
      plan.outputs.push_back(std::move(out));
      plan.output_vars.GetOrAdd(item.alias);
    }
  }

  plan.distinct = query->distinct;
  for (const auto& key : query->order_by) {
    plan.order_keys.emplace_back(key.expr.get(), key.ascending);
  }
  plan.limit = query->limit;
  plan.offset = query->offset;
  return plan;
}

std::string Plan::ToString() const {
  std::string out;
  if (empty_guaranteed) {
    out += "EMPTY (constant term absent from graph)\n";
  }
  static const char* kPos[3] = {"s", "p", "o"};
  for (size_t i = 0; i < steps.size(); ++i) {
    const PatternStep& step = steps[i];
    const char* op = i == 0 ? "SCAN "
                            : (step.algo == JoinAlgo::kHashProbe ? "HJOIN"
                                                                 : "IJOIN");
    out += StrFormat("%zu: %s  %s  [est=%llu]%s", i, op,
                     step.pattern.ToString().c_str(),
                     static_cast<unsigned long long>(step.est_cardinality),
                     (i > 0 && !step.connected) ? "  CROSS" : "");
    if (step.algo == JoinAlgo::kHashProbe) {
      out += "  build=pattern probe=pipeline keys=[";
      for (size_t k = 0; k < step.key_positions.size(); ++k) {
        if (k) out += ",";
        out += kPos[step.key_positions[k]];
      }
      out += "]";
    }
    out += "\n";
    for (const Expr* f : step.filters) {
      out += "   FILTER " + f->ToString() + "\n";
    }
  }
  if (is_aggregate) {
    out += "AGGREGATE group=[";
    for (size_t i = 0; i < group_names.size(); ++i) {
      if (i) out += ", ";
      out += "?" + group_names[i];
    }
    out += "] aggs=[";
    for (size_t i = 0; i < agg_specs.size(); ++i) {
      if (i) out += ", ";
      out += agg_specs[i]->ToString();
    }
    out += "]\n";
    for (const Expr* h : having) out += "HAVING " + h->ToString() + "\n";
  }
  out += "PROJECT [";
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (i) out += ", ";
    out += "?" + outputs[i].name;
  }
  out += "]\n";
  if (distinct) out += "DISTINCT\n";
  if (!order_keys.empty()) {
    out += "ORDER BY";
    for (const auto& [expr, asc] : order_keys) {
      out += std::string(asc ? " ASC(" : " DESC(") + expr->ToString() + ")";
    }
    out += "\n";
  }
  if (limit >= 0 || offset > 0) {
    out += StrFormat("SLICE limit=%lld offset=%lld\n",
                     static_cast<long long>(limit), static_cast<long long>(offset));
  }
  return out;
}

}  // namespace sparql
}  // namespace sofos
