#ifndef SOFOS_SPARQL_QUERY_ENGINE_H_
#define SOFOS_SPARQL_QUERY_ENGINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "sparql/executor.h"

namespace sofos {
namespace sparql {

/// Decoded query results: one row of Terms per solution. Unbound positions
/// carry a default-constructed empty IRI with `bound[...] == false` encoded
/// as an empty lexical (helpers below expose bound-ness explicitly).
struct QueryResult {
  std::vector<std::string> var_names;
  std::vector<std::vector<Term>> rows;
  std::vector<std::vector<bool>> bound;  // parallel to rows
  ExecStats stats;

  size_t NumRows() const { return rows.size(); }
  size_t NumCols() const { return var_names.size(); }

  /// Renders an aligned text table (for examples and the CLI).
  std::string ToTable(size_t max_rows = 50) const;

  /// Sorts rows by the total term order; makes result comparison in tests
  /// independent of execution order.
  void SortCanonical();
};

/// Facade tying parser, planner and executor together — the query-processing
/// component of the Sofos online module (paper Figure 2).
///
/// The store must be finalized. Execution may intern new literal terms
/// (aggregate results) into the store's dictionary but never adds triples,
/// so independent QueryEngine instances over the same store may Execute()
/// concurrently (dictionary interning is internally synchronized).
///
/// `options` selects the execution engine (vectorized batch by default) and
/// its intra-query parallelism; results are identical for every setting
/// (see the Executor determinism contract), so callers tune it purely for
/// speed — e.g. the engine facade budgets dop between concurrent queries.
class QueryEngine {
 public:
  explicit QueryEngine(TripleStore* store) : store_(store) {}
  QueryEngine(TripleStore* store, const ExecOptions& options)
      : store_(store), options_(options) {}

  void set_exec_options(const ExecOptions& options) { options_ = options; }
  const ExecOptions& exec_options() const { return options_; }

  /// Parses and runs a query.
  Result<QueryResult> Execute(std::string_view sparql);

  /// Runs a pre-parsed query. `query` may have aggregate slots assigned as
  /// a side effect of planning.
  Result<QueryResult> Execute(Query* query);

  /// Returns the plan rendering plus the physical (batch/exchange) schedule
  /// this engine's options would execute it with, for diagnostics.
  Result<std::string> Explain(std::string_view sparql);

  /// EXPLAIN ANALYZE: executes the query with per-operator instrumentation
  /// (ExecOptions::analyze) and returns the physical schedule plus the plan
  /// tree annotated with actual rows/batches/micros next to the planner's
  /// estimates, then a totals line. If `result_out` is non-null the decoded
  /// result is moved there, so callers can both show actuals and use rows.
  Result<std::string> Analyze(std::string_view sparql,
                              QueryResult* result_out = nullptr);

  TripleStore* store() { return store_; }

 private:
  TripleStore* store_;
  ExecOptions options_;
};

}  // namespace sparql
}  // namespace sofos

#endif  // SOFOS_SPARQL_QUERY_ENGINE_H_
