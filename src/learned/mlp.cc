#include "learned/mlp.h"

#include <cassert>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace sofos {
namespace learned {

Mlp::Mlp(std::vector<int> layer_sizes, uint64_t init_seed)
    : layer_sizes_(std::move(layer_sizes)) {
  assert(layer_sizes_.size() >= 2);
  assert(layer_sizes_.back() == 1);
  Rng rng(init_seed);
  for (size_t i = 0; i + 1 < layer_sizes_.size(); ++i) {
    Layer layer;
    layer.in = layer_sizes_[i];
    layer.out = layer_sizes_[i + 1];
    layer.w.resize(static_cast<size_t>(layer.in) * layer.out);
    layer.b.assign(static_cast<size_t>(layer.out), 0.0);
    // He initialization (appropriate for ReLU activations).
    double stddev = std::sqrt(2.0 / layer.in);
    for (auto& w : layer.w) w = rng.Normal(0.0, stddev);
    layer.mw.assign(layer.w.size(), 0.0);
    layer.vw.assign(layer.w.size(), 0.0);
    layer.mb.assign(layer.b.size(), 0.0);
    layer.vb.assign(layer.b.size(), 0.0);
    layers_.push_back(std::move(layer));
  }
}

void Mlp::Forward(const std::vector<double>& x,
                  std::vector<std::vector<double>>* activations) const {
  activations->clear();
  activations->push_back(x);
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const std::vector<double>& in = activations->back();
    std::vector<double> out(static_cast<size_t>(layer.out), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      double acc = layer.b[static_cast<size_t>(o)];
      const double* wrow = &layer.w[static_cast<size_t>(o) * layer.in];
      for (int i = 0; i < layer.in; ++i) acc += wrow[i] * in[static_cast<size_t>(i)];
      // ReLU on hidden layers, identity on the output layer.
      bool last = l + 1 == layers_.size();
      out[static_cast<size_t>(o)] = last ? acc : (acc > 0.0 ? acc : 0.0);
    }
    activations->push_back(std::move(out));
  }
}

double Mlp::Predict(const std::vector<double>& features) const {
  assert(static_cast<int>(features.size()) == input_dim());
  std::vector<std::vector<double>> acts;
  Forward(features, &acts);
  return acts.back()[0];
}

double Mlp::Loss(const std::vector<std::vector<double>>& xs,
                 const std::vector<double>& ys) const {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double d = Predict(xs[i]) - ys[i];
    total += d * d;
  }
  return total / static_cast<double>(xs.size());
}

Result<double> Mlp::Train(const std::vector<std::vector<double>>& xs,
                          const std::vector<double>& ys,
                          const TrainConfig& config) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("feature/label count mismatch");
  }
  if (xs.empty()) return Status::InvalidArgument("empty training set");
  for (const auto& x : xs) {
    if (static_cast<int>(x.size()) != input_dim()) {
      return Status::InvalidArgument(StrFormat(
          "feature vector has dimension %zu, expected %d", x.size(), input_dim()));
    }
  }

  Rng rng(config.seed);
  std::vector<size_t> order(xs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Per-layer gradient buffers, reused across batches.
  std::vector<std::vector<double>> gw(layers_.size()), gb(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    gw[l].assign(layers_[l].w.size(), 0.0);
    gb[l].assign(layers_[l].b.size(), 0.0);
  }

  std::vector<std::vector<double>> acts;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(config.batch_size)) {
      size_t end = std::min(order.size(),
                            start + static_cast<size_t>(config.batch_size));
      for (size_t l = 0; l < layers_.size(); ++l) {
        std::fill(gw[l].begin(), gw[l].end(), 0.0);
        std::fill(gb[l].begin(), gb[l].end(), 0.0);
      }

      for (size_t bi = start; bi < end; ++bi) {
        const auto& x = xs[order[bi]];
        double y = ys[order[bi]];
        Forward(x, &acts);
        double pred = acts.back()[0];
        // dL/dpred for MSE (per-example, averaged over the batch below).
        double delta_out = 2.0 * (pred - y);

        // Backprop. delta holds dL/d(pre-activation) of the current layer.
        std::vector<double> delta = {delta_out};
        for (size_t li = layers_.size(); li-- > 0;) {
          Layer& layer = layers_[li];
          const std::vector<double>& in = acts[li];
          std::vector<double> next_delta(static_cast<size_t>(layer.in), 0.0);
          for (int o = 0; o < layer.out; ++o) {
            double d = delta[static_cast<size_t>(o)];
            double* grow = &gw[li][static_cast<size_t>(o) * layer.in];
            const double* wrow = &layer.w[static_cast<size_t>(o) * layer.in];
            for (int i = 0; i < layer.in; ++i) {
              grow[i] += d * in[static_cast<size_t>(i)];
              next_delta[static_cast<size_t>(i)] += d * wrow[i];
            }
            gb[li][static_cast<size_t>(o)] += d;
          }
          if (li > 0) {
            // ReLU derivative w.r.t. the previous layer's activations.
            for (int i = 0; i < layer.in; ++i) {
              if (acts[li][static_cast<size_t>(i)] <= 0.0) {
                next_delta[static_cast<size_t>(i)] = 0.0;
              }
            }
          }
          delta = std::move(next_delta);
        }
      }

      // Adam update with batch-averaged gradients.
      double scale = 1.0 / static_cast<double>(end - start);
      ++adam_t_;
      double bc1 = 1.0 - std::pow(config.beta1, static_cast<double>(adam_t_));
      double bc2 = 1.0 - std::pow(config.beta2, static_cast<double>(adam_t_));
      for (size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        for (size_t i = 0; i < layer.w.size(); ++i) {
          double g = gw[l][i] * scale + config.l2 * layer.w[i];
          layer.mw[i] = config.beta1 * layer.mw[i] + (1 - config.beta1) * g;
          layer.vw[i] = config.beta2 * layer.vw[i] + (1 - config.beta2) * g * g;
          double mhat = layer.mw[i] / bc1;
          double vhat = layer.vw[i] / bc2;
          layer.w[i] -= config.learning_rate * mhat /
                        (std::sqrt(vhat) + config.epsilon);
        }
        for (size_t i = 0; i < layer.b.size(); ++i) {
          double g = gb[l][i] * scale;
          layer.mb[i] = config.beta1 * layer.mb[i] + (1 - config.beta1) * g;
          layer.vb[i] = config.beta2 * layer.vb[i] + (1 - config.beta2) * g * g;
          double mhat = layer.mb[i] / bc1;
          double vhat = layer.vb[i] / bc2;
          layer.b[i] -= config.learning_rate * mhat /
                        (std::sqrt(vhat) + config.epsilon);
        }
      }
    }
    if (config.verbose && (epoch % 50 == 0 || epoch + 1 == config.epochs)) {
      SOFOS_LOG(Info) << "mlp epoch " << epoch << " mse=" << Loss(xs, ys);
    }
  }
  return Loss(xs, ys);
}

std::string Mlp::Serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << "mlp v1\n" << layer_sizes_.size();
  for (int s : layer_sizes_) out << ' ' << s;
  out << '\n';
  for (const Layer& layer : layers_) {
    for (double w : layer.w) out << w << ' ';
    out << '\n';
    for (double b : layer.b) out << b << ' ';
    out << '\n';
  }
  return out.str();
}

Result<Mlp> Mlp::Deserialize(const std::string& data) {
  std::istringstream in(data);
  std::string magic, version;
  in >> magic >> version;
  if (magic != "mlp" || version != "v1") {
    return Status::ParseError("not a serialized sofos MLP");
  }
  size_t num_sizes = 0;
  in >> num_sizes;
  if (!in || num_sizes < 2 || num_sizes > 64) {
    return Status::ParseError("corrupt MLP header");
  }
  std::vector<int> sizes(num_sizes);
  for (auto& s : sizes) {
    in >> s;
    if (!in || s <= 0) return Status::ParseError("corrupt MLP layer sizes");
  }
  if (sizes.back() != 1) return Status::ParseError("MLP output dim must be 1");
  Mlp mlp(sizes);
  for (Layer& layer : mlp.layers_) {
    for (double& w : layer.w) in >> w;
    for (double& b : layer.b) in >> b;
    if (!in) return Status::ParseError("corrupt MLP weights");
  }
  return mlp;
}

}  // namespace learned
}  // namespace sofos
