#ifndef SOFOS_LEARNED_FEATURES_H_
#define SOFOS_LEARNED_FEATURES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sofos {
namespace learned {

/// Raw, engine-level description of a candidate view/query, assembled by
/// the core library from the facet and the store statistics. Mirrors the
/// encoding of the paper's learned cost model (§3.1): "relationships, the
/// attributes, and the type of aggregates in the query, along with
/// statistics about the relationship frequency and the attribute frequency".
struct ViewFeatureInput {
  /// Predicate IRIs appearing in the view's graph pattern.
  std::vector<std::string> predicates;
  /// Per-predicate frequency statistics, parallel to `predicates`.
  std::vector<uint64_t> predicate_counts;
  std::vector<uint64_t> predicate_distinct_subjects;
  std::vector<uint64_t> predicate_distinct_objects;

  int num_group_dims = 0;  // |X'| of the view
  int total_dims = 0;      // |X| of the facet
  int agg_kind = 0;        // AggKind as int (0..4)

  uint64_t graph_triples = 0;
  uint64_t graph_nodes = 0;
};

/// Turns a ViewFeatureInput into a fixed-width double vector:
///   * `predicate_buckets` hashed slots, each holding [presence,
///     normalized log frequency] (the hashing trick keeps the input width
///     independent of the vocabulary),
///   * per-view dimension indicators (up to kMaxDims one-hot + a fraction),
///   * aggregate-kind one-hot (5),
///   * normalized log selectivity statistics and global graph size.
class FeatureEncoder {
 public:
  static constexpr int kMaxDims = 8;
  static constexpr int kNumAggKinds = 5;

  explicit FeatureEncoder(int predicate_buckets = 8);

  /// Width of encoded vectors.
  int dim() const { return dim_; }

  std::vector<double> Encode(const ViewFeatureInput& input) const;

 private:
  int predicate_buckets_;
  int dim_;
};

}  // namespace learned
}  // namespace sofos

#endif  // SOFOS_LEARNED_FEATURES_H_
