#ifndef SOFOS_LEARNED_MLP_H_
#define SOFOS_LEARNED_MLP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace sofos {
namespace learned {

/// Training hyper-parameters for the regression model.
struct TrainConfig {
  int epochs = 200;
  int batch_size = 16;
  double learning_rate = 1e-3;  // Adam step size
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double l2 = 0.0;         // weight decay
  uint64_t seed = 42;      // shuffling + init
  bool verbose = false;    // log per-epoch loss
};

/// A from-scratch fully-connected feed-forward regression network
/// (dense layers + ReLU, scalar output, MSE loss, Adam optimizer).
///
/// This is the substrate for the paper's "learned cost" model (§3.1), which
/// adapts the deep-regression cardinality/latency estimator of Ortiz et al.
/// (arXiv:1905.06425): the offline phase trains on encoded queries and their
/// measured running times; the online phase predicts the running time of a
/// candidate view.
class Mlp {
 public:
  /// `layer_sizes` = {input_dim, hidden..., 1}. Must end with 1 and have at
  /// least two entries.
  Mlp(std::vector<int> layer_sizes, uint64_t init_seed = 42);

  int input_dim() const { return layer_sizes_.front(); }

  /// Forward pass for a single example.
  double Predict(const std::vector<double>& features) const;

  /// Mean squared error over a dataset.
  double Loss(const std::vector<std::vector<double>>& xs,
              const std::vector<double>& ys) const;

  /// Trains with mini-batch Adam; returns the final training MSE.
  Result<double> Train(const std::vector<std::vector<double>>& xs,
                       const std::vector<double>& ys, const TrainConfig& config);

  /// Serializes architecture + weights to a portable text format.
  std::string Serialize() const;
  static Result<Mlp> Deserialize(const std::string& data);

  const std::vector<int>& layer_sizes() const { return layer_sizes_; }

 private:
  struct Layer {
    int in = 0, out = 0;
    std::vector<double> w;  // out x in, row-major
    std::vector<double> b;  // out
    // Adam state.
    std::vector<double> mw, vw, mb, vb;
  };

  /// Forward keeping activations (for backprop). activations[0] = input,
  /// activations[i+1] = output of layer i (post-ReLU except the last).
  void Forward(const std::vector<double>& x,
               std::vector<std::vector<double>>* activations) const;

  std::vector<int> layer_sizes_;
  std::vector<Layer> layers_;
  int64_t adam_t_ = 0;
};

}  // namespace learned
}  // namespace sofos

#endif  // SOFOS_LEARNED_MLP_H_
