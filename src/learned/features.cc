#include "learned/features.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace sofos {
namespace learned {

namespace {

/// log1p normalized against the whole graph so features stay in ~[0, 1].
double NormLog(uint64_t value, uint64_t total) {
  double denom = std::log1p(static_cast<double>(total));
  if (denom <= 0.0) return 0.0;
  return std::log1p(static_cast<double>(value)) / denom;
}

}  // namespace

FeatureEncoder::FeatureEncoder(int predicate_buckets)
    : predicate_buckets_(std::max(1, predicate_buckets)) {
  dim_ = predicate_buckets_ * 2  // presence + normalized frequency
         + kMaxDims + 1          // dim one-hot + grouped fraction
         + kNumAggKinds          // aggregate one-hot
         + 4;                    // selectivity + graph-size summary features
}

std::vector<double> FeatureEncoder::Encode(const ViewFeatureInput& input) const {
  std::vector<double> f(static_cast<size_t>(dim_), 0.0);
  size_t pos = 0;

  // Hashed predicate buckets.
  for (size_t i = 0; i < input.predicates.size(); ++i) {
    size_t bucket = static_cast<size_t>(
        Fnv1a64(input.predicates[i]) % static_cast<uint64_t>(predicate_buckets_));
    f[bucket * 2] = 1.0;
    uint64_t count =
        i < input.predicate_counts.size() ? input.predicate_counts[i] : 0;
    f[bucket * 2 + 1] =
        std::max(f[bucket * 2 + 1], NormLog(count, input.graph_triples));
  }
  pos = static_cast<size_t>(predicate_buckets_) * 2;

  // Grouped-dimension indicators.
  int dims = std::min(input.num_group_dims, kMaxDims);
  for (int d = 0; d < dims; ++d) f[pos + static_cast<size_t>(d)] = 1.0;
  pos += kMaxDims;
  f[pos++] = input.total_dims > 0
                 ? static_cast<double>(input.num_group_dims) / input.total_dims
                 : 0.0;

  // Aggregate kind one-hot.
  if (input.agg_kind >= 0 && input.agg_kind < kNumAggKinds) {
    f[pos + static_cast<size_t>(input.agg_kind)] = 1.0;
  }
  pos += kNumAggKinds;

  // Selectivity summaries: average distinct subject/object ratios.
  double subj = 0.0, obj = 0.0;
  size_t n = input.predicates.size();
  for (size_t i = 0; i < n; ++i) {
    uint64_t count = i < input.predicate_counts.size() ? input.predicate_counts[i] : 0;
    if (count == 0) continue;
    if (i < input.predicate_distinct_subjects.size()) {
      subj += static_cast<double>(input.predicate_distinct_subjects[i]) / count;
    }
    if (i < input.predicate_distinct_objects.size()) {
      obj += static_cast<double>(input.predicate_distinct_objects[i]) / count;
    }
  }
  f[pos++] = n > 0 ? subj / static_cast<double>(n) : 0.0;
  f[pos++] = n > 0 ? obj / static_cast<double>(n) : 0.0;
  f[pos++] = NormLog(input.graph_triples, input.graph_triples);  // == 1 when nonempty
  f[pos++] = NormLog(input.graph_nodes, input.graph_triples);

  return f;
}

}  // namespace learned
}  // namespace sofos
