#include "server/admission.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

namespace sofos {
namespace server {
namespace {

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// The two rate signals the model reads from the telemetry window.
// Arrival: every line-protocol/HTTP request counter (all endpoints sum —
// every admitted request occupies a pool worker regardless of verb).
// Service: the per-endpoint handler latency histograms, which time the
// handler body only (queueing excluded), exactly the S the model wants.
constexpr char kArrivalPrefix[] = "sofos_server_requests_total";
constexpr char kServicePrefix[] = "sofos_server_request_micros";

}  // namespace

double ErlangC(unsigned c, double a) {
  if (c == 0) return 1.0;
  if (a <= 0.0) return 0.0;
  if (a >= static_cast<double>(c)) return 1.0;
  // Erlang-B by the standard recurrence, then convert to Erlang-C.
  double b = 1.0;
  for (unsigned k = 1; k <= c; ++k) {
    b = a * b / (static_cast<double>(k) + a * b);
  }
  const double cc = static_cast<double>(c);
  return cc * b / (cc - a * (1.0 - b));
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {
  if (options_.servers == 0) options_.servers = 1;
  options_.min_retry_ms = std::max(1, options_.min_retry_ms);
  options_.max_retry_ms = std::max(options_.min_retry_ms, options_.max_retry_ms);
  clock_seconds_ = options_.clock_seconds ? options_.clock_seconds
                                          : std::function<double()>();
}

void AdmissionController::SetTelemetry(const TelemetryHistory* telemetry) {
  std::lock_guard<std::mutex> lock(model_mu_);
  telemetry_ = telemetry;
  model_ = ModelState{};
}

double AdmissionController::NowSeconds() const {
  return clock_seconds_ ? clock_seconds_() : SteadyNowSeconds();
}

void AdmissionController::OnComplete(double service_micros) {
  if (service_micros <= 0.0) return;
  uint64_t prev = service_ewma_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const double old_ewma = BitsDouble(prev);
    const double next =
        old_ewma <= 0.0
            ? service_micros
            : old_ewma + options_.service_ewma_alpha * (service_micros - old_ewma);
    if (service_ewma_bits_.compare_exchange_weak(prev, DoubleBits(next),
                                                 std::memory_order_relaxed)) {
      return;
    }
  }
}

void AdmissionController::InvalidateModel() {
  std::lock_guard<std::mutex> lock(model_mu_);
  model_.refreshed_at = -1e300;
}

AdmissionController::ModelState AdmissionController::RefreshedModel() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  const double now = NowSeconds();
  if (telemetry_ != nullptr &&
      now - model_.refreshed_at >= options_.refresh_interval_seconds) {
    model_.refreshed_at = now;
    TelemetryWindow window = telemetry_->Window(options_.window_seconds);
    double lambda = 0.0;
    if (window.SumRatePerSecond(kArrivalPrefix, &lambda)) {
      model_.arrival_per_second = lambda;
    } else {
      model_.arrival_per_second = 0.0;
    }
    double mean = 0.0;
    uint64_t count = 0;
    if (window.MergedIntervalMean(kServicePrefix, &mean, &count)) {
      model_.service_micros = mean;
    } else {
      model_.service_micros = 0.0;
    }
  }
  return model_;
}

AdmissionDecision AdmissionController::Estimate(
    size_t in_flight_requests) const {
  AdmissionDecision decision;
  const ModelState model = RefreshedModel();
  const double ewma = BitsDouble(service_ewma_bits_.load(std::memory_order_relaxed));
  // Window-derived service time wins once the window has data; the
  // per-request EWMA covers the cold start and telemetry-off servers.
  const double service = model.service_micros > 0.0 ? model.service_micros : ewma;
  if (service <= 0.0) {
    // No service observation at all: cannot estimate, admit with the
    // static fallback hint.
    decision.admit = true;
    decision.retry_ms = options_.fallback_retry_ms;
    return decision;
  }

  const double c = static_cast<double>(options_.servers);
  // Instantaneous term from the live dispatch count: q requests beyond
  // the c servers are waiting; a new arrival needs q+1 completions at
  // aggregate rate c/S.
  double wait = 0.0;
  if (in_flight_requests >= options_.servers) {
    const double q =
        static_cast<double>(in_flight_requests - options_.servers);
    wait = (q + 1.0) * service / c;
  }

  // Steady-state M/M/c term from the window rates, defined while rho < 1.
  if (model.arrival_per_second > 0.0) {
    const double lambda_micro = model.arrival_per_second / 1e6;
    const double a = lambda_micro * service;  // offered erlangs
    decision.utilization = a / c;
    if (decision.utilization < 1.0) {
      const double p_wait = ErlangC(options_.servers, a);
      const double wq = p_wait / (c / service - lambda_micro);
      wait = std::max(wait, wq);
    }
  }

  decision.estimated_wait_micros = wait;
  decision.admit = wait <= options_.slo_budget_micros;
  const double wait_ms = wait / 1000.0;
  decision.retry_ms =
      std::clamp(static_cast<int>(std::ceil(wait_ms)), options_.min_retry_ms,
                 options_.max_retry_ms);
  return decision;
}

AdmissionDecision AdmissionController::Decide(size_t in_flight_requests) {
  AdmissionDecision decision = Estimate(in_flight_requests);
  if (decision.admit) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    shed_.fetch_add(1, std::memory_order_relaxed);
  }
  estimated_wait_.Record(decision.estimated_wait_micros);
  last_wait_bits_.store(DoubleBits(decision.estimated_wait_micros),
                        std::memory_order_relaxed);
  last_retry_bits_.store(DoubleBits(static_cast<double>(decision.retry_ms)),
                         std::memory_order_relaxed);
  last_util_bits_.store(DoubleBits(decision.utilization),
                        std::memory_order_relaxed);
  return decision;
}

AdmissionDecision AdmissionController::Peek(size_t in_flight_requests) const {
  return Estimate(in_flight_requests);
}

int AdmissionController::ConnectionRetryHintMs(size_t in_flight_requests) {
  const AdmissionDecision decision = Estimate(in_flight_requests);
  return std::max(options_.fallback_retry_ms, decision.retry_ms);
}

AdmissionStats AdmissionController::Stats() const {
  AdmissionStats stats;
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  const ModelState model = [&] {
    std::lock_guard<std::mutex> lock(model_mu_);
    return model_;
  }();
  stats.arrival_per_second = model.arrival_per_second;
  stats.service_micros =
      model.service_micros > 0.0
          ? model.service_micros
          : BitsDouble(service_ewma_bits_.load(std::memory_order_relaxed));
  stats.utilization = BitsDouble(last_util_bits_.load(std::memory_order_relaxed));
  stats.last_estimated_wait_micros =
      BitsDouble(last_wait_bits_.load(std::memory_order_relaxed));
  stats.last_retry_ms = BitsDouble(last_retry_bits_.load(std::memory_order_relaxed));
  stats.estimated_wait = estimated_wait_.TakeSnapshot();
  return stats;
}

}  // namespace server
}  // namespace sofos
