// Epoll event loop for the online server: one thread multiplexing many
// non-blocking connections, so thousands of mostly-idle clients cost a
// few hundred bytes of buffer each instead of a pinned pool thread.
//
// Division of labor:
//
//   - The loop thread owns every socket registered with it: it accepts
//     (listener fds live in the loop too), reads until a complete
//     request is framed (one protocol line, or one HTTP head + body),
//     and writes responses with backpressure — leftover bytes re-arm
//     EPOLLOUT and flush when the peer drains.
//   - Only *parsed requests* leave the loop: the registered handler runs
//     on the loop thread and must not block — it either answers inline
//     via Respond() (cheap verbs, admission sheds, protocol errors) or
//     dispatches the request to a worker pool, whose task calls
//     Respond() later from its own thread.
//
// One request is in flight per connection at a time: the loop stops
// framing further requests on a connection until the response for the
// current one arrives, which keeps responses ordered without any
// per-connection queue (pipelined request bytes simply wait in the read
// buffer). Connections are addressed by loop-local uint64 tokens, never
// by fd, so a response for a connection that died in the meantime is
// dropped instead of reaching a recycled descriptor.
//
// Thread safety: AddConnection/AddListener/Respond/Stop may be called
// from any thread (mailbox + eventfd wakeup); everything else — buffers,
// parser state, epoll interest — is touched only by the loop thread.
// Respond() after Stop() is safe (dropped); Respond() after destruction
// is not — the server keeps its loops alive until the worker pool has
// drained.
#ifndef SOFOS_SERVER_EVENT_LOOP_H_
#define SOFOS_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "server/http.h"

namespace sofos {
namespace server {

/// What the bytes on a connection mean: the SOFOS line protocol or HTTP.
enum class ConnKind {
  kLine,
  kHttp,
};

struct EventLoopOptions {
  /// A protocol line (or HTTP head / body) larger than this is answered
  /// with `overflow_response` (line) / 400 (HTTP) and the connection
  /// closed.
  size_t max_request_bytes = 1u << 20;
  /// Read backpressure: once this many bytes are buffered unparsed (a
  /// pipelining client outrunning its one-in-flight slot), the loop
  /// stops reading the connection until the buffer drains.
  size_t max_buffered_bytes = (1u << 20) + (64u << 10);
  /// Sent verbatim before closing when a line connection exceeds
  /// max_request_bytes (the server passes the framed ERR response the
  /// thread-per-session path sends in the same situation).
  std::string overflow_response;
};

class EventLoop {
 public:
  /// Handlers run on the loop thread with a framed request; `conn` is the
  /// token to Respond() to. They must not block.
  using LineHandler =
      std::function<void(EventLoop* loop, uint64_t conn, std::string line)>;
  using HttpHandler =
      std::function<void(EventLoop* loop, uint64_t conn, HttpRequest request)>;
  /// Runs on the loop thread for every fd accepted off a registered
  /// listener. The callee owns the fd: typically admission-check, then
  /// AddConnection() on some loop (not necessarily this one) or respond
  /// and close.
  using AcceptHandler = std::function<void(int fd, ConnKind kind)>;

  EventLoop(const EventLoopOptions& options, LineHandler on_line,
            HttpHandler on_http, AcceptHandler on_accept);
  ~EventLoop();  // implies Stop()

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll/eventfd pair and spawns the loop thread.
  Status Start();

  /// Closes every owned connection and listener and joins the loop
  /// thread. Idempotent. Respond() calls arriving afterwards are dropped.
  void Stop();

  /// Transfers a listening socket into the loop: accepted fds are handed
  /// to the accept handler. The loop closes the listener on Stop().
  void AddListener(int listen_fd, ConnKind kind);

  /// Transfers an accepted connection into the loop (sets O_NONBLOCK).
  void AddConnection(int fd, ConnKind kind);

  /// Delivers the response for the in-flight request on `conn` and
  /// re-opens the connection for its next request; `close_after_flush`
  /// closes it once the bytes are written (QUIT, HTTP, fatal errors).
  /// Unknown/dead tokens are ignored.
  void Respond(uint64_t conn, std::string bytes, bool close_after_flush);

  /// Live connections owned by this loop (listeners excluded).
  size_t open_connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    uint64_t epoll_id = 0;  // this conn's key (mirrors epoll data.u64)
    ConnKind kind = ConnKind::kLine;
    std::string in;
    std::string out;
    size_t out_offset = 0;  // bytes of `out` already sent
    bool in_flight = false;
    bool close_after_flush = false;
    bool peer_eof = false;
    uint32_t armed_events = 0;  // current epoll interest
    HttpRequestParser parser;

    explicit Conn(size_t max_bytes) : parser(max_bytes) {}
  };

  struct Mail {
    enum class Kind { kAddConn, kAddListener, kRespond, kStop };
    Kind kind = Kind::kStop;
    int fd = -1;
    ConnKind conn_kind = ConnKind::kLine;
    uint64_t conn = 0;
    std::string payload;
    bool close_after_flush = false;
  };

  void Run();
  void Post(Mail mail);
  void ProcessMail(std::vector<Mail> batch);
  void HandleAccept(int listen_fd, ConnKind kind);
  void HandleReadable(uint64_t id, Conn* conn);
  /// Frames and dispatches as many requests as the one-in-flight rule
  /// allows from the connection's read buffer.
  void ProcessInput(uint64_t id, Conn* conn);
  /// Writes as much of `out` as the socket takes. Returns false when the
  /// connection was closed (write error or close_after_flush drained).
  bool FlushOut(uint64_t id, Conn* conn);
  void UpdateInterest(Conn* conn);
  void CloseConn(uint64_t id, Conn* conn);

  EventLoopOptions options_;
  LineHandler on_line_;
  HttpHandler on_http_;
  AcceptHandler on_accept_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  std::mutex mail_mu_;
  std::vector<Mail> mail_;

  /// Loop-thread state.
  std::map<uint64_t, Conn> conns_;
  std::map<uint64_t, std::pair<int, ConnKind>> listeners_;  // id -> fd,kind
  uint64_t next_id_ = 16;  // ids below are reserved (wake/listeners)
  bool stop_requested_ = false;

  std::atomic<size_t> open_connections_{0};
};

}  // namespace server
}  // namespace sofos

#endif  // SOFOS_SERVER_EVENT_LOOP_H_
