#ifndef SOFOS_SERVER_PROTOCOL_H_
#define SOFOS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "sparql/query_engine.h"

namespace sofos {
namespace server {

/// Line-delimited text protocol of the SOFOS online server (full grammar in
/// src/server/README.md). One request per line:
///
///   QUERY <sparql>        answer a SPARQL query (view routing + cache)
///   UPDATE [n] [frac]     apply n random update batches of frac * |G| ops
///   EXPLAIN [sparql]      plan + physical schedule (default: root view)
///   ANALYZE [sparql]      EXPLAIN ANALYZE: executes and annotates the plan
///                         with per-operator actuals (default: root view)
///   TRACE <sparql>        answer with tracing on; body is the span tree
///                         as one JSON array line
///   STATS                 one-line JSON metrics dump
///   METRICS               Prometheus text exposition of every registered
///                         counter/gauge/histogram
///   HISTORY [window_s]    sliding-window rates/interval percentiles from
///                         the telemetry ring as one JSON object line
///                         (default window 60 s)
///   SLOW                  the captured slow-query ring as one JSON array
///                         line (observed latency + ANALYZE tree + spans)
///   QUIT                  close the session
///
/// Every response is a header line (`OK ...`, `ERR <msg>` or
/// `BUSY retry_ms=<n>`), optionally body lines (TSV rows for QUERY, text
/// for EXPLAIN/ANALYZE/METRICS, JSON for STATS/TRACE), and always a
/// terminating `END` line.
enum class Verb {
  kQuery,
  kUpdate,
  kExplain,
  kAnalyze,
  kTrace,
  kStats,
  kMetrics,
  kHistory,
  kSlow,
  kQuit,
};

struct Request {
  Verb verb = Verb::kStats;
  std::string arg;  // rest of the line, trimmed
};

/// The response terminator line.
inline constexpr const char kEndMarker[] = "END";

/// Parses one request line. InvalidArgument on an unknown verb or an empty
/// line.
Result<Request> ParseRequest(const std::string& line);

/// The QUERY response body: a `#vars` header line followed by one
/// tab-separated row per solution, terms in N-Triples form (tabs/newlines
/// are escaped by the N-Triples rendering, so the framing is unambiguous),
/// unbound positions as `UNBOUND`. This is the byte-exact payload the
/// result cache stores and the loopback test compares against direct
/// EngineSnapshot::Answer calls.
std::string FormatQueryBody(const sparql::QueryResult& result);

/// The QUERY response header. `view` is the routed view label or "-".
std::string FormatQueryHeader(uint64_t rows, uint64_t cols, uint64_t epoch,
                              bool cached, const std::string& view,
                              double micros);

/// `ERR <message>` with newlines flattened; body-less (caller appends END).
std::string FormatError(const std::string& message);

/// `BUSY retry_ms=<n>` — admission rejection with a retry hint.
std::string FormatBusy(int retry_ms);

}  // namespace server
}  // namespace sofos

#endif  // SOFOS_SERVER_PROTOCOL_H_
