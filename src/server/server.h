#ifndef SOFOS_SERVER_SERVER_H_
#define SOFOS_SERVER_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "server/slow_query_log.h"

namespace sofos {
namespace server {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back with
  /// port() after Start()).
  uint16_t port = 0;
  /// Concurrently *served* sessions — the size of the session worker pool.
  unsigned max_sessions = 8;
  /// Accepted-but-waiting sessions beyond max_sessions (the admission
  /// queue). Connections arriving past max_sessions + queue_capacity are
  /// rejected with `BUSY retry_ms=...` and closed.
  unsigned queue_capacity = 16;
  /// The retry hint sent with BUSY rejections.
  int busy_retry_ms = 50;
  /// Query-result cache; capacity_bytes 0 disables caching entirely.
  ResultCacheOptions cache;
  bool enable_cache = true;
  /// Keep a handle on every published epoch snapshot instead of letting
  /// superseded ones die. Test-only: lets the loopback suite re-answer a
  /// query on the exact epoch a response was served from.
  bool retain_snapshots = false;

  /// ---- Continuous telemetry ----

  /// Run the background telemetry sampler (and keep a history ring) while
  /// serving. Off = HISTORY/`/history` report no data but cost nothing.
  bool enable_telemetry = true;
  /// Seconds between background samples of the metrics registry.
  double sample_period_seconds = 1.0;
  /// Retained samples: 360 at 1 s/sample = a 6-minute sliding window.
  size_t history_capacity = 360;

  /// Serve the HTTP/1.0 observability endpoint (GET /metrics /stats
  /// /history /slow /healthz) on a second loopback listener.
  bool enable_http = true;
  /// HTTP port; 0 picks an ephemeral port (read back with http_port()).
  uint16_t http_port = 0;

  /// Slow-query capture (threshold/rate-limit semantics in
  /// server/slow_query_log.h). threshold_micros <= 0 disables capture.
  SlowQueryOptions slow_query;
};

/// The SOFOS online serving subsystem: a concurrent TCP server speaking the
/// line protocol of server/protocol.h over localhost.
///
/// Architecture: one listener thread accepts connections and admits them
/// to a session worker pool (common/thread_pool.h, max_sessions workers).
/// The pool's FIFO is the admission queue; a bounded in-flight count
/// (max_sessions + queue_capacity) provides backpressure — saturated
/// arrivals get `BUSY retry_ms=<n>` and are closed, never queued unbounded.
///
/// Serving coexists with updates through the engine's epoch snapshots:
/// QUERY/EXPLAIN sessions resolve SofosEngine::CurrentSnapshot() and run
/// entirely against that immutable read view, while UPDATE requests
/// (serialized by an internal writer mutex — the engine facade is single-
/// writer) mutate the live engine and publish a fresh snapshot. In-flight
/// queries finish on their old epoch; later requests see the new one; no
/// reader ever blocks on a writer.
///
/// On top sit a sharded LRU result cache keyed by (normalized query,
/// epoch) — epoch bumps invalidate implicitly, and the writer eagerly
/// evicts dead epochs after publishing — and per-endpoint SLO metrics
/// (request counts, p50/p95/p99 fixed-bucket latency, cache hit rate,
/// queue depth) served by STATS as one JSON line.
class SofosServer {
 public:
  /// `engine` must outlive the server and hold a loaded, finalized store.
  /// The server becomes the engine's only driver: no other thread may call
  /// engine methods (beyond CurrentSnapshot()) while it is running.
  SofosServer(core::SofosEngine* engine, const ServerOptions& options = {});
  ~SofosServer();  // implies Stop()

  SofosServer(const SofosServer&) = delete;
  SofosServer& operator=(const SofosServer&) = delete;

  /// Binds 127.0.0.1, publishes the initial snapshot, spawns the listener
  /// and the session pool.
  Status Start();

  /// Stops accepting, shuts down live sessions, waits for in-flight work.
  /// Idempotent.
  void Stop();

  bool running() const { return running_; }
  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }
  /// The bound HTTP observability port (valid after Start() when
  /// options.enable_http; 0 otherwise).
  uint16_t http_port() const { return http_port_; }

  ServerMetrics& metrics() { return metrics_; }
  const ServerMetrics& metrics() const { return metrics_; }
  ResultCacheStats CacheStats() const { return cache_.Stats(); }
  /// Drops all cached results (bench_server's cold/warm boundary).
  void ClearCache() { cache_.Clear(); }

  /// Retained snapshot for `epoch` (requires options.retain_snapshots),
  /// or null.
  std::shared_ptr<const core::EngineSnapshot> SnapshotForEpoch(
      uint64_t epoch) const;

  /// Total UPDATE batches applied since Start() (seeds the deterministic
  /// update stream like the CLI's `update` command does).
  uint64_t update_batches_applied() const;

  /// The telemetry history (null unless running with enable_telemetry).
  /// Safe to Sample()/Window() from any thread while the server runs.
  TelemetryHistory* telemetry() { return telemetry_.get(); }
  /// Takes one history sample immediately (test hook — lets suites drive
  /// the ring without waiting out the sampler period). No-op when
  /// telemetry is disabled.
  void SampleTelemetryNow();
  /// The HISTORY verb's JSON body: rates/interval percentiles over the
  /// trailing `window_seconds` ({"valid":false,...} when disabled or not
  /// enough samples yet).
  std::string HistoryJson(double window_seconds) const;

  const SlowQueryLog& slow_queries() const { return slow_log_; }

 private:
  void ListenLoop();
  void ServeSession(int fd);
  void HttpListenLoop();
  void ServeHttp(int fd);
  /// The /healthz body; sets *healthy to the admission verdict.
  std::string HealthJson(bool* healthy) const;
  /// The STATS body (shared by the STATS verb and GET /stats).
  std::string StatsJson() const;

  /// Request handlers append "header\n[body...]\nEND\n" to *out.
  void HandleQuery(const std::string& arg, std::string* out);
  void HandleUpdate(const std::string& arg, std::string* out);
  void HandleExplain(const std::string& arg, std::string* out);
  void HandleAnalyze(const std::string& arg, std::string* out);
  void HandleTrace(const std::string& arg, std::string* out);
  void HandleStats(std::string* out);
  void HandleMetrics(std::string* out);
  void HandleHistory(const std::string& arg, std::string* out);
  void HandleSlow(std::string* out);

  /// Slow-query capture: when the observed latency crosses the threshold
  /// (and the rate limit admits), re-runs `arg` once under EXPLAIN
  /// ANALYZE + tracing on `snapshot` and retains the diagnostics.
  void MaybeCaptureSlowQuery(
      const std::shared_ptr<const core::EngineSnapshot>& snapshot,
      const std::string& arg, double observed_micros);

  /// Publishes the engine's current epoch and eagerly invalidates dead
  /// cache entries. When `untouched_views` is non-null, cached answers
  /// routed through those views are first re-keyed to the new epoch
  /// (ResultCache::CarryForward) instead of evicted — the update provably
  /// left their source view unchanged, so the answers are still exact.
  /// Caller must hold update_mu_.
  Status PublishAndInvalidate(
      const std::vector<std::string>* untouched_views = nullptr);

  core::SofosEngine* engine_;
  ServerOptions options_;
  ServerMetrics metrics_;
  ResultCache cache_;
  /// Registry-collector registration bridging the server's bespoke stats
  /// (endpoint SLOs, cache shards) into the engine's MetricsRegistry for
  /// METRICS / STATS. Registered in Start(), unregistered in Stop(); 0 =
  /// not registered.
  uint64_t metrics_collector_id_ = 0;
  /// Session-pool bridge (sofos_pool_*); 0 = not registered.
  uint64_t pool_collector_id_ = 0;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread listener_;
  std::unique_ptr<ThreadPool> pool_;

  /// HTTP observability listener (second port, own thread, serves each
  /// connection synchronously — deliberately NOT on the session pool so
  /// /healthz stays responsive when the pool is saturated).
  int http_listen_fd_ = -1;
  uint16_t http_port_ = 0;
  std::thread http_listener_;

  /// Telemetry history + background sampler (enable_telemetry).
  std::unique_ptr<TelemetryHistory> telemetry_;
  SlowQueryLog slow_log_;

  /// Serializes every mutating engine entry point (UPDATE handling and
  /// snapshot publication).
  std::mutex update_mu_;
  /// Written only under update_mu_; atomic so STATS and monitoring reads
  /// never block behind a long multi-batch update (readers must not wait
  /// on the writer — the same rule the snapshots enforce for queries).
  std::atomic<uint64_t> update_batches_applied_{0};

  /// Admission bookkeeping + live session fds (so Stop() can unblock
  /// sessions parked in recv()).
  mutable std::mutex sessions_mu_;
  std::condition_variable sessions_cv_;
  unsigned admitted_ = 0;  // submitted sessions not yet finished
  unsigned active_ = 0;    // sessions currently on a worker
  std::set<int> session_fds_;

  mutable std::mutex retained_mu_;
  std::map<uint64_t, std::shared_ptr<const core::EngineSnapshot>> retained_;
};

}  // namespace server
}  // namespace sofos

#endif  // SOFOS_SERVER_SERVER_H_
