#ifndef SOFOS_SERVER_SERVER_H_
#define SOFOS_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "server/admission.h"
#include "server/event_loop.h"
#include "server/http.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "server/slow_query_log.h"

namespace sofos {
namespace server {

/// How connections map to threads.
enum class IoMode {
  /// Legacy: each accepted fd occupies one worker for its whole lifetime.
  /// Concurrency = pool size; admission is per *connection*.
  kThreadPerSession,
  /// Default: epoll event-loop threads own the sockets; only parsed
  /// requests hit the worker pool, so idle connections are nearly free
  /// and admission is per *request* (shed with BUSY, connection kept).
  kEventLoop,
};

/// Resolves the SOFOS_IO_MODE environment override ("thread" /
/// "thread_per_session" vs "event" / "event_loop" / "epoll", case
/// insensitive); anything else — including unset — returns `fallback`.
/// Used by the CLI `serve` command and bench_server so CI can run both
/// paths without a rebuild.
IoMode IoModeFromEnv(IoMode fallback);

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back with
  /// port() after Start()).
  uint16_t port = 0;
  /// Concurrently *served* sessions — the size of the session worker pool.
  unsigned max_sessions = 8;
  /// Accepted-but-waiting sessions beyond max_sessions (the admission
  /// queue). In thread-per-session mode, connections arriving past
  /// max_sessions + queue_capacity are rejected with `BUSY retry_ms=...`
  /// and closed; in event-loop mode the same figure caps the in-flight
  /// *requests* the queue model tolerates before its SLO math sheds.
  unsigned queue_capacity = 16;
  /// The retry hint floor for BUSY rejections: the admission controller's
  /// fallback while its model has no data, and the minimum hint for
  /// connection-level rejections (see AdmissionController).
  int busy_retry_ms = 50;

  /// ---- I/O architecture ----

  IoMode io_mode = IoMode::kEventLoop;
  /// Event-loop threads (event mode only). Connections are spread
  /// round-robin; each loop multiplexes its share with epoll.
  unsigned io_threads = 2;
  /// Open-connection cap in event mode (0 = default 4096). Accepts past
  /// the cap get BUSY/503 + close — this bounds fd/buffer usage, not
  /// concurrency; mostly-idle connections below it cost no threads.
  unsigned max_connections = 0;
  /// Queue-model admission tuning (SLO budget, retry clamps, telemetry
  /// window). `servers` and `fallback_retry_ms` are overwritten from
  /// max_sessions / busy_retry_ms at Start().
  AdmissionOptions admission;
  /// Query-result cache; capacity_bytes 0 disables caching entirely.
  ResultCacheOptions cache;
  bool enable_cache = true;
  /// Keep a handle on every published epoch snapshot instead of letting
  /// superseded ones die. Test-only: lets the loopback suite re-answer a
  /// query on the exact epoch a response was served from.
  bool retain_snapshots = false;

  /// ---- Continuous telemetry ----

  /// Run the background telemetry sampler (and keep a history ring) while
  /// serving. Off = HISTORY/`/history` report no data but cost nothing.
  bool enable_telemetry = true;
  /// Seconds between background samples of the metrics registry.
  double sample_period_seconds = 1.0;
  /// Retained samples: 360 at 1 s/sample = a 6-minute sliding window.
  size_t history_capacity = 360;

  /// Serve the HTTP/1.0 observability endpoint (GET /metrics /stats
  /// /history /slow /healthz) on a second loopback listener.
  bool enable_http = true;
  /// HTTP port; 0 picks an ephemeral port (read back with http_port()).
  uint16_t http_port = 0;

  /// Slow-query capture (threshold/rate-limit semantics in
  /// server/slow_query_log.h). threshold_micros <= 0 disables capture.
  SlowQueryOptions slow_query;
};

/// The SOFOS online serving subsystem: a concurrent TCP server speaking the
/// line protocol of server/protocol.h over localhost, plus an HTTP port
/// carrying the observability GETs and the /query JSON adapter.
///
/// Architecture (IoMode::kEventLoop, the default): a small set of epoll
/// event-loop threads own every socket — they accept, frame requests from
/// non-blocking reads, and write responses with EPOLLOUT backpressure —
/// and only parsed requests are dispatched to the worker pool
/// (common/thread_pool.h, max_sessions workers). Connection count is
/// therefore decoupled from thread count: thousands of mostly-idle
/// clients cost buffers, not workers. Admission is per *request* through
/// an M/M/c queue model (server/admission.h): estimated-wait-over-SLO
/// arrivals get `BUSY retry_ms=<load-derived>` and the connection stays
/// open.
///
/// IoMode::kThreadPerSession keeps the legacy shape — one listener thread
/// admits each connection to a pool worker for its whole lifetime; the
/// bounded in-flight count (max_sessions + queue_capacity) sheds
/// saturated arrivals with BUSY + close. Protocol responses are
/// byte-identical between the modes (asserted test-side); only admission
/// timing and connection capacity differ.
///
/// Serving coexists with updates through the engine's epoch snapshots:
/// QUERY/EXPLAIN sessions resolve SofosEngine::CurrentSnapshot() and run
/// entirely against that immutable read view, while UPDATE requests
/// (serialized by an internal writer mutex — the engine facade is single-
/// writer) mutate the live engine and publish a fresh snapshot. In-flight
/// queries finish on their old epoch; later requests see the new one; no
/// reader ever blocks on a writer.
///
/// On top sit a sharded LRU result cache keyed by (normalized query,
/// epoch) — epoch bumps invalidate implicitly, and the writer eagerly
/// evicts dead epochs after publishing — and per-endpoint SLO metrics
/// (request counts, p50/p95/p99 fixed-bucket latency, cache hit rate,
/// queue depth) served by STATS as one JSON line.
class SofosServer {
 public:
  /// `engine` must outlive the server and hold a loaded, finalized store.
  /// The server becomes the engine's only driver: no other thread may call
  /// engine methods (beyond CurrentSnapshot()) while it is running.
  SofosServer(core::SofosEngine* engine, const ServerOptions& options = {});
  ~SofosServer();  // implies Stop()

  SofosServer(const SofosServer&) = delete;
  SofosServer& operator=(const SofosServer&) = delete;

  /// Binds 127.0.0.1, publishes the initial snapshot, spawns the listener
  /// and the session pool.
  Status Start();

  /// Stops accepting, shuts down live sessions, waits for in-flight work.
  /// Idempotent.
  void Stop();

  bool running() const { return running_; }
  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }
  /// The bound HTTP observability port (valid after Start() when
  /// options.enable_http; 0 otherwise).
  uint16_t http_port() const { return http_port_; }

  ServerMetrics& metrics() { return metrics_; }
  const ServerMetrics& metrics() const { return metrics_; }
  ResultCacheStats CacheStats() const { return cache_.Stats(); }
  /// Drops all cached results (bench_server's cold/warm boundary).
  void ClearCache() { cache_.Clear(); }

  /// Retained snapshot for `epoch` (requires options.retain_snapshots),
  /// or null.
  std::shared_ptr<const core::EngineSnapshot> SnapshotForEpoch(
      uint64_t epoch) const;

  /// Total UPDATE batches applied since Start() (seeds the deterministic
  /// update stream like the CLI's `update` command does).
  uint64_t update_batches_applied() const;

  /// The queue-model admission controller (valid after Start()).
  AdmissionController* admission() { return admission_.get(); }
  /// Live connections: event mode sums the loops' open sockets; thread
  /// mode reports admitted sessions.
  size_t open_connections() const;

  /// The telemetry history (null unless running with enable_telemetry).
  /// Safe to Sample()/Window() from any thread while the server runs.
  TelemetryHistory* telemetry() { return telemetry_.get(); }
  /// Takes one history sample immediately (test hook — lets suites drive
  /// the ring without waiting out the sampler period). No-op when
  /// telemetry is disabled.
  void SampleTelemetryNow();
  /// The HISTORY verb's JSON body: rates/interval percentiles over the
  /// trailing `window_seconds` ({"valid":false,...} when disabled or not
  /// enough samples yet).
  std::string HistoryJson(double window_seconds) const;

  const SlowQueryLog& slow_queries() const { return slow_log_; }

 private:
  /// One executed query in wire-neutral form, shared by the line
  /// protocol's QUERY and the HTTP/JSON adapter so both surfaces hit the
  /// same cache entries, recorder, and slow-query capture.
  struct QueryOutcome {
    bool ok = false;
    std::string error;  // when !ok
    uint64_t rows = 0;
    uint64_t cols = 0;
    uint64_t epoch = 0;
    bool cached = false;
    std::string view = "-";
    double micros = 0.0;
    std::string body;  // FormatQueryBody bytes (TSV)
  };

  void ListenLoop();
  void ServeSession(int fd);
  void HttpListenLoop();
  void ServeHttp(int fd);
  /// The /healthz body; sets *healthy to the admission verdict.
  std::string HealthJson(bool* healthy) const;
  /// The STATS body (shared by the STATS verb and GET /stats).
  std::string StatsJson() const;

  /// ---- Event-loop mode ----

  /// Loop-thread callbacks: frame-level admission + dispatch.
  void OnAccept(int fd, ConnKind kind);
  void OnLineRequest(EventLoop* loop, uint64_t conn, std::string line);
  void OnHttpRequest(EventLoop* loop, uint64_t conn, HttpRequest request);
  /// Books the request in flight and hands it to the worker pool; the
  /// task answers through loop->Respond(). `http_sparql` non-empty means
  /// an HTTP /query request (responds with the JSON adapter instead of
  /// the line protocol).
  void DispatchToPool(EventLoop* loop, uint64_t conn, Request request,
                      std::string http_sparql);
  /// In-flight dispatched requests (running + queued), the queue-model's
  /// live input.
  size_t InFlightRequests() const;

  /// Runs one parsed non-QUIT request and returns the framed response —
  /// the single execution path both io modes share (byte-identity between
  /// them rests on this). Records endpoint metrics and feeds the
  /// admission controller's service-time EWMA.
  std::string ExecuteRequest(const Request& request);

  /// The shared QUERY execution: cache lookup/fill, workload recording,
  /// slow-query capture.
  QueryOutcome ExecuteQuery(const std::string& arg);

  /// ---- HTTP ----

  /// Full response for the observability GETs (/metrics /stats /history
  /// /slow /healthz, plus 404/405 fallbacks). Never runs engine work.
  std::string HttpObservabilityResponse(const HttpRequest& request);
  /// Full response for GET/POST /query (runs the query — pool-side in
  /// event mode, inline on the HTTP thread in thread mode).
  std::string HttpQueryResponse(const std::string& sparql);

  /// Request handlers append "header\n[body...]\nEND\n" to *out.
  void HandleQuery(const std::string& arg, std::string* out);
  void HandleUpdate(const std::string& arg, std::string* out);
  void HandleExplain(const std::string& arg, std::string* out);
  void HandleAnalyze(const std::string& arg, std::string* out);
  void HandleTrace(const std::string& arg, std::string* out);
  void HandleStats(std::string* out);
  void HandleMetrics(std::string* out);
  void HandleHistory(const std::string& arg, std::string* out);
  void HandleSlow(std::string* out);

  /// Slow-query capture: when the observed latency crosses the threshold
  /// (and the rate limit admits), re-runs `arg` once under EXPLAIN
  /// ANALYZE + tracing on `snapshot` and retains the diagnostics.
  void MaybeCaptureSlowQuery(
      const std::shared_ptr<const core::EngineSnapshot>& snapshot,
      const std::string& arg, double observed_micros);

  /// Publishes the engine's current epoch and eagerly invalidates dead
  /// cache entries. When `untouched_views` is non-null, cached answers
  /// routed through those views are first re-keyed to the new epoch
  /// (ResultCache::CarryForward) instead of evicted — the update provably
  /// left their source view unchanged, so the answers are still exact.
  /// Caller must hold update_mu_.
  Status PublishAndInvalidate(
      const std::vector<std::string>* untouched_views = nullptr);

  core::SofosEngine* engine_;
  ServerOptions options_;
  ServerMetrics metrics_;
  ResultCache cache_;
  /// Registry-collector registration bridging the server's bespoke stats
  /// (endpoint SLOs, cache shards) into the engine's MetricsRegistry for
  /// METRICS / STATS. Registered in Start(), unregistered in Stop(); 0 =
  /// not registered.
  uint64_t metrics_collector_id_ = 0;
  /// Session-pool bridge (sofos_pool_*); 0 = not registered.
  uint64_t pool_collector_id_ = 0;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread listener_;
  std::unique_ptr<ThreadPool> pool_;

  /// Queue-model admission (created in Start(), kept across Stop() so
  /// late Stats() reads stay valid).
  std::unique_ptr<AdmissionController> admission_;

  /// Event-loop mode: the loops own every socket (listeners included).
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<unsigned> next_loop_{0};  // round-robin connection placement
  unsigned max_connections_ = 0;        // resolved from options at Start()

  /// HTTP observability listener (second port, own thread, serves each
  /// connection synchronously — deliberately NOT on the session pool so
  /// /healthz stays responsive when the pool is saturated).
  int http_listen_fd_ = -1;
  uint16_t http_port_ = 0;
  std::thread http_listener_;

  /// Telemetry history + background sampler (enable_telemetry).
  std::unique_ptr<TelemetryHistory> telemetry_;
  SlowQueryLog slow_log_;

  /// Serializes every mutating engine entry point (UPDATE handling and
  /// snapshot publication).
  std::mutex update_mu_;
  /// Written only under update_mu_; atomic so STATS and monitoring reads
  /// never block behind a long multi-batch update (readers must not wait
  /// on the writer — the same rule the snapshots enforce for queries).
  std::atomic<uint64_t> update_batches_applied_{0};

  /// Admission bookkeeping. Thread mode: admitted/active *sessions* plus
  /// their fds (so Stop() can unblock recv()). Event mode: in-flight
  /// dispatched *requests* (running + pool-queued) — Stop() drains this
  /// to zero before tearing the loops down.
  mutable std::mutex sessions_mu_;
  std::condition_variable sessions_cv_;
  unsigned admitted_ = 0;  // submitted sessions not yet finished
  unsigned active_ = 0;    // sessions currently on a worker
  unsigned in_flight_requests_ = 0;  // event mode
  std::set<int> session_fds_;

  mutable std::mutex retained_mu_;
  std::map<uint64_t, std::shared_ptr<const core::EngineSnapshot>> retained_;
};

}  // namespace server
}  // namespace sofos

#endif  // SOFOS_SERVER_SERVER_H_
