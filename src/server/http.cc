#include "server/http.h"

#include <cctype>

#include "common/string_util.h"

namespace sofos {
namespace server {
namespace {

/// %XX-decodes a query-string component (and '+' as space). Invalid
/// escapes pass through verbatim — observability parameters are numeric,
/// so leniency beats rejection here.
std::string UrlDecode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < in.size() &&
               std::isxdigit(static_cast<unsigned char>(in[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(in[i + 2]))) {
      auto hex = [](char h) {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        return h - 'A' + 10;
      };
      out += static_cast<char>(hex(in[i + 1]) * 16 + hex(in[i + 2]));
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

bool ParseHttpRequestLine(const std::string& line, HttpRequest* request) {
  std::string_view trimmed = StrTrim(line);
  size_t sp1 = trimmed.find(' ');
  if (sp1 == std::string_view::npos) return false;
  size_t sp2 = trimmed.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  std::string_view version = trimmed.substr(sp2 + 1);
  if (!StrStartsWith(version, "HTTP/")) return false;
  request->method = std::string(trimmed.substr(0, sp1));
  std::string_view target = trimmed.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  size_t qmark = target.find('?');
  request->path = std::string(target.substr(0, qmark));
  request->params.clear();
  if (qmark != std::string_view::npos) {
    std::string_view query = target.substr(qmark + 1);
    while (!query.empty()) {
      size_t amp = query.find('&');
      std::string_view pair = query.substr(0, amp);
      size_t eq = pair.find('=');
      if (eq != std::string_view::npos) {
        request->params[UrlDecode(pair.substr(0, eq))] =
            UrlDecode(pair.substr(eq + 1));
      } else if (!pair.empty()) {
        request->params[UrlDecode(pair)] = "";
      }
      if (amp == std::string_view::npos) break;
      query.remove_prefix(amp + 1);
    }
  }
  return true;
}

std::string FormatHttpResponse(const std::string& status,
                               const std::string& content_type,
                               const std::string& body) {
  return "HTTP/1.0 " + status +
         "\r\nContent-Type: " + content_type +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n" + body;
}

}  // namespace server
}  // namespace sofos
