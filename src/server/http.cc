#include "server/http.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace sofos {
namespace server {
namespace {

/// %XX-decodes a query-string component (and '+' as space). Invalid
/// escapes pass through verbatim — observability parameters are numeric,
/// so leniency beats rejection here.
std::string UrlDecode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < in.size() &&
               std::isxdigit(static_cast<unsigned char>(in[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(in[i + 2]))) {
      auto hex = [](char h) {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        return h - 'A' + 10;
      };
      out += static_cast<char>(hex(in[i + 1]) * 16 + hex(in[i + 2]));
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

bool ParseHttpRequestLine(const std::string& line, HttpRequest* request) {
  std::string_view trimmed = StrTrim(line);
  size_t sp1 = trimmed.find(' ');
  if (sp1 == std::string_view::npos) return false;
  size_t sp2 = trimmed.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  std::string_view version = trimmed.substr(sp2 + 1);
  if (!StrStartsWith(version, "HTTP/")) return false;
  request->method = std::string(trimmed.substr(0, sp1));
  std::string_view target = trimmed.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  size_t qmark = target.find('?');
  request->path = std::string(target.substr(0, qmark));
  request->params.clear();
  if (qmark != std::string_view::npos) {
    std::string_view query = target.substr(qmark + 1);
    while (!query.empty()) {
      size_t amp = query.find('&');
      std::string_view pair = query.substr(0, amp);
      size_t eq = pair.find('=');
      if (eq != std::string_view::npos) {
        request->params[UrlDecode(pair.substr(0, eq))] =
            UrlDecode(pair.substr(eq + 1));
      } else if (!pair.empty()) {
        request->params[UrlDecode(pair)] = "";
      }
      if (amp == std::string_view::npos) break;
      query.remove_prefix(amp + 1);
    }
  }
  return true;
}

HttpRequestParser::State HttpRequestParser::Consume(std::string* buffer,
                                                    HttpRequest* request) {
  // Locate the blank line ending the head. Accept both CRLF and bare LF
  // line endings (curl sends CRLF; hand-rolled test clients often don't).
  size_t head_end = std::string::npos;  // index just past the terminator
  size_t lf_lf = buffer->find("\n\n");
  size_t lf_cr_lf = buffer->find("\n\r\n");
  if (lf_cr_lf != std::string::npos &&
      (lf_lf == std::string::npos || lf_cr_lf < lf_lf)) {
    head_end = lf_cr_lf + 3;
  } else if (lf_lf != std::string::npos) {
    head_end = lf_lf + 2;
  }
  if (head_end == std::string::npos) {
    if (buffer->size() > max_bytes_) {
      error_ = "request head too large";
      return State::kError;
    }
    return State::kNeedMore;
  }
  if (head_end > max_bytes_) {
    error_ = "request head too large";
    return State::kError;
  }

  // Split the head into lines; first is the request line, the rest are
  // "Name: value" headers.
  HttpRequest parsed;
  size_t pos = 0;
  bool first = true;
  while (pos < head_end) {
    size_t nl = buffer->find('\n', pos);
    if (nl == std::string::npos || nl >= head_end) break;
    std::string line = buffer->substr(pos, nl - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    pos = nl + 1;
    if (first) {
      first = false;
      if (!ParseHttpRequestLine(line, &parsed)) {
        error_ = "malformed request line";
        return State::kError;
      }
      continue;
    }
    if (line.empty()) break;  // end of headers
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;  // tolerate junk header lines
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(
                              static_cast<unsigned char>(c)));
    size_t value_start = colon + 1;
    while (value_start < line.size() && line[value_start] == ' ') ++value_start;
    parsed.headers[name] = line.substr(value_start);
  }
  if (first) {
    error_ = "empty request";
    return State::kError;
  }

  size_t content_length = 0;
  auto it = parsed.headers.find("content-length");
  if (it != parsed.headers.end()) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || (end != nullptr && *end != '\0')) {
      error_ = "malformed Content-Length";
      return State::kError;
    }
    if (v > max_bytes_) {
      error_ = "request body too large";
      return State::kError;
    }
    content_length = static_cast<size_t>(v);
  }
  if (buffer->size() < head_end + content_length) return State::kNeedMore;

  parsed.body = buffer->substr(head_end, content_length);
  buffer->erase(0, head_end + content_length);
  *request = std::move(parsed);
  return State::kComplete;
}

std::string FormatHttpResponse(const std::string& status,
                               const std::string& content_type,
                               const std::string& body,
                               const std::string& extra_headers) {
  return "HTTP/1.0 " + status +
         "\r\nContent-Type: " + content_type +
         "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n" +
         extra_headers + "Connection: close\r\n\r\n" + body;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace server
}  // namespace sofos
