#ifndef SOFOS_SERVER_CLIENT_H_
#define SOFOS_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "server/io_util.h"

namespace sofos {
namespace server {

/// One framed server reply: the header line plus any body lines (the
/// terminating `END` line is consumed, not stored).
struct ClientResponse {
  std::string header;              // "OK ...", "ERR ..." or "BUSY ..."
  std::vector<std::string> body;   // TSV / text / JSON lines

  bool ok() const { return header.rfind("OK", 0) == 0; }
  bool busy() const { return header.rfind("BUSY", 0) == 0; }

  /// Body re-joined with '\n' (each line newline-terminated) — the exact
  /// payload bytes the server framed, for byte-identity checks.
  std::string BodyText() const {
    std::string out;
    for (const std::string& line : body) {
      out += line;
      out += '\n';
    }
    return out;
  }
};

/// Minimal blocking TCP client for the line protocol: one request out, one
/// framed response in. Used by the CLI `client` command, the loopback
/// integration test, and bench_server's load generators. Not thread-safe;
/// use one client per thread.
class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Connects to 127.0.0.1:port.
  Status Connect(uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends `line` (newline appended) and reads lines until `END`.
  /// The protocol is line-delimited, so embedded newlines in `line` (e.g.
  /// pretty-printed SPARQL) are flattened to spaces first — SPARQL is
  /// whitespace-insensitive outside comments, which the protocol does not
  /// carry. A closed connection mid-response is an error.
  Result<ClientResponse> Roundtrip(const std::string& line);

  /// Roundtrip that honors server pushback: on a `BUSY retry_ms=<n>`
  /// response it sleeps the server-suggested interval (±25% jitter so a
  /// shed cohort does not retry in lockstep) and retries, up to
  /// `max_attempts` sends total. On a connection-level rejection (server
  /// closes after BUSY, or closes before answering) it reconnects to the
  /// last Connect()ed port first. Returns the final response — the last
  /// BUSY if every attempt was shed — so callers can distinguish "served
  /// eventually" from "still overloaded".
  Result<ClientResponse> SendWithRetry(const std::string& line,
                                       int max_attempts = 5);

 private:
  Result<std::string> ReadLine();
  /// Sleeps `base_ms` scaled by ±25% xorshift jitter, floored at 1ms.
  void JitteredSleep(int base_ms);

  int fd_ = -1;
  uint16_t port_ = 0;                   // last Connect() target, for retries
  uint32_t jitter_state_ = 0x9e3779b9;  // xorshift seed, advanced per retry
  std::unique_ptr<LineReader> reader_;  // shared framing (server/io_util.h)
};

}  // namespace server
}  // namespace sofos

#endif  // SOFOS_SERVER_CLIENT_H_
