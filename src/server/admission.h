// Queue-model admission control for the online server: replaces the static
// `BUSY retry_ms=50` hint with an M/M/c-style wait estimate driven by the
// observed arrival/service rates in the telemetry history plus the live
// request queue depth.
//
// Model: the session worker pool is c parallel servers. The controller
// estimates the queueing delay a newly admitted request would see as the
// max of two figures:
//
//   - an *instantaneous* estimate from the live queue: with all c servers
//     busy and q requests already waiting, a new arrival waits for q+1
//     service completions spread over c servers, i.e. (q+1) * S / c where
//     S is the mean service time;
//   - a *steady-state* M/M/c estimate from the observed rates: Erlang-C
//     P(wait) over offered load a = lambda/mu, giving
//     Wq = C(c, a) / (c*mu - lambda) while utilization rho < 1 (the
//     formula diverges at saturation — there the live-queue term is the
//     truthful one and dominates anyway).
//
// The two inputs come from different clocks on purpose: the rates smooth
// over the telemetry window (so one idle poll does not flip the verdict),
// the queue depth reacts within one request (so a burst sheds before the
// window catches up).
//
// Decisions: a request is admitted while the estimated wait is within the
// SLO budget, otherwise shed with a load-derived retry hint (the estimated
// time for the backlog to clear, clamped to [min,max]). With no observed
// service time yet (cold start) the controller cannot estimate and admits
// everything, hinting `fallback_retry_ms`.
//
// Thread safety: Decide/Peek/OnComplete/Stats may be called from any
// thread. The model state refresh (telemetry window read) is rate-limited
// and serialized under an internal mutex; counters are relaxed atomics.
#ifndef SOFOS_SERVER_ADMISSION_H_
#define SOFOS_SERVER_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/latency_histogram.h"
#include "common/telemetry.h"

namespace sofos {
namespace server {

struct AdmissionOptions {
  /// c — the number of parallel servers (the session worker pool size).
  /// The server fills this in from ServerOptions::max_sessions.
  unsigned servers = 8;
  /// Shed a request once its estimated queueing delay exceeds this budget.
  double slo_budget_micros = 50'000.0;
  /// Load-derived retry hints are clamped to [min_retry_ms, max_retry_ms].
  int min_retry_ms = 5;
  int max_retry_ms = 2000;
  /// Hint when the model has no data yet (and the floor for the
  /// connection-level hint in thread-per-session mode). The server maps
  /// ServerOptions::busy_retry_ms here.
  int fallback_retry_ms = 50;
  /// Telemetry window the arrival/service rates are read over.
  double window_seconds = 10.0;
  /// Rates are re-derived from telemetry at most this often; between
  /// refreshes Decide() reuses the cached model state (the live queue
  /// depth is always current).
  double refresh_interval_seconds = 0.25;
  /// EWMA weight of the newest service-time observation (OnComplete),
  /// the cold-start/fallback service signal.
  double service_ewma_alpha = 0.2;
  /// Injectable monotonic clock (seconds); null uses steady_clock.
  std::function<double()> clock_seconds;
};

struct AdmissionDecision {
  bool admit = true;
  /// The retry hint to send when shedding (also filled on admit, for
  /// introspection).
  int retry_ms = 0;
  double estimated_wait_micros = 0.0;
  /// rho = lambda / (c * mu); 0 when rates are unknown.
  double utilization = 0.0;
};

/// Counter/gauge snapshot for the sofos_server_admission_* instruments.
struct AdmissionStats {
  uint64_t admitted = 0;
  uint64_t shed = 0;
  double arrival_per_second = 0.0;  // lambda (0 = unknown)
  double service_micros = 0.0;      // S (0 = unknown)
  double utilization = 0.0;         // rho
  double last_estimated_wait_micros = 0.0;
  double last_retry_ms = 0.0;
  LatencyHistogram::Snapshot estimated_wait;  // distribution of estimates
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options = {});

  /// The telemetry history feeding the rate refresh; null (the default)
  /// leaves only the OnComplete EWMA and the live queue as inputs.
  void SetTelemetry(const TelemetryHistory* telemetry);

  /// Records one completed request's service time (measured around the
  /// handler, excluding queueing) into the EWMA — the fallback service
  /// signal while the telemetry window is still cold, and the seed the
  /// window-derived figure replaces once valid.
  void OnComplete(double service_micros);

  /// The admission verdict for a new request given the live number of
  /// dispatched-but-unfinished requests (running + queued). Updates the
  /// admitted/shed counters and the estimate histogram.
  AdmissionDecision Decide(size_t in_flight_requests);

  /// Decide() without the counter/histogram side effects — the /healthz
  /// probe, so monitoring cannot skew the shed accounting.
  AdmissionDecision Peek(size_t in_flight_requests) const;

  /// The connection-level retry hint for thread-per-session mode, where
  /// rejection happens at accept time: the load-derived hint raised to at
  /// least fallback_retry_ms (a long-lived session slot freeing up is not
  /// predictable from request rates, so the static floor stays).
  int ConnectionRetryHintMs(size_t in_flight_requests);

  AdmissionStats Stats() const;

  const AdmissionOptions& options() const { return options_; }

  /// Forces a model refresh from telemetry on the next estimate (test
  /// hook — bypasses the refresh rate limit).
  void InvalidateModel();

 private:
  struct ModelState {
    double arrival_per_second = 0.0;  // lambda; 0 = unknown
    double service_micros = 0.0;      // S; 0 = unknown
    double refreshed_at = -1e300;
  };

  double NowSeconds() const;
  /// Refreshes model_ from the telemetry window if the rate limit allows;
  /// returns the current state either way.
  ModelState RefreshedModel() const;
  AdmissionDecision Estimate(size_t in_flight_requests) const;

  AdmissionOptions options_;
  std::function<double()> clock_seconds_;
  const TelemetryHistory* telemetry_ = nullptr;

  mutable std::mutex model_mu_;
  mutable ModelState model_;

  /// EWMA of observed service micros; bit-cast through uint64 atomics so
  /// readers never tear. 0 = no observation yet.
  std::atomic<uint64_t> service_ewma_bits_{0};

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> last_wait_bits_{0};
  std::atomic<uint64_t> last_retry_bits_{0};
  std::atomic<uint64_t> last_util_bits_{0};
  LatencyHistogram estimated_wait_;
};

/// Erlang-C probability that an arrival must queue in an M/M/c system
/// with offered load `a = lambda/mu` erlangs. Exposed for tests; returns
/// 1.0 when a >= c (the formula's domain ends at saturation).
double ErlangC(unsigned c, double a);

}  // namespace server
}  // namespace sofos

#endif  // SOFOS_SERVER_ADMISSION_H_
