// SlowQueryLog: a bounded, rate-limited ring of deep diagnostics for the
// server's slowest requests. A QUERY whose latency crosses the configured
// threshold is re-run once under EXPLAIN ANALYZE + tracing and the
// rendered plan tree plus span JSON are retained here — the SLOW verb and
// GET /slow render the ring. Capture is rate-limited (min interval
// between re-runs) so a burst of slow queries costs at most one extra
// execution per interval, never a re-run per request.
#ifndef SOFOS_SERVER_SLOW_QUERY_LOG_H_
#define SOFOS_SERVER_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace sofos {
namespace server {

/// One captured slow request: the original text, its observed latency,
/// and the diagnostics from the instrumented re-run.
struct SlowQueryRecord {
  double at_seconds = 0.0;
  std::string query;
  double micros = 0.0;  // the *observed* latency that triggered capture
  uint64_t epoch = 0;
  std::string analyze_text;  // EXPLAIN ANALYZE tree of the re-run
  std::string trace_json;    // span array of the re-run
};

struct SlowQueryOptions {
  /// Capture threshold; requests at or above this observed latency are
  /// candidates. <= 0 disables capture entirely.
  double threshold_micros = 50000.0;
  /// Retained records (oldest evicted beyond this).
  size_t capacity = 16;
  /// Minimum seconds between two instrumented re-runs — the rate limit
  /// bounding the diagnostic overhead under a storm of slow queries.
  double min_interval_seconds = 1.0;
  /// Injectable clock (monotonic seconds). Defaults to steady_clock.
  std::function<double()> clock_seconds;
};

class SlowQueryLog {
 public:
  explicit SlowQueryLog(const SlowQueryOptions& options = {});

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Gate: should a request observed at `micros` be re-run for capture
  /// right now? True consumes the rate-limit token (the caller is
  /// expected to follow through with Add()); false either didn't cross
  /// the threshold or was suppressed by the rate limit.
  bool ShouldCapture(double micros);

  /// Appends one captured record (evicting the oldest at capacity).
  void Add(SlowQueryRecord record);

  std::vector<SlowQueryRecord> Snapshot() const;
  size_t size() const;

  uint64_t captured_total() const {
    return captured_.load(std::memory_order_relaxed);
  }
  /// Requests that crossed the threshold but were suppressed by the rate
  /// limit (observability for tuning min_interval_seconds).
  uint64_t suppressed_total() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

  double threshold_micros() const { return options_.threshold_micros; }

  /// The ring as one JSON array, oldest first:
  /// [{"at_seconds":..,"micros":..,"epoch":..,"query":"..",
  ///   "analyze":"..","trace":[...]},...]
  std::string ToJson() const;

 private:
  double NowSeconds() const;

  SlowQueryOptions options_;
  std::atomic<uint64_t> captured_{0};
  std::atomic<uint64_t> suppressed_{0};
  mutable std::mutex mu_;
  double last_capture_at_ = 0.0;  // guarded by mu_
  bool captured_any_ = false;     // guarded by mu_
  std::deque<SlowQueryRecord> ring_;
};

}  // namespace server
}  // namespace sofos

#endif  // SOFOS_SERVER_SLOW_QUERY_LOG_H_
