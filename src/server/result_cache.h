#ifndef SOFOS_SERVER_RESULT_CACHE_H_
#define SOFOS_SERVER_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/latency_histogram.h"

namespace sofos {
namespace server {

/// Collapses runs of whitespace outside string literals to single spaces
/// and trims the ends, so trivially reformatted repeats of the same SPARQL
/// text share one cache entry. Whitespace *inside* quoted literals (single
/// or double, backslash escapes respected) is preserved byte-for-byte —
/// queries differing only there are different queries and must never
/// collide on a key. (Triple-quoted long literals are treated as adjacent
/// short ones, which still never merges distinct literal contents.)
std::string NormalizeQueryText(const std::string& sparql);

struct ResultCacheOptions {
  /// Number of independently locked shards (rounded up to a power of two).
  size_t shards = 8;
  /// Total payload-byte budget across all shards; least-recently-used
  /// entries are evicted per shard once its share is exceeded.
  size_t capacity_bytes = 64u << 20;
  /// Cost-aware admission floor: entries whose execution cost (the
  /// `cost_micros` passed to Insert, typically ExecStats wall micros) is
  /// below this are not cached at all, so cheap point lookups cannot evict
  /// expensive analytical answers under memory pressure. 0 admits
  /// everything (the historical behavior); rejected inserts are counted in
  /// ResultCacheStats::admission_rejects.
  double min_cost_micros = 0.0;
  /// Default time-to-live for entries whose Insert did not pass an
  /// explicit TTL. 0 (the historical behavior) never expires — epoch
  /// bumps remain the primary invalidation; TTLs bound how long an entry
  /// from a *live* epoch may keep serving (e.g. to cap result-cache
  /// memory on a read-only serving window).
  double default_ttl_seconds = 0.0;
  /// Injectable monotonic clock (seconds). Null uses steady_clock; tests
  /// substitute a fake to exercise expiry without sleeping.
  std::function<double()> clock_seconds;
};

struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;          // capacity evictions
  uint64_t invalidations = 0;      // epoch-bump evictions
  uint64_t admission_rejects = 0;  // inserts refused by the cost floor
  uint64_t ttl_expired = 0;        // lookups that found an expired entry
  uint64_t carried_forward = 0;    // entries re-keyed across an epoch bump
  uint64_t entries = 0;            // current
  uint64_t bytes = 0;              // current payload bytes
  /// Distribution of entry age at hit time (micros since insertion):
  /// how warm served answers actually are. Recorded on every hit.
  LatencyHistogram::Snapshot age_at_hit;
};

/// Concurrent query-result cache for the online server: a sharded LRU
/// keyed by (normalized query text, epoch, flags). The epoch is part of
/// the key, so a published engine mutation can never serve a stale answer
/// — entries from dead epochs simply stop hitting and age out via LRU;
/// EvictObsolete() additionally drops them eagerly after an epoch bump.
///
/// Values are opaque payload strings (the protocol-formatted response
/// body), so a hit costs one hash probe + one string copy and zero query
/// execution.
///
/// Thread safety: all methods are safe from any thread; each shard has its
/// own mutex, and a key touches exactly one shard.
class ResultCache {
 public:
  explicit ResultCache(const ResultCacheOptions& options = {});

  /// Builds the canonical cache key for a query at an epoch.
  /// `allow_views` distinguishes routed from forced-base answers.
  static std::string MakeKey(const std::string& normalized_query,
                             uint64_t epoch, bool allow_views);

  /// Copies the payload into `*payload` and promotes the entry to
  /// most-recently-used. False on miss.
  bool Lookup(const std::string& key, std::string* payload);

  /// Inserts (or refreshes) `key`, then evicts LRU entries until the
  /// shard is back under its byte share. `epoch` is stored for
  /// EvictObsolete. Oversized payloads (> shard share) are not cached,
  /// and neither are answers cheaper than the admission floor
  /// (`cost_micros` < options.min_cost_micros — callers pass the measured
  /// execution cost; the infinity default means "cost unknown, admit").
  /// `ttl_seconds` caps the entry's lifetime: negative (the default)
  /// inherits options.default_ttl_seconds, 0 never expires, positive is a
  /// per-entry override. `view` labels the materialized view the answer
  /// was routed through ("" = answered from the base graph / unrouted):
  /// the CarryForward eligibility tag.
  void Insert(const std::string& key, uint64_t epoch, std::string payload,
              double cost_micros = std::numeric_limits<double>::infinity(),
              double ttl_seconds = -1.0, const std::string& view = "");

  /// Re-keys entries from `old_epoch` to `new_epoch` when the view that
  /// produced them was untouched by the intervening maintenance pass:
  /// routed answers are pure functions of their view's rows, so an update
  /// whose per-view diff is empty (ViewMaintenance::touched() false)
  /// cannot have changed them. `untouched_views` lists the view labels
  /// (as passed to Insert) that qualify; base-graph entries (view == "")
  /// never qualify — the base graph changed by definition of an update.
  /// Must run before EvictObsolete(new_epoch), which drops whatever was
  /// not carried. Returns the number of entries carried; also counted in
  /// ResultCacheStats::carried_forward.
  uint64_t CarryForward(uint64_t old_epoch, uint64_t new_epoch,
                        const std::vector<std::string>& untouched_views);

  /// Eagerly drops every entry from an epoch < `live_epoch` (they can
  /// never hit again). Called by the server after publishing a snapshot.
  void EvictObsolete(uint64_t live_epoch);

  /// Drops everything.
  void Clear();

  ResultCacheStats Stats() const;

 private:
  struct Entry {
    std::string key;
    std::string payload;
    uint64_t epoch = 0;
    double inserted_at = 0.0;  // clock seconds at Insert time
    double ttl_seconds = 0.0;  // 0 = never expires
    std::string view;          // routing label; "" = base-graph answer
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    uint64_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
    uint64_t ttl_expired = 0;
  };

  Shard& ShardFor(const std::string& key);
  void EvictOverflow(Shard* shard);  // caller holds shard->mu
  double NowSeconds() const;

  size_t shard_mask_ = 0;
  size_t shard_capacity_bytes_ = 0;
  double min_cost_micros_ = 0.0;
  double default_ttl_seconds_ = 0.0;
  std::function<double()> clock_seconds_;
  std::atomic<uint64_t> admission_rejects_{0};
  std::atomic<uint64_t> carried_forward_{0};
  LatencyHistogram age_at_hit_;  // micros since insertion, at hit time
  std::vector<Shard> shards_;
};

}  // namespace server
}  // namespace sofos

#endif  // SOFOS_SERVER_RESULT_CACHE_H_
