#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>
#include <thread>

#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "server/http.h"
#include "server/io_util.h"
#include "workload/generator.h"

namespace sofos {
namespace server {

namespace {

constexpr size_t kMaxRequestLine = 1u << 20;  // 1 MiB: plenty for SPARQL text

/// The framed response for an over-long request line — shared verbatim by
/// the thread-per-session reader and the event loop's overflow path so
/// the two modes stay byte-identical.
std::string TooLongResponse() {
  return FormatError("request line too long") + "\n" + kEndMarker + "\n";
}

/// 503 body + Retry-After for shedding HTTP /query requests.
std::string HttpOverloadedResponse(int retry_ms) {
  return FormatHttpResponse(
      "503 Service Unavailable", "application/json",
      StrFormat("{\"error\":\"overloaded\",\"retry_ms\":%d}\n", retry_ms),
      StrFormat("Retry-After: %d\r\n", std::max(1, (retry_ms + 999) / 1000)));
}

/// Cached-entry layout: one meta line "<rows>\t<cols>\t<view>\n" followed by
/// the wire body. Keeps the cache a single string while letting a hit
/// regenerate the header without rescanning the payload.
std::string PackCacheEntry(uint64_t rows, uint64_t cols,
                           const std::string& view, const std::string& body) {
  return std::to_string(rows) + '\t' + std::to_string(cols) + '\t' + view +
         '\n' + body;
}

bool UnpackCacheEntry(const std::string& entry, uint64_t* rows, uint64_t* cols,
                      std::string* view, std::string* body) {
  size_t eol = entry.find('\n');
  if (eol == std::string::npos) return false;
  std::istringstream meta(entry.substr(0, eol));
  std::string view_token;
  if (!(meta >> *rows >> *cols >> view_token)) return false;
  *view = view_token;
  body->assign(entry, eol + 1, std::string::npos);
  return true;
}

/// Binds a loopback TCP listener on `port` (0 = ephemeral) and returns
/// the fd, with the bound port in *bound_port. Shared by the protocol
/// and HTTP listeners.
Result<int> BindLoopback(uint16_t port, uint16_t* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal(std::string("bind: ") + std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal(std::string("listen: ") + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal(std::string("getsockname: ") + std::strerror(err));
  }
  *bound_port = ntohs(addr.sin_port);
  return fd;
}

}  // namespace

IoMode IoModeFromEnv(IoMode fallback) {
  const char* env = std::getenv("SOFOS_IO_MODE");
  if (env == nullptr) return fallback;
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(
                        static_cast<unsigned char>(c)));
  if (v == "thread" || v == "thread_per_session" || v == "tps") {
    return IoMode::kThreadPerSession;
  }
  if (v == "event" || v == "event_loop" || v == "epoll") {
    return IoMode::kEventLoop;
  }
  return fallback;
}

SofosServer::SofosServer(core::SofosEngine* engine, const ServerOptions& options)
    : engine_(engine),
      options_(options),
      cache_(options.cache),
      slow_log_(options.slow_query) {}

SofosServer::~SofosServer() { Stop(); }

Status SofosServer::Start() {
  if (running_) return Status::Internal("server already running");

  // The read view sessions resolve must exist before the first byte of
  // traffic; this also validates that the engine has a loaded store.
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    SOFOS_RETURN_IF_ERROR(PublishAndInvalidate());
  }

  // The queue-model admission controller spans both io modes: per-request
  // shedding in event mode, load-derived connection retry hints in thread
  // mode. c = the worker pool size; the static busy_retry_ms becomes the
  // model's no-data fallback.
  {
    AdmissionOptions aopts = options_.admission;
    aopts.servers = std::max(1u, options_.max_sessions);
    aopts.fallback_retry_ms = options_.busy_retry_ms;
    admission_ = std::make_unique<AdmissionController>(aopts);
  }
  max_connections_ =
      options_.max_connections != 0 ? options_.max_connections : 4096;

  SOFOS_ASSIGN_OR_RETURN(listen_fd_, BindLoopback(options_.port, &port_));

  if (options_.enable_http) {
    auto http_fd = BindLoopback(options_.http_port, &http_port_);
    if (!http_fd.ok()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return http_fd.status();
    }
    http_listen_fd_ = *http_fd;
  }

  if (options_.io_mode == IoMode::kEventLoop) {
    // The loops own every socket, listeners included — no accept threads.
    // loops_ must be fully populated *before* the metrics collector below
    // is registered and the telemetry sampler starts: both read loops_
    // (via open_connections()) from other threads, and it is the
    // collector registration / sampler-thread creation that publishes
    // the finished vector to them. The listener fds are handed over only
    // at the end of Start(), so no callback fires before running_ flips.
    EventLoopOptions lopts;
    lopts.max_request_bytes = kMaxRequestLine;
    lopts.overflow_response = TooLongResponse();
    const unsigned n_loops = std::max(1u, options_.io_threads);
    for (unsigned i = 0; i < n_loops; ++i) {
      loops_.push_back(std::make_unique<EventLoop>(
          lopts,
          [this](EventLoop* loop, uint64_t conn, std::string line) {
            OnLineRequest(loop, conn, std::move(line));
          },
          [this](EventLoop* loop, uint64_t conn, HttpRequest request) {
            OnHttpRequest(loop, conn, std::move(request));
          },
          [this](int fd, ConnKind kind) { OnAccept(fd, kind); }));
      Status started = loops_.back()->Start();
      if (!started.ok()) {
        loops_.clear();
        ::close(listen_fd_);
        listen_fd_ = -1;
        if (http_listen_fd_ >= 0) {
          ::close(http_listen_fd_);
          http_listen_fd_ = -1;
        }
        return started;
      }
    }
  }

  // Bridge the server's bespoke stats into the engine's registry so
  // METRICS sees every counter in the process: per-endpoint SLOs under
  // sofos_server_*{endpoint="..."} and the result cache under
  // sofos_cache_*. The callback only reads atomics / per-shard mutexes
  // and runs outside the registry lock, so it is safe from any thread.
  metrics_collector_id_ = engine_->metrics()->RegisterCollector(
      [this](std::vector<MetricSample>* out) {
        auto counter = [out](std::string name, uint64_t v) {
          MetricSample s;
          s.name = std::move(name);
          s.kind = MetricSample::Kind::kCounter;
          s.counter_value = v;
          out->push_back(std::move(s));
        };
        auto gauge = [out](std::string name, double v) {
          MetricSample s;
          s.name = std::move(name);
          s.kind = MetricSample::Kind::kGauge;
          s.gauge_value = v;
          out->push_back(std::move(s));
        };
        auto histogram = [out](std::string name,
                               LatencyHistogram::Snapshot snap) {
          MetricSample s;
          s.name = std::move(name);
          s.kind = MetricSample::Kind::kHistogram;
          s.histogram = std::move(snap);
          out->push_back(std::move(s));
        };
        for (int i = 0; i < static_cast<int>(Endpoint::kNumEndpoints); ++i) {
          const Endpoint endpoint = static_cast<Endpoint>(i);
          const EndpointMetrics& ep = metrics_.ForEndpoint(endpoint);
          const std::string label =
              std::string("{endpoint=\"") + EndpointName(endpoint) + "\"}";
          counter("sofos_server_requests_total" + label,
                  ep.requests.load(std::memory_order_relaxed));
          counter("sofos_server_errors_total" + label,
                  ep.errors.load(std::memory_order_relaxed));
          histogram("sofos_server_request_micros" + label,
                    ep.latency.TakeSnapshot());
        }
        counter("sofos_server_accepted_total", metrics_.accepted());
        counter("sofos_server_rejected_total", metrics_.rejected());
        counter("sofos_server_cache_hits_total", metrics_.cache_hits());
        counter("sofos_server_cache_misses_total", metrics_.cache_misses());
        gauge("sofos_server_queue_depth",
              static_cast<double>(metrics_.queue_depth()));
        gauge("sofos_server_active_sessions",
              static_cast<double>(metrics_.active_sessions()));
        ResultCacheStats cs = cache_.Stats();
        counter("sofos_cache_hits_total", cs.hits);
        counter("sofos_cache_misses_total", cs.misses);
        counter("sofos_cache_insertions_total", cs.insertions);
        counter("sofos_cache_evictions_total", cs.evictions);
        counter("sofos_cache_invalidations_total", cs.invalidations);
        counter("sofos_cache_admission_rejects_total", cs.admission_rejects);
        counter("sofos_cache_ttl_expired_total", cs.ttl_expired);
        counter("sofos_cache_carried_forward_total", cs.carried_forward);
        gauge("sofos_cache_entries", static_cast<double>(cs.entries));
        gauge("sofos_cache_bytes", static_cast<double>(cs.bytes));
        histogram("sofos_cache_age_at_hit_micros", std::move(cs.age_at_hit));
        if (admission_ != nullptr) {
          AdmissionStats as = admission_->Stats();
          counter("sofos_server_admission_admitted_total", as.admitted);
          counter("sofos_server_admission_shed_total", as.shed);
          histogram("sofos_server_admission_estimated_wait_micros",
                    std::move(as.estimated_wait));
          gauge("sofos_server_admission_arrival_per_second",
                as.arrival_per_second);
          gauge("sofos_server_admission_service_micros", as.service_micros);
          gauge("sofos_server_admission_utilization", as.utilization);
          gauge("sofos_server_admission_retry_ms", as.last_retry_ms);
        }
        gauge("sofos_server_open_connections",
              static_cast<double>(open_connections()));
        gauge("sofos_server_inflight_requests",
              static_cast<double>(InFlightRequests()));
      });

  pool_ = std::make_unique<ThreadPool>(std::max(1u, options_.max_sessions));
  // The session pool's queue-wait/task-run/depth figures are the observed
  // arrival/service signals the queue-model admission policy needs; the
  // bridge must unregister before pool_.reset() in Stop().
  pool_collector_id_ = pool_->BridgeMetrics(engine_->metrics());

  if (options_.enable_telemetry) {
    TelemetryOptions topts;
    topts.capacity = options_.history_capacity;
    telemetry_ =
        std::make_unique<TelemetryHistory>(engine_->metrics(), topts);
    telemetry_->StartSampler(options_.sample_period_seconds);
    admission_->SetTelemetry(telemetry_.get());
  }

  running_ = true;
  if (options_.io_mode == IoMode::kEventLoop) {
    loops_[0]->AddListener(listen_fd_, ConnKind::kLine);
    if (http_listen_fd_ >= 0) {
      loops_[0]->AddListener(http_listen_fd_, ConnKind::kHttp);
    }
  } else {
    listener_ = std::thread([this] { ListenLoop(); });
    if (http_listen_fd_ >= 0) {
      http_listener_ = std::thread([this] { HttpListenLoop(); });
    }
  }
  return Status::OK();
}

void SofosServer::Stop() {
  if (!running_.exchange(false)) {
    // Never started or already stopped; still reap listeners that raced.
    if (listener_.joinable()) listener_.join();
    if (http_listener_.joinable()) http_listener_.join();
    return;
  }

  if (!loops_.empty()) {
    // Event mode. running_ is already false, so the loop threads shed
    // every *new* request from here on; requests already dispatched to
    // the pool finish and Respond() — drain them before tearing the
    // loops down (a response must never chase a destroyed loop).
    {
      std::unique_lock<std::mutex> lock(sessions_mu_);
      sessions_cv_.wait(lock, [this] { return in_flight_requests_ == 0; });
    }
    if (telemetry_ != nullptr) telemetry_->StopSampler();
    // Stopping a loop closes every socket it owns — connections and the
    // listeners we transferred in Start().
    for (auto& loop : loops_) loop->Stop();
    loops_.clear();
    listen_fd_ = -1;
    http_listen_fd_ = -1;
    if (pool_collector_id_ != 0) {
      engine_->metrics()->UnregisterCollector(pool_collector_id_);
      pool_collector_id_ = 0;
    }
    pool_.reset();
    if (metrics_collector_id_ != 0) {
      engine_->metrics()->UnregisterCollector(metrics_collector_id_);
      metrics_collector_id_ = 0;
    }
    return;
  }

  // Thread-per-session mode: wake the listeners out of accept(), then
  // reap them.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (listener_.joinable()) listener_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (http_listen_fd_ >= 0) {
    ::shutdown(http_listen_fd_, SHUT_RDWR);
    if (http_listener_.joinable()) http_listener_.join();
    ::close(http_listen_fd_);
    http_listen_fd_ = -1;
  }

  // The sampler reads the registry through collectors that touch server
  // state; quiesce it before that state starts tearing down. The history
  // itself stays readable after Stop() (the CLI renders it post-serve).
  if (telemetry_ != nullptr) telemetry_->StopSampler();

  // Unblock every live session parked in recv(); each then finishes its
  // in-flight response and exits. Queued-but-unstarted sessions run to the
  // same immediate end once a worker frees up.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (int fd : session_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  {
    std::unique_lock<std::mutex> lock(sessions_mu_);
    sessions_cv_.wait(lock, [this] { return admitted_ == 0; });
  }
  // The pool bridge captures the pool; it must unregister before the
  // workers join and the pool dies.
  if (pool_collector_id_ != 0) {
    engine_->metrics()->UnregisterCollector(pool_collector_id_);
    pool_collector_id_ = 0;
  }
  pool_.reset();  // all tasks done; workers join

  // The collector closure captures `this`; it must not outlive the server
  // in the engine's registry (the engine usually does).
  if (metrics_collector_id_ != 0) {
    engine_->metrics()->UnregisterCollector(metrics_collector_id_);
    metrics_collector_id_ = 0;
  }
}

std::shared_ptr<const core::EngineSnapshot> SofosServer::SnapshotForEpoch(
    uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(retained_mu_);
  auto it = retained_.find(epoch);
  return it == retained_.end() ? nullptr : it->second;
}

uint64_t SofosServer::update_batches_applied() const {
  return update_batches_applied_.load(std::memory_order_relaxed);
}

Status SofosServer::PublishAndInvalidate(
    const std::vector<std::string>* untouched_views) {
  auto previous = engine_->CurrentSnapshot();
  const uint64_t previous_epoch = previous != nullptr ? previous->epoch() : 0;
  SOFOS_ASSIGN_OR_RETURN(auto snapshot, engine_->PublishSnapshot());
  if (options_.retain_snapshots) {
    std::lock_guard<std::mutex> lock(retained_mu_);
    retained_[snapshot->epoch()] = snapshot;
  }
  // Carry still-exact routed answers across the epoch bump before the
  // eager eviction drops everything that was not carried.
  if (untouched_views != nullptr && !untouched_views->empty() &&
      previous != nullptr && snapshot->epoch() > previous_epoch) {
    cache_.CarryForward(previous_epoch, snapshot->epoch(), *untouched_views);
  }
  cache_.EvictObsolete(snapshot->epoch());
  return Status::OK();
}

void SofosServer::ListenLoop() {
  while (running_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_) break;  // Stop() shut the listener down
      // Transient per-connection failures must not kill the listener: a
      // peer resetting mid-handshake (ECONNABORTED) is routine under the
      // BUSY-churn load this server sheds, and fd exhaustion recovers as
      // sessions close.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // the listening socket itself is dead
    }
    if (!running_) {
      ::close(fd);
      break;
    }
    bool admit;
    unsigned admitted_snapshot;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      admit = admitted_ < options_.max_sessions + options_.queue_capacity;
      admitted_snapshot = admitted_;
      if (admit) {
        ++admitted_;
        session_fds_.insert(fd);
        metrics_.SetQueueDepth(static_cast<int64_t>(admitted_ - active_));
      }
    }
    if (!admit) {
      metrics_.RecordRejected();
      // Load-derived hint, floored at the configured busy_retry_ms: the
      // model estimates request-queue drain, the floor covers the fact
      // that a *session* slot freeing up is not rate-predictable.
      SendAll(fd, FormatBusy(admission_->ConnectionRetryHintMs(
                      admitted_snapshot)) +
                      "\n" + kEndMarker + "\n");
      ::close(fd);
      continue;
    }
    metrics_.RecordAccepted();
    pool_->Submit([this, fd] { ServeSession(fd); });
  }
}

void SofosServer::ServeSession(int fd) {
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    ++active_;
    metrics_.SetQueueDepth(static_cast<int64_t>(admitted_ - active_));
    metrics_.SetActiveSessions(static_cast<int64_t>(active_));
  }

  LineReader reader(fd, kMaxRequestLine);
  bool open = true;
  while (open) {
    std::string line;
    LineReader::ReadResult read = reader.ReadLine(&line);
    if (read == LineReader::ReadResult::kTooLong) {
      SendAll(fd, FormatError("request line too long") + "\n" + kEndMarker +
                      "\n");
      break;
    }
    // kEof: peer closed; kError: reset or Stop() shutdown. Either way the
    // session is over.
    if (read != LineReader::ReadResult::kLine) break;
    if (StrTrim(line).empty()) continue;  // blank keep-alive lines are free

    auto request = ParseRequest(line);
    if (!request.ok()) {
      metrics_.RecordProtocolError();
      open = SendAll(fd, FormatError(request.status().ToString()) + "\n" +
                             kEndMarker + "\n");
      continue;
    }

    if (request->verb == Verb::kQuit) {
      SendAll(fd, std::string("OK BYE\n") + kEndMarker + "\n");
      break;
    }
    open = SendAll(fd, ExecuteRequest(*request));
  }

  // Deregister strictly *before* closing: once close() frees the fd
  // number, a concurrent accept() may reuse it and re-insert it into
  // session_fds_ — erasing afterwards would strip the new session's entry
  // and leave it invisible to Stop()'s shutdown sweep.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    session_fds_.erase(fd);
    --active_;
    --admitted_;
    metrics_.SetQueueDepth(static_cast<int64_t>(admitted_ - active_));
    metrics_.SetActiveSessions(static_cast<int64_t>(active_));
  }
  ::close(fd);
  sessions_cv_.notify_all();
}

std::string SofosServer::ExecuteRequest(const Request& request) {
  std::string response;
  Endpoint endpoint = Endpoint::kStats;
  bool always_ok = false;  // STATS/METRICS/SLOW cannot fail
  WallTimer timer;
  switch (request.verb) {
    case Verb::kQuery:
      HandleQuery(request.arg, &response);
      endpoint = Endpoint::kQuery;
      break;
    case Verb::kUpdate:
      HandleUpdate(request.arg, &response);
      endpoint = Endpoint::kUpdate;
      break;
    case Verb::kExplain:
      HandleExplain(request.arg, &response);
      endpoint = Endpoint::kExplain;
      break;
    case Verb::kAnalyze:
      HandleAnalyze(request.arg, &response);
      endpoint = Endpoint::kAnalyze;
      break;
    case Verb::kTrace:
      HandleTrace(request.arg, &response);
      endpoint = Endpoint::kTrace;
      break;
    case Verb::kStats:
      HandleStats(&response);
      endpoint = Endpoint::kStats;
      always_ok = true;
      break;
    case Verb::kMetrics:
      HandleMetrics(&response);
      endpoint = Endpoint::kMetrics;
      always_ok = true;
      break;
    case Verb::kHistory:
      HandleHistory(request.arg, &response);
      endpoint = Endpoint::kHistory;
      break;
    case Verb::kSlow:
      HandleSlow(&response);
      endpoint = Endpoint::kSlow;
      always_ok = true;
      break;
    case Verb::kQuit:
      // Both io paths answer QUIT before reaching here.
      return std::string("OK BYE\n") + kEndMarker + "\n";
  }
  const double micros = timer.ElapsedMicros();
  metrics_.ForEndpoint(endpoint).Record(
      micros, always_ok || response.rfind("OK", 0) == 0);
  if (admission_ != nullptr) admission_->OnComplete(micros);
  return response;
}

size_t SofosServer::InFlightRequests() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return in_flight_requests_;
}

size_t SofosServer::open_connections() const {
  if (!loops_.empty()) {
    size_t total = 0;
    for (const auto& loop : loops_) total += loop->open_connections();
    return total;
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return admitted_;
}

void SofosServer::OnAccept(int fd, ConnKind kind) {
  if (!running_) {
    ::close(fd);
    return;
  }
  if (open_connections() >= max_connections_) {
    // Connection-level cap: bounds fds and buffers, not concurrency. The
    // fd is still blocking here (AddConnection flips it), and the
    // rejection fits a socket buffer, so SendAll cannot stall the loop.
    metrics_.RecordRejected();
    const int hint = admission_->ConnectionRetryHintMs(InFlightRequests());
    if (kind == ConnKind::kLine) {
      SendAll(fd, FormatBusy(hint) + "\n" + kEndMarker + "\n");
    } else {
      SendAll(fd, HttpOverloadedResponse(hint));
    }
    ::close(fd);
    return;
  }
  metrics_.RecordAccepted();
  const unsigned target =
      next_loop_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<unsigned>(loops_.size());
  loops_[target]->AddConnection(fd, kind);
}

void SofosServer::OnLineRequest(EventLoop* loop, uint64_t conn,
                                std::string line) {
  if (StrTrim(line).empty()) {
    // The loop already skips blank lines; belt-and-braces for CR-only.
    loop->Respond(conn, "", false);
    return;
  }
  auto request = ParseRequest(line);
  if (!request.ok()) {
    metrics_.RecordProtocolError();
    loop->Respond(conn,
                  FormatError(request.status().ToString()) + "\n" +
                      kEndMarker + "\n",
                  false);
    return;
  }
  if (request->verb == Verb::kQuit) {
    loop->Respond(conn, std::string("OK BYE\n") + kEndMarker + "\n", true);
    return;
  }
  if (!running_) {
    loop->Respond(conn,
                  FormatError("server shutting down") + "\n" + kEndMarker +
                      "\n",
                  true);
    return;
  }
  // Per-request queue-model admission: shed over-SLO arrivals with a
  // load-derived hint but keep the connection — the client retries on
  // the same socket.
  AdmissionDecision decision = admission_->Decide(InFlightRequests());
  if (!decision.admit) {
    metrics_.RecordRejected();
    loop->Respond(conn,
                  FormatBusy(decision.retry_ms) + "\n" + kEndMarker + "\n",
                  false);
    return;
  }
  DispatchToPool(loop, conn, std::move(*request), /*http_sparql=*/"");
}

void SofosServer::OnHttpRequest(EventLoop* loop, uint64_t conn,
                                HttpRequest request) {
  const bool is_query = request.path == "/query";
  if (!is_query) {
    loop->Respond(conn, HttpObservabilityResponse(request), true);
    return;
  }
  std::string sparql;
  if (request.method == "GET") {
    auto it = request.params.find("q");
    if (it != request.params.end()) sparql = it->second;
  } else if (request.method == "POST") {
    sparql = request.body;
  } else {
    loop->Respond(conn,
                  FormatHttpResponse("405 Method Not Allowed", "text/plain",
                                     "GET or POST /query\n"),
                  true);
    return;
  }
  if (StrTrim(sparql).empty()) {
    loop->Respond(
        conn,
        FormatHttpResponse("400 Bad Request", "application/json",
                           "{\"error\":\"missing query: GET /query?q=... or "
                           "POST body\"}\n"),
        true);
    return;
  }
  if (!running_) {
    loop->Respond(conn,
                  FormatHttpResponse("503 Service Unavailable", "text/plain",
                                     "server shutting down\n"),
                  true);
    return;
  }
  AdmissionDecision decision = admission_->Decide(InFlightRequests());
  if (!decision.admit) {
    metrics_.RecordRejected();
    loop->Respond(conn, HttpOverloadedResponse(decision.retry_ms), true);
    return;
  }
  Request wrapped;
  wrapped.verb = Verb::kQuery;
  wrapped.arg = std::string(StrTrim(sparql));
  // Copy before the call: argument evaluation order is unspecified, so
  // `wrapped.arg` must not be read in the same argument list that moves
  // `wrapped`.
  std::string http_sparql = wrapped.arg;
  DispatchToPool(loop, conn, std::move(wrapped), std::move(http_sparql));
}

void SofosServer::DispatchToPool(EventLoop* loop, uint64_t conn,
                                 Request request, std::string http_sparql) {
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (!running_) {
      // Raced with Stop() past its drain wait: answer without dispatching
      // (the pool may be tearing down).
      loop->Respond(conn,
                    FormatError("server shutting down") + "\n" + kEndMarker +
                        "\n",
                    true);
      return;
    }
    ++in_flight_requests_;
    const unsigned in_flight = in_flight_requests_;
    const unsigned servers = std::max(1u, options_.max_sessions);
    metrics_.SetQueueDepth(
        static_cast<int64_t>(in_flight > servers ? in_flight - servers : 0));
    metrics_.SetActiveSessions(
        static_cast<int64_t>(in_flight < servers ? in_flight : servers));
  }
  const bool is_http = !http_sparql.empty();
  pool_->Submit(
      [this, loop, conn, request = std::move(request),
       http_sparql = std::move(http_sparql), is_http] {
        std::string response = is_http ? HttpQueryResponse(http_sparql)
                                       : ExecuteRequest(request);
        loop->Respond(conn, std::move(response), /*close_after_flush=*/is_http);
        {
          std::lock_guard<std::mutex> lock(sessions_mu_);
          --in_flight_requests_;
          const unsigned in_flight = in_flight_requests_;
          const unsigned servers = std::max(1u, options_.max_sessions);
          metrics_.SetQueueDepth(static_cast<int64_t>(
              in_flight > servers ? in_flight - servers : 0));
          metrics_.SetActiveSessions(
              static_cast<int64_t>(in_flight < servers ? in_flight : servers));
        }
        sessions_cv_.notify_all();
      });
}

void SofosServer::HandleQuery(const std::string& arg, std::string* out) {
  QueryOutcome result = ExecuteQuery(arg);
  if (!result.ok) {
    *out = FormatError(result.error) + "\n" + kEndMarker + "\n";
    return;
  }
  *out = FormatQueryHeader(result.rows, result.cols, result.epoch,
                           result.cached, result.view, result.micros) +
         "\n" + result.body + kEndMarker + "\n";
}

SofosServer::QueryOutcome SofosServer::ExecuteQuery(const std::string& arg) {
  QueryOutcome result;
  if (arg.empty()) {
    result.error = "usage: QUERY <sparql>";
    return result;
  }
  std::shared_ptr<const core::EngineSnapshot> snapshot =
      engine_->CurrentSnapshot();
  if (snapshot == nullptr) {
    result.error = "no published snapshot";
    return result;
  }
  const bool allow_views = true;
  const bool cache_enabled =
      options_.enable_cache && options_.cache.capacity_bytes > 0;
  std::string key;
  if (cache_enabled) {
    std::string normalized = NormalizeQueryText(arg);
    key = ResultCache::MakeKey(normalized, snapshot->epoch(), allow_views);
    std::string entry;
    if (cache_.Lookup(key, &entry)) {
      uint64_t rows = 0, cols = 0;
      std::string view, body;
      if (UnpackCacheEntry(entry, &rows, &cols, &view, &body)) {
        metrics_.RecordCacheHit();
        // Served-from-cache answers still belong in the recorded workload
        // (the observed traffic includes them); the routing decision is
        // whatever the cached execution made. No signature — the miss
        // that produced this entry recorded the replayable shape.
        core::WorkloadRecorder* recorder = engine_->recorder();
        if (recorder->enabled()) {
          core::RecordedQuery rec;
          rec.normalized_sparql = std::move(normalized);
          rec.used_view = view != "-";
          if (rec.used_view) {
            rec.view_mask = static_cast<uint32_t>(
                std::strtoul(view.c_str(), nullptr, 10));
          }
          rec.epoch = snapshot->epoch();
          rec.result_rows = rows;
          rec.cache_hit = true;
          recorder->Record(std::move(rec));
        }
        result.ok = true;
        result.rows = rows;
        result.cols = cols;
        result.epoch = snapshot->epoch();
        result.cached = true;
        result.view = std::move(view);
        result.micros = 0.0;
        result.body = std::move(body);
        return result;
      }
      // Unreadable entry (cannot happen with our own packing; defensive):
      // fall through to recompute and overwrite it.
    }
    metrics_.RecordCacheMiss();
  }

  auto outcome = snapshot->Answer(arg, allow_views);
  if (!outcome.ok()) {
    result.error = outcome.status().ToString();
    return result;
  }
  std::string view =
      outcome->used_view ? std::to_string(outcome->view_mask) : "-";
  std::string body = FormatQueryBody(outcome->result);
  result.ok = true;
  result.rows = outcome->result_rows;
  result.cols = outcome->result.NumCols();
  result.epoch = snapshot->epoch();
  result.cached = false;
  result.view = view;
  result.micros = outcome->micros;
  result.body = body;
  if (cache_enabled) {
    // The measured execution cost drives cost-aware admission: answers
    // cheaper than the configured floor are recomputed instead of cached.
    // Routed answers are tagged with their view label so an update that
    // provably leaves the view unchanged can carry them forward across
    // the epoch bump; base-graph answers ("") are always invalidated.
    cache_.Insert(key, snapshot->epoch(),
                  PackCacheEntry(outcome->result_rows,
                                 outcome->result.NumCols(), view, body),
                  outcome->micros, /*ttl_seconds=*/-1.0,
                  outcome->used_view ? view : "");
  }
  MaybeCaptureSlowQuery(snapshot, arg, outcome->micros);
  return result;
}

void SofosServer::MaybeCaptureSlowQuery(
    const std::shared_ptr<const core::EngineSnapshot>& snapshot,
    const std::string& arg, double observed_micros) {
  if (!slow_log_.ShouldCapture(observed_micros)) return;
  // One bounded, rate-limited diagnostic re-run: EXPLAIN ANALYZE for the
  // per-operator actuals, a traced Answer for the span tree. The re-run
  // is strictly extra work (the client already has its response), which
  // is why ShouldCapture() gates it behind the interval rate limit.
  SlowQueryRecord record;
  record.query = arg;
  record.micros = observed_micros;
  record.epoch = snapshot->epoch();
  auto analyze = snapshot->Analyze(arg, /*allow_views=*/true);
  record.analyze_text =
      analyze.ok() ? *analyze : "ANALYZE failed: " + analyze.status().ToString();
  TraceContext trace;
  auto rerun = snapshot->Answer(arg, /*allow_views=*/true, &trace);
  if (rerun.ok()) record.trace_json = trace.ToJson();
  slow_log_.Add(std::move(record));
}

void SofosServer::HandleUpdate(const std::string& arg, std::string* out) {
  // Strict parsing: a malformed argument must not silently fall back to
  // defaults — UPDATE mutates the graph and invalidates the cache, so a
  // typo has to fail loudly instead of applying a batch the client never
  // asked for.
  int batches = 1;
  double fraction = 0.01;
  bool parse_ok = true;
  {
    std::istringstream in(arg);
    std::vector<std::string> tokens;
    std::string token;
    while (in >> token) tokens.push_back(token);
    if (tokens.size() > 2) parse_ok = false;
    if (parse_ok && tokens.size() >= 1) {
      char* end = nullptr;
      long n = std::strtol(tokens[0].c_str(), &end, 10);
      if (end == tokens[0].c_str() || *end != '\0') parse_ok = false;
      else batches = static_cast<int>(n);
    }
    if (parse_ok && tokens.size() == 2) {
      char* end = nullptr;
      double f = std::strtod(tokens[1].c_str(), &end);
      if (end == tokens[1].c_str() || *end != '\0') parse_ok = false;
      else fraction = f;
    }
  }
  if (!parse_ok || batches < 1 || batches > 1000 || fraction <= 0 ||
      fraction > 1) {
    *out = FormatError("usage: UPDATE [1 <= batches <= 1000] "
                       "[0 < fraction <= 1]") +
           "\n" + kEndMarker + "\n";
    return;
  }

  WallTimer timer;
  uint64_t adds = 0, deletes = 0;
  double drift = 0.0;
  bool reselect = false;
  Status status = Status::OK();
  uint64_t epoch = 0;
  {
    // Single-writer section: the engine facade must not see concurrent
    // mutations, and batch seeds must advance deterministically.
    std::lock_guard<std::mutex> lock(update_mu_);
    workload::UpdateStreamOptions options;
    options.num_batches = batches;
    options.batch_fraction = fraction;
    options.seed =
        99 + update_batches_applied_.load(std::memory_order_relaxed);
    auto stream = workload::GenerateUpdateStream(
        engine_->base_snapshot(), engine_->store()->dictionary(), options);
    // Union of view masks the maintenance passes actually changed, so the
    // complement's cached answers can be carried across the epoch bump.
    std::set<uint32_t> touched;
    bool touched_known = true;
    if (!stream.ok()) {
      status = stream.status();
      touched_known = false;
    } else {
      for (const auto& delta : *stream) {
        auto result = engine_->ApplyUpdates(delta);
        if (!result.ok()) {
          status = result.status();
          touched_known = false;  // conservative: invalidate everything
          break;
        }
        update_batches_applied_.fetch_add(1, std::memory_order_relaxed);
        adds += result->adds_applied;
        deletes += result->deletes_applied;
        drift = result->staleness;
        reselect = result->reselect_recommended;
        for (const auto& vm : result->maintenance.views) {
          if (vm.touched()) touched.insert(vm.mask);
        }
      }
    }
    std::vector<std::string> untouched;
    if (touched_known) {
      for (uint32_t mask : engine_->MaterializedMasks()) {
        if (touched.count(mask) == 0) {
          untouched.push_back(std::to_string(mask));
        }
      }
    }
    // Publish whatever state was reached — even a partial multi-batch
    // failure must not leave sessions reading a retired epoch forever.
    Status publish =
        PublishAndInvalidate(touched_known ? &untouched : nullptr);
    if (status.ok()) status = publish;
    epoch = engine_->epoch();
  }
  if (!status.ok()) {
    *out = FormatError(status.ToString()) + "\n" + kEndMarker + "\n";
    return;
  }
  *out = StrFormat("OK UPDATE batches=%d adds=%llu deletes=%llu epoch=%llu "
                   "drift=%.3f reselect=%d micros=%.1f",
                   batches, static_cast<unsigned long long>(adds),
                   static_cast<unsigned long long>(deletes),
                   static_cast<unsigned long long>(epoch), drift,
                   reselect ? 1 : 0, timer.ElapsedMicros()) +
         "\n" + kEndMarker + "\n";
}

void SofosServer::HandleExplain(const std::string& arg, std::string* out) {
  std::shared_ptr<const core::EngineSnapshot> snapshot =
      engine_->CurrentSnapshot();
  if (snapshot == nullptr) {
    *out = FormatError("no published snapshot") + "\n" + kEndMarker + "\n";
    return;
  }
  std::string sparql = arg;
  if (sparql.empty()) {
    if (!snapshot->has_facet()) {
      *out = FormatError("EXPLAIN with no query requires a facet") + "\n" +
             kEndMarker + "\n";
      return;
    }
    sparql = snapshot->RootViewSparql();
  }
  auto plan = snapshot->Explain(sparql);
  if (!plan.ok()) {
    *out = FormatError(plan.status().ToString()) + "\n" + kEndMarker + "\n";
    return;
  }
  std::string body = *plan;
  if (body.empty() || body.back() != '\n') body += '\n';
  *out = StrFormat("OK EXPLAIN epoch=%llu",
                   static_cast<unsigned long long>(snapshot->epoch())) +
         "\n" + body + kEndMarker + "\n";
}

void SofosServer::HandleAnalyze(const std::string& arg, std::string* out) {
  std::shared_ptr<const core::EngineSnapshot> snapshot =
      engine_->CurrentSnapshot();
  if (snapshot == nullptr) {
    *out = FormatError("no published snapshot") + "\n" + kEndMarker + "\n";
    return;
  }
  std::string sparql = arg;
  if (sparql.empty()) {
    if (!snapshot->has_facet()) {
      *out = FormatError("ANALYZE with no query requires a facet") + "\n" +
             kEndMarker + "\n";
      return;
    }
    sparql = snapshot->RootViewSparql();
  }
  auto text = snapshot->Analyze(sparql, /*allow_views=*/true);
  if (!text.ok()) {
    *out = FormatError(text.status().ToString()) + "\n" + kEndMarker + "\n";
    return;
  }
  std::string body = *text;
  if (body.empty() || body.back() != '\n') body += '\n';
  *out = StrFormat("OK ANALYZE epoch=%llu",
                   static_cast<unsigned long long>(snapshot->epoch())) +
         "\n" + body + kEndMarker + "\n";
}

void SofosServer::HandleTrace(const std::string& arg, std::string* out) {
  if (arg.empty()) {
    *out = FormatError("usage: TRACE <sparql>") + "\n" + kEndMarker + "\n";
    return;
  }
  std::shared_ptr<const core::EngineSnapshot> snapshot =
      engine_->CurrentSnapshot();
  if (snapshot == nullptr) {
    *out = FormatError("no published snapshot") + "\n" + kEndMarker + "\n";
    return;
  }
  // Uncached by design: a TRACE is a request to *execute and observe*,
  // so serving a memoized payload would defeat the point.
  TraceContext trace;
  auto outcome = snapshot->Answer(arg, /*allow_views=*/true, &trace);
  if (!outcome.ok()) {
    *out = FormatError(outcome.status().ToString()) + "\n" + kEndMarker + "\n";
    return;
  }
  const size_t spans = trace.Spans().size();
  *out = StrFormat("OK TRACE rows=%llu epoch=%llu view=%s micros=%.1f "
                   "spans=%zu",
                   static_cast<unsigned long long>(outcome->result_rows),
                   static_cast<unsigned long long>(snapshot->epoch()),
                   outcome->used_view
                       ? std::to_string(outcome->view_mask).c_str()
                       : "-",
                   outcome->micros, spans) +
         "\n" + trace.ToJson() + "\n" + kEndMarker + "\n";
}

void SofosServer::HandleMetrics(std::string* out) {
  // Prometheus text exposition of the engine registry — which, via the
  // collector registered in Start(), includes this server's endpoint SLOs
  // and the result cache alongside the engine's phase/view metrics.
  std::string body = engine_->metrics()->PrometheusText();
  if (body.empty() || body.back() != '\n') body += '\n';
  *out = std::string("OK METRICS\n") + body + kEndMarker + "\n";
}

void SofosServer::HandleStats(std::string* out) {
  *out = std::string("OK STATS\n") + StatsJson() + "\n" + kEndMarker + "\n";
}

std::string SofosServer::StatsJson() const {
  std::shared_ptr<const core::EngineSnapshot> snapshot =
      engine_->CurrentSnapshot();
  ResultCacheStats cache_stats = cache_.Stats();
  uint64_t batches = update_batches_applied_.load(std::memory_order_relaxed);
  std::string extra = StrFormat(
      "\"server\": {\"epoch\": %llu, \"triples\": %llu, "
      "\"update_batches\": %llu, \"cache_entries\": %llu, "
      "\"cache_bytes\": %llu, \"cache_evictions\": %llu, "
      "\"cache_invalidations\": %llu, \"cache_admission_rejects\": %llu, "
      "\"cache_ttl_expired\": %llu, \"cache_carried_forward\": %llu, "
      "\"cache_age_at_hit_p50_us\": %.1f}",
      static_cast<unsigned long long>(snapshot ? snapshot->epoch() : 0),
      static_cast<unsigned long long>(snapshot ? snapshot->num_triples() : 0),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(cache_stats.entries),
      static_cast<unsigned long long>(cache_stats.bytes),
      static_cast<unsigned long long>(cache_stats.evictions),
      static_cast<unsigned long long>(cache_stats.invalidations),
      static_cast<unsigned long long>(cache_stats.admission_rejects),
      static_cast<unsigned long long>(cache_stats.ttl_expired),
      static_cast<unsigned long long>(cache_stats.carried_forward),
      cache_stats.age_at_hit.P50());
  // Snapshot-publication latency (the O(changed shards) path): observable
  // online so the COW clone win shows up directly in STATS.
  LatencyHistogram::Snapshot publish = engine_->publish_latency();
  extra += StrFormat(
      ", \"publish\": {\"count\": %llu, \"mean_us\": %.1f, "
      "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f}",
      static_cast<unsigned long long>(publish.count), publish.MeanMicros(),
      publish.P50(), publish.P95(), publish.P99());
  // The full registry view (engine phases, per-view routing, plus this
  // server's own collector-contributed samples) as a nested object — the
  // same figures METRICS exposes, in JSON for programmatic clients.
  extra += ", \"registry\": " + engine_->metrics()->ToJson();
  return metrics_.ToJson(extra);
}

void SofosServer::SampleTelemetryNow() {
  if (telemetry_ != nullptr) telemetry_->Sample();
}

std::string SofosServer::HistoryJson(double window_seconds) const {
  if (telemetry_ == nullptr) {
    return "{\"valid\":false,\"window_seconds\":0,\"samples\":0,"
           "\"rates\":{},\"intervals\":{},\"gauges\":{}}";
  }
  return telemetry_->WindowJson(window_seconds);
}

void SofosServer::HandleHistory(const std::string& arg, std::string* out) {
  double window = 60.0;
  if (!arg.empty()) {
    auto parsed = ParseDouble(arg);
    if (!parsed.ok() || *parsed <= 0) {
      *out = FormatError("usage: HISTORY [window_seconds > 0]") + "\n" +
             kEndMarker + "\n";
      return;
    }
    window = *parsed;
  }
  const size_t samples = telemetry_ != nullptr ? telemetry_->size() : 0;
  *out = StrFormat("OK HISTORY window=%.1f samples=%zu", window, samples) +
         "\n" + HistoryJson(window) + "\n" + kEndMarker + "\n";
}

void SofosServer::HandleSlow(std::string* out) {
  *out = StrFormat("OK SLOW captured=%llu suppressed=%llu threshold_us=%.1f",
                   static_cast<unsigned long long>(slow_log_.captured_total()),
                   static_cast<unsigned long long>(
                       slow_log_.suppressed_total()),
                   slow_log_.threshold_micros()) +
         "\n" + slow_log_.ToJson() + "\n" + kEndMarker + "\n";
}

std::string SofosServer::HealthJson(bool* healthy) const {
  // Healthy = a new request would be admitted right now. Thread mode uses
  // the exact session-slot test ListenLoop applies; event mode asks the
  // queue-model estimator (Peek: no counters touched, so scraping /healthz
  // never skews shed statistics). Either way the health probe stays
  // readable under saturation: the thread-mode HTTP listener serves
  // synchronously off the session pool, and the event loop never blocks
  // on worker threads.
  bool ok = true;
  unsigned admitted = 0;
  double estimated_wait_us = 0.0;
  double utilization = 0.0;
  const unsigned capacity = options_.max_sessions + options_.queue_capacity;
  if (!loops_.empty()) {
    const size_t in_flight = InFlightRequests();
    admitted = static_cast<unsigned>(in_flight);
    AdmissionDecision peek = admission_->Peek(in_flight);
    ok = peek.admit;
    estimated_wait_us = peek.estimated_wait_micros;
    utilization = peek.utilization;
  } else {
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      admitted = admitted_;
    }
    ok = admitted < capacity;
  }
  if (healthy != nullptr) *healthy = ok;
  std::shared_ptr<const core::EngineSnapshot> snapshot =
      engine_->CurrentSnapshot();
  return StrFormat(
      "{\"status\":\"%s\",\"epoch\":%llu,\"admitted\":%u,"
      "\"capacity\":%u,\"estimated_wait_us\":%.1f,\"utilization\":%.3f,"
      "\"open_connections\":%zu,\"update_batches\":%llu,"
      "\"telemetry_samples\":%zu}",
      ok ? "ok" : "overloaded",
      static_cast<unsigned long long>(snapshot ? snapshot->epoch() : 0),
      admitted, capacity, estimated_wait_us, utilization, open_connections(),
      static_cast<unsigned long long>(
          update_batches_applied_.load(std::memory_order_relaxed)),
      telemetry_ != nullptr ? telemetry_->size() : static_cast<size_t>(0));
}

void SofosServer::HttpListenLoop() {
  while (running_) {
    int fd = ::accept(http_listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;
    }
    if (!running_) {
      ::close(fd);
      break;
    }
    // Synchronous, one request per connection: observability responses
    // are small and generated from in-memory state, so a scraper cannot
    // stall the listener for long — and a recv timeout bounds a client
    // that connects and then says nothing.
    ServeHttp(fd);
    ::close(fd);
  }
}

void SofosServer::ServeHttp(int fd) {
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  // The same incremental parser the event loop uses, driven by blocking
  // reads: byte-identical request handling across io modes.
  HttpRequestParser parser(kMaxRequestLine + (1u << 20));
  HttpRequest request;
  std::string buffer;
  HttpRequestParser::State state = HttpRequestParser::State::kNeedMore;
  char chunk[4096];
  while (state == HttpRequestParser::State::kNeedMore) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return;  // timeout, disconnect, or error: nothing to answer
    buffer.append(chunk, static_cast<size_t>(n));
    state = parser.Consume(&buffer, &request);
  }
  if (state == HttpRequestParser::State::kError) {
    SendAll(fd, FormatHttpResponse("400 Bad Request", "text/plain",
                                   parser.error() + "\n"));
    return;
  }

  if (request.path == "/query") {
    std::string sparql;
    if (request.method == "GET") {
      auto it = request.params.find("q");
      if (it != request.params.end()) sparql = it->second;
    } else if (request.method == "POST") {
      sparql = request.body;
    } else {
      SendAll(fd, FormatHttpResponse("405 Method Not Allowed", "text/plain",
                                     "GET or POST /query\n"));
      return;
    }
    if (StrTrim(sparql).empty()) {
      SendAll(fd, FormatHttpResponse(
                      "400 Bad Request", "application/json",
                      "{\"error\":\"missing query: GET /query?q=... or "
                      "POST body\"}\n"));
      return;
    }
    // Thread-mode admission for the HTTP surface: the same session-slot
    // test the line listener applies, since the query runs synchronously
    // on this listener thread rather than through the pool.
    unsigned admitted = 0;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      admitted = admitted_;
    }
    if (admitted >= options_.max_sessions + options_.queue_capacity) {
      metrics_.RecordRejected();
      SendAll(fd, HttpOverloadedResponse(
                      admission_->ConnectionRetryHintMs(admitted)));
      return;
    }
    SendAll(fd, HttpQueryResponse(std::string(StrTrim(sparql))));
    return;
  }
  SendAll(fd, HttpObservabilityResponse(request));
}

std::string SofosServer::HttpObservabilityResponse(const HttpRequest& request) {
  if (request.method != "GET") {
    return FormatHttpResponse("405 Method Not Allowed", "text/plain",
                              "GET only\n");
  }
  if (request.path == "/metrics") {
    return FormatHttpResponse("200 OK", "text/plain; version=0.0.4",
                              engine_->metrics()->PrometheusText());
  }
  if (request.path == "/stats") {
    return FormatHttpResponse("200 OK", "application/json", StatsJson() + "\n");
  }
  if (request.path == "/history") {
    double window = 60.0;
    auto it = request.params.find("window");
    if (it != request.params.end()) {
      auto parsed = ParseDouble(it->second);
      if (!parsed.ok() || *parsed <= 0) {
        return FormatHttpResponse("400 Bad Request", "text/plain",
                                  "window must be a positive number\n");
      }
      window = *parsed;
    }
    return FormatHttpResponse("200 OK", "application/json",
                              HistoryJson(window) + "\n");
  }
  if (request.path == "/slow") {
    return FormatHttpResponse("200 OK", "application/json",
                              slow_log_.ToJson() + "\n");
  }
  if (request.path == "/healthz") {
    bool healthy = false;
    std::string body = HealthJson(&healthy) + "\n";
    return FormatHttpResponse(healthy ? "200 OK" : "503 Service Unavailable",
                              "application/json", body);
  }
  return FormatHttpResponse(
      "404 Not Found", "text/plain",
      "endpoints: /query /metrics /stats /history /slow /healthz\n");
}

std::string SofosServer::HttpQueryResponse(const std::string& sparql) {
  WallTimer timer;
  QueryOutcome result = ExecuteQuery(sparql);
  std::string response;
  if (!result.ok) {
    response = FormatHttpResponse(
        "400 Bad Request", "application/json",
        "{\"error\":\"" + JsonEscape(result.error) + "\"}\n");
  } else {
    // The TSV body FormatQueryBody produced ("#vars\tv1..." then one
    // row per line) re-encoded as JSON arrays, with the line-protocol
    // header fields inline — one adapter, same execution + cache path.
    std::string json = StrFormat(
        "{\"rows\":%llu,\"cols\":%llu,\"epoch\":%llu,\"cached\":%s,"
        "\"view\":\"%s\",\"micros\":%.1f,",
        static_cast<unsigned long long>(result.rows),
        static_cast<unsigned long long>(result.cols),
        static_cast<unsigned long long>(result.epoch),
        result.cached ? "true" : "false", JsonEscape(result.view).c_str(),
        result.micros);
    json += "\"vars\":[";
    std::istringstream body(result.body);
    std::string line;
    bool first_row = true;
    std::string bindings = "\"bindings\":[";
    bool header_seen = false;
    while (std::getline(body, line)) {
      if (!header_seen) {
        header_seen = true;
        // "#vars\tv1\tv2..." — an empty projection has no tabs at all.
        size_t pos = line.find('\t');
        bool first_var = true;
        while (pos != std::string::npos) {
          size_t next = line.find('\t', pos + 1);
          std::string var = line.substr(
              pos + 1, next == std::string::npos ? std::string::npos
                                                 : next - pos - 1);
          if (!first_var) json += ',';
          first_var = false;
          json += '"' + JsonEscape(var) + '"';
          pos = next;
        }
        continue;
      }
      if (!first_row) bindings += ',';
      first_row = false;
      bindings += '[';
      size_t start = 0;
      bool first_cell = true;
      while (true) {
        size_t tab = line.find('\t', start);
        std::string cell = line.substr(
            start, tab == std::string::npos ? std::string::npos : tab - start);
        if (!first_cell) bindings += ',';
        first_cell = false;
        bindings += '"' + JsonEscape(cell) + '"';
        if (tab == std::string::npos) break;
        start = tab + 1;
      }
      bindings += ']';
    }
    json += "],";
    json += bindings;
    json += "]}\n";
    response = FormatHttpResponse("200 OK", "application/json", json);
  }
  const double micros = timer.ElapsedMicros();
  metrics_.ForEndpoint(Endpoint::kHttpQuery)
      .Record(micros, response.rfind("HTTP/1.0 200", 0) == 0);
  if (admission_ != nullptr) admission_->OnComplete(micros);
  return response;
}

}  // namespace server
}  // namespace sofos
