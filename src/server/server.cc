#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>
#include <thread>

#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "server/http.h"
#include "server/io_util.h"
#include "workload/generator.h"

namespace sofos {
namespace server {

namespace {

constexpr size_t kMaxRequestLine = 1u << 20;  // 1 MiB: plenty for SPARQL text

/// Cached-entry layout: one meta line "<rows>\t<cols>\t<view>\n" followed by
/// the wire body. Keeps the cache a single string while letting a hit
/// regenerate the header without rescanning the payload.
std::string PackCacheEntry(uint64_t rows, uint64_t cols,
                           const std::string& view, const std::string& body) {
  return std::to_string(rows) + '\t' + std::to_string(cols) + '\t' + view +
         '\n' + body;
}

bool UnpackCacheEntry(const std::string& entry, uint64_t* rows, uint64_t* cols,
                      std::string* view, std::string* body) {
  size_t eol = entry.find('\n');
  if (eol == std::string::npos) return false;
  std::istringstream meta(entry.substr(0, eol));
  std::string view_token;
  if (!(meta >> *rows >> *cols >> view_token)) return false;
  *view = view_token;
  body->assign(entry, eol + 1, std::string::npos);
  return true;
}

/// Binds a loopback TCP listener on `port` (0 = ephemeral) and returns
/// the fd, with the bound port in *bound_port. Shared by the protocol
/// and HTTP listeners.
Result<int> BindLoopback(uint16_t port, uint16_t* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal(std::string("bind: ") + std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal(std::string("listen: ") + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal(std::string("getsockname: ") + std::strerror(err));
  }
  *bound_port = ntohs(addr.sin_port);
  return fd;
}

}  // namespace

SofosServer::SofosServer(core::SofosEngine* engine, const ServerOptions& options)
    : engine_(engine),
      options_(options),
      cache_(options.cache),
      slow_log_(options.slow_query) {}

SofosServer::~SofosServer() { Stop(); }

Status SofosServer::Start() {
  if (running_) return Status::Internal("server already running");

  // The read view sessions resolve must exist before the first byte of
  // traffic; this also validates that the engine has a loaded store.
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    SOFOS_RETURN_IF_ERROR(PublishAndInvalidate());
  }

  SOFOS_ASSIGN_OR_RETURN(listen_fd_, BindLoopback(options_.port, &port_));

  if (options_.enable_http) {
    auto http_fd = BindLoopback(options_.http_port, &http_port_);
    if (!http_fd.ok()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return http_fd.status();
    }
    http_listen_fd_ = *http_fd;
  }

  // Bridge the server's bespoke stats into the engine's registry so
  // METRICS sees every counter in the process: per-endpoint SLOs under
  // sofos_server_*{endpoint="..."} and the result cache under
  // sofos_cache_*. The callback only reads atomics / per-shard mutexes
  // and runs outside the registry lock, so it is safe from any thread.
  metrics_collector_id_ = engine_->metrics()->RegisterCollector(
      [this](std::vector<MetricSample>* out) {
        auto counter = [out](std::string name, uint64_t v) {
          MetricSample s;
          s.name = std::move(name);
          s.kind = MetricSample::Kind::kCounter;
          s.counter_value = v;
          out->push_back(std::move(s));
        };
        auto gauge = [out](std::string name, double v) {
          MetricSample s;
          s.name = std::move(name);
          s.kind = MetricSample::Kind::kGauge;
          s.gauge_value = v;
          out->push_back(std::move(s));
        };
        auto histogram = [out](std::string name,
                               LatencyHistogram::Snapshot snap) {
          MetricSample s;
          s.name = std::move(name);
          s.kind = MetricSample::Kind::kHistogram;
          s.histogram = std::move(snap);
          out->push_back(std::move(s));
        };
        for (int i = 0; i < static_cast<int>(Endpoint::kNumEndpoints); ++i) {
          const Endpoint endpoint = static_cast<Endpoint>(i);
          const EndpointMetrics& ep = metrics_.ForEndpoint(endpoint);
          const std::string label =
              std::string("{endpoint=\"") + EndpointName(endpoint) + "\"}";
          counter("sofos_server_requests_total" + label,
                  ep.requests.load(std::memory_order_relaxed));
          counter("sofos_server_errors_total" + label,
                  ep.errors.load(std::memory_order_relaxed));
          histogram("sofos_server_request_micros" + label,
                    ep.latency.TakeSnapshot());
        }
        counter("sofos_server_accepted_total", metrics_.accepted());
        counter("sofos_server_rejected_total", metrics_.rejected());
        counter("sofos_server_cache_hits_total", metrics_.cache_hits());
        counter("sofos_server_cache_misses_total", metrics_.cache_misses());
        gauge("sofos_server_queue_depth",
              static_cast<double>(metrics_.queue_depth()));
        gauge("sofos_server_active_sessions",
              static_cast<double>(metrics_.active_sessions()));
        ResultCacheStats cs = cache_.Stats();
        counter("sofos_cache_hits_total", cs.hits);
        counter("sofos_cache_misses_total", cs.misses);
        counter("sofos_cache_insertions_total", cs.insertions);
        counter("sofos_cache_evictions_total", cs.evictions);
        counter("sofos_cache_invalidations_total", cs.invalidations);
        counter("sofos_cache_admission_rejects_total", cs.admission_rejects);
        counter("sofos_cache_ttl_expired_total", cs.ttl_expired);
        counter("sofos_cache_carried_forward_total", cs.carried_forward);
        gauge("sofos_cache_entries", static_cast<double>(cs.entries));
        gauge("sofos_cache_bytes", static_cast<double>(cs.bytes));
        histogram("sofos_cache_age_at_hit_micros", std::move(cs.age_at_hit));
      });

  pool_ = std::make_unique<ThreadPool>(std::max(1u, options_.max_sessions));
  // The session pool's queue-wait/task-run/depth figures are the observed
  // arrival/service signals the queue-model admission policy needs; the
  // bridge must unregister before pool_.reset() in Stop().
  pool_collector_id_ = pool_->BridgeMetrics(engine_->metrics());

  if (options_.enable_telemetry) {
    TelemetryOptions topts;
    topts.capacity = options_.history_capacity;
    telemetry_ =
        std::make_unique<TelemetryHistory>(engine_->metrics(), topts);
    telemetry_->StartSampler(options_.sample_period_seconds);
  }

  running_ = true;
  listener_ = std::thread([this] { ListenLoop(); });
  if (http_listen_fd_ >= 0) {
    http_listener_ = std::thread([this] { HttpListenLoop(); });
  }
  return Status::OK();
}

void SofosServer::Stop() {
  if (!running_.exchange(false)) {
    // Never started or already stopped; still reap listeners that raced.
    if (listener_.joinable()) listener_.join();
    if (http_listener_.joinable()) http_listener_.join();
    return;
  }
  // Wake the listeners out of accept(), then reap them.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (listener_.joinable()) listener_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (http_listen_fd_ >= 0) {
    ::shutdown(http_listen_fd_, SHUT_RDWR);
    if (http_listener_.joinable()) http_listener_.join();
    ::close(http_listen_fd_);
    http_listen_fd_ = -1;
  }

  // The sampler reads the registry through collectors that touch server
  // state; quiesce it before that state starts tearing down. The history
  // itself stays readable after Stop() (the CLI renders it post-serve).
  if (telemetry_ != nullptr) telemetry_->StopSampler();

  // Unblock every live session parked in recv(); each then finishes its
  // in-flight response and exits. Queued-but-unstarted sessions run to the
  // same immediate end once a worker frees up.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (int fd : session_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  {
    std::unique_lock<std::mutex> lock(sessions_mu_);
    sessions_cv_.wait(lock, [this] { return admitted_ == 0; });
  }
  // The pool bridge captures the pool; it must unregister before the
  // workers join and the pool dies.
  if (pool_collector_id_ != 0) {
    engine_->metrics()->UnregisterCollector(pool_collector_id_);
    pool_collector_id_ = 0;
  }
  pool_.reset();  // all tasks done; workers join

  // The collector closure captures `this`; it must not outlive the server
  // in the engine's registry (the engine usually does).
  if (metrics_collector_id_ != 0) {
    engine_->metrics()->UnregisterCollector(metrics_collector_id_);
    metrics_collector_id_ = 0;
  }
}

std::shared_ptr<const core::EngineSnapshot> SofosServer::SnapshotForEpoch(
    uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(retained_mu_);
  auto it = retained_.find(epoch);
  return it == retained_.end() ? nullptr : it->second;
}

uint64_t SofosServer::update_batches_applied() const {
  return update_batches_applied_.load(std::memory_order_relaxed);
}

Status SofosServer::PublishAndInvalidate(
    const std::vector<std::string>* untouched_views) {
  auto previous = engine_->CurrentSnapshot();
  const uint64_t previous_epoch = previous != nullptr ? previous->epoch() : 0;
  SOFOS_ASSIGN_OR_RETURN(auto snapshot, engine_->PublishSnapshot());
  if (options_.retain_snapshots) {
    std::lock_guard<std::mutex> lock(retained_mu_);
    retained_[snapshot->epoch()] = snapshot;
  }
  // Carry still-exact routed answers across the epoch bump before the
  // eager eviction drops everything that was not carried.
  if (untouched_views != nullptr && !untouched_views->empty() &&
      previous != nullptr && snapshot->epoch() > previous_epoch) {
    cache_.CarryForward(previous_epoch, snapshot->epoch(), *untouched_views);
  }
  cache_.EvictObsolete(snapshot->epoch());
  return Status::OK();
}

void SofosServer::ListenLoop() {
  while (running_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_) break;  // Stop() shut the listener down
      // Transient per-connection failures must not kill the listener: a
      // peer resetting mid-handshake (ECONNABORTED) is routine under the
      // BUSY-churn load this server sheds, and fd exhaustion recovers as
      // sessions close.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // the listening socket itself is dead
    }
    if (!running_) {
      ::close(fd);
      break;
    }
    bool admit;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      admit = admitted_ < options_.max_sessions + options_.queue_capacity;
      if (admit) {
        ++admitted_;
        session_fds_.insert(fd);
        metrics_.SetQueueDepth(static_cast<int64_t>(admitted_ - active_));
      }
    }
    if (!admit) {
      metrics_.RecordRejected();
      SendAll(fd, FormatBusy(options_.busy_retry_ms) + "\n" + kEndMarker + "\n");
      ::close(fd);
      continue;
    }
    metrics_.RecordAccepted();
    pool_->Submit([this, fd] { ServeSession(fd); });
  }
}

void SofosServer::ServeSession(int fd) {
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    ++active_;
    metrics_.SetQueueDepth(static_cast<int64_t>(admitted_ - active_));
    metrics_.SetActiveSessions(static_cast<int64_t>(active_));
  }

  LineReader reader(fd, kMaxRequestLine);
  bool open = true;
  while (open) {
    std::string line;
    LineReader::ReadResult read = reader.ReadLine(&line);
    if (read == LineReader::ReadResult::kTooLong) {
      SendAll(fd, FormatError("request line too long") + "\n" + kEndMarker +
                      "\n");
      break;
    }
    // kEof: peer closed; kError: reset or Stop() shutdown. Either way the
    // session is over.
    if (read != LineReader::ReadResult::kLine) break;
    if (StrTrim(line).empty()) continue;  // blank keep-alive lines are free

    auto request = ParseRequest(line);
    if (!request.ok()) {
      metrics_.RecordProtocolError();
      open = SendAll(fd, FormatError(request.status().ToString()) + "\n" +
                             kEndMarker + "\n");
      continue;
    }

    std::string response;
    WallTimer timer;
    switch (request->verb) {
      case Verb::kQuery:
        HandleQuery(request->arg, &response);
        metrics_.ForEndpoint(Endpoint::kQuery)
            .Record(timer.ElapsedMicros(), response.rfind("OK", 0) == 0);
        break;
      case Verb::kUpdate:
        HandleUpdate(request->arg, &response);
        metrics_.ForEndpoint(Endpoint::kUpdate)
            .Record(timer.ElapsedMicros(), response.rfind("OK", 0) == 0);
        break;
      case Verb::kExplain:
        HandleExplain(request->arg, &response);
        metrics_.ForEndpoint(Endpoint::kExplain)
            .Record(timer.ElapsedMicros(), response.rfind("OK", 0) == 0);
        break;
      case Verb::kAnalyze:
        HandleAnalyze(request->arg, &response);
        metrics_.ForEndpoint(Endpoint::kAnalyze)
            .Record(timer.ElapsedMicros(), response.rfind("OK", 0) == 0);
        break;
      case Verb::kTrace:
        HandleTrace(request->arg, &response);
        metrics_.ForEndpoint(Endpoint::kTrace)
            .Record(timer.ElapsedMicros(), response.rfind("OK", 0) == 0);
        break;
      case Verb::kStats:
        HandleStats(&response);
        metrics_.ForEndpoint(Endpoint::kStats)
            .Record(timer.ElapsedMicros(), true);
        break;
      case Verb::kMetrics:
        HandleMetrics(&response);
        metrics_.ForEndpoint(Endpoint::kMetrics)
            .Record(timer.ElapsedMicros(), true);
        break;
      case Verb::kHistory:
        HandleHistory(request->arg, &response);
        metrics_.ForEndpoint(Endpoint::kHistory)
            .Record(timer.ElapsedMicros(), response.rfind("OK", 0) == 0);
        break;
      case Verb::kSlow:
        HandleSlow(&response);
        metrics_.ForEndpoint(Endpoint::kSlow)
            .Record(timer.ElapsedMicros(), true);
        break;
      case Verb::kQuit:
        SendAll(fd, std::string("OK BYE\n") + kEndMarker + "\n");
        open = false;
        break;
    }
    if (open) open = SendAll(fd, response);
  }

  // Deregister strictly *before* closing: once close() frees the fd
  // number, a concurrent accept() may reuse it and re-insert it into
  // session_fds_ — erasing afterwards would strip the new session's entry
  // and leave it invisible to Stop()'s shutdown sweep.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    session_fds_.erase(fd);
    --active_;
    --admitted_;
    metrics_.SetQueueDepth(static_cast<int64_t>(admitted_ - active_));
    metrics_.SetActiveSessions(static_cast<int64_t>(active_));
  }
  ::close(fd);
  sessions_cv_.notify_all();
}

void SofosServer::HandleQuery(const std::string& arg, std::string* out) {
  if (arg.empty()) {
    *out = FormatError("usage: QUERY <sparql>") + "\n" + kEndMarker + "\n";
    return;
  }
  std::shared_ptr<const core::EngineSnapshot> snapshot =
      engine_->CurrentSnapshot();
  if (snapshot == nullptr) {
    *out = FormatError("no published snapshot") + "\n" + kEndMarker + "\n";
    return;
  }
  const bool allow_views = true;
  const bool cache_enabled =
      options_.enable_cache && options_.cache.capacity_bytes > 0;
  std::string key;
  if (cache_enabled) {
    std::string normalized = NormalizeQueryText(arg);
    key = ResultCache::MakeKey(normalized, snapshot->epoch(), allow_views);
    std::string entry;
    if (cache_.Lookup(key, &entry)) {
      uint64_t rows = 0, cols = 0;
      std::string view, body;
      if (UnpackCacheEntry(entry, &rows, &cols, &view, &body)) {
        metrics_.RecordCacheHit();
        // Served-from-cache answers still belong in the recorded workload
        // (the observed traffic includes them); the routing decision is
        // whatever the cached execution made. No signature — the miss
        // that produced this entry recorded the replayable shape.
        core::WorkloadRecorder* recorder = engine_->recorder();
        if (recorder->enabled()) {
          core::RecordedQuery rec;
          rec.normalized_sparql = std::move(normalized);
          rec.used_view = view != "-";
          if (rec.used_view) {
            rec.view_mask = static_cast<uint32_t>(
                std::strtoul(view.c_str(), nullptr, 10));
          }
          rec.epoch = snapshot->epoch();
          rec.result_rows = rows;
          rec.cache_hit = true;
          recorder->Record(std::move(rec));
        }
        *out = FormatQueryHeader(rows, cols, snapshot->epoch(),
                                 /*cached=*/true, view, /*micros=*/0.0) +
               "\n" + body + kEndMarker + "\n";
        return;
      }
      // Unreadable entry (cannot happen with our own packing; defensive):
      // fall through to recompute and overwrite it.
    }
    metrics_.RecordCacheMiss();
  }

  auto outcome = snapshot->Answer(arg, allow_views);
  if (!outcome.ok()) {
    *out = FormatError(outcome.status().ToString()) + "\n" + kEndMarker + "\n";
    return;
  }
  std::string view =
      outcome->used_view ? std::to_string(outcome->view_mask) : "-";
  std::string body = FormatQueryBody(outcome->result);
  *out = FormatQueryHeader(outcome->result_rows, outcome->result.NumCols(),
                           snapshot->epoch(), /*cached=*/false, view,
                           outcome->micros) +
         "\n" + body + kEndMarker + "\n";
  if (cache_enabled) {
    // The measured execution cost drives cost-aware admission: answers
    // cheaper than the configured floor are recomputed instead of cached.
    // Routed answers are tagged with their view label so an update that
    // provably leaves the view unchanged can carry them forward across
    // the epoch bump; base-graph answers ("") are always invalidated.
    cache_.Insert(key, snapshot->epoch(),
                  PackCacheEntry(outcome->result_rows,
                                 outcome->result.NumCols(), view, body),
                  outcome->micros, /*ttl_seconds=*/-1.0,
                  outcome->used_view ? view : "");
  }
  MaybeCaptureSlowQuery(snapshot, arg, outcome->micros);
}

void SofosServer::MaybeCaptureSlowQuery(
    const std::shared_ptr<const core::EngineSnapshot>& snapshot,
    const std::string& arg, double observed_micros) {
  if (!slow_log_.ShouldCapture(observed_micros)) return;
  // One bounded, rate-limited diagnostic re-run: EXPLAIN ANALYZE for the
  // per-operator actuals, a traced Answer for the span tree. The re-run
  // is strictly extra work (the client already has its response), which
  // is why ShouldCapture() gates it behind the interval rate limit.
  SlowQueryRecord record;
  record.query = arg;
  record.micros = observed_micros;
  record.epoch = snapshot->epoch();
  auto analyze = snapshot->Analyze(arg, /*allow_views=*/true);
  record.analyze_text =
      analyze.ok() ? *analyze : "ANALYZE failed: " + analyze.status().ToString();
  TraceContext trace;
  auto rerun = snapshot->Answer(arg, /*allow_views=*/true, &trace);
  if (rerun.ok()) record.trace_json = trace.ToJson();
  slow_log_.Add(std::move(record));
}

void SofosServer::HandleUpdate(const std::string& arg, std::string* out) {
  // Strict parsing: a malformed argument must not silently fall back to
  // defaults — UPDATE mutates the graph and invalidates the cache, so a
  // typo has to fail loudly instead of applying a batch the client never
  // asked for.
  int batches = 1;
  double fraction = 0.01;
  bool parse_ok = true;
  {
    std::istringstream in(arg);
    std::vector<std::string> tokens;
    std::string token;
    while (in >> token) tokens.push_back(token);
    if (tokens.size() > 2) parse_ok = false;
    if (parse_ok && tokens.size() >= 1) {
      char* end = nullptr;
      long n = std::strtol(tokens[0].c_str(), &end, 10);
      if (end == tokens[0].c_str() || *end != '\0') parse_ok = false;
      else batches = static_cast<int>(n);
    }
    if (parse_ok && tokens.size() == 2) {
      char* end = nullptr;
      double f = std::strtod(tokens[1].c_str(), &end);
      if (end == tokens[1].c_str() || *end != '\0') parse_ok = false;
      else fraction = f;
    }
  }
  if (!parse_ok || batches < 1 || batches > 1000 || fraction <= 0 ||
      fraction > 1) {
    *out = FormatError("usage: UPDATE [1 <= batches <= 1000] "
                       "[0 < fraction <= 1]") +
           "\n" + kEndMarker + "\n";
    return;
  }

  WallTimer timer;
  uint64_t adds = 0, deletes = 0;
  double drift = 0.0;
  bool reselect = false;
  Status status = Status::OK();
  uint64_t epoch = 0;
  {
    // Single-writer section: the engine facade must not see concurrent
    // mutations, and batch seeds must advance deterministically.
    std::lock_guard<std::mutex> lock(update_mu_);
    workload::UpdateStreamOptions options;
    options.num_batches = batches;
    options.batch_fraction = fraction;
    options.seed =
        99 + update_batches_applied_.load(std::memory_order_relaxed);
    auto stream = workload::GenerateUpdateStream(
        engine_->base_snapshot(), engine_->store()->dictionary(), options);
    // Union of view masks the maintenance passes actually changed, so the
    // complement's cached answers can be carried across the epoch bump.
    std::set<uint32_t> touched;
    bool touched_known = true;
    if (!stream.ok()) {
      status = stream.status();
      touched_known = false;
    } else {
      for (const auto& delta : *stream) {
        auto result = engine_->ApplyUpdates(delta);
        if (!result.ok()) {
          status = result.status();
          touched_known = false;  // conservative: invalidate everything
          break;
        }
        update_batches_applied_.fetch_add(1, std::memory_order_relaxed);
        adds += result->adds_applied;
        deletes += result->deletes_applied;
        drift = result->staleness;
        reselect = result->reselect_recommended;
        for (const auto& vm : result->maintenance.views) {
          if (vm.touched()) touched.insert(vm.mask);
        }
      }
    }
    std::vector<std::string> untouched;
    if (touched_known) {
      for (uint32_t mask : engine_->MaterializedMasks()) {
        if (touched.count(mask) == 0) {
          untouched.push_back(std::to_string(mask));
        }
      }
    }
    // Publish whatever state was reached — even a partial multi-batch
    // failure must not leave sessions reading a retired epoch forever.
    Status publish =
        PublishAndInvalidate(touched_known ? &untouched : nullptr);
    if (status.ok()) status = publish;
    epoch = engine_->epoch();
  }
  if (!status.ok()) {
    *out = FormatError(status.ToString()) + "\n" + kEndMarker + "\n";
    return;
  }
  *out = StrFormat("OK UPDATE batches=%d adds=%llu deletes=%llu epoch=%llu "
                   "drift=%.3f reselect=%d micros=%.1f",
                   batches, static_cast<unsigned long long>(adds),
                   static_cast<unsigned long long>(deletes),
                   static_cast<unsigned long long>(epoch), drift,
                   reselect ? 1 : 0, timer.ElapsedMicros()) +
         "\n" + kEndMarker + "\n";
}

void SofosServer::HandleExplain(const std::string& arg, std::string* out) {
  std::shared_ptr<const core::EngineSnapshot> snapshot =
      engine_->CurrentSnapshot();
  if (snapshot == nullptr) {
    *out = FormatError("no published snapshot") + "\n" + kEndMarker + "\n";
    return;
  }
  std::string sparql = arg;
  if (sparql.empty()) {
    if (!snapshot->has_facet()) {
      *out = FormatError("EXPLAIN with no query requires a facet") + "\n" +
             kEndMarker + "\n";
      return;
    }
    sparql = snapshot->RootViewSparql();
  }
  auto plan = snapshot->Explain(sparql);
  if (!plan.ok()) {
    *out = FormatError(plan.status().ToString()) + "\n" + kEndMarker + "\n";
    return;
  }
  std::string body = *plan;
  if (body.empty() || body.back() != '\n') body += '\n';
  *out = StrFormat("OK EXPLAIN epoch=%llu",
                   static_cast<unsigned long long>(snapshot->epoch())) +
         "\n" + body + kEndMarker + "\n";
}

void SofosServer::HandleAnalyze(const std::string& arg, std::string* out) {
  std::shared_ptr<const core::EngineSnapshot> snapshot =
      engine_->CurrentSnapshot();
  if (snapshot == nullptr) {
    *out = FormatError("no published snapshot") + "\n" + kEndMarker + "\n";
    return;
  }
  std::string sparql = arg;
  if (sparql.empty()) {
    if (!snapshot->has_facet()) {
      *out = FormatError("ANALYZE with no query requires a facet") + "\n" +
             kEndMarker + "\n";
      return;
    }
    sparql = snapshot->RootViewSparql();
  }
  auto text = snapshot->Analyze(sparql, /*allow_views=*/true);
  if (!text.ok()) {
    *out = FormatError(text.status().ToString()) + "\n" + kEndMarker + "\n";
    return;
  }
  std::string body = *text;
  if (body.empty() || body.back() != '\n') body += '\n';
  *out = StrFormat("OK ANALYZE epoch=%llu",
                   static_cast<unsigned long long>(snapshot->epoch())) +
         "\n" + body + kEndMarker + "\n";
}

void SofosServer::HandleTrace(const std::string& arg, std::string* out) {
  if (arg.empty()) {
    *out = FormatError("usage: TRACE <sparql>") + "\n" + kEndMarker + "\n";
    return;
  }
  std::shared_ptr<const core::EngineSnapshot> snapshot =
      engine_->CurrentSnapshot();
  if (snapshot == nullptr) {
    *out = FormatError("no published snapshot") + "\n" + kEndMarker + "\n";
    return;
  }
  // Uncached by design: a TRACE is a request to *execute and observe*,
  // so serving a memoized payload would defeat the point.
  TraceContext trace;
  auto outcome = snapshot->Answer(arg, /*allow_views=*/true, &trace);
  if (!outcome.ok()) {
    *out = FormatError(outcome.status().ToString()) + "\n" + kEndMarker + "\n";
    return;
  }
  const size_t spans = trace.Spans().size();
  *out = StrFormat("OK TRACE rows=%llu epoch=%llu view=%s micros=%.1f "
                   "spans=%zu",
                   static_cast<unsigned long long>(outcome->result_rows),
                   static_cast<unsigned long long>(snapshot->epoch()),
                   outcome->used_view
                       ? std::to_string(outcome->view_mask).c_str()
                       : "-",
                   outcome->micros, spans) +
         "\n" + trace.ToJson() + "\n" + kEndMarker + "\n";
}

void SofosServer::HandleMetrics(std::string* out) {
  // Prometheus text exposition of the engine registry — which, via the
  // collector registered in Start(), includes this server's endpoint SLOs
  // and the result cache alongside the engine's phase/view metrics.
  std::string body = engine_->metrics()->PrometheusText();
  if (body.empty() || body.back() != '\n') body += '\n';
  *out = std::string("OK METRICS\n") + body + kEndMarker + "\n";
}

void SofosServer::HandleStats(std::string* out) {
  *out = std::string("OK STATS\n") + StatsJson() + "\n" + kEndMarker + "\n";
}

std::string SofosServer::StatsJson() const {
  std::shared_ptr<const core::EngineSnapshot> snapshot =
      engine_->CurrentSnapshot();
  ResultCacheStats cache_stats = cache_.Stats();
  uint64_t batches = update_batches_applied_.load(std::memory_order_relaxed);
  std::string extra = StrFormat(
      "\"server\": {\"epoch\": %llu, \"triples\": %llu, "
      "\"update_batches\": %llu, \"cache_entries\": %llu, "
      "\"cache_bytes\": %llu, \"cache_evictions\": %llu, "
      "\"cache_invalidations\": %llu, \"cache_admission_rejects\": %llu, "
      "\"cache_ttl_expired\": %llu, \"cache_carried_forward\": %llu, "
      "\"cache_age_at_hit_p50_us\": %.1f}",
      static_cast<unsigned long long>(snapshot ? snapshot->epoch() : 0),
      static_cast<unsigned long long>(snapshot ? snapshot->num_triples() : 0),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(cache_stats.entries),
      static_cast<unsigned long long>(cache_stats.bytes),
      static_cast<unsigned long long>(cache_stats.evictions),
      static_cast<unsigned long long>(cache_stats.invalidations),
      static_cast<unsigned long long>(cache_stats.admission_rejects),
      static_cast<unsigned long long>(cache_stats.ttl_expired),
      static_cast<unsigned long long>(cache_stats.carried_forward),
      cache_stats.age_at_hit.P50());
  // Snapshot-publication latency (the O(changed shards) path): observable
  // online so the COW clone win shows up directly in STATS.
  LatencyHistogram::Snapshot publish = engine_->publish_latency();
  extra += StrFormat(
      ", \"publish\": {\"count\": %llu, \"mean_us\": %.1f, "
      "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f}",
      static_cast<unsigned long long>(publish.count), publish.MeanMicros(),
      publish.P50(), publish.P95(), publish.P99());
  // The full registry view (engine phases, per-view routing, plus this
  // server's own collector-contributed samples) as a nested object — the
  // same figures METRICS exposes, in JSON for programmatic clients.
  extra += ", \"registry\": " + engine_->metrics()->ToJson();
  return metrics_.ToJson(extra);
}

void SofosServer::SampleTelemetryNow() {
  if (telemetry_ != nullptr) telemetry_->Sample();
}

std::string SofosServer::HistoryJson(double window_seconds) const {
  if (telemetry_ == nullptr) {
    return "{\"valid\":false,\"window_seconds\":0,\"samples\":0,"
           "\"rates\":{},\"intervals\":{},\"gauges\":{}}";
  }
  return telemetry_->WindowJson(window_seconds);
}

void SofosServer::HandleHistory(const std::string& arg, std::string* out) {
  double window = 60.0;
  if (!arg.empty()) {
    auto parsed = ParseDouble(arg);
    if (!parsed.ok() || *parsed <= 0) {
      *out = FormatError("usage: HISTORY [window_seconds > 0]") + "\n" +
             kEndMarker + "\n";
      return;
    }
    window = *parsed;
  }
  const size_t samples = telemetry_ != nullptr ? telemetry_->size() : 0;
  *out = StrFormat("OK HISTORY window=%.1f samples=%zu", window, samples) +
         "\n" + HistoryJson(window) + "\n" + kEndMarker + "\n";
}

void SofosServer::HandleSlow(std::string* out) {
  *out = StrFormat("OK SLOW captured=%llu suppressed=%llu threshold_us=%.1f",
                   static_cast<unsigned long long>(slow_log_.captured_total()),
                   static_cast<unsigned long long>(
                       slow_log_.suppressed_total()),
                   slow_log_.threshold_micros()) +
         "\n" + slow_log_.ToJson() + "\n" + kEndMarker + "\n";
}

std::string SofosServer::HealthJson(bool* healthy) const {
  unsigned admitted = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    admitted = admitted_;
  }
  const unsigned capacity = options_.max_sessions + options_.queue_capacity;
  // Healthy = a new connection would be admitted right now (the exact
  // admission test ListenLoop applies). Saturation flips /healthz to 503
  // without waiting for a session slot — the HTTP listener serves
  // synchronously off the session pool precisely so this stays readable
  // when the pool is full.
  const bool ok = admitted < capacity;
  if (healthy != nullptr) *healthy = ok;
  std::shared_ptr<const core::EngineSnapshot> snapshot =
      engine_->CurrentSnapshot();
  return StrFormat(
      "{\"status\":\"%s\",\"epoch\":%llu,\"admitted\":%u,"
      "\"capacity\":%u,\"update_batches\":%llu,\"telemetry_samples\":%zu}",
      ok ? "ok" : "overloaded",
      static_cast<unsigned long long>(snapshot ? snapshot->epoch() : 0),
      admitted, capacity,
      static_cast<unsigned long long>(
          update_batches_applied_.load(std::memory_order_relaxed)),
      telemetry_ != nullptr ? telemetry_->size() : static_cast<size_t>(0));
}

void SofosServer::HttpListenLoop() {
  while (running_) {
    int fd = ::accept(http_listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;
    }
    if (!running_) {
      ::close(fd);
      break;
    }
    // Synchronous, one request per connection: observability responses
    // are small and generated from in-memory state, so a scraper cannot
    // stall the listener for long — and a recv timeout bounds a client
    // that connects and then says nothing.
    ServeHttp(fd);
    ::close(fd);
  }
}

void SofosServer::ServeHttp(int fd) {
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  LineReader reader(fd, kMaxRequestLine);
  std::string line;
  if (reader.ReadLine(&line) != LineReader::ReadResult::kLine) return;
  HttpRequest request;
  if (!ParseHttpRequestLine(line, &request)) {
    SendAll(fd, FormatHttpResponse("400 Bad Request", "text/plain",
                                   "malformed request line\n"));
    return;
  }
  // Drain headers (we use none) up to the blank line; tolerate clients
  // that close without sending one.
  std::string header;
  while (reader.ReadLine(&header) == LineReader::ReadResult::kLine) {
    if (StrTrim(header).empty()) break;
  }

  if (request.method != "GET") {
    SendAll(fd, FormatHttpResponse("405 Method Not Allowed", "text/plain",
                                   "GET only\n"));
    return;
  }
  if (request.path == "/metrics") {
    SendAll(fd, FormatHttpResponse("200 OK",
                                   "text/plain; version=0.0.4",
                                   engine_->metrics()->PrometheusText()));
  } else if (request.path == "/stats") {
    SendAll(fd, FormatHttpResponse("200 OK", "application/json",
                                   StatsJson() + "\n"));
  } else if (request.path == "/history") {
    double window = 60.0;
    auto it = request.params.find("window");
    if (it != request.params.end()) {
      auto parsed = ParseDouble(it->second);
      if (!parsed.ok() || *parsed <= 0) {
        SendAll(fd, FormatHttpResponse("400 Bad Request", "text/plain",
                                       "window must be a positive number\n"));
        return;
      }
      window = *parsed;
    }
    SendAll(fd, FormatHttpResponse("200 OK", "application/json",
                                   HistoryJson(window) + "\n"));
  } else if (request.path == "/slow") {
    SendAll(fd, FormatHttpResponse("200 OK", "application/json",
                                   slow_log_.ToJson() + "\n"));
  } else if (request.path == "/healthz") {
    bool healthy = false;
    std::string body = HealthJson(&healthy) + "\n";
    SendAll(fd, FormatHttpResponse(
                    healthy ? "200 OK" : "503 Service Unavailable",
                    "application/json", body));
  } else {
    SendAll(fd, FormatHttpResponse(
                    "404 Not Found", "text/plain",
                    "endpoints: /metrics /stats /history /slow /healthz\n"));
  }
}

}  // namespace server
}  // namespace sofos
