#ifndef SOFOS_SERVER_METRICS_H_
#define SOFOS_SERVER_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/latency_histogram.h"

namespace sofos {
namespace server {

/// The protocol verbs the server meters individually.
enum class Endpoint : int {
  kQuery = 0,
  kUpdate,
  kExplain,
  kAnalyze,
  kTrace,
  kStats,
  kMetrics,
  kHistory,
  kSlow,
  /// The HTTP/JSON query adapter (GET/POST /query) — metered separately
  /// from the line-protocol QUERY verb so the two serving surfaces get
  /// independent SLO figures.
  kHttpQuery,
  kNumEndpoints,
};

const char* EndpointName(Endpoint endpoint);

/// Counters + latency distribution for one endpoint. All members are
/// touched with relaxed atomics: any thread may record, any thread may
/// snapshot, figures are statistically consistent (never torn, possibly a
/// few samples apart across fields).
struct EndpointMetrics {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> errors{0};
  LatencyHistogram latency;

  void Record(double micros, bool ok) {
    requests.fetch_add(1, std::memory_order_relaxed);
    if (!ok) errors.fetch_add(1, std::memory_order_relaxed);
    latency.Record(micros);
  }
};

/// Server-wide observability state: per-endpoint request counters and
/// p50/p95/p99 latency (fixed-bucket histograms), result-cache hit
/// accounting, admission-queue depth, and rejection counters — everything
/// the STATS endpoint serves and bench_server consumes.
class ServerMetrics {
 public:
  EndpointMetrics& ForEndpoint(Endpoint endpoint) {
    return endpoints_[static_cast<size_t>(endpoint)];
  }
  const EndpointMetrics& ForEndpoint(Endpoint endpoint) const {
    return endpoints_[static_cast<size_t>(endpoint)];
  }

  void RecordCacheHit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void RecordCacheMiss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void RecordAccepted() { accepted_.fetch_add(1, std::memory_order_relaxed); }
  void RecordProtocolError() {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  }

  void SetQueueDepth(int64_t depth) {
    queue_depth_.store(depth, std::memory_order_relaxed);
  }
  void SetActiveSessions(int64_t sessions) {
    active_sessions_.store(sessions, std::memory_order_relaxed);
  }

  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  /// Hits / (hits + misses); 0 when no lookups yet.
  double CacheHitRate() const;
  uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }
  uint64_t accepted() const { return accepted_.load(std::memory_order_relaxed); }
  int64_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  int64_t active_sessions() const {
    return active_sessions_.load(std::memory_order_relaxed);
  }

  /// One-line JSON object with every figure above plus `extra_fields`
  /// (pre-rendered `"key": value` pairs injected verbatim, e.g. the
  /// server's epoch and cache byte counts). The STATS response body.
  std::string ToJson(const std::string& extra_fields = "") const;

 private:
  std::array<EndpointMetrics, static_cast<size_t>(Endpoint::kNumEndpoints)>
      endpoints_;
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<int64_t> queue_depth_{0};
  std::atomic<int64_t> active_sessions_{0};
};

}  // namespace server
}  // namespace sofos

#endif  // SOFOS_SERVER_METRICS_H_
