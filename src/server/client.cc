#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "server/io_util.h"
#include "server/protocol.h"

namespace sofos {
namespace server {

namespace {
// Response lines are rows/plan text; anything beyond this is a framing bug.
constexpr size_t kMaxResponseLine = 16u << 20;
}  // namespace

BlockingClient::~BlockingClient() { Close(); }

Status BlockingClient::Connect(uint16_t port) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal(std::string("connect: ") + std::strerror(err));
  }
  fd_ = fd;
  port_ = port;
  reader_ = std::make_unique<LineReader>(fd, kMaxResponseLine);
  return Status::OK();
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_.reset();
}

Result<std::string> BlockingClient::ReadLine() {
  std::string line;
  switch (reader_->ReadLine(&line)) {
    case LineReader::ReadResult::kLine:
      return line;
    case LineReader::ReadResult::kEof:
      return Status::Internal("connection closed mid-response");
    case LineReader::ReadResult::kTooLong:
      return Status::Internal("response line too long");
    case LineReader::ReadResult::kError:
      break;
  }
  return Status::Internal(std::string("recv: ") + std::strerror(errno));
}

Result<ClientResponse> BlockingClient::Roundtrip(const std::string& line) {
  if (fd_ < 0) return Status::Internal("not connected");
  std::string out = line;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';  // one request = one line
  }
  out += '\n';
  if (!SendAll(fd_, out)) {
    return Status::Internal(std::string("send: ") + std::strerror(errno));
  }
  ClientResponse response;
  SOFOS_ASSIGN_OR_RETURN(response.header, ReadLine());
  for (;;) {
    SOFOS_ASSIGN_OR_RETURN(std::string body_line, ReadLine());
    if (body_line == kEndMarker) break;
    response.body.push_back(std::move(body_line));
  }
  return response;
}

void BlockingClient::JitteredSleep(int base_ms) {
  jitter_state_ ^= jitter_state_ << 13;
  jitter_state_ ^= jitter_state_ >> 17;
  jitter_state_ ^= jitter_state_ << 5;
  // Uniform in [0.75, 1.25) of the base, floored at 1ms.
  double scale = 0.75 + 0.5 * (jitter_state_ % 1024) / 1024.0;
  int sleep_ms = static_cast<int>(base_ms * scale);
  if (sleep_ms < 1) sleep_ms = 1;
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

Result<ClientResponse> BlockingClient::SendWithRetry(const std::string& line,
                                                     int max_attempts) {
  if (max_attempts < 1) max_attempts = 1;
  Result<ClientResponse> last = Status::Internal("not connected");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (!connected()) {
      Status reconnect = Connect(port_);
      if (!reconnect.ok()) {
        last = reconnect;
        // Transient refusal (listener backlog full under load, server
        // restarting): back off exponentially instead of burning the
        // remaining attempts in a tight connect loop.
        JitteredSleep(std::min(10 << attempt, 200));
        continue;
      }
    }
    last = Roundtrip(line);
    if (!last.ok()) {
      // Closed/reset mid-exchange (e.g. a connection-cap BUSY followed by
      // close): drop the socket so the next attempt reconnects.
      Close();
      continue;
    }
    if (!last->busy()) return last;
    // "BUSY retry_ms=<n>": obey the server's pushback. The hint is
    // load-derived (queue-model estimated wait), so sleeping it is the
    // cheapest way back to an admittable system; jitter desynchronizes
    // the shed cohort.
    int retry_ms = 50;
    size_t at = last->header.find("retry_ms=");
    if (at != std::string::npos) {
      retry_ms = std::atoi(last->header.c_str() + at + 9);
      if (retry_ms < 1) retry_ms = 1;
    }
    JitteredSleep(retry_ms);
  }
  return last;
}

}  // namespace server
}  // namespace sofos
