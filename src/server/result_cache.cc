#include "server/result_cache.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "common/string_util.h"

namespace sofos {
namespace server {

std::string NormalizeQueryText(const std::string& sparql) {
  // The canonicalizer lives in common/ so the core-layer workload
  // recorder normalizes identically — recorded queries and cache keys
  // must agree on the canonical text.
  return NormalizeSparql(sparql);
}

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

ResultCache::ResultCache(const ResultCacheOptions& options) {
  size_t shards = RoundUpPow2(std::max<size_t>(1, options.shards));
  shard_mask_ = shards - 1;
  shard_capacity_bytes_ = std::max<size_t>(1, options.capacity_bytes / shards);
  min_cost_micros_ = options.min_cost_micros;
  default_ttl_seconds_ = options.default_ttl_seconds;
  clock_seconds_ = options.clock_seconds;
  shards_ = std::vector<Shard>(shards);
}

double ResultCache::NowSeconds() const {
  if (clock_seconds_) return clock_seconds_();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string ResultCache::MakeKey(const std::string& normalized_query,
                                 uint64_t epoch, bool allow_views) {
  // \x1f never occurs in SPARQL text, so the three components cannot alias.
  return normalized_query + '\x1f' + std::to_string(epoch) + '\x1f' +
         (allow_views ? '1' : '0');
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key)&shard_mask_];
}

bool ResultCache::Lookup(const std::string& key, std::string* payload) {
  Shard& shard = ShardFor(key);
  const double now = NowSeconds();
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  const double age_seconds = now - it->second->inserted_at;
  if (it->second->ttl_seconds > 0 && age_seconds >= it->second->ttl_seconds) {
    // Expired: drop it on the probe (lazy expiry — there is no sweeper)
    // and report a miss so the caller recomputes and re-inserts fresh.
    shard.bytes -= it->second->payload.size();
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.ttl_expired;
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  age_at_hit_.Record(age_seconds * 1e6);
  *payload = it->second->payload;
  return true;
}

void ResultCache::Insert(const std::string& key, uint64_t epoch,
                         std::string payload, double cost_micros,
                         double ttl_seconds, const std::string& view) {
  if (cost_micros < min_cost_micros_) {
    // Below the admission floor: recomputing this answer is cheaper than
    // the cache pressure it would add — keep the budget for expensive
    // analytical results.
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (payload.size() > shard_capacity_bytes_) return;  // would evict a shard
  const double ttl = ttl_seconds < 0 ? default_ttl_seconds_ : ttl_seconds;
  const double now = NowSeconds();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Concurrent miss on the same key: both executed; keep the fresh
    // payload (identical by determinism) and just refresh recency — and
    // the TTL window, since the payload was just recomputed.
    shard.bytes -= it->second->payload.size();
    shard.bytes += payload.size();
    it->second->payload = std::move(payload);
    it->second->epoch = epoch;
    it->second->inserted_at = now;
    it->second->ttl_seconds = ttl;
    it->second->view = view;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.bytes += payload.size();
  shard.lru.push_front(Entry{key, std::move(payload), epoch, now, ttl, view});
  shard.index.emplace(key, shard.lru.begin());
  ++shard.insertions;
  EvictOverflow(&shard);
}

uint64_t ResultCache::CarryForward(
    uint64_t old_epoch, uint64_t new_epoch,
    const std::vector<std::string>& untouched_views) {
  if (untouched_views.empty() || new_epoch <= old_epoch) return 0;

  // Phase 1: extract qualifying entries shard by shard (one lock at a
  // time). Re-keying moves an entry to a different shard in general, so
  // reinsertion cannot happen under the source shard's lock without
  // risking lock-order cycles.
  std::vector<Entry> carried;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      const bool eligible =
          it->epoch == old_epoch && !it->view.empty() &&
          std::find(untouched_views.begin(), untouched_views.end(),
                    it->view) != untouched_views.end();
      if (!eligible) {
        ++it;
        continue;
      }
      shard.bytes -= it->payload.size();
      shard.index.erase(it->key);
      carried.push_back(std::move(*it));
      it = shard.lru.erase(it);
    }
  }

  // Phase 2: rewrite the epoch component (the middle of the three
  // \x1f-separated fields — split from the end, since \x1f cannot occur
  // in the epoch or flags but query text is arbitrary bytes) and reinsert
  // into the new key's home shard.
  uint64_t count = 0;
  for (Entry& entry : carried) {
    const size_t flag_sep = entry.key.rfind('\x1f');
    if (flag_sep == std::string::npos || flag_sep == 0) continue;
    const size_t epoch_sep = entry.key.rfind('\x1f', flag_sep - 1);
    if (epoch_sep == std::string::npos) continue;
    std::string new_key = entry.key.substr(0, epoch_sep + 1) +
                          std::to_string(new_epoch) +
                          entry.key.substr(flag_sep);
    entry.key = std::move(new_key);
    entry.epoch = new_epoch;
    Shard& shard = ShardFor(entry.key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.index.count(entry.key) > 0) continue;  // fresher answer won
    shard.bytes += entry.payload.size();
    shard.lru.push_front(std::move(entry));
    shard.index.emplace(shard.lru.front().key, shard.lru.begin());
    ++count;
    EvictOverflow(&shard);
  }
  carried_forward_.fetch_add(count, std::memory_order_relaxed);
  return count;
}

void ResultCache::EvictOverflow(Shard* shard) {
  while (shard->bytes > shard_capacity_bytes_ && shard->lru.size() > 1) {
    const Entry& victim = shard->lru.back();
    shard->bytes -= victim.payload.size();
    shard->index.erase(victim.key);
    shard->lru.pop_back();
    ++shard->evictions;
  }
}

void ResultCache::EvictObsolete(uint64_t live_epoch) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->epoch < live_epoch) {
        shard.bytes -= it->payload.size();
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        ++shard.invalidations;
      } else {
        ++it;
      }
    }
  }
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  stats.admission_rejects =
      admission_rejects_.load(std::memory_order_relaxed);
  stats.carried_forward = carried_forward_.load(std::memory_order_relaxed);
  stats.age_at_hit = age_at_hit_.TakeSnapshot();
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.invalidations += shard.invalidations;
    stats.ttl_expired += shard.ttl_expired;
    stats.entries += shard.lru.size();
    stats.bytes += shard.bytes;
  }
  return stats;
}

}  // namespace server
}  // namespace sofos
