#include "server/result_cache.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <functional>

namespace sofos {
namespace server {

std::string NormalizeQueryText(const std::string& sparql) {
  std::string out;
  out.reserve(sparql.size());
  bool pending_space = false;
  char quote = 0;     // the delimiter of the string literal being copied
  bool escaped = false;
  for (char c : sparql) {
    if (quote != 0) {
      // Inside a literal every byte is significant: two queries differing
      // only in literal whitespace are *different* queries and must not
      // share a cache key.
      out += c;
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == quote) {
        quote = 0;
      }
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    if (c == '"' || c == '\'') quote = c;
    out += c;
  }
  return out;
}

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

ResultCache::ResultCache(const ResultCacheOptions& options) {
  size_t shards = RoundUpPow2(std::max<size_t>(1, options.shards));
  shard_mask_ = shards - 1;
  shard_capacity_bytes_ = std::max<size_t>(1, options.capacity_bytes / shards);
  min_cost_micros_ = options.min_cost_micros;
  default_ttl_seconds_ = options.default_ttl_seconds;
  clock_seconds_ = options.clock_seconds;
  shards_ = std::vector<Shard>(shards);
}

double ResultCache::NowSeconds() const {
  if (clock_seconds_) return clock_seconds_();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string ResultCache::MakeKey(const std::string& normalized_query,
                                 uint64_t epoch, bool allow_views) {
  // \x1f never occurs in SPARQL text, so the three components cannot alias.
  return normalized_query + '\x1f' + std::to_string(epoch) + '\x1f' +
         (allow_views ? '1' : '0');
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key)&shard_mask_];
}

bool ResultCache::Lookup(const std::string& key, std::string* payload) {
  Shard& shard = ShardFor(key);
  const double now = NowSeconds();
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  const double age_seconds = now - it->second->inserted_at;
  if (it->second->ttl_seconds > 0 && age_seconds >= it->second->ttl_seconds) {
    // Expired: drop it on the probe (lazy expiry — there is no sweeper)
    // and report a miss so the caller recomputes and re-inserts fresh.
    shard.bytes -= it->second->payload.size();
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.ttl_expired;
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  age_at_hit_.Record(age_seconds * 1e6);
  *payload = it->second->payload;
  return true;
}

void ResultCache::Insert(const std::string& key, uint64_t epoch,
                         std::string payload, double cost_micros,
                         double ttl_seconds) {
  if (cost_micros < min_cost_micros_) {
    // Below the admission floor: recomputing this answer is cheaper than
    // the cache pressure it would add — keep the budget for expensive
    // analytical results.
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (payload.size() > shard_capacity_bytes_) return;  // would evict a shard
  const double ttl = ttl_seconds < 0 ? default_ttl_seconds_ : ttl_seconds;
  const double now = NowSeconds();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Concurrent miss on the same key: both executed; keep the fresh
    // payload (identical by determinism) and just refresh recency — and
    // the TTL window, since the payload was just recomputed.
    shard.bytes -= it->second->payload.size();
    shard.bytes += payload.size();
    it->second->payload = std::move(payload);
    it->second->epoch = epoch;
    it->second->inserted_at = now;
    it->second->ttl_seconds = ttl;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.bytes += payload.size();
  shard.lru.push_front(Entry{key, std::move(payload), epoch, now, ttl});
  shard.index.emplace(key, shard.lru.begin());
  ++shard.insertions;
  EvictOverflow(&shard);
}

void ResultCache::EvictOverflow(Shard* shard) {
  while (shard->bytes > shard_capacity_bytes_ && shard->lru.size() > 1) {
    const Entry& victim = shard->lru.back();
    shard->bytes -= victim.payload.size();
    shard->index.erase(victim.key);
    shard->lru.pop_back();
    ++shard->evictions;
  }
}

void ResultCache::EvictObsolete(uint64_t live_epoch) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->epoch < live_epoch) {
        shard.bytes -= it->payload.size();
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        ++shard.invalidations;
      } else {
        ++it;
      }
    }
  }
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  stats.admission_rejects =
      admission_rejects_.load(std::memory_order_relaxed);
  stats.age_at_hit = age_at_hit_.TakeSnapshot();
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.invalidations += shard.invalidations;
    stats.ttl_expired += shard.ttl_expired;
    stats.entries += shard.lru.size();
    stats.bytes += shard.bytes;
  }
  return stats;
}

}  // namespace server
}  // namespace sofos
