// Minimal HTTP/1.0 helpers for the observability endpoint: just enough to
// parse "GET <path>[?query] HTTP/1.x" from a scraper or browser and
// render a Connection: close response. Not a general HTTP server — one
// request per connection, GET only, no bodies, no keep-alive; the
// line-protocol port remains the real client interface.
#ifndef SOFOS_SERVER_HTTP_H_
#define SOFOS_SERVER_HTTP_H_

#include <map>
#include <string>

namespace sofos {
namespace server {

/// A parsed request line: "GET /history?window=60 HTTP/1.1" becomes
/// {method "GET", path "/history", params {{"window","60"}}}.
struct HttpRequest {
  std::string method;
  std::string path;  // without the query string
  std::map<std::string, std::string> params;
};

/// Parses the request line only (headers are read and discarded by the
/// caller). False on anything that is not "<METHOD> <target> HTTP/...".
bool ParseHttpRequestLine(const std::string& line, HttpRequest* request);

/// Renders a full HTTP/1.0 response with Content-Length and
/// Connection: close. `status` is e.g. "200 OK", "404 Not Found".
std::string FormatHttpResponse(const std::string& status,
                               const std::string& content_type,
                               const std::string& body);

}  // namespace server
}  // namespace sofos

#endif  // SOFOS_SERVER_HTTP_H_
