// Minimal HTTP/1.0 helpers for the server's HTTP port: parse
// "<METHOD> <path>[?query] HTTP/1.x" plus headers and an optional
// Content-Length body, and render a Connection: close response. Enough
// for the observability GETs and the `GET /query?q=` / `POST /query`
// JSON adapter — one request per connection, no keep-alive, no chunked
// encoding; the line-protocol port remains the high-throughput client
// interface.
//
// `HttpRequestParser` is incremental so the epoll event loop can feed it
// whatever bytes recv() produced and resume later — the same parser also
// backs the blocking thread-per-session HTTP path.
#ifndef SOFOS_SERVER_HTTP_H_
#define SOFOS_SERVER_HTTP_H_

#include <cstddef>
#include <map>
#include <string>

namespace sofos {
namespace server {

/// A parsed request: "GET /history?window=60 HTTP/1.1" becomes
/// {method "GET", path "/history", params {{"window","60"}}}. Header
/// names are lowercased; `body` is raw bytes (Content-Length framed).
struct HttpRequest {
  std::string method;
  std::string path;  // without the query string
  std::map<std::string, std::string> params;
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Parses the request line only. False on anything that is not
/// "<METHOD> <target> HTTP/...". Leaves headers/body untouched.
bool ParseHttpRequestLine(const std::string& line, HttpRequest* request);

/// Incremental request parser over an append-only byte buffer. Feed with
/// Consume() after every read; it reports kNeedMore until the head
/// (request line + headers, terminated by a blank line) and the
/// Content-Length body have fully arrived, then fills *request and
/// erases the consumed prefix from the buffer.
class HttpRequestParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  /// `max_bytes` bounds both the head and the body independently;
  /// exceeding either is kError (oversized/looping clients).
  explicit HttpRequestParser(size_t max_bytes) : max_bytes_(max_bytes) {}

  State Consume(std::string* buffer, HttpRequest* request);

  /// Human-readable reason after kError.
  const std::string& error() const { return error_; }

 private:
  size_t max_bytes_;
  std::string error_;
};

/// Renders a full HTTP/1.0 response with Content-Length and
/// Connection: close. `status` is e.g. "200 OK", "404 Not Found";
/// `extra_headers` (may be empty) is raw pre-formatted header lines,
/// each terminated by "\r\n" (e.g. "Retry-After: 1\r\n").
std::string FormatHttpResponse(const std::string& status,
                               const std::string& content_type,
                               const std::string& body,
                               const std::string& extra_headers = "");

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslash, control characters).
std::string JsonEscape(const std::string& in);

}  // namespace server
}  // namespace sofos

#endif  // SOFOS_SERVER_HTTP_H_
