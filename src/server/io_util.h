#ifndef SOFOS_SERVER_IO_UTIL_H_
#define SOFOS_SERVER_IO_UTIL_H_

#include <cstddef>
#include <string>

namespace sofos {
namespace server {

/// Sends the whole buffer over a blocking socket, absorbing partial writes
/// and EINTR (MSG_NOSIGNAL: a dead peer returns false instead of raising
/// SIGPIPE). Shared by both protocol ends.
bool SendAll(int fd, const std::string& data);

/// Buffered newline-framed reader over a blocking socket — the one line
/// framer both the server session loop and BlockingClient use, so framing
/// rules (CR stripping, length cap, EINTR) cannot diverge between them.
class LineReader {
 public:
  enum class ReadResult {
    kLine,     // *line holds one complete line (terminator stripped)
    kEof,      // orderly close before a complete line
    kError,    // recv failed (connection reset, or shutdown() from Stop)
    kTooLong,  // buffered more than max_line bytes with no newline
  };

  LineReader(int fd, size_t max_line) : fd_(fd), max_line_(max_line) {}

  /// Blocks until one '\n'-terminated line is buffered. Strips the '\n'
  /// and one trailing '\r'.
  ReadResult ReadLine(std::string* line);

 private:
  int fd_;
  size_t max_line_;
  std::string buffer_;
};

}  // namespace server
}  // namespace sofos

#endif  // SOFOS_SERVER_IO_UTIL_H_
