#include "server/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace sofos {
namespace server {
namespace {

/// epoll_event.data.u64 value for the eventfd wakeup.
constexpr uint64_t kWakeId = 1;

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

EventLoop::EventLoop(const EventLoopOptions& options, LineHandler on_line,
                     HttpHandler on_http, AcceptHandler on_accept)
    : options_(options),
      on_line_(std::move(on_line)),
      on_http_(std::move(on_http)),
      on_accept_(std::move(on_accept)) {}

EventLoop::~EventLoop() {
  Stop();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

Status EventLoop::Start() {
  if (started_.exchange(true)) return Status::OK();
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return Status::Internal("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) return Status::Internal("eventfd failed");
  struct epoll_event ev;
  ::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::Internal("epoll_ctl(wake) failed");
  }
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void EventLoop::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  Post(Mail{});  // Mail default-constructs to kStop
  if (thread_.joinable()) thread_.join();
}

void EventLoop::Post(Mail mail) {
  {
    std::lock_guard<std::mutex> lock(mail_mu_);
    mail_.push_back(std::move(mail));
  }
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    // A full eventfd counter still wakes the loop; ignore short writes.
    ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
}

void EventLoop::AddListener(int listen_fd, ConnKind kind) {
  Mail mail;
  mail.kind = Mail::Kind::kAddListener;
  mail.fd = listen_fd;
  mail.conn_kind = kind;
  Post(std::move(mail));
}

void EventLoop::AddConnection(int fd, ConnKind kind) {
  // Counted at handoff, not when the loop processes the mail: admission
  // gates on open_connections(), and counting late would let an accept
  // burst overshoot the connection cap while kAddConn mail sits queued.
  // The failure paths in ProcessMail (and loop teardown) undo this.
  open_connections_.fetch_add(1, std::memory_order_relaxed);
  Mail mail;
  mail.kind = Mail::Kind::kAddConn;
  mail.fd = fd;
  mail.conn_kind = kind;
  Post(std::move(mail));
}

void EventLoop::Respond(uint64_t conn, std::string bytes,
                        bool close_after_flush) {
  Mail mail;
  mail.kind = Mail::Kind::kRespond;
  mail.conn = conn;
  mail.payload = std::move(bytes);
  mail.close_after_flush = close_after_flush;
  Post(std::move(mail));
}

void EventLoop::Run() {
  std::vector<struct epoll_event> events(64);
  while (true) {
    std::vector<Mail> batch;
    {
      std::lock_guard<std::mutex> lock(mail_mu_);
      batch.swap(mail_);
    }
    ProcessMail(std::move(batch));
    if (stop_requested_) break;

    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — only happens during teardown
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      const uint32_t mask = events[i].events;
      if (id == kWakeId) {
        uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      auto lit = listeners_.find(id);
      if (lit != listeners_.end()) {
        HandleAccept(lit->second.first, lit->second.second);
        continue;
      }
      auto cit = conns_.find(id);
      if (cit == conns_.end()) continue;  // closed earlier in this batch
      Conn* conn = &cit->second;
      if (mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        HandleReadable(id, conn);
        cit = conns_.find(id);
        if (cit == conns_.end()) continue;
        conn = &cit->second;
      }
      if (mask & EPOLLOUT) {
        if (!FlushOut(id, conn)) continue;
        UpdateInterest(conn);
      }
    }
  }

  // Teardown on the loop thread: every fd registered here is owned here.
  for (auto& [id, conn] : conns_) {
    ::close(conn.fd);
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
  conns_.clear();
  for (auto& [id, lf] : listeners_) ::close(lf.first);
  listeners_.clear();
  // Mail that raced with stop never reaches ProcessMail: close handed-off
  // fds and give back their AddConnection() handoff counts.
  std::vector<Mail> leftover;
  {
    std::lock_guard<std::mutex> lock(mail_mu_);
    leftover.swap(mail_);
  }
  for (const Mail& mail : leftover) {
    if (mail.kind == Mail::Kind::kAddConn) {
      ::close(mail.fd);
      open_connections_.fetch_sub(1, std::memory_order_relaxed);
    } else if (mail.kind == Mail::Kind::kAddListener) {
      ::close(mail.fd);
    }
  }
}

void EventLoop::ProcessMail(std::vector<Mail> batch) {
  for (Mail& mail : batch) {
    switch (mail.kind) {
      case Mail::Kind::kStop:
        stop_requested_ = true;
        break;
      case Mail::Kind::kAddListener: {
        if (!SetNonBlocking(mail.fd)) {
          // A blocking listener would wedge the loop in HandleAccept's
          // accept-until-EAGAIN drain; refuse it like kAddConn does.
          ::close(mail.fd);
          break;
        }
        const uint64_t id = next_id_++;
        struct epoll_event ev;
        ::memset(&ev, 0, sizeof(ev));
        ev.events = EPOLLIN;
        ev.data.u64 = id;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, mail.fd, &ev) != 0) {
          ::close(mail.fd);
          break;
        }
        listeners_.emplace(id, std::make_pair(mail.fd, mail.conn_kind));
        break;
      }
      case Mail::Kind::kAddConn: {
        if (!SetNonBlocking(mail.fd)) {
          ::close(mail.fd);
          open_connections_.fetch_sub(1, std::memory_order_relaxed);
          break;
        }
        const uint64_t id = next_id_++;
        auto [it, inserted] =
            conns_.emplace(id, Conn(options_.max_request_bytes));
        Conn* conn = &it->second;
        conn->fd = mail.fd;
        conn->epoll_id = id;
        conn->kind = mail.conn_kind;
        struct epoll_event ev;
        ::memset(&ev, 0, sizeof(ev));
        ev.events = EPOLLIN | EPOLLRDHUP;
        ev.data.u64 = id;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, mail.fd, &ev) != 0) {
          ::close(mail.fd);
          conns_.erase(id);
          open_connections_.fetch_sub(1, std::memory_order_relaxed);
          break;
        }
        conn->armed_events = EPOLLIN | EPOLLRDHUP;
        break;
      }
      case Mail::Kind::kRespond: {
        auto it = conns_.find(mail.conn);
        if (it == conns_.end()) break;  // connection died first — drop
        Conn* conn = &it->second;
        conn->out += mail.payload;
        conn->in_flight = false;
        if (mail.close_after_flush) conn->close_after_flush = true;
        if (!FlushOut(mail.conn, conn)) break;
        // The slot is free again: frame the next pipelined request, or
        // finish an EOF'd connection whose last response just went out.
        ProcessInput(mail.conn, conn);
        it = conns_.find(mail.conn);
        if (it == conns_.end()) break;
        conn = &it->second;
        if (conn->peer_eof && !conn->in_flight && !conn->close_after_flush) {
          conn->close_after_flush = true;
          if (!FlushOut(mail.conn, conn)) break;
        }
        UpdateInterest(conn);
        break;
      }
    }
  }
}

void EventLoop::HandleAccept(int listen_fd, ConnKind kind) {
  while (true) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or listener gone
    }
    if (on_accept_) {
      on_accept_(fd, kind);
    } else {
      AddConnection(fd, kind);
    }
  }
}

void EventLoop::HandleReadable(uint64_t id, Conn* conn) {
  char buf[4096];
  while (!conn->peer_eof && !conn->close_after_flush &&
         conn->in.size() < options_.max_buffered_bytes) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      conn->peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(id, conn);  // hard error (ECONNRESET et al.)
    return;
  }
  ProcessInput(id, conn);
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  conn = &it->second;
  if (conn->peer_eof && !conn->in_flight && !conn->close_after_flush) {
    // Peer finished sending and nothing is pending: flush whatever is
    // queued and close (half-closed clients still get their responses).
    conn->close_after_flush = true;
  }
  if (!FlushOut(id, conn)) return;
  UpdateInterest(conn);
}

void EventLoop::ProcessInput(uint64_t id, Conn* conn) {
  if (conn->kind == ConnKind::kLine) {
    while (!conn->in_flight && !conn->close_after_flush) {
      size_t nl = conn->in.find('\n');
      if (nl == std::string::npos) {
        if (conn->in.size() > options_.max_request_bytes) {
          conn->out += options_.overflow_response;
          conn->close_after_flush = true;
        }
        return;
      }
      std::string line = conn->in.substr(0, nl);
      conn->in.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;  // blank lines are skipped, not errors
      conn->in_flight = true;
      on_line_(this, id, std::move(line));
    }
    return;
  }
  while (!conn->in_flight && !conn->close_after_flush) {
    HttpRequest request;
    HttpRequestParser::State state = conn->parser.Consume(&conn->in, &request);
    if (state == HttpRequestParser::State::kNeedMore) return;
    if (state == HttpRequestParser::State::kError) {
      conn->out += FormatHttpResponse("400 Bad Request", "text/plain",
                                      conn->parser.error() + "\n");
      conn->close_after_flush = true;
      return;
    }
    conn->in_flight = true;
    on_http_(this, id, std::move(request));
  }
}

bool EventLoop::FlushOut(uint64_t id, Conn* conn) {
  while (conn->out_offset < conn->out.size()) {
    ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_offset,
                       conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConn(id, conn);  // peer gone mid-write
    return false;
  }
  if (conn->out_offset >= conn->out.size()) {
    conn->out.clear();
    conn->out_offset = 0;
    if (conn->close_after_flush) {
      CloseConn(id, conn);
      return false;
    }
  }
  return true;
}

void EventLoop::UpdateInterest(Conn* conn) {
  uint32_t want = 0;
  const bool read_open = !conn->peer_eof && !conn->close_after_flush &&
                         conn->in.size() < options_.max_buffered_bytes;
  if (read_open) want |= EPOLLIN | EPOLLRDHUP;
  if (conn->out_offset < conn->out.size()) want |= EPOLLOUT;
  if (want == conn->armed_events) return;
  struct epoll_event ev;
  ::memset(&ev, 0, sizeof(ev));
  ev.events = want;
  ev.data.u64 = conn->epoll_id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->armed_events = want;
}

void EventLoop::CloseConn(uint64_t id, Conn* conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(id);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace server
}  // namespace sofos
