#include "server/io_util.h"

#include <sys/socket.h>

#include <cerrno>

namespace sofos {
namespace server {

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

LineReader::ReadResult LineReader::ReadLine(std::string* line) {
  for (;;) {
    size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      line->assign(buffer_, 0, eol);
      buffer_.erase(0, eol + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return ReadResult::kLine;
    }
    if (buffer_.size() > max_line_) return ReadResult::kTooLong;
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return ReadResult::kEof;
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadResult::kError;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace server
}  // namespace sofos
