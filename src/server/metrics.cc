#include "server/metrics.h"

#include "common/string_util.h"

namespace sofos {
namespace server {

const char* EndpointName(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kQuery:
      return "query";
    case Endpoint::kUpdate:
      return "update";
    case Endpoint::kExplain:
      return "explain";
    case Endpoint::kAnalyze:
      return "analyze";
    case Endpoint::kTrace:
      return "trace";
    case Endpoint::kStats:
      return "stats";
    case Endpoint::kMetrics:
      return "metrics";
    case Endpoint::kHistory:
      return "history";
    case Endpoint::kSlow:
      return "slow";
    case Endpoint::kHttpQuery:
      return "http_query";
    case Endpoint::kNumEndpoints:
      break;
  }
  return "unknown";
}

double ServerMetrics::CacheHitRate() const {
  uint64_t hits = cache_hits();
  uint64_t total = hits + cache_misses();
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

std::string ServerMetrics::ToJson(const std::string& extra_fields) const {
  std::string out = "{";
  out += "\"endpoints\": {";
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    const EndpointMetrics& ep = endpoints_[i];
    LatencyHistogram::Snapshot snap = ep.latency.TakeSnapshot();
    if (i) out += ", ";
    out += StrFormat(
        "\"%s\": {\"requests\": %llu, \"errors\": %llu, "
        "\"mean_us\": %.1f, \"p50_us\": %.1f, \"p95_us\": %.1f, "
        "\"p99_us\": %.1f}",
        EndpointName(static_cast<Endpoint>(i)),
        static_cast<unsigned long long>(
            ep.requests.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            ep.errors.load(std::memory_order_relaxed)),
        snap.MeanMicros(), snap.P50(), snap.P95(), snap.P99());
  }
  out += "}";
  out += StrFormat(
      ", \"cache\": {\"hits\": %llu, \"misses\": %llu, \"hit_rate\": %.4f}",
      static_cast<unsigned long long>(cache_hits()),
      static_cast<unsigned long long>(cache_misses()), CacheHitRate());
  out += StrFormat(
      ", \"admission\": {\"accepted\": %llu, \"rejected\": %llu, "
      "\"queue_depth\": %lld, \"active_sessions\": %lld, "
      "\"protocol_errors\": %llu}",
      static_cast<unsigned long long>(accepted()),
      static_cast<unsigned long long>(rejected()),
      static_cast<long long>(queue_depth()),
      static_cast<long long>(active_sessions()),
      static_cast<unsigned long long>(
          protocol_errors_.load(std::memory_order_relaxed)));
  if (!extra_fields.empty()) {
    out += ", ";
    out += extra_fields;
  }
  out += "}";
  return out;
}

}  // namespace server
}  // namespace sofos
