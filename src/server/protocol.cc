#include "server/protocol.h"

#include "common/string_util.h"

namespace sofos {
namespace server {

Result<Request> ParseRequest(const std::string& line) {
  std::string_view trimmed = StrTrim(line);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  size_t space = trimmed.find_first_of(" \t");
  std::string_view verb = trimmed.substr(0, space);
  Request request;
  if (verb == "QUERY") {
    request.verb = Verb::kQuery;
  } else if (verb == "UPDATE") {
    request.verb = Verb::kUpdate;
  } else if (verb == "EXPLAIN") {
    request.verb = Verb::kExplain;
  } else if (verb == "ANALYZE") {
    request.verb = Verb::kAnalyze;
  } else if (verb == "TRACE") {
    request.verb = Verb::kTrace;
  } else if (verb == "STATS") {
    request.verb = Verb::kStats;
  } else if (verb == "METRICS") {
    request.verb = Verb::kMetrics;
  } else if (verb == "HISTORY") {
    request.verb = Verb::kHistory;
  } else if (verb == "SLOW") {
    request.verb = Verb::kSlow;
  } else if (verb == "QUIT") {
    request.verb = Verb::kQuit;
  } else {
    return Status::InvalidArgument(
        "unknown verb '" + std::string(verb) +
        "' (QUERY/UPDATE/EXPLAIN/ANALYZE/TRACE/STATS/METRICS/HISTORY/SLOW/"
        "QUIT)");
  }
  if (space != std::string_view::npos) {
    request.arg = std::string(StrTrim(trimmed.substr(space + 1)));
  }
  return request;
}

std::string FormatQueryBody(const sparql::QueryResult& result) {
  std::string out = "#vars";
  for (const std::string& var : result.var_names) {
    out += '\t';
    out += var;
  }
  out += '\n';
  for (size_t r = 0; r < result.rows.size(); ++r) {
    for (size_t c = 0; c < result.rows[r].size(); ++c) {
      if (c) out += '\t';
      out += result.bound[r][c] ? result.rows[r][c].ToNTriples() : "UNBOUND";
    }
    out += '\n';
  }
  return out;
}

std::string FormatQueryHeader(uint64_t rows, uint64_t cols, uint64_t epoch,
                              bool cached, const std::string& view,
                              double micros) {
  return StrFormat("OK QUERY rows=%llu cols=%llu epoch=%llu cached=%d view=%s "
                   "micros=%.1f",
                   static_cast<unsigned long long>(rows),
                   static_cast<unsigned long long>(cols),
                   static_cast<unsigned long long>(epoch), cached ? 1 : 0,
                   view.empty() ? "-" : view.c_str(), micros);
}

std::string FormatError(const std::string& message) {
  std::string flat = message;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "ERR " + flat;
}

std::string FormatBusy(int retry_ms) {
  return StrFormat("BUSY retry_ms=%d", retry_ms);
}

}  // namespace server
}  // namespace sofos
