#include "server/slow_query_log.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace sofos {
namespace server {
namespace {

void AppendJsonString(const std::string& in, std::string* out) {
  out->push_back('"');
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      *out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

SlowQueryLog::SlowQueryLog(const SlowQueryOptions& options)
    : options_(options) {
  options_.capacity = std::max<size_t>(1, options_.capacity);
}

double SlowQueryLog::NowSeconds() const {
  if (options_.clock_seconds) return options_.clock_seconds();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool SlowQueryLog::ShouldCapture(double micros) {
  if (options_.threshold_micros <= 0 || micros < options_.threshold_micros) {
    return false;
  }
  const double now = NowSeconds();
  std::lock_guard<std::mutex> lock(mu_);
  if (captured_any_ &&
      now - last_capture_at_ < options_.min_interval_seconds) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  last_capture_at_ = now;
  captured_any_ = true;
  return true;
}

void SlowQueryLog::Add(SlowQueryRecord record) {
  if (record.at_seconds == 0.0) record.at_seconds = NowSeconds();
  captured_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(record));
  while (ring_.size() > options_.capacity) ring_.pop_front();
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowQueryRecord>(ring_.begin(), ring_.end());
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::string SlowQueryLog::ToJson() const {
  std::vector<SlowQueryRecord> records = Snapshot();
  std::string out = "[";
  for (size_t i = 0; i < records.size(); ++i) {
    const SlowQueryRecord& r = records[i];
    if (i) out += ",";
    char num[64];
    out += "{\"at_seconds\":";
    std::snprintf(num, sizeof(num), "%.3f", r.at_seconds);
    out += num;
    out += ",\"micros\":";
    std::snprintf(num, sizeof(num), "%.1f", r.micros);
    out += num;
    out += ",\"epoch\":" + std::to_string(r.epoch);
    out += ",\"query\":";
    AppendJsonString(r.query, &out);
    out += ",\"analyze\":";
    AppendJsonString(r.analyze_text, &out);
    // trace_json is already a rendered JSON array (TraceContext::ToJson);
    // embed it verbatim, or null when the re-run produced none.
    out += ",\"trace\":";
    out += r.trace_json.empty() ? "null" : r.trace_json;
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace server
}  // namespace sofos
