#include "workload/generator.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"
#include "sparql/query_engine.h"

namespace sofos {
namespace workload {

using core::DimConstraint;
using core::DimUsage;
using core::QuerySignature;
using core::WorkloadQuery;

Result<std::vector<Term>> WorkloadGenerator::DimValues(int dim, int max_constants) {
  const std::string& var = facet_->dims()[static_cast<size_t>(dim)].var;
  std::string pattern;
  for (const auto& tp : facet_->pattern()) {
    pattern += "  " + tp.ToString() + " .\n";
  }
  std::string query = "SELECT DISTINCT ?" + var + " WHERE {\n" + pattern +
                      "} LIMIT " + std::to_string(max_constants);
  sparql::QueryEngine engine(store_);
  SOFOS_ASSIGN_OR_RETURN(sparql::QueryResult result, engine.Execute(query));
  std::vector<Term> values;
  for (size_t r = 0; r < result.rows.size(); ++r) {
    if (result.bound[r][0]) values.push_back(result.rows[r][0]);
  }
  return values;
}

Result<std::vector<WorkloadQuery>> WorkloadGenerator::Generate(
    const WorkloadOptions& options) {
  Rng rng(options.seed);
  const size_t num_dims = facet_->num_dims();

  // Sample the constant pools once per dimension.
  std::vector<std::vector<Term>> pools(num_dims);
  for (size_t d = 0; d < num_dims; ++d) {
    SOFOS_ASSIGN_OR_RETURN(pools[d],
                           DimValues(static_cast<int>(d), options.max_constants));
  }

  std::string pattern;
  for (const auto& tp : facet_->pattern()) {
    pattern += "  " + tp.ToString() + " .\n";
  }

  std::vector<WorkloadQuery> queries;
  queries.reserve(static_cast<size_t>(options.num_queries));
  for (int q = 0; q < options.num_queries; ++q) {
    WorkloadQuery query;
    query.id = "q" + std::to_string(q);
    QuerySignature& sig = query.signature;

    for (size_t d = 0; d < num_dims; ++d) {
      if (rng.Chance(options.group_dim_prob)) sig.group_mask |= 1u << d;
    }

    // Filters: random dims (grouped or not) with constants from the pool.
    int filters = 0;
    for (int attempt = 0; attempt < options.max_filters; ++attempt) {
      if (!rng.Chance(options.filter_prob)) continue;
      size_t d = rng.Uniform(num_dims);
      if ((sig.filter_mask >> d) & 1u) continue;  // one filter per dim
      if (pools[d].empty()) continue;
      const std::string& var = facet_->dims()[d].var;

      DimConstraint constraint;
      constraint.dim = static_cast<int>(d);
      bool numeric = pools[d][0].is_numeric();
      if (numeric && rng.Chance(options.range_prob) && pools[d].size() >= 2) {
        const Term& a = rng.Pick(pools[d]);
        const Term& b = rng.Pick(pools[d]);
        auto av = a.AsInt64().ValueOr(0);
        auto bv = b.AsInt64().ValueOr(0);
        int64_t lo = std::min(av, bv), hi = std::max(av, bv);
        constraint.usage = DimUsage::kFilteredRange;
        constraint.filter_sparql = StrFormat(
            "?%s >= %lld && ?%s <= %lld", var.c_str(),
            static_cast<long long>(lo), var.c_str(), static_cast<long long>(hi));
      } else {
        const Term& value = rng.Pick(pools[d]);
        constraint.usage = DimUsage::kFilteredEq;
        constraint.filter_sparql =
            "?" + var + " = " + value.ToNTriples();
      }
      sig.filter_mask |= 1u << d;
      sig.constraints.push_back(std::move(constraint));
      ++filters;
    }
    (void)filters;

    // Render the SPARQL against the base graph.
    std::string select = "SELECT";
    std::string group;
    for (size_t d = 0; d < num_dims; ++d) {
      if ((sig.group_mask >> d) & 1u) {
        select += " ?" + facet_->dims()[d].var;
        group += " ?" + facet_->dims()[d].var;
      }
    }
    select += " (" + sparql::AggKindName(facet_->agg_kind()) + "(?" +
              facet_->agg_var() + ") AS ?agg)";
    std::string where = " WHERE {\n" + pattern;
    for (const DimConstraint& c : sig.constraints) {
      where += "  FILTER(" + c.filter_sparql + ")\n";
    }
    where += "}";
    query.sparql = select + where;
    if (!group.empty()) query.sparql += " GROUP BY" + group;

    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace workload
}  // namespace sofos
