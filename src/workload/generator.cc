#include "workload/generator.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>

#include "common/rng.h"
#include "common/string_util.h"
#include "sparql/query_engine.h"

namespace sofos {
namespace workload {

using core::DimConstraint;
using core::DimUsage;
using core::QuerySignature;
using core::WorkloadQuery;

Result<std::vector<Term>> WorkloadGenerator::DimValues(int dim, int max_constants) {
  const std::string& var = facet_->dims()[static_cast<size_t>(dim)].var;
  std::string pattern;
  for (const auto& tp : facet_->pattern()) {
    pattern += "  " + tp.ToString() + " .\n";
  }
  std::string query = "SELECT DISTINCT ?" + var + " WHERE {\n" + pattern +
                      "} LIMIT " + std::to_string(max_constants);
  sparql::QueryEngine engine(store_);
  SOFOS_ASSIGN_OR_RETURN(sparql::QueryResult result, engine.Execute(query));
  std::vector<Term> values;
  for (size_t r = 0; r < result.rows.size(); ++r) {
    if (result.bound[r][0]) values.push_back(result.rows[r][0]);
  }
  return values;
}

Result<std::vector<WorkloadQuery>> WorkloadGenerator::Generate(
    const WorkloadOptions& options) {
  Rng rng(options.seed);
  const size_t num_dims = facet_->num_dims();

  // Sample the constant pools once per dimension.
  std::vector<std::vector<Term>> pools(num_dims);
  for (size_t d = 0; d < num_dims; ++d) {
    SOFOS_ASSIGN_OR_RETURN(pools[d],
                           DimValues(static_cast<int>(d), options.max_constants));
  }

  std::string pattern;
  for (const auto& tp : facet_->pattern()) {
    pattern += "  " + tp.ToString() + " .\n";
  }

  std::vector<WorkloadQuery> queries;
  queries.reserve(static_cast<size_t>(options.num_queries));
  for (int q = 0; q < options.num_queries; ++q) {
    WorkloadQuery query;
    query.id = "q" + std::to_string(q);
    QuerySignature& sig = query.signature;

    for (size_t d = 0; d < num_dims; ++d) {
      if (rng.Chance(options.group_dim_prob)) sig.group_mask |= 1u << d;
    }

    // Filters: random dims (grouped or not) with constants from the pool.
    int filters = 0;
    for (int attempt = 0; attempt < options.max_filters; ++attempt) {
      if (!rng.Chance(options.filter_prob)) continue;
      size_t d = rng.Uniform(num_dims);
      if ((sig.filter_mask >> d) & 1u) continue;  // one filter per dim
      if (pools[d].empty()) continue;
      const std::string& var = facet_->dims()[d].var;

      DimConstraint constraint;
      constraint.dim = static_cast<int>(d);
      bool numeric = pools[d][0].is_numeric();
      if (numeric && rng.Chance(options.range_prob) && pools[d].size() >= 2) {
        const Term& a = rng.Pick(pools[d]);
        const Term& b = rng.Pick(pools[d]);
        auto av = a.AsInt64().ValueOr(0);
        auto bv = b.AsInt64().ValueOr(0);
        int64_t lo = std::min(av, bv), hi = std::max(av, bv);
        constraint.usage = DimUsage::kFilteredRange;
        constraint.filter_sparql = StrFormat(
            "?%s >= %lld && ?%s <= %lld", var.c_str(),
            static_cast<long long>(lo), var.c_str(), static_cast<long long>(hi));
      } else {
        const Term& value = rng.Pick(pools[d]);
        constraint.usage = DimUsage::kFilteredEq;
        constraint.filter_sparql =
            "?" + var + " = " + value.ToNTriples();
      }
      sig.filter_mask |= 1u << d;
      sig.constraints.push_back(std::move(constraint));
      ++filters;
    }
    (void)filters;

    // Render the SPARQL against the base graph.
    std::string select = "SELECT";
    std::string group;
    for (size_t d = 0; d < num_dims; ++d) {
      if ((sig.group_mask >> d) & 1u) {
        select += " ?" + facet_->dims()[d].var;
        group += " ?" + facet_->dims()[d].var;
      }
    }
    select += " (" + sparql::AggKindName(facet_->agg_kind()) + "(?" +
              facet_->agg_var() + ") AS ?agg)";
    std::string where = " WHERE {\n" + pattern;
    for (const DimConstraint& c : sig.constraints) {
      where += "  FILTER(" + c.filter_sparql + ")\n";
    }
    where += "}";
    query.sparql = select + where;
    if (!group.empty()) query.sparql += " GROUP BY" + group;

    queries.push_back(std::move(query));
  }
  return queries;
}

Result<std::vector<core::maintenance::GraphDelta>> GenerateUpdateStream(
    const std::vector<Triple>& base, const Dictionary& dict,
    const UpdateStreamOptions& options) {
  using core::maintenance::GraphDelta;
  using core::maintenance::TermTriple;

  if (options.num_batches < 0 || options.batch_fraction < 0 ||
      options.delete_fraction < 0 || options.delete_fraction > 1) {
    return Status::InvalidArgument("invalid update-stream options");
  }
  if (base.empty()) {
    return Status::InvalidArgument("update stream requires a non-empty base");
  }

  Rng rng(options.seed);

  // Object pools per predicate, sampled from the initial base: inserts
  // recombine an existing (s, p) with another object of the same predicate.
  std::unordered_map<TermId, std::vector<TermId>> objects_by_pred;
  for (const Triple& t : base) objects_by_pred[t.p].push_back(t.o);

  // `current` evolves as batches are generated so that every delete hits a
  // live triple and every insert is genuinely new at apply time.
  std::vector<Triple> current = base;  // stays sorted

  auto decode = [&](const Triple& t) {
    return TermTriple{dict.term(t.s), dict.term(t.p), dict.term(t.o)};
  };

  std::vector<GraphDelta> stream;
  stream.reserve(static_cast<size_t>(options.num_batches));
  for (int b = 0; b < options.num_batches; ++b) {
    size_t ops = static_cast<size_t>(
        static_cast<double>(base.size()) * options.batch_fraction);
    ops = std::max(ops, static_cast<size_t>(std::max(options.min_batch_ops, 1)));
    size_t num_deletes = static_cast<size_t>(
        static_cast<double>(ops) * options.delete_fraction);
    num_deletes = std::min(num_deletes, current.size() > 1 ? current.size() - 1
                                                           : size_t{0});
    size_t num_adds = ops - std::min(ops, num_deletes);

    GraphDelta delta;
    std::vector<Triple> batch_deletes;
    for (size_t i : rng.SampleIndices(current.size(), num_deletes)) {
      batch_deletes.push_back(current[i]);
      delta.deletes.push_back(decode(current[i]));
    }
    std::sort(batch_deletes.begin(), batch_deletes.end());

    std::vector<Triple> batch_adds;
    for (size_t i = 0; i < num_adds; ++i) {
      // A handful of recombination attempts per insert; graphs where every
      // (s, p, o') already exists simply yield a smaller batch.
      for (int attempt = 0; attempt < 16; ++attempt) {
        const Triple& donor = current[rng.Uniform(current.size())];
        const std::vector<TermId>& pool = objects_by_pred[donor.p];
        Triple candidate{donor.s, donor.p, pool[rng.Uniform(pool.size())]};
        if (std::binary_search(current.begin(), current.end(), candidate) ||
            std::binary_search(batch_adds.begin(), batch_adds.end(),
                               candidate)) {
          continue;
        }
        batch_adds.insert(std::lower_bound(batch_adds.begin(),
                                           batch_adds.end(), candidate),
                          candidate);
        delta.adds.push_back(decode(candidate));
        break;
      }
    }

    // Advance the working copy with the shared delta semantics.
    current = ApplySortedDelta(current, batch_adds, batch_deletes);

    stream.push_back(std::move(delta));
  }
  return stream;
}

}  // namespace workload
}  // namespace sofos
