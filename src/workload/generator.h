#ifndef SOFOS_WORKLOAD_GENERATOR_H_
#define SOFOS_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/facet.h"
#include "core/maintenance/delta.h"
#include "core/workload_types.h"
#include "rdf/triple_store.h"

namespace sofos {
namespace workload {

/// Knobs for random analytical-query generation (paper §3.2: "the system
/// runs a set of queries randomly generated from the facet F"; §4: "a query
/// workload composed of different parametrized queries for a given query
/// template").
struct WorkloadOptions {
  int num_queries = 30;
  /// Probability that each dimension appears in GROUP BY.
  double group_dim_prob = 0.5;
  /// Probability of attempting each additional FILTER (up to max_filters).
  double filter_prob = 0.6;
  int max_filters = 2;
  /// Probability that a numeric dimension's filter is a range instead of
  /// an equality.
  double range_prob = 0.5;
  /// Distinct constants sampled per dimension for filter instantiation.
  int max_constants = 64;
  uint64_t seed = 42;
};

/// Generates parameterized analytical queries from a facet: random grouping
/// subsets plus equality/range filters whose constants are sampled from the
/// actual graph, so every filter is satisfiable.
class WorkloadGenerator {
 public:
  /// `store` must be finalized; it is queried for dimension constants.
  WorkloadGenerator(const core::Facet* facet, TripleStore* store)
      : facet_(facet), store_(store) {}

  Result<std::vector<core::WorkloadQuery>> Generate(const WorkloadOptions& options);

 private:
  /// Distinct values of dimension `dim` (up to max_constants).
  Result<std::vector<Term>> DimValues(int dim, int max_constants);

  const core::Facet* facet_;
  TripleStore* store_;
};

/// Knobs for synthetic update-stream generation (the evolving-KG scenario:
/// insert/delete mixes sized relative to the graph).
struct UpdateStreamOptions {
  int num_batches = 5;
  /// Operations per batch as a fraction of the base graph size.
  double batch_fraction = 0.01;
  /// Share of each batch's operations that are deletes (rest are inserts).
  double delete_fraction = 0.4;
  /// Floor on operations per batch (keeps tiny graphs interesting).
  int min_batch_ops = 4;
  uint64_t seed = 42;
};

/// Generates a deterministic stream of update batches against the base
/// graph `base` (sorted SPO, as returned by SofosEngine::base_snapshot()).
/// Deletes sample live base triples; inserts recombine the (s, p) of one
/// existing triple with the object of another triple of the same
/// predicate, so inserts stay schema-consistent and can both shift
/// aggregate values and mint fresh group keys in facet views. Batches are
/// sequentially consistent: each one is generated against the graph state
/// left by applying all previous ones.
Result<std::vector<core::maintenance::GraphDelta>> GenerateUpdateStream(
    const std::vector<Triple>& base, const Dictionary& dict,
    const UpdateStreamOptions& options);

}  // namespace workload
}  // namespace sofos

#endif  // SOFOS_WORKLOAD_GENERATOR_H_
