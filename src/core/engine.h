#ifndef SOFOS_CORE_ENGINE_H_
#define SOFOS_CORE_ENGINE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/latency_histogram.h"
#include "common/metrics_registry.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/cost_model.h"
#include "core/facet.h"
#include "core/lattice.h"
#include "core/maintenance/delta.h"
#include "core/maintenance/staleness.h"
#include "core/maintenance/view_maintainer.h"
#include "core/materializer.h"
#include "core/profiler.h"
#include "core/rewriter.h"
#include "core/selection.h"
#include "core/workload_recorder.h"
#include "core/workload_types.h"
#include "rdf/triple_store.h"
#include "sparql/query_engine.h"

namespace sofos {

class TraceContext;

namespace core {

/// Result of answering one workload query through the online module.
struct QueryOutcome {
  std::string query_id;
  bool used_view = false;
  uint32_t view_mask = 0;          // valid when used_view
  std::string executed_sparql;     // the query actually run (rewritten or not)
  double micros = 0.0;
  uint64_t rows_scanned = 0;
  uint64_t result_rows = 0;
  sparql::QueryResult result;      // decoded answers (for verification)
};

/// Aggregated workload statistics (GUI panel ④ "Query performance
/// analyzer").
///
/// Wall-clock vs. CPU time: `wall_micros` is the elapsed time of the whole
/// batch; `total_micros` is the sum of per-query execution times, i.e. the
/// aggregate CPU spent answering (each query runs on one thread). With the
/// batched parallel runner wall < cpu shows the speedup directly; a serial
/// run has wall ≈ cpu. Reporting them separately keeps speedups visible
/// and prevents double-counting parallel work as if it were latency.
struct WorkloadReport {
  std::vector<QueryOutcome> outcomes;
  double wall_micros = 0.0;   // elapsed batch time
  double total_micros = 0.0;  // aggregate per-query CPU micros
  double mean_micros = 0.0;
  double median_micros = 0.0;
  double p95_micros = 0.0;
  /// Per-query latency distribution in the same fixed-bucket shape the
  /// online server's STATS endpoint reports (common/latency_histogram.h),
  /// so offline runs and live serving quote comparable p50/p95/p99.
  /// `median_micros`/`p95_micros` above stay the exact order statistics;
  /// these are the bucketed estimates.
  LatencyHistogram::Snapshot latency;
  /// Cumulative PublishSnapshot() latency of the owning engine at report
  /// time (same shape as the server STATS `publish` section) — zero-count
  /// when the engine never published. Makes the O(changed shards) snapshot
  /// cost observable next to query latencies.
  LatencyHistogram::Snapshot publish;
  uint64_t view_hits = 0;
  uint64_t total_rows_scanned = 0;

  std::string Summary() const;
};

/// Result of applying one update batch through the maintenance subsystem.
struct UpdateOutcome {
  uint64_t adds_applied = 0;     // base triples actually inserted
  uint64_t deletes_applied = 0;  // base triples actually removed
  maintenance::MaintenanceReport maintenance;
  double staleness = 0.0;            // drift after this batch
  bool reselect_recommended = false;  // drift crossed the threshold
  double total_micros = 0.0;

  std::string Summary() const;
};

/// An immutable, self-contained copy of everything needed to answer
/// queries at one point in the engine's mutation history (one *epoch*):
/// the graph (base + view encodings), the facet, the lattice profile used
/// for view routing, and the materialized-view records. Snapshots are the
/// engine's read view for concurrent online serving — sessions resolve the
/// current snapshot with SofosEngine::CurrentSnapshot() and run against it
/// while the engine (single writer) keeps applying deltas and re-selections
/// to its live state; after each mutation the server publishes a fresh
/// snapshot and the old one dies with its last in-flight query
/// (shared_ptr). No reader ever blocks on a writer and vice versa.
///
/// Thread safety: Answer()/Explain() are safe from any number of threads
/// concurrently — they only do const scans over the snapshot's COW-cloned
/// store plus internally synchronized dictionary interning (aggregate
/// literals). The dictionary is *shared* with the live engine store
/// (append-only, ids never change — what makes PublishSnapshot O(changed
/// shards) instead of O(dictionary)); the known cost is that literals
/// computed by snapshot queries intern into the engine-wide dictionary
/// and outlive the snapshot (see the ROADMAP's overlay-dictionary
/// follow-up). Queries run serially inside (dop 1): the server's
/// parallelism axis is sessions, not morsels, and the executor determinism
/// contract makes the results identical to any parallel schedule anyway.
class EngineSnapshot {
 public:
  /// Monotone mutation counter of the owning engine at capture time; the
  /// result-cache key component that invalidates cached answers when the
  /// graph or the selection changes.
  uint64_t epoch() const { return epoch_; }

  uint64_t num_triples() const { return store_.NumTriples(); }
  bool has_facet() const { return facet_.has_value(); }
  const std::vector<MaterializedView>& materialized() const {
    return materialized_;
  }

  /// Answers raw SPARQL against this snapshot, routing through the
  /// snapshot's materialized views when `allow_views` (same semantics as
  /// SofosEngine::AnswerSparql, pinned to this epoch). Deterministic:
  /// repeated calls return byte-identical decoded results. When `trace`
  /// is non-null, records phase spans (parse / route / exec plus the
  /// executor's subtree) into it — the server's TRACE verb.
  Result<QueryOutcome> Answer(const std::string& sparql, bool allow_views,
                              TraceContext* trace = nullptr) const;

  /// Logical plan + physical schedule of `sparql` over this snapshot.
  Result<std::string> Explain(const std::string& sparql) const;

  /// EXPLAIN ANALYZE over this snapshot: routes like Answer() (a routed
  /// query is analyzed in its rewritten form, with a leading "ROUTED
  /// view=..." line), executes with per-operator instrumentation, and
  /// returns the annotated plan text. Serial (dop 1) like every snapshot
  /// query, so per-operator self times sum to ~exec_micros.
  Result<std::string> Analyze(const std::string& sparql,
                              bool allow_views) const;

  /// The facet's root-view query (EXPLAIN's default target). Requires
  /// has_facet().
  std::string RootViewSparql() const;

 private:
  friend class SofosEngine;
  EngineSnapshot() = default;

  uint64_t epoch_ = 0;
  /// Mutable: Execute() interns freshly computed aggregate literals into
  /// the snapshot's own dictionary, which is internally synchronized.
  mutable TripleStore store_;
  std::optional<Facet> facet_;
  std::optional<Rewriter> rewriter_;  // bound to facet_ (never moves)
  std::optional<LatticeProfile> profile_;
  std::vector<MaterializedView> materialized_;
  /// The owning engine's registry plus cached phase instruments, so
  /// snapshot-served queries land in the same METRICS the engine's own
  /// entry points feed. Null in never-published snapshots; valid while
  /// the owning engine lives (the server owns both, engine outlasting
  /// its snapshots).
  MetricsRegistry* metrics_ = nullptr;
  LatencyHistogram* parse_hist_ = nullptr;
  LatencyHistogram* route_hist_ = nullptr;
  LatencyHistogram* exec_hist_ = nullptr;
  MetricCounter* queries_total_ = nullptr;
  MetricCounter* view_hits_total_ = nullptr;
  /// The owning engine's workload recorder (same lifetime argument as
  /// metrics_): snapshot-served queries append their routing outcome so
  /// the recorded workload covers live traffic, not just the engine's own
  /// entry points. Null in never-published snapshots.
  WorkloadRecorder* recorder_ = nullptr;
};

/// The SOFOS system facade (paper Figure 2): owns the knowledge graph, the
/// facet, the offline module (profiling, view selection, materialization),
/// the online module (query routing, rewriting, measurement), and the
/// maintenance subsystem (incremental updates, view roll-up maintenance,
/// staleness-driven re-selection).
///
/// Threading model: the engine owns one fixed-size ThreadPool, sized by
/// SetNumThreads (default: hardware_concurrency; 1 = exact legacy serial
/// behavior, no pool is created). The pool accelerates the read-only hot
/// paths — Profile() fans lattice nodes out, SelectViews() fans candidate
/// evaluation out, RunWorkload() executes independent workload queries
/// concurrently — all over const TripleStore scans plus the internally
/// synchronized dictionary (see rdf/triple_store.h for the store contract).
/// Results are reduced in deterministic order, so every engine result is
/// independent of the thread count; only timing fields differ. Mutating
/// entry points (LoadStore, MaterializeViews, UpdateBaseGraph, Drop...)
/// remain single-threaded and must not run concurrently with anything
/// else. The engine itself is not a thread-safe object: callers drive it
/// from one thread and the engine parallelizes internally.
///
/// Typical flow:
///   SofosEngine engine;
///   engine.LoadStore(std::move(store));           // finalized graph G
///   engine.SetFacet(facet);
///   engine.Profile();                             // lattice statistics
///   auto model = engine.MakeModel(CostModelKind::kTripleCount);
///   auto sel = engine.SelectViews(**model, k);
///   engine.MaterializeSelection(*sel);            // G → G+
///   auto report = engine.RunWorkload(queries, /*allow_views=*/true);
class SofosEngine {
 public:
  SofosEngine() = default;

  /// Takes ownership of a finalized base graph G and snapshots it so that
  /// materialized views can be dropped later.
  Status LoadStore(TripleStore&& store);

  /// Loads a Turtle/N-Triples file as the base graph (convenience wrapper
  /// around TurtleParser + LoadStore).
  Status LoadGraphFile(const std::string& path);

  /// Serializes the *current* graph — G, or G+ with all view encodings —
  /// as canonical N-Triples. A reloaded G+ answers rewritten queries
  /// identically, so materializations can be shipped to another process.
  Status ExportGraphFile(const std::string& path) const;

  Status SetFacet(Facet facet);

  /// Sizes the engine's thread pool. 0 = auto (hardware_concurrency);
  /// 1 = strictly serial legacy behavior (no pool, no worker threads).
  /// Takes effect on the next parallel entry point; safe to change between
  /// (not during) operations.
  void SetNumThreads(unsigned num_threads);
  /// The resolved thread count (auto already expanded).
  unsigned num_threads() const;

  /// Pins the intra-query parallelism degree (morsel-exchange workers per
  /// query) independently of the pool size. 0 = auto: single queries run
  /// at full pool dop, and the batched workload runner budgets
  /// intra = max(1, pool / in-flight queries) between inter-query and
  /// intra-query parallelism. Results never depend on this knob (the
  /// executor's determinism contract) — it trades latency vs throughput.
  void SetExecThreads(unsigned exec_threads) { exec_threads_ = exec_threads; }
  unsigned exec_threads() const { return exec_threads_; }

  /// Sets the store's hash-shard count (TripleStore::SetShardCount): the
  /// number of copy-on-write buckets per index family. 0 = auto — the
  /// smallest power of two >= the resolved thread count (capped at 64), so
  /// per-shard rebuilds saturate the pool. Takes effect immediately on a
  /// loaded store (pool-parallel repartition) and is re-applied by every
  /// LoadStore. Results never depend on this knob (the store's
  /// shard-invariance contract) — it trades Finalize/ApplyDelta/publish
  /// cost only.
  void SetShardCount(unsigned shard_count);
  unsigned shard_count() const { return shard_count_; }
  /// The shard count LoadStore would apply right now (auto expanded).
  unsigned ResolvedShardCount() const;

  /// Index layout policy, applied to the loaded store and re-applied by
  /// every LoadStore: kSorted keeps the classic sorted-run indexes and the
  /// plain dictionary; kCompact switches the subject/object index families
  /// to the CSR adjacency layout and front-codes the dictionary
  /// (TripleStore::SetCompactLayout + Dictionary::SetFrontCoding — about
  /// half the bytes/triple at million-triple scale); kAuto picks compact
  /// once the store holds at least kCompactAutoTriples triples, so the
  /// bundled demo-sized graphs keep the historical layout byte-for-byte
  /// while big graphs get the small one. Results are layout-invariant by
  /// the store contract either way.
  enum class StoreLayout { kAuto = 0, kSorted, kCompact };
  /// kAuto threshold: 262144 triples — comfortably above every bundled
  /// demo/full dataset, well below the 1M+ scale tier.
  static constexpr uint64_t kCompactAutoTriples = 1ull << 18;
  /// Applies immediately on a loaded store (pool-parallel rebuild). Must
  /// run on the engine's single driver thread with no snapshot queries in
  /// flight: the dictionary re-encode invalidates term() references held
  /// by concurrent readers (results already decoded are unaffected).
  void SetStoreLayout(StoreLayout layout);
  StoreLayout store_layout() const { return store_layout_; }

  TripleStore* store() { return &store_; }
  const Facet& facet() const { return *facet_; }
  const Lattice& lattice() const { return *lattice_; }
  bool has_facet() const { return facet_.has_value(); }

  /// ---- Offline module ----

  /// Computes (or recomputes) the lattice profile.
  Result<const LatticeProfile*> Profile(const ProfileOptions& options = {});
  const LatticeProfile* profile() const {
    return profile_.has_value() ? &*profile_ : nullptr;
  }

  /// Instantiates a cost model. kLearned requires SetLearnedModel() first;
  /// kUserDefined requires explicit costs via MakeUserModel.
  Result<std::unique_ptr<CostModel>> MakeModel(CostModelKind kind) const;

  /// Registers a trained MLP for kLearned (see core/training.h).
  void SetLearnedModel(std::shared_ptr<learned::Mlp> mlp);
  bool has_learned_model() const { return learned_mlp_ != nullptr; }

  /// Runs greedy selection under `model` with budget `k`.
  Result<SelectionResult> SelectViews(const CostModel& model, size_t k,
                                      const QueryWeights* weights = nullptr,
                                      uint64_t seed = 42) const;

  /// Materializes the selected views into G+ and records them for routing.
  Result<std::vector<MaterializedView>> MaterializeSelection(
      const SelectionResult& selection);

  /// Materializes explicit masks (the "user selected views" demo step).
  Result<std::vector<MaterializedView>> MaterializeViews(
      const std::vector<uint32_t>& masks);

  /// Rolls G+ back to the base snapshot G and forgets materializations.
  Status DropMaterializedViews();

  /// Full-recompute view maintenance (the fallback path): applies updates
  /// to the *base* graph and refreshes every materialized view against the
  /// new data. `update` receives the store holding exactly the base triples
  /// (views stripped) and may Add() to it; afterwards the base snapshot is
  /// re-captured, the lattice is re-profiled with `profile_options`, and
  /// all previously materialized views are recomputed from scratch. Use
  /// ApplyUpdates for the incremental path; this one remains for updates
  /// the delta path cannot express (arbitrary store surgery) and as the
  /// reference semantics incremental maintenance is tested against.
  Status UpdateBaseGraph(const std::function<void(TripleStore*)>& update,
                         const ProfileOptions& profile_options = {});

  /// ---- Maintenance subsystem (incremental path) ----

  /// Applies one update batch to the base graph through the store's
  /// staged-delta merge (no six-way re-sort) and incrementally repairs
  /// every materialized view's roll-up encoding (see
  /// maintenance::ViewMaintainer). The lattice profile is deliberately NOT
  /// recomputed — its growing staleness is tracked by the
  /// StalenessMonitor, and `reselect_recommended` tells the caller when
  /// re-running Profile()/SelectViews()/Materialize* is worth it (the
  /// paper's evolving-KG challenge). Deltas must not touch the reserved
  /// sofos: encoding vocabulary. Works with or without materialized views.
  Result<UpdateOutcome> ApplyUpdates(const maintenance::GraphDelta& delta);

  /// Staleness of the current selection relative to the last Profile().
  const maintenance::StalenessMonitor& staleness_monitor() const {
    return staleness_;
  }
  /// Tunes the re-selection trigger (takes effect on the next baseline).
  void SetStalenessOptions(const maintenance::StalenessOptions& options);

  /// Maintenance-mode policy forwarded to the ViewMaintainer (created
  /// lazily by ApplyUpdates): force delta/full, or tune the automatic
  /// delta-vs-full cost crossover.
  void SetMaintainOptions(const maintenance::MaintainOptions& options);
  const maintenance::MaintainOptions& maintain_options() const {
    return maintain_options_;
  }

  /// Update-aware selection knob: expected update batches per query
  /// window. When > 0, SelectViews subtracts each candidate's expected
  /// maintenance cost (scaled by the measured Δ-bindings rate) from its
  /// greedy benefit — the update-aware refinement of HRU benefit
  /// (Goasdoué et al.). 0 (the default) keeps selection byte-identical
  /// to the classic greedy.
  void SetUpdateRate(double update_rate) { update_rate_ = update_rate; }
  double update_rate() const { return update_rate_; }

  /// EWMA of the measured Δ-bindings per maintenance pass — the
  /// bindings_per_update signal of update-aware selection. 0 until the
  /// first maintained update batch.
  double avg_delta_bindings() const { return avg_delta_bindings_; }

  /// The base graph G as currently tracked (sorted SPO, no view
  /// encodings); update-stream generators sample from this.
  const std::vector<Triple>& base_snapshot() const { return base_snapshot_; }

  const std::vector<MaterializedView>& materialized() const {
    return materialized_;
  }
  std::vector<uint32_t> MaterializedMasks() const;

  /// ---- Online serving: epoch snapshots ----

  /// Monotone counter of queryable-state mutations: every entry point that
  /// changes what a query could answer (LoadStore, SetFacet, Profile,
  /// Materialize*, Drop, UpdateBaseGraph, ApplyUpdates) bumps it. The
  /// result cache keys on it, so an epoch bump implicitly invalidates all
  /// cached answers.
  uint64_t epoch() const { return epoch_; }

  /// Clones the current queryable state into a fresh EngineSnapshot and
  /// atomically swaps it in as the published read view (no-op returning the
  /// existing snapshot when the epoch hasn't moved). Must be called from
  /// the engine's single driver thread like every other mutating entry
  /// point; concurrent CurrentSnapshot() readers are fine. Requires a
  /// loaded, finalized store.
  Result<std::shared_ptr<const EngineSnapshot>> PublishSnapshot();

  /// The last published read view (may lag epoch(); null before the first
  /// PublishSnapshot). Safe from any thread.
  std::shared_ptr<const EngineSnapshot> CurrentSnapshot() const;

  /// Latency distribution of the snapshot builds PublishSnapshot()
  /// actually performed (epoch no-ops are not recorded). Safe from any
  /// thread (lock-free histogram); the server's STATS endpoint surfaces it
  /// as the `publish` section. The histogram lives in metrics() under
  /// `sofos_engine_publish_micros`.
  LatencyHistogram::Snapshot publish_latency() const {
    return publish_hist_->TakeSnapshot();
  }

  /// ---- Observability ----

  /// The engine's metrics registry: engine phase latencies
  /// (sofos_engine_{parse,rewrite,route,exec,maintain,publish}_micros),
  /// work counters (queries/updates/adds/deletes/view hits/reselects),
  /// per-view hit and benefit counters (sofos_view_*_total{view="..."}),
  /// and state gauges (epoch, triples, staleness drift) — everything the
  /// server's METRICS verb exposes, plus whatever collectors the server
  /// registers on top (endpoint SLOs, result cache). Record paths are
  /// lock-free; safe from any thread. The accessor is const because
  /// logically-read-only entry points also count their work.
  MetricsRegistry* metrics() const { return &metrics_; }

  /// The engine's workload recorder: the bounded log of answered queries
  /// (normalized text + routing decision + latency) that snapshot-served
  /// traffic appends to, exportable as a replayable workload for
  /// re-profiling against observed traffic. Enabled by default; the
  /// server/CLI toggle it. Safe from any thread. Const for the same
  /// reason metrics() is.
  WorkloadRecorder* recorder() const { return &recorder_; }

  /// ---- Online module ----

  /// Answers one query: picks the best usable materialized view (when
  /// `allow_views`), rewrites, executes and measures. `routing_model`
  /// overrides the default routing heuristic (fewest result rows).
  Result<QueryOutcome> Answer(const WorkloadQuery& query, bool allow_views,
                              const CostModel* routing_model = nullptr);

  Result<WorkloadReport> RunWorkload(const std::vector<WorkloadQuery>& queries,
                                     bool allow_views,
                                     const CostModel* routing_model = nullptr);

  /// Ad-hoc entry point for raw SPARQL text: parses the query, extracts its
  /// facet signature (Rewriter::AnalyzeQuery), and routes it like Answer().
  /// Queries that do not match the facet's analytical shape (different
  /// pattern variables, non-dimension grouping, ...) are executed
  /// unrewritten against the current graph — never an error, possibly
  /// slower. This is the paper's online module for a user-typed query.
  Result<QueryOutcome> AnswerSparql(const std::string& sparql,
                                    bool allow_views = true,
                                    const CostModel* routing_model = nullptr);

  /// Renders the logical plan plus the physical batch schedule (join
  /// algorithms, morsel count, dop) the engine would execute `sparql` with
  /// — the CLI's `explain` command.
  Result<std::string> ExplainSparql(const std::string& sparql);

  /// ---- Storage metrics ----

  uint64_t BaseTriples() const { return base_snapshot_.size(); }
  uint64_t CurrentTriples() const { return store_.NumTriples(); }
  uint64_t BaseBytes() const { return base_bytes_; }
  uint64_t CurrentBytes() const { return store_.MemoryBytes(); }
  /// Triples of G+ relative to G (>= 1; the demo's "space amplification").
  double StorageAmplification() const;

  /// Execution options for one query: the shared pool plus an intra-query
  /// dop of `intra_dop` (0 = the exec-threads knob, else full pool). Public
  /// so ad-hoc QueryEngines (the CLI's raw `sparql` command) can run with
  /// exactly the schedule `explain`/`exec-threads` describe.
  sparql::ExecOptions ExecOptionsFor(unsigned intra_dop) const;

 private:
  /// The pool serving parallel sections, or nullptr when the effective
  /// thread count is 1. Lazily (re)built; mutable because const read-only
  /// entry points (SelectViews) also fan out.
  ThreadPool* pool() const;

  /// Answer() with an explicit intra-query dop (the workload runner passes
  /// its inter/intra budget split; 0 = auto).
  Result<QueryOutcome> AnswerWithDop(const WorkloadQuery& query,
                                     bool allow_views,
                                     const CostModel* routing_model,
                                     unsigned intra_dop);

  /// Brings the loaded store's shard layout and dictionary encoding in
  /// line with store_layout_ (no-op when already there or not finalized).
  void ApplyStoreLayout();

  /// Refreshes the registry's state gauges (epoch, triple counts,
  /// materialized-view count, staleness drift, storage amplification).
  /// Called from every mutating entry point after the state settles, so
  /// METRICS always reflects the last completed mutation rather than
  /// racing a concurrent one.
  void RecordStateGauges();

  TripleStore store_;
  std::vector<Triple> base_snapshot_;
  uint64_t base_bytes_ = 0;
  std::optional<Facet> facet_;
  std::optional<Lattice> lattice_;
  std::optional<LatticeProfile> profile_;
  std::optional<Rewriter> rewriter_;
  std::unique_ptr<Materializer> materializer_;
  std::vector<MaterializedView> materialized_;
  /// Lazily built on the first ApplyUpdates with views present; any
  /// operation that rebuilds or drops view encodings invalidates it.
  std::unique_ptr<maintenance::ViewMaintainer> maintainer_;
  maintenance::MaintainOptions maintain_options_;
  maintenance::StalenessMonitor staleness_;
  double update_rate_ = 0.0;        // 0 = classic (update-oblivious) greedy
  double avg_delta_bindings_ = 0.0; // EWMA over maintained batches
  std::shared_ptr<learned::Mlp> learned_mlp_;
  unsigned num_threads_ = 0;   // 0 = auto (hardware_concurrency)
  unsigned exec_threads_ = 0;  // 0 = auto intra-query dop (budgeted)
  unsigned shard_count_ = 0;   // 0 = auto (pool-size-derived power of two)
  StoreLayout store_layout_ = StoreLayout::kAuto;
  mutable std::unique_ptr<ThreadPool> pool_;
  uint64_t epoch_ = 0;
  /// Registry first, then the cached instrument pointers it hands out
  /// (deque-backed, stable for the registry's lifetime). Mutable for the
  /// same reason pool_ is: const read paths record their latencies.
  mutable MetricsRegistry metrics_;
  mutable WorkloadRecorder recorder_;
  LatencyHistogram* parse_hist_ = metrics_.Histogram("sofos_engine_parse_micros");
  LatencyHistogram* rewrite_hist_ =
      metrics_.Histogram("sofos_engine_rewrite_micros");
  LatencyHistogram* route_hist_ = metrics_.Histogram("sofos_engine_route_micros");
  LatencyHistogram* exec_hist_ = metrics_.Histogram("sofos_engine_exec_micros");
  LatencyHistogram* maintain_hist_ =
      metrics_.Histogram("sofos_engine_maintain_micros");
  LatencyHistogram* maintain_bindings_hist_ =
      metrics_.Histogram("sofos_engine_maintain_delta_bindings");
  LatencyHistogram* publish_hist_ =
      metrics_.Histogram("sofos_engine_publish_micros");
  MetricCounter* queries_total_ = metrics_.Counter("sofos_engine_queries_total");
  MetricCounter* view_hits_total_ =
      metrics_.Counter("sofos_engine_view_hits_total");
  MetricCounter* updates_total_ = metrics_.Counter("sofos_engine_updates_total");
  MetricCounter* adds_applied_total_ =
      metrics_.Counter("sofos_engine_adds_applied_total");
  MetricCounter* deletes_applied_total_ =
      metrics_.Counter("sofos_engine_deletes_applied_total");
  MetricCounter* reselect_recommended_total_ =
      metrics_.Counter("sofos_engine_reselect_recommended_total");
  MetricCounter* maintain_mode_delta_total_ =
      metrics_.Counter("sofos_maintain_mode_total{mode=\"delta\"}");
  MetricCounter* maintain_mode_full_total_ =
      metrics_.Counter("sofos_maintain_mode_total{mode=\"full\"}");
  MetricCounter* maintain_mode_skip_total_ =
      metrics_.Counter("sofos_maintain_mode_total{mode=\"skip\"}");
  MetricCounter* publishes_total_ =
      metrics_.Counter("sofos_engine_publishes_total");
  mutable std::mutex snapshot_mu_;  // guards snapshot_ (the published slot)
  std::shared_ptr<const EngineSnapshot> snapshot_;
};

/// "auto" | "sorted" | "compact" (the CLI's `layout` command).
Result<SofosEngine::StoreLayout> ParseStoreLayout(const std::string& name);
std::string StoreLayoutName(SofosEngine::StoreLayout layout);

}  // namespace core
}  // namespace sofos

#endif  // SOFOS_CORE_ENGINE_H_
