#ifndef SOFOS_CORE_ENGINE_H_
#define SOFOS_CORE_ENGINE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/cost_model.h"
#include "core/facet.h"
#include "core/lattice.h"
#include "core/materializer.h"
#include "core/profiler.h"
#include "core/rewriter.h"
#include "core/selection.h"
#include "core/workload_types.h"
#include "rdf/triple_store.h"
#include "sparql/query_engine.h"

namespace sofos {
namespace core {

/// Result of answering one workload query through the online module.
struct QueryOutcome {
  std::string query_id;
  bool used_view = false;
  uint32_t view_mask = 0;          // valid when used_view
  std::string executed_sparql;     // the query actually run (rewritten or not)
  double micros = 0.0;
  uint64_t rows_scanned = 0;
  uint64_t result_rows = 0;
  sparql::QueryResult result;      // decoded answers (for verification)
};

/// Aggregated workload statistics (GUI panel ④ "Query performance
/// analyzer").
struct WorkloadReport {
  std::vector<QueryOutcome> outcomes;
  double total_micros = 0.0;
  double mean_micros = 0.0;
  double median_micros = 0.0;
  double p95_micros = 0.0;
  uint64_t view_hits = 0;
  uint64_t total_rows_scanned = 0;

  std::string Summary() const;
};

/// The SOFOS system facade (paper Figure 2): owns the knowledge graph, the
/// facet, the offline module (profiling, view selection, materialization)
/// and the online module (query routing, rewriting, measurement).
///
/// Typical flow:
///   SofosEngine engine;
///   engine.LoadStore(std::move(store));           // finalized graph G
///   engine.SetFacet(facet);
///   engine.Profile();                             // lattice statistics
///   auto model = engine.MakeModel(CostModelKind::kTripleCount);
///   auto sel = engine.SelectViews(**model, k);
///   engine.MaterializeSelection(*sel);            // G → G+
///   auto report = engine.RunWorkload(queries, /*allow_views=*/true);
class SofosEngine {
 public:
  SofosEngine() = default;

  /// Takes ownership of a finalized base graph G and snapshots it so that
  /// materialized views can be dropped later.
  Status LoadStore(TripleStore&& store);

  /// Loads a Turtle/N-Triples file as the base graph (convenience wrapper
  /// around TurtleParser + LoadStore).
  Status LoadGraphFile(const std::string& path);

  /// Serializes the *current* graph — G, or G+ with all view encodings —
  /// as canonical N-Triples. A reloaded G+ answers rewritten queries
  /// identically, so materializations can be shipped to another process.
  Status ExportGraphFile(const std::string& path) const;

  Status SetFacet(Facet facet);

  TripleStore* store() { return &store_; }
  const Facet& facet() const { return *facet_; }
  const Lattice& lattice() const { return *lattice_; }
  bool has_facet() const { return facet_.has_value(); }

  /// ---- Offline module ----

  /// Computes (or recomputes) the lattice profile.
  Result<const LatticeProfile*> Profile(const ProfileOptions& options = {});
  const LatticeProfile* profile() const {
    return profile_.has_value() ? &*profile_ : nullptr;
  }

  /// Instantiates a cost model. kLearned requires SetLearnedModel() first;
  /// kUserDefined requires explicit costs via MakeUserModel.
  Result<std::unique_ptr<CostModel>> MakeModel(CostModelKind kind) const;

  /// Registers a trained MLP for kLearned (see core/training.h).
  void SetLearnedModel(std::shared_ptr<learned::Mlp> mlp);
  bool has_learned_model() const { return learned_mlp_ != nullptr; }

  /// Runs greedy selection under `model` with budget `k`.
  Result<SelectionResult> SelectViews(const CostModel& model, size_t k,
                                      const QueryWeights* weights = nullptr,
                                      uint64_t seed = 42) const;

  /// Materializes the selected views into G+ and records them for routing.
  Result<std::vector<MaterializedView>> MaterializeSelection(
      const SelectionResult& selection);

  /// Materializes explicit masks (the "user selected views" demo step).
  Result<std::vector<MaterializedView>> MaterializeViews(
      const std::vector<uint32_t>& masks);

  /// Rolls G+ back to the base snapshot G and forgets materializations.
  Status DropMaterializedViews();

  /// View maintenance (extension beyond the demo): applies updates to the
  /// *base* graph and refreshes every materialized view against the new
  /// data. `update` receives the store holding exactly the base triples
  /// (views stripped) and may Add() to it; afterwards the base snapshot is
  /// re-captured, the lattice is re-profiled with `profile_options`, and
  /// all previously materialized views are recomputed. Full recomputation —
  /// correct, not incremental-delta; documented trade-off.
  Status UpdateBaseGraph(const std::function<void(TripleStore*)>& update,
                         const ProfileOptions& profile_options = {});

  const std::vector<MaterializedView>& materialized() const {
    return materialized_;
  }
  std::vector<uint32_t> MaterializedMasks() const;

  /// ---- Online module ----

  /// Answers one query: picks the best usable materialized view (when
  /// `allow_views`), rewrites, executes and measures. `routing_model`
  /// overrides the default routing heuristic (fewest result rows).
  Result<QueryOutcome> Answer(const WorkloadQuery& query, bool allow_views,
                              const CostModel* routing_model = nullptr);

  Result<WorkloadReport> RunWorkload(const std::vector<WorkloadQuery>& queries,
                                     bool allow_views,
                                     const CostModel* routing_model = nullptr);

  /// Ad-hoc entry point for raw SPARQL text: parses the query, extracts its
  /// facet signature (Rewriter::AnalyzeQuery), and routes it like Answer().
  /// Queries that do not match the facet's analytical shape (different
  /// pattern variables, non-dimension grouping, ...) are executed
  /// unrewritten against the current graph — never an error, possibly
  /// slower. This is the paper's online module for a user-typed query.
  Result<QueryOutcome> AnswerSparql(const std::string& sparql,
                                    bool allow_views = true,
                                    const CostModel* routing_model = nullptr);

  /// ---- Storage metrics ----

  uint64_t BaseTriples() const { return base_snapshot_.size(); }
  uint64_t CurrentTriples() const { return store_.NumTriples(); }
  uint64_t BaseBytes() const { return base_bytes_; }
  uint64_t CurrentBytes() const { return store_.MemoryBytes(); }
  /// Triples of G+ relative to G (>= 1; the demo's "space amplification").
  double StorageAmplification() const;

 private:
  TripleStore store_;
  std::vector<Triple> base_snapshot_;
  uint64_t base_bytes_ = 0;
  std::optional<Facet> facet_;
  std::optional<Lattice> lattice_;
  std::optional<LatticeProfile> profile_;
  std::optional<Rewriter> rewriter_;
  std::unique_ptr<Materializer> materializer_;
  std::vector<MaterializedView> materialized_;
  std::shared_ptr<learned::Mlp> learned_mlp_;
};

}  // namespace core
}  // namespace sofos

#endif  // SOFOS_CORE_ENGINE_H_
