#include "core/facet.h"

#include <algorithm>

#include "common/string_util.h"
#include "sparql/parser.h"

namespace sofos {
namespace core {

using sparql::AggKind;
using sparql::Expr;
using sparql::Query;

Result<Facet> Facet::FromSparql(std::string_view sparql, std::string name,
                                std::vector<std::string> dim_labels) {
  SOFOS_ASSIGN_OR_RETURN(Query query, sparql::Parser::Parse(sparql));

  if (!query.filters.empty() || !query.order_by.empty() || query.limit >= 0 ||
      query.offset > 0 || !query.having.empty()) {
    return Status::InvalidArgument(
        "a facet template must not carry FILTER/HAVING/ORDER/LIMIT modifiers");
  }
  if (query.group_by.empty()) {
    return Status::InvalidArgument("a facet template requires a GROUP BY clause");
  }
  if (query.group_by.size() > 16) {
    return Status::InvalidArgument("facets support at most 16 dimensions");
  }

  Facet facet;
  facet.name_ = std::move(name);
  facet.pattern_ = query.where;

  // Exactly one aggregate select item defines agg(u); the remaining select
  // items must be the grouped dimensions.
  int num_aggs = 0;
  for (const auto& item : query.select) {
    if (item.expr->kind == Expr::Kind::kAggregate) {
      ++num_aggs;
      facet.agg_kind_ = item.expr->agg;
      if (item.expr->count_star || item.expr->agg_arg == nullptr ||
          item.expr->agg_arg->kind != Expr::Kind::kVar) {
        return Status::InvalidArgument(
            "the facet aggregate must be over a single variable, e.g. SUM(?u)");
      }
      facet.agg_var_ = item.expr->agg_arg->var;
    } else if (item.expr->kind == Expr::Kind::kVar) {
      // validated against GROUP BY below
    } else {
      return Status::InvalidArgument(
          "facet select items must be grouped variables or one aggregate");
    }
  }
  if (num_aggs != 1) {
    return Status::InvalidArgument(
        "a facet template requires exactly one aggregate select item");
  }

  // Dimensions in GROUP BY order; each must occur in the pattern.
  std::vector<std::string> pattern_vars;
  for (const auto& tp : facet.pattern_) {
    if (tp.s.is_var()) pattern_vars.push_back(tp.s.var());
    if (tp.p.is_var()) pattern_vars.push_back(tp.p.var());
    if (tp.o.is_var()) pattern_vars.push_back(tp.o.var());
  }
  auto in_pattern = [&](const std::string& v) {
    return std::find(pattern_vars.begin(), pattern_vars.end(), v) !=
           pattern_vars.end();
  };
  for (size_t i = 0; i < query.group_by.size(); ++i) {
    const std::string& var = query.group_by[i];
    if (!in_pattern(var)) {
      return Status::InvalidArgument("facet dimension ?" + var +
                                     " does not occur in the pattern");
    }
    FacetDim dim;
    dim.var = var;
    dim.label = i < dim_labels.size() ? dim_labels[i] : var;
    facet.dims_.push_back(std::move(dim));
  }
  if (!in_pattern(facet.agg_var_)) {
    return Status::InvalidArgument("facet aggregate variable ?" + facet.agg_var_ +
                                   " does not occur in the pattern");
  }
  return facet;
}

int Facet::DimIndex(const std::string& var) const {
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].var == var) return static_cast<int>(i);
  }
  return -1;
}

std::string Facet::MaskLabel(uint32_t mask) const {
  if (mask == 0) return "{} (apex)";
  std::string out = "{";
  bool first = true;
  for (size_t i = 0; i < dims_.size(); ++i) {
    if ((mask >> i) & 1u) {
      if (!first) out += ",";
      out += dims_[i].var;
      first = false;
    }
  }
  out += "}";
  return out;
}

std::string Facet::PatternText() const {
  std::string out;
  for (const auto& tp : pattern_) {
    out += "  " + tp.ToString() + " .\n";
  }
  return out;
}

std::string Facet::ViewQuerySparql(uint32_t mask) const {
  std::string select = "SELECT";
  std::string group;
  for (size_t i = 0; i < dims_.size(); ++i) {
    if ((mask >> i) & 1u) {
      select += " ?" + dims_[i].var;
      group += " ?" + dims_[i].var;
    }
  }
  // For AVG facets the stored value is the SUM; roll-ups recompute the
  // average as SUM(value)/SUM(rows).
  AggKind stored = agg_kind_ == AggKind::kAvg ? AggKind::kSum : agg_kind_;
  select += " (" + sparql::AggKindName(stored) + "(?" + agg_var_ + ") AS ?agg)";
  select += " (COUNT(?" + agg_var_ + ") AS ?rows)";

  std::string out = select + " WHERE {\n" + PatternText() + "}";
  if (!group.empty()) out += " GROUP BY" + group;
  return out;
}

std::string Facet::CanonicalQuerySparql(uint32_t mask) const {
  std::string select = "SELECT";
  std::string group;
  for (size_t i = 0; i < dims_.size(); ++i) {
    if ((mask >> i) & 1u) {
      select += " ?" + dims_[i].var;
      group += " ?" + dims_[i].var;
    }
  }
  select += " (" + sparql::AggKindName(agg_kind_) + "(?" + agg_var_ + ") AS ?agg)";
  std::string out = select + " WHERE {\n" + PatternText() + "}";
  if (!group.empty()) out += " GROUP BY" + group;
  return out;
}

std::vector<std::string> Facet::PatternPredicates() const {
  std::vector<std::string> out;
  for (const auto& tp : pattern_) {
    if (!tp.p.is_var() && tp.p.term().is_iri()) {
      const std::string& iri = tp.p.term().lexical();
      if (std::find(out.begin(), out.end(), iri) == out.end()) out.push_back(iri);
    }
  }
  return out;
}

}  // namespace core
}  // namespace sofos
