#include "core/maintenance/staleness.h"

#include <algorithm>

#include "common/string_util.h"

namespace sofos {
namespace core {
namespace maintenance {

void StalenessMonitor::ResetBaseline(const TripleStore& store,
                                     std::vector<TermId> pattern_predicates,
                                     uint64_t root_rows) {
  predicates_ = std::move(pattern_predicates);
  baseline_counts_.clear();
  for (TermId pred : predicates_) {
    const PredicateStats* stats = store.StatsFor(pred);
    baseline_counts_[pred] = stats != nullptr ? stats->triples : 0;
  }
  baseline_root_rows_ = root_rows;
  churned_root_rows_ = 0;
  updates_ = 0;
  drift_ = 0.0;
  has_baseline_ = true;
}

void StalenessMonitor::RecordUpdate(const TripleStore& store,
                                    uint64_t root_rows_changed) {
  if (!has_baseline_) return;
  ++updates_;
  churned_root_rows_ += root_rows_changed;

  double predicate_drift = 0.0;
  for (TermId pred : predicates_) {
    const PredicateStats* stats = store.StatsFor(pred);
    uint64_t current = stats != nullptr ? stats->triples : 0;
    uint64_t baseline = baseline_counts_[pred];
    uint64_t diff = current > baseline ? current - baseline : baseline - current;
    predicate_drift = std::max(
        predicate_drift,
        static_cast<double>(diff) / static_cast<double>(std::max<uint64_t>(baseline, 1)));
  }
  double row_drift =
      static_cast<double>(churned_root_rows_) /
      static_cast<double>(std::max<uint64_t>(baseline_root_rows_, 1));
  drift_ = std::max(predicate_drift, row_drift);
}

std::string StalenessMonitor::Summary() const {
  if (!has_baseline_) return "staleness: no baseline (run Profile first)";
  return StrFormat(
      "staleness: drift=%.3f (threshold %.3f) after %llu batch%s, "
      "root churn %llu/%llu rows%s",
      drift_, options_.drift_threshold,
      static_cast<unsigned long long>(updates_), updates_ == 1 ? "" : "es",
      static_cast<unsigned long long>(churned_root_rows_),
      static_cast<unsigned long long>(baseline_root_rows_),
      ShouldReselect() ? " -> RESELECT RECOMMENDED" : "");
}

}  // namespace maintenance
}  // namespace core
}  // namespace sofos
