#include "core/maintenance/view_maintainer.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <utility>

#include "common/hash.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "rdf/vocab.h"
#include "sparql/query_engine.h"
#include "sparql/value.h"

namespace sofos {
namespace core {
namespace maintenance {

namespace {

/// Roll-up accumulator over root cells; mirrors the executor's aggregate
/// accumulator (isum/dsum split, saw_double promotion, total-order MIN/MAX)
/// so that maintained literals match what the view query would produce.
struct Accum {
  int64_t isum = 0;
  double dsum = 0.0;
  bool saw_double = false;
  uint64_t rows = 0;
  bool has_best = false;
  sparql::Value best;
};

}  // namespace

std::string MaintenanceReport::Summary() const {
  uint64_t rows_added = 0, rows_deleted = 0, rows_updated = 0;
  for (const ViewMaintenance& v : views) {
    rows_added += v.rows_added;
    rows_deleted += v.rows_deleted;
    rows_updated += v.rows_updated;
  }
  if (skipped) return "maintenance skipped (delta off the facet pattern)";
  return StrFormat(
      "root_changed=%llu rows +%llu -%llu ~%llu triples +%llu -%llu "
      "(root %s, maintain %s, merge %s)",
      static_cast<unsigned long long>(root_rows_changed),
      static_cast<unsigned long long>(rows_added),
      static_cast<unsigned long long>(rows_deleted),
      static_cast<unsigned long long>(rows_updated),
      static_cast<unsigned long long>(triples_added),
      static_cast<unsigned long long>(triples_deleted),
      FormatMicros(root_query_micros).c_str(),
      FormatMicros(maintain_micros).c_str(),
      FormatMicros(merge_micros).c_str());
}

size_t ViewMaintainer::KeyHash::operator()(const Key& key) const {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (TermId id : key) h = HashCombine(h, id);
  return static_cast<size_t>(h);
}

ViewMaintainer::ViewMaintainer(TripleStore* store, const Facet* facet)
    : store_(store), facet_(facet) {}

Status ViewMaintainer::Initialize(const std::vector<MaterializedView>& views,
                                  ThreadPool* pool) {
  if (!store_->finalized()) {
    return Status::Internal("ViewMaintainer requires a finalized store");
  }
  view_pred_id_ = store_->Intern(Term::Iri(std::string(vocab::kSofosView)));
  value_pred_id_ = store_->Intern(Term::Iri(std::string(vocab::kSofosValue)));
  rows_pred_id_ = store_->Intern(Term::Iri(std::string(vocab::kSofosRows)));
  dim_pred_ids_.clear();
  for (const FacetDim& dim : facet_->dims()) {
    dim_pred_ids_.push_back(
        store_->Intern(Term::Iri(vocab::DimPredicate(dim.var))));
  }

  SOFOS_ASSIGN_OR_RETURN(root_, ComputeRootTable(pool));

  views_.clear();
  views_.reserve(views.size());
  for (const MaterializedView& mv : views) {
    ViewState state;
    state.mask = mv.mask;
    state.view_iri_id =
        store_->Intern(Term::Iri(vocab::ViewIri(facet_->name(), mv.mask)));
    for (size_t d = 0; d < facet_->num_dims(); ++d) {
      if ((mv.mask >> d) & 1u) state.dims.push_back(static_cast<int>(d));
    }
    SOFOS_RETURN_IF_ERROR(IndexViewRows(&state));
    views_.push_back(std::move(state));
  }
  initialized_ = true;
  return Status::OK();
}

bool ViewMaintainer::Affects(const GraphDelta& delta) const {
  std::set<std::string> pattern_preds;
  for (const sparql::TriplePattern& tp : facet_->pattern()) {
    if (tp.p.is_var()) return true;  // conservative: any predicate may match
    if (tp.p.term().is_iri()) pattern_preds.insert(tp.p.term().lexical());
  }
  auto touches = [&](const std::vector<TermTriple>& triples) {
    for (const TermTriple& t : triples) {
      if (t.p.is_iri() && pattern_preds.count(t.p.lexical()) > 0) return true;
    }
    return false;
  };
  return touches(delta.adds) || touches(delta.deletes);
}

Result<ViewMaintainer::RootTable> ViewMaintainer::ComputeRootTable(
    ThreadPool* pool) const {
  // The one root-view evaluation dominates ApplyUpdates (see the README's
  // cost breakdown), so it runs with full intra-query morsel parallelism;
  // the result is identical to a serial evaluation by the executor's
  // determinism contract.
  sparql::ExecOptions exec_options;
  exec_options.pool = pool;
  exec_options.dop =
      pool != nullptr ? static_cast<unsigned>(pool->num_threads()) : 1;
  sparql::QueryEngine engine(store_, exec_options);
  SOFOS_ASSIGN_OR_RETURN(
      sparql::QueryResult result,
      engine.Execute(facet_->ViewQuerySparql(facet_->FullMask())));

  const size_t num_dims = facet_->num_dims();
  const size_t agg_col = num_dims;
  const size_t rows_col = num_dims + 1;
  RootTable table;
  for (size_t r = 0; r < result.rows.size(); ++r) {
    Key key(num_dims, kNullTermId);
    for (size_t d = 0; d < num_dims; ++d) {
      if (result.bound[r][d]) key[d] = store_->Intern(result.rows[r][d]);
    }
    RootCell cell;
    if (result.bound[r][agg_col]) {
      const Term& value = result.rows[r][agg_col];
      cell.value_id = store_->Intern(value);
      if (value.datatype() == Term::Datatype::kDouble) {
        cell.dsum = value.AsDouble().ValueOr(0.0);
        cell.saw_double = true;
      } else if (value.datatype() == Term::Datatype::kInteger) {
        cell.isum = value.AsInt64().ValueOr(0);
      }
    }
    if (result.bound[r][rows_col]) {
      cell.rows_id = store_->Intern(result.rows[r][rows_col]);
      cell.rows = static_cast<uint64_t>(
          result.rows[r][rows_col].AsInt64().ValueOr(0));
    }
    table[std::move(key)] = cell;
  }
  return table;
}

Status ViewMaintainer::IndexViewRows(ViewState* view) const {
  // Resume the fresh-row counter past any labels a previous maintainer
  // instance minted (the maintainer is rebuilt whenever the view set
  // changes); reusing a label would attach a second group key to an
  // existing blank node.
  const std::string fresh_prefix =
      StrFormat("mvm_%s_%u_", facet_->name().c_str(), view->mask);
  for (const Triple& t :
       store_->Scan(kNullTermId, view_pred_id_, view->view_iri_id)) {
    TermId blank = t.s;
    const Term& blank_term = store_->dictionary().term(blank);
    if (blank_term.is_blank() &&
        StrStartsWith(blank_term.lexical(), fresh_prefix)) {
      uint64_t n = std::strtoull(
          blank_term.lexical().c_str() + fresh_prefix.size(), nullptr, 10);
      view->next_fresh = std::max(view->next_fresh, n + 1);
    }
    Key key(view->dims.size(), kNullTermId);
    RowInfo info;
    info.blank = blank;
    for (const Triple& rt : store_->Scan(blank, kNullTermId, kNullTermId)) {
      if (rt.p == value_pred_id_) {
        info.value_id = rt.o;
      } else if (rt.p == rows_pred_id_) {
        info.rows_id = rt.o;
      } else {
        for (size_t j = 0; j < view->dims.size(); ++j) {
          if (rt.p == dim_pred_ids_[static_cast<size_t>(view->dims[j])]) {
            key[j] = rt.o;
            break;
          }
        }
      }
    }
    view->rows.emplace(std::move(key), info);
  }
  return Status::OK();
}

ViewMaintainer::Key ViewMaintainer::ProjectKey(const Key& root_key,
                                               const ViewState& view) const {
  Key key(view.dims.size(), kNullTermId);
  for (size_t j = 0; j < view.dims.size(); ++j) {
    key[j] = root_key[static_cast<size_t>(view.dims[j])];
  }
  return key;
}

void ViewMaintainer::MaintainView(ViewState* view, const RootTable& next_root,
                                  const std::vector<Key>& changed_keys,
                                  StagedEdits* out) const {
  out->stats.mask = view->mask;

  // Affected view keys: projections of the changed root keys. std::set
  // keeps them sorted, which makes fresh-blank assignment deterministic.
  std::set<Key> affected;
  for (const Key& rk : changed_keys) affected.insert(ProjectKey(rk, *view));

  // Recompute the affected cells from the new root table. The root view
  // itself (identity projection) only needs point lookups; coarser views
  // aggregate over the root entries that project into an affected key.
  const bool is_root = view->mask == facet_->FullMask();
  std::map<Key, Accum> cells;
  auto fold = [](Accum* acc, const RootCell& cell) {
    acc->rows += cell.rows;
    acc->isum += cell.isum;
    acc->dsum += cell.dsum;
    acc->saw_double |= cell.saw_double;
  };
  auto fold_best = [&](Accum* acc, const RootCell& cell) {
    if (cell.value_id == kNullTermId) return;
    sparql::Value v = sparql::Value::FromTerm(store_->dictionary().term(cell.value_id));
    const bool is_min = facet_->agg_kind() == sparql::AggKind::kMin;
    if (!acc->has_best ||
        (is_min ? v.TotalCompare(acc->best) < 0 : v.TotalCompare(acc->best) > 0)) {
      acc->best = std::move(v);
      acc->has_best = true;
    }
  };
  const bool minmax = facet_->agg_kind() == sparql::AggKind::kMin ||
                      facet_->agg_kind() == sparql::AggKind::kMax;
  if (is_root) {
    for (const Key& k : affected) {
      auto it = next_root.find(k);
      if (it == next_root.end()) continue;
      Accum& acc = cells[k];
      fold(&acc, it->second);
      if (minmax) fold_best(&acc, it->second);
    }
  } else {
    for (const auto& entry : next_root) {
      Key pk = ProjectKey(entry.first, *view);
      auto it = affected.find(pk);
      if (it == affected.end()) continue;
      Accum& acc = cells[pk];
      fold(&acc, entry.second);
      if (minmax) fold_best(&acc, entry.second);
    }
  }

  auto stage_row_delete = [&](const Key& key, const RowInfo& info) {
    out->deletes.push_back(Triple{info.blank, view_pred_id_, view->view_iri_id});
    for (size_t j = 0; j < view->dims.size(); ++j) {
      if (key[j] != kNullTermId) {
        out->deletes.push_back(Triple{
            info.blank, dim_pred_ids_[static_cast<size_t>(view->dims[j])],
            key[j]});
      }
    }
    if (info.value_id != kNullTermId) {
      out->deletes.push_back(Triple{info.blank, value_pred_id_, info.value_id});
    }
    if (info.rows_id != kNullTermId) {
      out->deletes.push_back(Triple{info.blank, rows_pred_id_, info.rows_id});
    }
  };

  for (const Key& key : affected) {
    auto cit = cells.find(key);
    const bool live = cit != cells.end() && cit->second.rows > 0;
    auto rit = view->rows.find(key);

    if (!live) {
      if (rit != view->rows.end()) {
        stage_row_delete(key, rit->second);
        view->rows.erase(rit);
        ++out->stats.rows_deleted;
      }
      continue;
    }

    // Finalize the rolled-up cell exactly as the executor would.
    const Accum& acc = cit->second;
    TermId value_id = kNullTermId;
    switch (facet_->agg_kind()) {
      case sparql::AggKind::kCount:
      case sparql::AggKind::kSum:
      case sparql::AggKind::kAvg:  // encoded as SUM (see Materializer)
        value_id = store_->Intern(acc.saw_double
                                      ? Term::Double(acc.dsum +
                                                     static_cast<double>(acc.isum))
                                      : Term::Integer(acc.isum));
        break;
      case sparql::AggKind::kMin:
      case sparql::AggKind::kMax: {
        if (acc.has_best) {
          auto term = acc.best.ToTerm();
          if (term.ok()) value_id = store_->Intern(*term);
        }
        break;
      }
    }
    TermId rows_id =
        store_->Intern(Term::Integer(static_cast<int64_t>(acc.rows)));

    if (rit == view->rows.end()) {
      // Fresh group key: encode a new blank-node row. The "mvm_" prefix
      // keeps maintained rows disjoint from the materializer's "mv_" ones.
      RowInfo info;
      info.blank = store_->Intern(Term::Blank(
          StrFormat("mvm_%s_%u_%llu", facet_->name().c_str(), view->mask,
                    static_cast<unsigned long long>(view->next_fresh++))));
      info.value_id = value_id;
      info.rows_id = rows_id;
      out->adds.push_back(Triple{info.blank, view_pred_id_, view->view_iri_id});
      for (size_t j = 0; j < view->dims.size(); ++j) {
        if (key[j] != kNullTermId) {
          out->adds.push_back(Triple{
              info.blank, dim_pred_ids_[static_cast<size_t>(view->dims[j])],
              key[j]});
        }
      }
      if (value_id != kNullTermId) {
        out->adds.push_back(Triple{info.blank, value_pred_id_, value_id});
      }
      out->adds.push_back(Triple{info.blank, rows_pred_id_, rows_id});
      view->rows.emplace(key, info);
      ++out->stats.rows_added;
    } else {
      // Existing row: swap the value / rows literals in place.
      RowInfo& info = rit->second;
      bool touched = false;
      if (info.value_id != value_id) {
        if (info.value_id != kNullTermId) {
          out->deletes.push_back(
              Triple{info.blank, value_pred_id_, info.value_id});
        }
        if (value_id != kNullTermId) {
          out->adds.push_back(Triple{info.blank, value_pred_id_, value_id});
        }
        info.value_id = value_id;
        touched = true;
      }
      if (info.rows_id != rows_id) {
        if (info.rows_id != kNullTermId) {
          out->deletes.push_back(
              Triple{info.blank, rows_pred_id_, info.rows_id});
        }
        out->adds.push_back(Triple{info.blank, rows_pred_id_, rows_id});
        info.rows_id = rows_id;
        touched = true;
      }
      if (touched) ++out->stats.rows_updated;
    }
  }
  out->stats.triples_added = out->adds.size();
  out->stats.triples_deleted = out->deletes.size();
}

Result<MaintenanceReport> ViewMaintainer::MaintainAll(ThreadPool* pool) {
  if (!initialized_) {
    return Status::Internal("ViewMaintainer::MaintainAll before Initialize");
  }
  MaintenanceReport report;

  WallTimer root_timer;
  SOFOS_ASSIGN_OR_RETURN(RootTable next_root, ComputeRootTable(pool));
  report.root_query_micros = root_timer.ElapsedMicros();

  // Lockstep diff of the sorted tables: keys present on one side only, or
  // present on both with a different encoding, changed.
  std::vector<Key> changed;
  auto it = root_.begin();
  auto jt = next_root.begin();
  while (it != root_.end() || jt != next_root.end()) {
    if (jt == next_root.end() ||
        (it != root_.end() && it->first < jt->first)) {
      changed.push_back(it->first);
      ++it;
    } else if (it == root_.end() || jt->first < it->first) {
      changed.push_back(jt->first);
      ++jt;
    } else {
      if (!it->second.SameEncoding(jt->second)) changed.push_back(it->first);
      ++it;
      ++jt;
    }
  }
  report.root_rows_changed = changed.size();

  if (!changed.empty() && !views_.empty()) {
    WallTimer maintain_timer;
    std::vector<StagedEdits> staged(views_.size());
    ParallelForEach(pool, views_.size(), [&](size_t i) {
      MaintainView(&views_[i], next_root, changed, &staged[i]);
    });
    report.maintain_micros = maintain_timer.ElapsedMicros();

    for (StagedEdits& edits : staged) {
      for (const Triple& t : edits.adds) store_->StageAdd(t.s, t.p, t.o);
      for (const Triple& t : edits.deletes) store_->StageDelete(t.s, t.p, t.o);
      report.views.push_back(edits.stats);
    }
    if (store_->HasStagedDelta()) {
      DeltaApplyResult merge = store_->ApplyDelta(pool);
      report.triples_added = merge.adds_applied;
      report.triples_deleted = merge.deletes_applied;
      report.merge_micros = merge.merge_micros;
    }
  } else {
    for (const ViewState& view : views_) {
      ViewMaintenance stats;
      stats.mask = view.mask;
      report.views.push_back(stats);
    }
  }

  root_ = std::move(next_root);
  return report;
}

}  // namespace maintenance
}  // namespace core
}  // namespace sofos
