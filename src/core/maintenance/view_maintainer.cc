#include "core/maintenance/view_maintainer.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/hash.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "rdf/vocab.h"
#include "sparql/delta_join.h"
#include "sparql/query_engine.h"
#include "sparql/value.h"

namespace sofos {
namespace core {
namespace maintenance {

namespace {

/// Roll-up accumulator over root cells; mirrors the executor's aggregate
/// accumulator (isum/dsum split, saw_double promotion, total-order MIN/MAX)
/// so that maintained literals match what the view query would produce.
struct Accum {
  int64_t isum = 0;
  double dsum = 0.0;
  bool saw_double = false;
  uint64_t rows = 0;
  bool has_best = false;
  sparql::Value best;
};

inline TermId FieldOf(const Triple& t, int f) {
  switch (f) {
    case 0:
      return t.s;
    case 1:
      return t.p;
    default:
      return t.o;
  }
}

}  // namespace

const char* MaintainModeName(MaintainMode mode) {
  switch (mode) {
    case MaintainMode::kDelta:
      return "delta";
    case MaintainMode::kFull:
      return "full";
    case MaintainMode::kSkip:
      break;
  }
  return "skip";
}

std::string MaintenanceReport::Summary() const {
  uint64_t rows_added = 0, rows_deleted = 0, rows_updated = 0;
  for (const ViewMaintenance& v : views) {
    rows_added += v.rows_added;
    rows_deleted += v.rows_deleted;
    rows_updated += v.rows_updated;
  }
  if (skipped) return "maintenance skipped (delta off the facet pattern)";
  return StrFormat(
      "mode=%s root_changed=%llu bindings=%llu rows +%llu -%llu ~%llu "
      "triples +%llu -%llu (root %s, maintain %s, merge %s)",
      MaintainModeName(mode),
      static_cast<unsigned long long>(root_rows_changed),
      static_cast<unsigned long long>(delta_bindings),
      static_cast<unsigned long long>(rows_added),
      static_cast<unsigned long long>(rows_deleted),
      static_cast<unsigned long long>(rows_updated),
      static_cast<unsigned long long>(triples_added),
      static_cast<unsigned long long>(triples_deleted),
      FormatMicros(root_query_micros).c_str(),
      FormatMicros(maintain_micros).c_str(),
      FormatMicros(merge_micros).c_str());
}

size_t ViewMaintainer::KeyHash::operator()(const Key& key) const {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (TermId id : key) h = HashCombine(h, id);
  return static_cast<size_t>(h);
}

ViewMaintainer::ViewMaintainer(TripleStore* store, const Facet* facet)
    : store_(store), facet_(facet) {}

Status ViewMaintainer::Initialize(const std::vector<MaterializedView>& views,
                                  ThreadPool* pool) {
  if (!store_->finalized()) {
    return Status::Internal("ViewMaintainer requires a finalized store");
  }
  view_pred_id_ = store_->Intern(Term::Iri(std::string(vocab::kSofosView)));
  value_pred_id_ = store_->Intern(Term::Iri(std::string(vocab::kSofosValue)));
  rows_pred_id_ = store_->Intern(Term::Iri(std::string(vocab::kSofosRows)));
  dim_pred_ids_.clear();
  for (const FacetDim& dim : facet_->dims()) {
    dim_pred_ids_.push_back(
        store_->Intern(Term::Iri(vocab::DimPredicate(dim.var))));
  }

  // Δ-join layout: the facet pattern's slot table plus where the dimension
  // and aggregated variables live in it. Delta rules are legal only when
  // every pattern predicate is a constant (otherwise any triple is a
  // potential binding and the pass falls back to full recompute).
  vars_ = sparql::BgpVariables(facet_->pattern());
  pattern_delta_ok_ = true;
  for (const sparql::TriplePattern& tp : facet_->pattern()) {
    if (tp.p.is_var()) pattern_delta_ok_ = false;
  }
  dim_slots_.clear();
  for (const FacetDim& dim : facet_->dims()) {
    auto slot = vars_.Get(dim.var);
    if (!slot.has_value()) pattern_delta_ok_ = false;
    dim_slots_.push_back(slot.value_or(-1));
  }
  {
    auto slot = vars_.Get(facet_->agg_var());
    if (!slot.has_value()) pattern_delta_ok_ = false;
    agg_slot_ = slot.value_or(-1);
  }

  SOFOS_ASSIGN_OR_RETURN(root_, ComputeRootTable(pool));

  views_.clear();
  views_.reserve(views.size());
  for (const MaterializedView& mv : views) {
    ViewState state;
    state.mask = mv.mask;
    state.view_iri_id =
        store_->Intern(Term::Iri(vocab::ViewIri(facet_->name(), mv.mask)));
    for (size_t d = 0; d < facet_->num_dims(); ++d) {
      if ((mv.mask >> d) & 1u) state.dims.push_back(static_cast<int>(d));
    }
    SOFOS_RETURN_IF_ERROR(IndexViewRows(&state));
    if (state.mask != facet_->FullMask()) BuildViewAccumulators(&state);
    views_.push_back(std::move(state));
  }
  pending_ = PendingDelta{};
  initialized_ = true;
  return Status::OK();
}

bool ViewMaintainer::Affects(const GraphDelta& delta) const {
  std::set<std::string> pattern_preds;
  for (const sparql::TriplePattern& tp : facet_->pattern()) {
    if (tp.p.is_var()) return true;  // conservative: any predicate may match
    if (tp.p.term().is_iri()) pattern_preds.insert(tp.p.term().lexical());
  }
  auto touches = [&](const std::vector<TermTriple>& triples) {
    for (const TermTriple& t : triples) {
      if (t.p.is_iri() && pattern_preds.count(t.p.lexical()) > 0) return true;
    }
    return false;
  };
  return touches(delta.adds) || touches(delta.deletes);
}

Status ViewMaintainer::PrepareDelta(const std::vector<Triple>& add_ids,
                                    const std::vector<Triple>& delete_ids) {
  pending_ = PendingDelta{};
  if (!initialized_ || !pattern_delta_ok_) {
    return Status::OK();  // MaintainAll falls back to full recompute
  }
  // Only triples carrying a facet-pattern predicate can change bindings;
  // the rest drop out here so the cost crossover measures the relevant
  // delta. Every pattern predicate is constant (pattern_delta_ok_).
  std::unordered_set<TermId> pattern_pred_ids;
  const Dictionary& dict = store_->dictionary();
  for (const sparql::TriplePattern& tp : facet_->pattern()) {
    auto id = dict.Lookup(tp.p.term());
    if (id.has_value()) pattern_pred_ids.insert(*id);
  }
  // Effective delta under G' = (G \ D) ∪ A, against the pre-delta graph:
  // adds already present are no-ops, deletes of absent triples are no-ops,
  // and a triple both deleted and added survives (the add wins).
  for (const Triple& t : add_ids) {
    if (pattern_pred_ids.count(t.p) == 0) continue;
    if (!store_->Contains(t.s, t.p, t.o)) pending_.adds.push_back(t);
  }
  for (const Triple& t : delete_ids) {
    if (pattern_pred_ids.count(t.p) == 0) continue;
    if (!store_->Contains(t.s, t.p, t.o)) continue;
    if (std::binary_search(add_ids.begin(), add_ids.end(), t)) continue;
    pending_.deletes.push_back(t);
  }
  pending_.prepared = true;
  return Status::OK();
}

Result<ViewMaintainer::RootTable> ViewMaintainer::ComputeRootTable(
    ThreadPool* pool) const {
  // The one root-view evaluation dominates full-mode maintenance (see the
  // README's cost breakdown), so it runs with full intra-query morsel
  // parallelism; the result is identical to a serial evaluation by the
  // executor's determinism contract.
  sparql::ExecOptions exec_options;
  exec_options.pool = pool;
  exec_options.dop =
      pool != nullptr ? static_cast<unsigned>(pool->num_threads()) : 1;
  sparql::QueryEngine engine(store_, exec_options);
  SOFOS_ASSIGN_OR_RETURN(
      sparql::QueryResult result,
      engine.Execute(facet_->ViewQuerySparql(facet_->FullMask())));

  const size_t num_dims = facet_->num_dims();
  const size_t agg_col = num_dims;
  const size_t rows_col = num_dims + 1;
  RootTable table;
  for (size_t r = 0; r < result.rows.size(); ++r) {
    Key key(num_dims, kNullTermId);
    for (size_t d = 0; d < num_dims; ++d) {
      if (result.bound[r][d]) key[d] = store_->Intern(result.rows[r][d]);
    }
    RootCell cell;
    if (result.bound[r][agg_col]) {
      const Term& value = result.rows[r][agg_col];
      cell.value_id = store_->Intern(value);
      if (value.datatype() == Term::Datatype::kDouble) {
        cell.dsum = value.AsDouble().ValueOr(0.0);
        cell.saw_double = true;
      } else if (value.datatype() == Term::Datatype::kInteger) {
        cell.isum = value.AsInt64().ValueOr(0);
      }
    }
    if (result.bound[r][rows_col]) {
      cell.rows_id = store_->Intern(result.rows[r][rows_col]);
      cell.rows = static_cast<uint64_t>(
          result.rows[r][rows_col].AsInt64().ValueOr(0));
    }
    table[std::move(key)] = cell;
  }
  return table;
}

Status ViewMaintainer::IndexViewRows(ViewState* view) const {
  // Resume the fresh-row counter past any labels a previous maintainer
  // instance minted (the maintainer is rebuilt whenever the view set
  // changes); reusing a label would attach a second group key to an
  // existing blank node.
  const std::string fresh_prefix =
      StrFormat("mvm_%s_%u_", facet_->name().c_str(), view->mask);
  for (const Triple& t :
       store_->Scan(kNullTermId, view_pred_id_, view->view_iri_id)) {
    TermId blank = t.s;
    const Term& blank_term = store_->dictionary().term(blank);
    if (blank_term.is_blank() &&
        StrStartsWith(blank_term.lexical(), fresh_prefix)) {
      uint64_t n = std::strtoull(
          blank_term.lexical().c_str() + fresh_prefix.size(), nullptr, 10);
      view->next_fresh = std::max(view->next_fresh, n + 1);
    }
    Key key(view->dims.size(), kNullTermId);
    RowInfo info;
    info.blank = blank;
    for (const Triple& rt : store_->Scan(blank, kNullTermId, kNullTermId)) {
      if (rt.p == value_pred_id_) {
        info.value_id = rt.o;
      } else if (rt.p == rows_pred_id_) {
        info.rows_id = rt.o;
      } else {
        for (size_t j = 0; j < view->dims.size(); ++j) {
          if (rt.p == dim_pred_ids_[static_cast<size_t>(view->dims[j])]) {
            key[j] = rt.o;
            break;
          }
        }
      }
    }
    view->rows.emplace(std::move(key), info);
  }
  return Status::OK();
}

void ViewMaintainer::BuildViewAccumulators(ViewState* view) const {
  // root_ iterates in sorted key order, so every bucket vector comes out
  // sorted — the invariant the incremental bucket edits preserve.
  for (const auto& [root_key, cell] : root_) {
    Key pk = ProjectKey(root_key, *view);
    ViewCell& c = view->cells[pk];
    c.rows += static_cast<int64_t>(cell.rows);
    c.isum += cell.isum;
    c.dsum += cell.dsum;
    if (cell.saw_double) ++c.double_roots;
    ++c.root_keys;
    view->buckets[pk].push_back(root_key);
  }
}

ViewMaintainer::Key ViewMaintainer::ProjectKey(const Key& root_key,
                                               const ViewState& view) const {
  Key key(view.dims.size(), kNullTermId);
  for (size_t j = 0; j < view.dims.size(); ++j) {
    key[j] = root_key[static_cast<size_t>(view.dims[j])];
  }
  return key;
}

Result<ViewMaintainer::RootCell> ViewMaintainer::EvalRootGroup(
    const Key& key) const {
  // Seed the full facet BGP with the dimension slots pre-bound to the
  // group key: the targeted re-evaluation behind MIN/MAX and double
  // groups. Emits the group's bindings in the seeded plan's match order.
  const std::vector<sparql::TriplePattern>& patterns = facet_->pattern();
  std::vector<size_t> remaining(patterns.size());
  std::iota(remaining.begin(), remaining.end(), size_t{0});
  sparql::Row seed(vars_.size(), kNullTermId);
  std::vector<int> bound_slots;
  for (size_t d = 0; d < dim_slots_.size(); ++d) {
    if (key[d] == kNullTermId) continue;
    seed[static_cast<size_t>(dim_slots_[d])] = key[d];
    bound_slots.push_back(dim_slots_[d]);
  }
  SOFOS_ASSIGN_OR_RETURN(
      sparql::SeededJoinResult res,
      sparql::EvaluateSeededBgp(*store_, vars_, patterns, remaining,
                                bound_slots, {seed}));

  // Fold exactly like the executor's aggregate accumulator, then decode
  // the finalized term back into the cell decomposition the same way
  // ComputeRootTable decodes query results — one canonical decomposition
  // regardless of which path produced the cell.
  const Dictionary& dict = store_->dictionary();
  Accum acc;
  for (const sparql::Row& row : res.rows) {
    ++acc.rows;
    sparql::Value v = sparql::Value::FromTerm(
        dict.term(row[static_cast<size_t>(agg_slot_)]));
    switch (facet_->agg_kind()) {
      case sparql::AggKind::kCount:
        break;
      case sparql::AggKind::kSum:
      case sparql::AggKind::kAvg:
        if (!v.is_numeric()) break;
        if (v.type() == sparql::Value::Type::kDouble) {
          acc.saw_double = true;
          acc.dsum += v.double_value();
        } else {
          acc.isum += v.int_value();
        }
        break;
      case sparql::AggKind::kMin:
        if (!acc.has_best || v.TotalCompare(acc.best) < 0) {
          acc.best = std::move(v);
          acc.has_best = true;
        }
        break;
      case sparql::AggKind::kMax:
        if (!acc.has_best || v.TotalCompare(acc.best) > 0) {
          acc.best = std::move(v);
          acc.has_best = true;
        }
        break;
    }
  }

  RootCell cell;
  cell.rows = acc.rows;
  if (cell.rows == 0) return cell;  // dead group
  Term value_term;
  bool has_value = true;
  switch (facet_->agg_kind()) {
    case sparql::AggKind::kCount:
      value_term = Term::Integer(static_cast<int64_t>(acc.rows));
      break;
    case sparql::AggKind::kSum:
    case sparql::AggKind::kAvg:  // encoded as SUM (see Materializer)
      value_term = acc.saw_double
                       ? Term::Double(acc.dsum + static_cast<double>(acc.isum))
                       : Term::Integer(acc.isum);
      break;
    case sparql::AggKind::kMin:
    case sparql::AggKind::kMax: {
      has_value = false;
      if (acc.has_best) {
        auto term = acc.best.ToTerm();
        if (term.ok()) {
          value_term = *term;
          has_value = true;
        }
      }
      break;
    }
  }
  if (has_value) {
    cell.value_id = store_->Intern(value_term);
    if (value_term.datatype() == Term::Datatype::kDouble) {
      cell.dsum = value_term.AsDouble().ValueOr(0.0);
      cell.saw_double = true;
    } else if (value_term.datatype() == Term::Datatype::kInteger) {
      cell.isum = value_term.AsInt64().ValueOr(0);
    }
  }
  cell.rows_id =
      store_->Intern(Term::Integer(static_cast<int64_t>(cell.rows)));
  return cell;
}

Result<bool> ViewMaintainer::ComputeDeltaDiff(std::vector<RootDiff>* diff,
                                              MaintenanceReport* report) const {
  const std::vector<sparql::TriplePattern>& patterns = facet_->pattern();
  const size_t n = patterns.size();
  if (n == 0 || n >= 16) return false;  // no subset enumeration; full mode

  // Resolve every pattern's constants and slots against the post-delta
  // dictionary, then sort the effective delta triples into per-pattern
  // signed lists (adds +1, deletes -1).
  struct PatternInfo {
    std::array<TermId, 3> consts{{kNullTermId, kNullTermId, kNullTermId}};
    std::array<int, 3> slots{{-1, -1, -1}};
    bool possible = true;  // a constant absent from the dict matches nothing
    std::vector<std::pair<Triple, int8_t>> delta;
  };
  const Dictionary& dict = store_->dictionary();
  std::vector<PatternInfo> info(n);
  for (size_t i = 0; i < n; ++i) {
    const sparql::TriplePattern& tp = patterns[i];
    const sparql::PatternTerm* positions[3] = {&tp.s, &tp.p, &tp.o};
    for (int f = 0; f < 3; ++f) {
      if (positions[f]->is_var()) {
        auto slot = vars_.Get(positions[f]->var());
        if (!slot.has_value()) {
          return Status::Internal("facet pattern variable missing from layout");
        }
        info[i].slots[f] = *slot;
      } else {
        auto id = dict.Lookup(positions[f]->term());
        if (!id.has_value()) {
          info[i].possible = false;
        } else {
          info[i].consts[f] = *id;
        }
      }
    }
  }
  // Unifies `t` against pattern `pi` into `row` (kNullTermId = unbound);
  // fails on constant mismatch or inconsistent repeated variables.
  auto unify = [](const PatternInfo& pi, const Triple& t, sparql::Row* row) {
    const TermId fields[3] = {t.s, t.p, t.o};
    for (int f = 0; f < 3; ++f) {
      if (pi.slots[f] >= 0) {
        TermId& cur = (*row)[static_cast<size_t>(pi.slots[f])];
        if (cur == kNullTermId) {
          cur = fields[f];
        } else if (cur != fields[f]) {
          return false;
        }
      } else if (pi.consts[f] != fields[f]) {
        return false;
      }
    }
    return true;
  };
  for (const auto& [side, sign] :
       {std::make_pair(&pending_.adds, int8_t{1}),
        std::make_pair(&pending_.deletes, int8_t{-1})}) {
    for (const Triple& t : *side) {
      for (size_t i = 0; i < n; ++i) {
        if (!info[i].possible) continue;
        sparql::Row scratch(vars_.size(), kNullTermId);
        if (unify(info[i], t, &scratch)) info[i].delta.emplace_back(t, sign);
      }
    }
  }

  // Inclusion–exclusion over the post-delta store. With m'_i the
  // post-state pattern relations and δ_i = A_i − D_i the signed deltas
  // (so the pre-state is m'_i − δ_i):
  //
  //   ΔJ = Π m'_i − Π (m'_i − δ_i)
  //      = Σ_{∅≠S⊆[n]} (−1)^{|S|+1} (Π_{i∈S} δ_i) ⋈ (Π_{j∉S} m'_j)
  //
  // Every term is a seeded join: the patterns in S bind their variables
  // from delta triples (tiny lists), the rest evaluate against the store.
  // Per-binding weight = (−1)^{|S|+1} × the product of the chosen delta
  // triples' signs; groups fold weights into (rows, Σvalue) deltas.
  struct DeltaCell {
    int64_t drows = 0;
    int64_t disum = 0;
    bool touched_double = false;
  };
  std::map<Key, DeltaCell> accum;
  uint64_t bindings = 0;
  const bool is_count = facet_->agg_kind() == sparql::AggKind::kCount;
  const bool is_sum = facet_->agg_kind() == sparql::AggKind::kSum ||
                      facet_->agg_kind() == sparql::AggKind::kAvg;
  const size_t num_dims = facet_->num_dims();

  for (uint32_t subset = 1; subset < (1u << n); ++subset) {
    std::vector<size_t> members;
    bool feasible = true;
    for (size_t i = 0; i < n; ++i) {
      if (((subset >> i) & 1u) == 0) continue;
      if (info[i].delta.empty()) {
        feasible = false;
        break;
      }
      members.push_back(i);
    }
    if (!feasible) continue;

    // Build the signed seed rows: the join of the members' delta lists.
    // Each extension anchors on a position whose variable is already
    // bound (hash on that field) when one exists; disconnected members
    // fall back to the full cross product — both tiny, both exact.
    std::vector<sparql::Row> seeds;
    std::vector<int8_t> signs;
    std::unordered_set<int> bound_slot_set;
    for (size_t mi = 0; mi < members.size(); ++mi) {
      const PatternInfo& pi = info[members[mi]];
      const auto& dl = pi.delta;
      if (mi == 0) {
        seeds.reserve(dl.size());
        for (const auto& [t, sg] : dl) {
          sparql::Row row(vars_.size(), kNullTermId);
          if (unify(pi, t, &row)) {
            seeds.push_back(std::move(row));
            signs.push_back(sg);
          }
        }
      } else {
        int anchor = -1;
        for (int f = 0; f < 3; ++f) {
          if (pi.slots[f] >= 0 && bound_slot_set.count(pi.slots[f]) > 0) {
            anchor = f;
            break;
          }
        }
        std::vector<sparql::Row> next;
        std::vector<int8_t> nsigns;
        if (anchor >= 0) {
          std::unordered_multimap<TermId, size_t> index;
          index.reserve(dl.size());
          for (size_t d = 0; d < dl.size(); ++d) {
            index.emplace(FieldOf(dl[d].first, anchor), d);
          }
          std::vector<size_t> hits;
          for (size_t r = 0; r < seeds.size(); ++r) {
            hits.clear();
            auto [lo, hi] = index.equal_range(
                seeds[r][static_cast<size_t>(pi.slots[anchor])]);
            for (auto it = lo; it != hi; ++it) hits.push_back(it->second);
            std::sort(hits.begin(), hits.end());  // deterministic order
            for (size_t d : hits) {
              sparql::Row row = seeds[r];
              if (unify(pi, dl[d].first, &row)) {
                next.push_back(std::move(row));
                nsigns.push_back(
                    static_cast<int8_t>(signs[r] * dl[d].second));
              }
            }
          }
        } else {
          for (size_t r = 0; r < seeds.size(); ++r) {
            for (const auto& [t, sg] : dl) {
              sparql::Row row = seeds[r];
              if (unify(pi, t, &row)) {
                next.push_back(std::move(row));
                nsigns.push_back(static_cast<int8_t>(signs[r] * sg));
              }
            }
          }
        }
        seeds = std::move(next);
        signs = std::move(nsigns);
      }
      if (seeds.empty()) break;
      for (int f = 0; f < 3; ++f) {
        if (pi.slots[f] >= 0) bound_slot_set.insert(pi.slots[f]);
      }
    }
    if (seeds.empty()) continue;

    std::vector<size_t> remaining;
    for (size_t j = 0; j < n; ++j) {
      if (((subset >> j) & 1u) == 0) remaining.push_back(j);
    }
    std::vector<int> bound_slots(bound_slot_set.begin(), bound_slot_set.end());
    std::sort(bound_slots.begin(), bound_slots.end());
    SOFOS_ASSIGN_OR_RETURN(
        sparql::SeededJoinResult res,
        sparql::EvaluateSeededBgp(*store_, vars_, patterns, remaining,
                                  bound_slots, seeds));

    const int subset_sign = (members.size() % 2 == 1) ? 1 : -1;
    for (size_t r = 0; r < res.rows.size(); ++r) {
      const sparql::Row& row = res.rows[r];
      const int w = subset_sign * signs[res.seed_index[r]];
      ++bindings;
      Key key(num_dims, kNullTermId);
      for (size_t d = 0; d < num_dims; ++d) {
        key[d] = row[static_cast<size_t>(dim_slots_[d])];
      }
      DeltaCell& cell = accum[key];
      cell.drows += w;
      if (is_count) {
        cell.disum += w;
      } else if (is_sum) {
        sparql::Value v = sparql::Value::FromTerm(
            dict.term(row[static_cast<size_t>(agg_slot_)]));
        if (v.is_numeric()) {
          if (v.type() == sparql::Value::Type::kDouble) {
            cell.touched_double = true;
          } else {
            cell.disum += w * v.int_value();
          }
        }
      }
      // MIN/MAX: the value is never folded additively; every touched
      // group goes through the targeted re-evaluation below.
    }
  }
  report->delta_bindings = bindings;

  // Net per-key changes → diff entries. Read-only on root_: the caller
  // applies the diff only after the whole pass succeeded, so a fallback
  // to full recompute starts from an intact cache.
  const bool minmax = facet_->agg_kind() == sparql::AggKind::kMin ||
                      facet_->agg_kind() == sparql::AggKind::kMax;
  for (const auto& [key, dc] : accum) {
    auto it = root_.find(key);
    const bool had_old = it != root_.end();
    const RootCell old_cell = had_old ? it->second : RootCell{};
    const int64_t new_rows =
        (had_old ? static_cast<int64_t>(old_cell.rows) : 0) + dc.drows;
    if (new_rows < 0) return false;  // algebra violated: fall back to full

    RootDiff entry;
    entry.key = key;
    entry.old_cell = old_cell;
    entry.had_old = had_old;
    if (new_rows == 0) {
      if (!had_old) continue;  // net no-op on a nonexistent group
      entry.has_new = false;
    } else if (minmax || dc.touched_double || old_cell.saw_double ||
               old_cell.dsum != 0.0) {
      // Non-additive content: re-evaluate exactly this group.
      SOFOS_ASSIGN_OR_RETURN(RootCell fresh, EvalRootGroup(key));
      if (fresh.rows != static_cast<uint64_t>(new_rows)) return false;
      ++report->regrouped_keys;
      entry.new_cell = fresh;
      entry.has_new = true;
    } else {
      RootCell fresh;
      fresh.rows = static_cast<uint64_t>(new_rows);
      fresh.isum = old_cell.isum + dc.disum;
      fresh.value_id = store_->Intern(Term::Integer(fresh.isum));
      fresh.rows_id = store_->Intern(Term::Integer(new_rows));
      entry.new_cell = fresh;
      entry.has_new = true;
    }
    if (entry.had_old && entry.has_new &&
        entry.old_cell.SameEncoding(entry.new_cell)) {
      continue;  // e.g. an add and a delete that cancel within the group
    }
    diff->push_back(std::move(entry));
  }
  return true;
}

Result<std::vector<ViewMaintainer::RootDiff>> ViewMaintainer::ComputeFullDiff(
    ThreadPool* pool) {
  SOFOS_ASSIGN_OR_RETURN(RootTable next_root, ComputeRootTable(pool));
  // Lockstep diff of the sorted tables: keys present on one side only, or
  // present on both with a different encoding, changed.
  std::vector<RootDiff> diff;
  auto it = root_.begin();
  auto jt = next_root.begin();
  while (it != root_.end() || jt != next_root.end()) {
    if (jt == next_root.end() ||
        (it != root_.end() && it->first < jt->first)) {
      RootDiff entry;
      entry.key = it->first;
      entry.old_cell = it->second;
      entry.had_old = true;
      diff.push_back(std::move(entry));
      ++it;
    } else if (it == root_.end() || jt->first < it->first) {
      RootDiff entry;
      entry.key = jt->first;
      entry.new_cell = jt->second;
      entry.has_new = true;
      diff.push_back(std::move(entry));
      ++jt;
    } else {
      if (!it->second.SameEncoding(jt->second)) {
        RootDiff entry;
        entry.key = it->first;
        entry.old_cell = it->second;
        entry.new_cell = jt->second;
        entry.had_old = true;
        entry.has_new = true;
        diff.push_back(std::move(entry));
      }
      ++it;
      ++jt;
    }
  }
  root_ = std::move(next_root);
  return diff;
}

void ViewMaintainer::ApplyRootDiff(const std::vector<RootDiff>& diff) {
  for (const RootDiff& entry : diff) {
    if (entry.has_new) {
      root_[entry.key] = entry.new_cell;
    } else {
      root_.erase(entry.key);
    }
  }
}

void ViewMaintainer::MaintainView(ViewState* view,
                                  const std::vector<RootDiff>& diff,
                                  StagedEdits* out) const {
  out->stats.mask = view->mask;
  const bool is_root = view->mask == facet_->FullMask();
  const bool minmax = facet_->agg_kind() == sparql::AggKind::kMin ||
                      facet_->agg_kind() == sparql::AggKind::kMax;

  // Affected view keys: projections of the changed root keys. std::set
  // keeps them sorted, which makes fresh-blank assignment deterministic.
  std::set<Key> affected;
  // Projected keys whose exact value must be re-derived from the bucket
  // (double-valued content; MIN/MAX handles every affected key anyway).
  std::set<Key> refold;

  if (is_root) {
    for (const RootDiff& entry : diff) affected.insert(entry.key);
  } else {
    // Fold the diff into the additive accumulators and keep the bucket
    // index current — O(|Δ root keys|) regardless of the view's size.
    for (const RootDiff& entry : diff) {
      Key pk = ProjectKey(entry.key, *view);
      ViewCell& cell = view->cells[pk];
      if (entry.had_old) {
        cell.rows -= static_cast<int64_t>(entry.old_cell.rows);
        cell.isum -= entry.old_cell.isum;
        cell.dsum -= entry.old_cell.dsum;
        if (entry.old_cell.saw_double) --cell.double_roots;
      } else {
        ++cell.root_keys;
        std::vector<Key>& bucket = view->buckets[pk];
        auto pos = std::lower_bound(bucket.begin(), bucket.end(), entry.key);
        if (pos == bucket.end() || *pos != entry.key) {
          bucket.insert(pos, entry.key);
        }
      }
      if (entry.has_new) {
        cell.rows += static_cast<int64_t>(entry.new_cell.rows);
        cell.isum += entry.new_cell.isum;
        cell.dsum += entry.new_cell.dsum;
        if (entry.new_cell.saw_double) ++cell.double_roots;
      } else if (entry.had_old) {
        --cell.root_keys;
        auto bit = view->buckets.find(pk);
        if (bit != view->buckets.end()) {
          auto pos = std::lower_bound(bit->second.begin(), bit->second.end(),
                                      entry.key);
          if (pos != bit->second.end() && *pos == entry.key) {
            bit->second.erase(pos);
          }
        }
      }
      if (entry.old_cell.saw_double || entry.new_cell.saw_double ||
          entry.old_cell.dsum != 0.0 || entry.new_cell.dsum != 0.0) {
        refold.insert(pk);
      }
      affected.insert(std::move(pk));
    }
  }

  auto fold = [](Accum* acc, const RootCell& cell) {
    acc->rows += cell.rows;
    acc->isum += cell.isum;
    acc->dsum += cell.dsum;
    acc->saw_double |= cell.saw_double;
  };
  auto fold_best = [&](Accum* acc, const RootCell& cell) {
    if (cell.value_id == kNullTermId) return;
    sparql::Value v =
        sparql::Value::FromTerm(store_->dictionary().term(cell.value_id));
    const bool is_min = facet_->agg_kind() == sparql::AggKind::kMin;
    if (!acc->has_best ||
        (is_min ? v.TotalCompare(acc->best) < 0
                : v.TotalCompare(acc->best) > 0)) {
      acc->best = std::move(v);
      acc->has_best = true;
    }
  };

  auto stage_row_delete = [&](const Key& key, const RowInfo& info) {
    out->deletes.push_back(Triple{info.blank, view_pred_id_, view->view_iri_id});
    for (size_t j = 0; j < view->dims.size(); ++j) {
      if (key[j] != kNullTermId) {
        out->deletes.push_back(Triple{
            info.blank, dim_pred_ids_[static_cast<size_t>(view->dims[j])],
            key[j]});
      }
    }
    if (info.value_id != kNullTermId) {
      out->deletes.push_back(Triple{info.blank, value_pred_id_, info.value_id});
    }
    if (info.rows_id != kNullTermId) {
      out->deletes.push_back(Triple{info.blank, rows_pred_id_, info.rows_id});
    }
  };

  for (const Key& key : affected) {
    Accum acc;
    bool live = false;
    if (is_root) {
      // Identity projection: the root view's cell IS the root-table cell.
      auto it = root_.find(key);
      if (it != root_.end() && it->second.rows > 0) {
        live = true;
        fold(&acc, it->second);
        if (minmax) fold_best(&acc, it->second);
      }
    } else {
      auto cit = view->cells.find(key);
      ViewCell* cell = cit != view->cells.end() ? &cit->second : nullptr;
      live = cell != nullptr && cell->root_keys > 0 && cell->rows > 0;
      if (live) {
        if (minmax || cell->double_roots > 0 || refold.count(key) > 0) {
          // Exact re-derivation over the bucket's live root cells, in
          // sorted root-key order (= what a fresh roll-up would fold).
          uint32_t double_roots = 0;
          auto bit = view->buckets.find(key);
          if (bit != view->buckets.end()) {
            for (const Key& rk : bit->second) {
              auto rit = root_.find(rk);
              if (rit == root_.end()) continue;
              fold(&acc, rit->second);
              if (minmax) fold_best(&acc, rit->second);
              if (rit->second.saw_double) ++double_roots;
            }
          }
          // Resync the additive state to the exact fold (clears any
          // floating-point drift the +=/-= path accumulated).
          cell->isum = acc.isum;
          cell->dsum = acc.dsum;
          cell->rows = static_cast<int64_t>(acc.rows);
          cell->double_roots = double_roots;
          live = acc.rows > 0;
        } else {
          acc.isum = cell->isum;
          acc.rows = static_cast<uint64_t>(cell->rows);
        }
      }
      if (!live && cell != nullptr) {
        view->cells.erase(cit);
        view->buckets.erase(key);
      }
    }

    auto rit = view->rows.find(key);
    if (!live) {
      if (rit != view->rows.end()) {
        stage_row_delete(key, rit->second);
        view->rows.erase(rit);
        ++out->stats.rows_deleted;
      }
      continue;
    }

    // Finalize the rolled-up cell exactly as the executor would.
    TermId value_id = kNullTermId;
    switch (facet_->agg_kind()) {
      case sparql::AggKind::kCount:
      case sparql::AggKind::kSum:
      case sparql::AggKind::kAvg:  // encoded as SUM (see Materializer)
        value_id = store_->Intern(acc.saw_double
                                      ? Term::Double(acc.dsum +
                                                     static_cast<double>(acc.isum))
                                      : Term::Integer(acc.isum));
        break;
      case sparql::AggKind::kMin:
      case sparql::AggKind::kMax: {
        if (acc.has_best) {
          auto term = acc.best.ToTerm();
          if (term.ok()) value_id = store_->Intern(*term);
        }
        break;
      }
    }
    TermId rows_id =
        store_->Intern(Term::Integer(static_cast<int64_t>(acc.rows)));

    if (rit == view->rows.end()) {
      // Fresh group key: encode a new blank-node row. The "mvm_" prefix
      // keeps maintained rows disjoint from the materializer's "mv_" ones.
      RowInfo info;
      info.blank = store_->Intern(Term::Blank(
          StrFormat("mvm_%s_%u_%llu", facet_->name().c_str(), view->mask,
                    static_cast<unsigned long long>(view->next_fresh++))));
      info.value_id = value_id;
      info.rows_id = rows_id;
      out->adds.push_back(Triple{info.blank, view_pred_id_, view->view_iri_id});
      for (size_t j = 0; j < view->dims.size(); ++j) {
        if (key[j] != kNullTermId) {
          out->adds.push_back(Triple{
              info.blank, dim_pred_ids_[static_cast<size_t>(view->dims[j])],
              key[j]});
        }
      }
      if (value_id != kNullTermId) {
        out->adds.push_back(Triple{info.blank, value_pred_id_, value_id});
      }
      out->adds.push_back(Triple{info.blank, rows_pred_id_, rows_id});
      view->rows.emplace(key, info);
      ++out->stats.rows_added;
    } else {
      // Existing row: swap the value / rows literals in place.
      RowInfo& info = rit->second;
      bool touched = false;
      if (info.value_id != value_id) {
        if (info.value_id != kNullTermId) {
          out->deletes.push_back(
              Triple{info.blank, value_pred_id_, info.value_id});
        }
        if (value_id != kNullTermId) {
          out->adds.push_back(Triple{info.blank, value_pred_id_, value_id});
        }
        info.value_id = value_id;
        touched = true;
      }
      if (info.rows_id != rows_id) {
        if (info.rows_id != kNullTermId) {
          out->deletes.push_back(
              Triple{info.blank, rows_pred_id_, info.rows_id});
        }
        out->adds.push_back(Triple{info.blank, rows_pred_id_, rows_id});
        info.rows_id = rows_id;
        touched = true;
      }
      if (touched) ++out->stats.rows_updated;
    }
  }
  out->stats.triples_added = out->adds.size();
  out->stats.triples_deleted = out->deletes.size();
}

Result<MaintenanceReport> ViewMaintainer::MaintainAll(ThreadPool* pool) {
  if (!initialized_) {
    return Status::Internal("ViewMaintainer::MaintainAll before Initialize");
  }
  MaintenanceReport report;

  // Mode decision: delta when it is prepared and legal, forced or under
  // the measured cost crossover; otherwise recompute-and-diff.
  const bool can_delta = pending_.prepared && pattern_delta_ok_;
  const uint64_t delta_size = pending_.adds.size() + pending_.deletes.size();
  bool use_delta = false;
  switch (options_.mode) {
    case MaintainOptions::Mode::kForceFull:
      break;
    case MaintainOptions::Mode::kForceDelta:
      use_delta = can_delta;
      break;
    case MaintainOptions::Mode::kAuto:
      use_delta = can_delta &&
                  static_cast<double>(delta_size) <=
                      options_.crossover_fraction *
                          static_cast<double>(store_->NumTriples());
      break;
  }

  WallTimer root_timer;
  std::vector<RootDiff> diff;
  if (use_delta) {
    SOFOS_ASSIGN_OR_RETURN(bool consistent, ComputeDeltaDiff(&diff, &report));
    if (consistent) {
      ApplyRootDiff(diff);
      report.mode = MaintainMode::kDelta;
    } else {
      // The signed algebra detected an inconsistency (it never should on
      // a normalized delta): root_ is untouched, so rebuild it outright.
      use_delta = false;
      diff.clear();
      report.delta_bindings = 0;
      report.regrouped_keys = 0;
    }
  }
  if (!use_delta) {
    SOFOS_ASSIGN_OR_RETURN(diff, ComputeFullDiff(pool));
    report.mode = MaintainMode::kFull;
  }
  report.root_query_micros = root_timer.ElapsedMicros();
  report.root_rows_changed = diff.size();
  pending_ = PendingDelta{};  // consumed

  if (!diff.empty() && !views_.empty()) {
    WallTimer maintain_timer;
    std::vector<StagedEdits> staged(views_.size());
    ParallelForEach(pool, views_.size(), [&](size_t i) {
      MaintainView(&views_[i], diff, &staged[i]);
    });
    report.maintain_micros = maintain_timer.ElapsedMicros();

    for (StagedEdits& edits : staged) {
      for (const Triple& t : edits.adds) store_->StageAdd(t.s, t.p, t.o);
      for (const Triple& t : edits.deletes) store_->StageDelete(t.s, t.p, t.o);
      report.views.push_back(edits.stats);
    }
    if (store_->HasStagedDelta()) {
      DeltaApplyResult merge = store_->ApplyDelta(pool);
      report.triples_added = merge.adds_applied;
      report.triples_deleted = merge.deletes_applied;
      report.merge_micros = merge.merge_micros;
    }
  } else {
    for (const ViewState& view : views_) {
      ViewMaintenance stats;
      stats.mask = view.mask;
      report.views.push_back(stats);
    }
  }
  return report;
}

}  // namespace maintenance
}  // namespace core
}  // namespace sofos
