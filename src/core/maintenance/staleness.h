#ifndef SOFOS_CORE_MAINTENANCE_STALENESS_H_
#define SOFOS_CORE_MAINTENANCE_STALENESS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/triple_store.h"

namespace sofos {
namespace core {
namespace maintenance {

struct StalenessOptions {
  /// Re-selection is recommended once drift() reaches this value. 0.15
  /// means "the statistics the current selection was optimized against
  /// have shifted by ~15%".
  double drift_threshold = 0.15;
};

/// Tracks how far the graph has drifted from the state the current view
/// selection was optimized against (SOFOS's headline challenge: a selected
/// view set does not stay optimal as the KG evolves).
///
/// Every bundled cost model scores a view from the lattice profile, and
/// the profile is a function of the facet-pattern binding structure — so
/// per-view benefit drift is driven by (a) cardinality drift of the
/// pattern predicates (PredicateStats deltas, which the store maintains
/// exactly through ApplyDelta) and (b) churn of the root-view group keys
/// (reported by ViewMaintainer, which knows exactly how many root rows
/// changed). The monitor folds both into a single relative drift score;
/// when it crosses the threshold the engine surfaces a re-selection
/// recommendation (it never re-selects behind the caller's back — re-running
/// Profile/SelectViews/Materialize is the caller's, i.e. the demo driver's,
/// decision, and resets the baseline).
class StalenessMonitor {
 public:
  explicit StalenessMonitor(StalenessOptions options = {})
      : options_(options) {}

  /// Captures the reference point: current triple counts of the tracked
  /// (facet-pattern) predicates and the root-view cardinality. Called by
  /// the engine after every successful Profile(), since selections are
  /// always made against a fresh profile.
  void ResetBaseline(const TripleStore& store,
                     std::vector<TermId> pattern_predicates,
                     uint64_t root_rows);
  bool has_baseline() const { return has_baseline_; }

  /// Records one applied update batch: re-reads the tracked predicate
  /// stats from the store and accumulates root-view churn.
  void RecordUpdate(const TripleStore& store, uint64_t root_rows_changed);

  /// Relative benefit-drift estimate in [0, inf): the max of the largest
  /// per-predicate relative cardinality change and the cumulative fraction
  /// of root-view rows that churned since the baseline.
  double drift() const { return drift_; }

  bool ShouldReselect() const {
    return has_baseline_ && drift_ >= options_.drift_threshold;
  }

  uint64_t updates_observed() const { return updates_; }
  const StalenessOptions& options() const { return options_; }

  std::string Summary() const;

 private:
  StalenessOptions options_;
  bool has_baseline_ = false;
  std::vector<TermId> predicates_;
  std::unordered_map<TermId, uint64_t> baseline_counts_;
  uint64_t baseline_root_rows_ = 0;
  uint64_t churned_root_rows_ = 0;
  uint64_t updates_ = 0;
  double drift_ = 0.0;
};

}  // namespace maintenance
}  // namespace core
}  // namespace sofos

#endif  // SOFOS_CORE_MAINTENANCE_STALENESS_H_
