#ifndef SOFOS_CORE_MAINTENANCE_VIEW_MAINTAINER_H_
#define SOFOS_CORE_MAINTENANCE_VIEW_MAINTAINER_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/facet.h"
#include "core/maintenance/delta.h"
#include "core/materializer.h"
#include "rdf/triple_store.h"

namespace sofos {

class ThreadPool;

namespace core {
namespace maintenance {

/// Maintenance figures for one materialized view.
struct ViewMaintenance {
  uint32_t mask = 0;
  uint64_t rows_added = 0;    // fresh group keys encoded
  uint64_t rows_deleted = 0;  // group keys whose contributions vanished
  uint64_t rows_updated = 0;  // existing keys whose value/rows changed
  uint64_t triples_added = 0;
  uint64_t triples_deleted = 0;
};

/// Aggregate figures of one maintenance pass over all materialized views.
struct MaintenanceReport {
  std::vector<ViewMaintenance> views;
  uint64_t root_rows_changed = 0;  // root-view group keys that changed
  uint64_t triples_added = 0;      // encoding triples merged into G+
  uint64_t triples_deleted = 0;
  double root_query_micros = 0.0;  // the one root-view evaluation
  double maintain_micros = 0.0;    // per-view delta staging (all views)
  double merge_micros = 0.0;       // final ApplyDelta into the store
  /// True when the base delta could not touch the facet pattern, so no
  /// maintenance work ran at all (root table and encodings still valid).
  bool skipped = false;

  std::string Summary() const;
};

/// Incrementally repairs the blank-node encodings of materialized views
/// after a base-graph delta, instead of re-running every view query and
/// re-finalizing the store.
///
/// Roll-up algebra: every lattice view is a roll-up of the root view (the
/// one grouping by ALL facet dimensions), because the partition of pattern
/// bindings by the full dimension tuple refines the partition by any
/// subset. The maintainer therefore caches the root-view table (full group
/// key → (aggregate decomposition, contributing rows)). One maintenance
/// pass then costs a single root-view evaluation, independent of how many
/// views are materialized:
///
///   1. recompute the root table with ONE query over the updated graph;
///   2. diff it against the cache → the changed root keys;
///   3. per materialized view (fanned out over the thread pool): project
///      the changed keys into the view's dimension subset and recompute
///      exactly the affected view rows from the new root table — COUNT and
///      SUM roll up by addition, AVG is stored as SUM (the encoding
///      contract, see Materializer) so it also rolls up by addition, and
///      MIN/MAX are re-derived from the affected group's root cells;
///   4. stage the per-row triple edits (adjust sofos:value / sofos:rows,
///      encode fresh rows, tombstone vanished rows) and merge them with one
///      TripleStore::ApplyDelta.
///
/// Exactness: maintained values equal what full rematerialization would
/// store, byte-for-byte for integer aggregates (COUNT, SUM over xsd:integer
/// — every bundled dataset). For double-valued SUM/AVG the roll-up adds
/// per-group subtotals instead of raw bindings, so results can differ in
/// the last ulps of the float; tests compare those numerically.
///
/// Threading: per-view staging only reads the store (const scans) and the
/// shared root table, and interns new literals through the internally
/// synchronized dictionary, so views fan out safely. Fresh blank-node
/// labels come from a per-view counter over keys processed in sorted key
/// order, making the maintained graph independent of the thread count.
class ViewMaintainer {
 public:
  ViewMaintainer(TripleStore* store, const Facet* facet);

  /// Captures the pre-update state: evaluates the root view over the
  /// *current* graph and indexes the blank-node rows of every materialized
  /// view. Must run while the store still reflects the state the views
  /// were materialized against (i.e. before the base delta merges). When
  /// `pool` is non-null the root-view evaluation uses intra-query morsel
  /// parallelism (identical result, see the Executor contract).
  Status Initialize(const std::vector<MaterializedView>& views,
                    ThreadPool* pool = nullptr);
  bool initialized() const { return initialized_; }

  /// True iff the delta can affect facet-pattern bindings (some add or
  /// delete uses a pattern predicate; conservatively true when a pattern
  /// predicate is a variable). Non-affecting deltas need no maintenance —
  /// the cached root table stays valid.
  bool Affects(const GraphDelta& delta) const;

  /// Repairs all view encodings against the store's current (post-delta)
  /// base data; call AFTER the base delta merged. Leaves the store
  /// finalized and the internal caches advanced to the new state.
  Result<MaintenanceReport> MaintainAll(ThreadPool* pool = nullptr);

 private:
  /// A group key: one interned id per facet dimension for the root table,
  /// one per retained dimension for a view's rows. kNullTermId = unbound.
  using Key = std::vector<TermId>;

  struct KeyHash {
    size_t operator()(const Key& key) const;
  };

  /// Cached root-view cell: the encoded literal ids plus the numeric
  /// decomposition used for roll-up addition (mirrors the executor's
  /// aggregate accumulator so rolled-up sums match its results).
  struct RootCell {
    TermId value_id = kNullTermId;
    TermId rows_id = kNullTermId;
    int64_t isum = 0;
    double dsum = 0.0;
    bool saw_double = false;
    uint64_t rows = 0;

    bool SameEncoding(const RootCell& other) const {
      return value_id == other.value_id && rows_id == other.rows_id;
    }
  };
  /// std::map: deterministic iteration and lockstep diffing.
  using RootTable = std::map<Key, RootCell>;

  /// One encoded view row in the store.
  struct RowInfo {
    TermId blank = kNullTermId;
    TermId value_id = kNullTermId;  // kNullTermId when the triple is absent
    TermId rows_id = kNullTermId;
  };

  /// Mutable per-view state; only its owning maintenance task touches it.
  struct ViewState {
    uint32_t mask = 0;
    TermId view_iri_id = kNullTermId;
    std::vector<int> dims;  // facet dim indices retained by mask, ascending
    std::unordered_map<Key, RowInfo, KeyHash> rows;
    uint64_t next_fresh = 0;  // fresh blank-node counter
  };

  /// Triple edits staged by one view's maintenance task.
  struct StagedEdits {
    std::vector<Triple> adds;
    std::vector<Triple> deletes;
    ViewMaintenance stats;
  };

  /// Evaluates the root view; `pool` enables intra-query parallelism for
  /// this single dominant query (thread-count-invariant result).
  Result<RootTable> ComputeRootTable(ThreadPool* pool = nullptr) const;
  Status IndexViewRows(ViewState* view) const;
  Key ProjectKey(const Key& root_key, const ViewState& view) const;
  /// Recomputes the affected rows of one view from `next_root` and stages
  /// the triple edits. Mutates only `view` and `out`.
  void MaintainView(ViewState* view, const RootTable& next_root,
                    const std::vector<Key>& changed_keys,
                    StagedEdits* out) const;

  TripleStore* store_;
  const Facet* facet_;
  bool initialized_ = false;

  // Interned encoding vocabulary (filled by Initialize).
  TermId view_pred_id_ = kNullTermId;
  TermId value_pred_id_ = kNullTermId;
  TermId rows_pred_id_ = kNullTermId;
  std::vector<TermId> dim_pred_ids_;  // per facet dimension

  RootTable root_;
  std::vector<ViewState> views_;
};

}  // namespace maintenance
}  // namespace core
}  // namespace sofos

#endif  // SOFOS_CORE_MAINTENANCE_VIEW_MAINTAINER_H_
