#ifndef SOFOS_CORE_MAINTENANCE_VIEW_MAINTAINER_H_
#define SOFOS_CORE_MAINTENANCE_VIEW_MAINTAINER_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/facet.h"
#include "core/maintenance/delta.h"
#include "core/materializer.h"
#include "rdf/triple_store.h"
#include "sparql/binding.h"

namespace sofos {

class ThreadPool;

namespace core {
namespace maintenance {

/// Maintenance figures for one materialized view.
struct ViewMaintenance {
  uint32_t mask = 0;
  uint64_t rows_added = 0;    // fresh group keys encoded
  uint64_t rows_deleted = 0;  // group keys whose contributions vanished
  uint64_t rows_updated = 0;  // existing keys whose value/rows changed
  uint64_t triples_added = 0;
  uint64_t triples_deleted = 0;

  /// True when the pass changed this view's encoding in any way — the
  /// per-view touched signal result-cache carry-forward keys on.
  bool touched() const {
    return rows_added + rows_deleted + rows_updated > 0;
  }
};

/// Which algorithm a maintenance pass ran (sofos_maintain_mode_total).
enum class MaintainMode { kSkip = 0, kDelta, kFull };
const char* MaintainModeName(MaintainMode mode);

/// Maintenance algorithm knobs (SofosEngine::SetMaintainOptions).
struct MaintainOptions {
  enum class Mode {
    kAuto,        // delta when legal and under the crossover, else full
    kForceDelta,  // delta whenever legal (tests; crossover ignored)
    kForceFull,   // always recompute-and-diff (the measured baseline)
  };
  Mode mode = Mode::kAuto;
  /// kAuto cost crossover: the delta path runs while the effective
  /// pattern-relevant delta holds at most this fraction of the base
  /// triples; larger batches recompute the root outright. The default was
  /// picked from bench_maintenance's delta-size sweep (the measured
  /// crossover sits above 5% on the bundled datasets; 2% keeps headroom
  /// for join-heavier facets).
  double crossover_fraction = 0.02;
};

/// Aggregate figures of one maintenance pass over all materialized views.
struct MaintenanceReport {
  std::vector<ViewMaintenance> views;
  uint64_t root_rows_changed = 0;  // root-view group keys that changed
  uint64_t triples_added = 0;      // encoding triples merged into G+
  uint64_t triples_deleted = 0;
  double root_query_micros = 0.0;  // root repair: Δ join or full evaluation
  double maintain_micros = 0.0;    // per-view delta staging (all views)
  double merge_micros = 0.0;       // final ApplyDelta into the store
  /// Which root-repair algorithm ran (kSkip until MaintainAll sets it).
  MaintainMode mode = MaintainMode::kSkip;
  /// Signed Δ-join bindings folded into the root table (delta mode only).
  uint64_t delta_bindings = 0;
  /// Root group keys repaired by targeted re-evaluation instead of
  /// additive folding (MIN/MAX groups, double-valued aggregates).
  uint64_t regrouped_keys = 0;
  /// True when the base delta could not touch the facet pattern, so no
  /// maintenance work ran at all (root table and encodings still valid).
  bool skipped = false;

  std::string Summary() const;
};

/// Incrementally repairs the blank-node encodings of materialized views
/// after a base-graph delta, instead of re-running every view query and
/// re-finalizing the store.
///
/// Roll-up algebra: every lattice view is a roll-up of the root view (the
/// one grouping by ALL facet dimensions), because the partition of pattern
/// bindings by the full dimension tuple refines the partition by any
/// subset. The maintainer caches the root-view table (full group key →
/// (aggregate decomposition, contributing rows)) plus, per coarser view,
/// additive roll-up accumulators and a projected-key → root-key bucket
/// index. One maintenance pass then costs:
///
///   1. repair the cached root table — in **delta mode** by evaluating the
///      Δ of the facet-pattern join directly from the staged adds/deletes
///      (counting-based IVM: signed bindings from seeded joins of the
///      delta triples against the post-delta store, inclusion–exclusion
///      over the touched patterns; see ComputeDeltaDiff and the README's
///      Δ algebra section), or in **full mode** (the automatic fallback
///      for large deltas and variable-predicate patterns) by recomputing
///      the root with one query and diffing against the cache;
///   2. both modes emit the same root-table diff (changed keys with old
///      and new cells);
///   3. per materialized view (fanned out over the thread pool): fold the
///      diff into the view's additive accumulators — COUNT and SUM roll
///      up by addition, AVG is stored as SUM (the encoding contract, see
///      Materializer) so it also rolls up by addition — touching
///      O(|Δ root keys|) view rows; MIN/MAX and double-valued groups are
///      re-derived exactly from the bucket index's root cells;
///   4. stage the per-row triple edits (adjust sofos:value / sofos:rows,
///      encode fresh rows, tombstone vanished rows) and merge them with
///      one TripleStore::ApplyDelta.
///
/// Exactness: maintained values equal what full rematerialization would
/// store, byte-for-byte for integer aggregates (COUNT, SUM over
/// xsd:integer — every bundled dataset). Any group touched by a
/// double-valued binding is repaired by targeted re-evaluation, so its
/// value matches a fresh evaluation of that group; double *roll-ups*
/// still add per-group subtotals in a fixed order and can differ from a
/// from-scratch fold in the last ulps (tests compare those numerically).
///
/// Threading: per-view staging only reads the store (const scans), the
/// shared root diff and its own accumulators, and interns new literals
/// through the internally synchronized dictionary, so views fan out
/// safely. Fresh blank-node labels come from a per-view counter over keys
/// processed in sorted key order, making the maintained graph independent
/// of the thread count in both modes.
class ViewMaintainer {
 public:
  ViewMaintainer(TripleStore* store, const Facet* facet);

  /// Captures the pre-update state: evaluates the root view over the
  /// *current* graph, builds every view's roll-up accumulators and bucket
  /// index, and indexes the blank-node rows of every materialized view.
  /// Must run while the store still reflects the state the views were
  /// materialized against (i.e. before the base delta merges). When
  /// `pool` is non-null the root-view evaluation uses intra-query morsel
  /// parallelism (identical result, see the Executor contract).
  Status Initialize(const std::vector<MaterializedView>& views,
                    ThreadPool* pool = nullptr);
  bool initialized() const { return initialized_; }

  void SetOptions(const MaintainOptions& options) { options_ = options; }
  const MaintainOptions& options() const { return options_; }

  /// True iff the delta can affect facet-pattern bindings (some add or
  /// delete uses a pattern predicate; conservatively true when a pattern
  /// predicate is a variable). Non-affecting deltas need no maintenance —
  /// the cached root table stays valid.
  bool Affects(const GraphDelta& delta) const;

  /// Captures the *effective* base delta for the next MaintainAll — must
  /// be called BEFORE the base delta merges into the store (membership
  /// tests run against the pre-delta graph). `add_ids` / `delete_ids` are
  /// the interned delta triples, sorted and deduplicated. Normalization
  /// (G' = (G \ D) ∪ A): adds already present and deletes of absent or
  /// re-added triples drop out; triples off the facet-pattern predicates
  /// drop out too, so the cost crossover measures the relevant delta.
  /// Without this call MaintainAll falls back to full recompute.
  Status PrepareDelta(const std::vector<Triple>& add_ids,
                      const std::vector<Triple>& delete_ids);

  /// Repairs all view encodings against the store's current (post-delta)
  /// base data; call AFTER the base delta merged. Leaves the store
  /// finalized and the internal caches advanced to the new state.
  Result<MaintenanceReport> MaintainAll(ThreadPool* pool = nullptr);

  /// Current root-view table size — the fresh row count of the root view,
  /// used to refresh routing statistics without re-profiling.
  uint64_t root_rows() const { return root_.size(); }

 private:
  /// A group key: one interned id per facet dimension for the root table,
  /// one per retained dimension for a view's rows. kNullTermId = unbound.
  using Key = std::vector<TermId>;

  struct KeyHash {
    size_t operator()(const Key& key) const;
  };

  /// Cached root-view cell: the encoded literal ids plus the numeric
  /// decomposition used for roll-up addition (mirrors the executor's
  /// aggregate accumulator so rolled-up sums match its results).
  struct RootCell {
    TermId value_id = kNullTermId;
    TermId rows_id = kNullTermId;
    int64_t isum = 0;
    double dsum = 0.0;
    bool saw_double = false;
    uint64_t rows = 0;

    bool SameEncoding(const RootCell& other) const {
      return value_id == other.value_id && rows_id == other.rows_id;
    }
  };
  /// std::map: deterministic iteration and lockstep diffing.
  using RootTable = std::map<Key, RootCell>;

  /// One changed root-table key: the cell before and after the repair.
  /// Both repair modes reduce to a sorted vector of these; everything
  /// downstream (view roll-up, staging) is mode-agnostic.
  struct RootDiff {
    Key key;
    RootCell old_cell;
    RootCell new_cell;
    bool had_old = false;
    bool has_new = false;
  };

  /// One encoded view row in the store.
  struct RowInfo {
    TermId blank = kNullTermId;
    TermId value_id = kNullTermId;  // kNullTermId when the triple is absent
    TermId rows_id = kNullTermId;
  };

  /// Additive roll-up state of one view row: the running aggregate
  /// decomposition plus the projecting-root-key census that decides
  /// liveness and whether an exact re-fold is needed.
  struct ViewCell {
    int64_t isum = 0;
    double dsum = 0.0;
    int64_t rows = 0;
    uint32_t root_keys = 0;     // live root keys projecting into this row
    uint32_t double_roots = 0;  // of those, cells with saw_double
  };

  /// Mutable per-view state; only its owning maintenance task touches it.
  struct ViewState {
    uint32_t mask = 0;
    TermId view_iri_id = kNullTermId;
    std::vector<int> dims;  // facet dim indices retained by mask, ascending
    std::unordered_map<Key, RowInfo, KeyHash> rows;
    /// Roll-up accumulators (non-root views; the root view reads the root
    /// table directly), maintained additively from the root diff.
    std::unordered_map<Key, ViewCell, KeyHash> cells;
    /// Projected key → sorted root keys projecting into it: the bucket
    /// index that makes MIN/MAX and double-group re-derivation O(bucket)
    /// instead of O(root table).
    std::unordered_map<Key, std::vector<Key>, KeyHash> buckets;
    uint64_t next_fresh = 0;  // fresh blank-node counter
  };

  /// Triple edits staged by one view's maintenance task.
  struct StagedEdits {
    std::vector<Triple> adds;
    std::vector<Triple> deletes;
    ViewMaintenance stats;
  };

  /// The effective delta PrepareDelta captured (consumed by MaintainAll).
  struct PendingDelta {
    std::vector<Triple> adds;
    std::vector<Triple> deletes;
    bool prepared = false;
  };

  /// Evaluates the root view; `pool` enables intra-query parallelism for
  /// this single dominant query (thread-count-invariant result).
  Result<RootTable> ComputeRootTable(ThreadPool* pool = nullptr) const;
  Status IndexViewRows(ViewState* view) const;
  /// Folds the cached root table into `view`'s accumulators and bucket
  /// index (Initialize; skipped for the root view).
  void BuildViewAccumulators(ViewState* view) const;
  Key ProjectKey(const Key& root_key, const ViewState& view) const;

  /// Delta-rule root repair: turns the pending effective delta into a
  /// root-table diff via signed Δ-join bindings (read-only on root_).
  /// Returns false when the algebra detects an inconsistency (negative
  /// group count) — the caller falls back to full recompute.
  Result<bool> ComputeDeltaDiff(std::vector<RootDiff>* diff,
                                MaintenanceReport* report) const;
  /// Exact evaluation of one root group: the facet BGP with the dimension
  /// slots pre-bound to `key` (the MIN/MAX and double-group fallback).
  Result<RootCell> EvalRootGroup(const Key& key) const;
  /// Full-recompute fallback: evaluates the root and lockstep-diffs it
  /// against the cache; replaces root_ with the fresh table.
  Result<std::vector<RootDiff>> ComputeFullDiff(ThreadPool* pool);
  void ApplyRootDiff(const std::vector<RootDiff>& diff);

  /// Rolls the root diff up into one view and stages the triple edits.
  /// Mutates only `view` and `out`; reads root_ in its post-repair state.
  void MaintainView(ViewState* view, const std::vector<RootDiff>& diff,
                    StagedEdits* out) const;

  TripleStore* store_;
  const Facet* facet_;
  bool initialized_ = false;
  MaintainOptions options_;

  // Interned encoding vocabulary (filled by Initialize).
  TermId view_pred_id_ = kNullTermId;
  TermId value_pred_id_ = kNullTermId;
  TermId rows_pred_id_ = kNullTermId;
  std::vector<TermId> dim_pred_ids_;  // per facet dimension

  // Δ-join layout over the facet pattern (filled by Initialize).
  sparql::VariableTable vars_;
  std::vector<int> dim_slots_;  // per facet dimension, in vars_ layout
  int agg_slot_ = -1;
  /// Every pattern predicate is a constant — the delta rules' legality
  /// condition (a variable predicate makes every triple a potential
  /// binding, so the pass falls back to full recompute).
  bool pattern_delta_ok_ = false;

  PendingDelta pending_;
  RootTable root_;
  std::vector<ViewState> views_;
};

}  // namespace maintenance
}  // namespace core
}  // namespace sofos

#endif  // SOFOS_CORE_MAINTENANCE_VIEW_MAINTAINER_H_
