#ifndef SOFOS_CORE_MAINTENANCE_DELTA_H_
#define SOFOS_CORE_MAINTENANCE_DELTA_H_

#include <cstddef>
#include <vector>

#include "rdf/term.h"

namespace sofos {
namespace core {
namespace maintenance {

/// One term-level RDF triple of an update batch (decoded form: deltas are
/// produced outside the store, so they carry Terms, not TermIds).
struct TermTriple {
  Term s, p, o;
};

/// An update batch against the base graph G. Semantics are set-algebraic,
/// matching TripleStore::ApplyDelta: G' = (G \ deletes) ∪ adds — a triple
/// in both sets ends up present, deletes of absent triples and adds of
/// present triples are no-ops.
struct GraphDelta {
  std::vector<TermTriple> adds;
  std::vector<TermTriple> deletes;

  bool empty() const { return adds.empty() && deletes.empty(); }
  size_t size() const { return adds.size() + deletes.size(); }
};

}  // namespace maintenance
}  // namespace core
}  // namespace sofos

#endif  // SOFOS_CORE_MAINTENANCE_DELTA_H_
