#ifndef SOFOS_CORE_FACET_H_
#define SOFOS_CORE_FACET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sparql/ast.h"

namespace sofos {
namespace core {

/// One grouping dimension of an analytical facet.
struct FacetDim {
  std::string var;    // SPARQL variable name (without '?')
  std::string label;  // human-readable label for the demo UI / reports
};

/// An analytical facet F = ⟨X, P, agg(u)⟩ (paper §3): the grouping
/// variables X, a basic graph pattern P, and an aggregation agg over a
/// pattern variable u. The facet induces the lattice of views V(F) in which
/// each view aggregates over a subset X' ⊆ X.
///
/// A facet is immutable after construction; dimension order defines lattice
/// bit order (bit i = dims()[i]).
class Facet {
 public:
  /// Parses a facet from its SPARQL template, e.g.
  ///   SELECT ?country ?language (SUM(?pop) AS ?agg)
  ///   WHERE { ... } GROUP BY ?country ?language
  /// Requirements: exactly one aggregate select item, every other select
  /// item a grouped variable, 1..16 dimensions, no FILTER/ORDER/LIMIT (a
  /// facet describes data, not a concrete query).
  static Result<Facet> FromSparql(std::string_view sparql, std::string name,
                                  std::vector<std::string> dim_labels = {});

  const std::string& name() const { return name_; }
  const std::vector<FacetDim>& dims() const { return dims_; }
  size_t num_dims() const { return dims_.size(); }
  const std::vector<sparql::TriplePattern>& pattern() const { return pattern_; }
  sparql::AggKind agg_kind() const { return agg_kind_; }
  /// The aggregated variable u.
  const std::string& agg_var() const { return agg_var_; }

  /// Bitmask with every dimension set (the lattice root / finest view).
  uint32_t FullMask() const { return (1u << dims_.size()) - 1; }

  /// Index of a dimension variable, or -1.
  int DimIndex(const std::string& var) const;

  /// Human-readable view label, e.g. "{country,language}" or "{} (apex)".
  std::string MaskLabel(uint32_t mask) const;

  /// SPARQL computing the view for dimension subset `mask` over the base
  /// graph. Every view query also computes the contributing row count
  /// (COUNT(?u) AS ?rows) so that roll-ups of COUNT and AVG stay exact; for
  /// AVG facets the stored ?agg is the SUM (AVG = agg/rows at query time).
  std::string ViewQuerySparql(uint32_t mask) const;

  /// SPARQL of a canonical analytical query grouping by `mask` over the
  /// base graph (used for profiling and timing).
  std::string CanonicalQuerySparql(uint32_t mask) const;

  /// The facet re-rendered as its SPARQL template.
  std::string ToSparql() const { return CanonicalQuerySparql(FullMask()); }

  /// Distinct predicate IRIs of the facet pattern (for learned features).
  std::vector<std::string> PatternPredicates() const;

 private:
  std::string name_;
  std::vector<FacetDim> dims_;
  std::vector<sparql::TriplePattern> pattern_;
  sparql::AggKind agg_kind_ = sparql::AggKind::kCount;
  std::string agg_var_;

  /// The pattern rendered as SPARQL triples (cached).
  std::string PatternText() const;
};

}  // namespace core
}  // namespace sofos

#endif  // SOFOS_CORE_FACET_H_
