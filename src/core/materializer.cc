#include "core/materializer.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "rdf/vocab.h"
#include "sparql/query_engine.h"

namespace sofos {
namespace core {

Result<MaterializedView> Materializer::Materialize(uint32_t mask) {
  SOFOS_ASSIGN_OR_RETURN(std::vector<MaterializedView> views,
                         MaterializeAll({mask}));
  return views[0];
}

Result<std::vector<MaterializedView>> Materializer::MaterializeAll(
    const std::vector<uint32_t>& masks, ThreadPool* pool) {
  if (!store_->finalized()) {
    return Status::Internal("materializer requires a finalized store");
  }

  // Phase 1: compute every view over the current graph, fanned out over
  // the pool (each query gets its own engine/executor; the store stays
  // finalized and is only read). All queries run before any encoding is
  // appended so that each view is defined over the same graph state.
  // Threads are budgeted between the two parallelism levels: with fewer
  // views than pool workers the surplus goes into per-query morsel
  // parallelism (intra dop = pool / views), so a single huge view — the
  // root, typically — cannot serialize the whole phase.
  sparql::ExecOptions exec_options;
  exec_options.pool = pool;
  if (pool != nullptr && !masks.empty()) {
    size_t inflight = std::min(masks.size(), pool->num_threads());
    exec_options.dop = static_cast<unsigned>(
        std::max<size_t>(1, pool->num_threads() / inflight));
  }
  std::vector<sparql::QueryResult> results(masks.size());
  std::vector<double> query_micros(masks.size(), 0.0);
  SOFOS_RETURN_IF_ERROR(
      ParallelForEachStatus(pool, masks.size(), [&](size_t i) -> Status {
        sparql::QueryEngine engine(store_, exec_options);
        WallTimer timer;
        SOFOS_ASSIGN_OR_RETURN(
            results[i], engine.Execute(facet_->ViewQuerySparql(masks[i])));
        query_micros[i] = timer.ElapsedMicros();
        return Status::OK();
      }));

  // Phase 2: append the blank-node encodings, serially in mask order (Add
  // and the blank counter require exclusive access; keeping this serial
  // also keeps labels identical to the single-threaded run).
  std::vector<MaterializedView> views;
  views.reserve(masks.size());
  for (size_t i = 0; i < masks.size(); ++i) {
    WallTimer timer;
    views.push_back(Encode(masks[i], results[i]));
    views.back().build_micros = query_micros[i] + timer.ElapsedMicros();
  }

  // Phase 3: one re-finalization for the whole batch.
  WallTimer timer;
  store_->Finalize(pool);
  if (!views.empty()) {
    double each = timer.ElapsedMicros() / static_cast<double>(views.size());
    for (auto& view : views) view.build_micros += each;
  }
  return views;
}

MaterializedView Materializer::Encode(uint32_t mask,
                                      const sparql::QueryResult& result) {
  MaterializedView view;
  view.mask = mask;
  view.view_iri = vocab::ViewIri(facet_->name(), mask);

  const Term view_pred = Term::Iri(std::string(vocab::kSofosView));
  const Term value_pred = Term::Iri(std::string(vocab::kSofosValue));
  const Term rows_pred = Term::Iri(std::string(vocab::kSofosRows));
  const Term view_iri_term = Term::Iri(view.view_iri);

  // Dim predicates for the grouped dimensions, in result column order: the
  // view query selects grouped dims first, then ?agg, then ?rows.
  std::vector<Term> dim_preds;
  for (size_t d = 0; d < facet_->num_dims(); ++d) {
    if ((mask >> d) & 1u) {
      dim_preds.push_back(Term::Iri(vocab::DimPredicate(facet_->dims()[d].var)));
    }
  }

  uint64_t before = store_->NumTriples();
  for (size_t r = 0; r < result.rows.size(); ++r) {
    Term blank = Term::Blank(
        StrFormat("mv_%s_%u_%llu", facet_->name().c_str(), mask,
                  static_cast<unsigned long long>(next_blank_++)));
    store_->Add(blank, view_pred, view_iri_term);
    for (size_t d = 0; d < dim_preds.size(); ++d) {
      if (result.bound[r][d]) {
        store_->Add(blank, dim_preds[d], result.rows[r][d]);
      }
    }
    size_t agg_col = dim_preds.size();
    size_t rows_col = agg_col + 1;
    if (result.bound[r][agg_col]) {
      store_->Add(blank, value_pred, result.rows[r][agg_col]);
    }
    if (result.bound[r][rows_col]) {
      store_->Add(blank, rows_pred, result.rows[r][rows_col]);
    }
    ++view.nodes_added;
  }
  view.rows = result.NumRows();
  // The append log only grows (blank nodes are fresh, no dedup possible).
  view.triples_added = store_->NumTriples() - before;
  return view;
}

}  // namespace core
}  // namespace sofos
