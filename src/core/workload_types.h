#ifndef SOFOS_CORE_WORKLOAD_TYPES_H_
#define SOFOS_CORE_WORKLOAD_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sofos {
namespace core {

/// How a single facet dimension is constrained by a query.
enum class DimUsage {
  kUnused = 0,
  kGrouped,     // appears in GROUP BY (and SELECT)
  kFilteredEq,  // constrained by FILTER(?dim = <constant>)
  kFilteredRange,  // constrained by FILTER(lo <= ?dim && ?dim <= hi)
};

/// One dimension constraint of an analytical query.
struct DimConstraint {
  int dim = -1;
  DimUsage usage = DimUsage::kUnused;
  /// SPARQL rendering of the filter condition over ?<dim var>, e.g.
  /// "?country = <http://...>" or "?year >= 2015 && ?year <= 2017".
  /// Empty for kGrouped/kUnused.
  std::string filter_sparql;
};

/// Structural summary of an analytical query against a facet: which
/// dimensions it groups by and which it filters. A view with dimension set
/// S answers the query iff (group_mask | filter_mask) ⊆ S.
struct QuerySignature {
  uint32_t group_mask = 0;
  uint32_t filter_mask = 0;
  std::vector<DimConstraint> constraints;  // filtered dims only

  uint32_t NeededMask() const { return group_mask | filter_mask; }
};

/// A concrete analytical query of a workload: the SPARQL text targeting the
/// base graph plus its signature (used for view routing and rewriting).
struct WorkloadQuery {
  std::string id;
  std::string sparql;
  QuerySignature signature;
};

}  // namespace core
}  // namespace sofos

#endif  // SOFOS_CORE_WORKLOAD_TYPES_H_
