#include "core/cost_model.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/thread_pool.h"

namespace sofos {
namespace core {

std::vector<double> EvaluateAllViewCosts(const CostModel& model,
                                         const LatticeProfile& profile,
                                         ThreadPool* pool) {
  std::vector<double> costs(profile.views.size(), 0.0);
  ParallelFor(pool, costs.size(), [&](size_t mask) {
    costs[mask] = model.ViewCost(static_cast<uint32_t>(mask), profile);
  });
  return costs;
}

std::string CostModelKindName(CostModelKind kind) {
  switch (kind) {
    case CostModelKind::kRandom:
      return "random";
    case CostModelKind::kTripleCount:
      return "triples";
    case CostModelKind::kAggValueCount:
      return "aggvalues";
    case CostModelKind::kNodeCount:
      return "nodes";
    case CostModelKind::kLearned:
      return "learned";
    case CostModelKind::kUserDefined:
      return "user";
  }
  return "?";
}

Result<CostModelKind> ParseCostModelKind(const std::string& name) {
  for (CostModelKind kind : AllCostModelKinds()) {
    if (CostModelKindName(kind) == name) return kind;
  }
  return Status::InvalidArgument(
      "unknown cost model '" + name +
      "' (expected random|triples|aggvalues|nodes|learned|user)");
}

std::vector<CostModelKind> AllCostModelKinds() {
  return {CostModelKind::kRandom,       CostModelKind::kTripleCount,
          CostModelKind::kAggValueCount, CostModelKind::kNodeCount,
          CostModelKind::kLearned,      CostModelKind::kUserDefined};
}

LearnedCostModel::LearnedCostModel(std::shared_ptr<learned::Mlp> mlp,
                                   learned::FeatureEncoder encoder,
                                   const Facet* facet, const TripleStore* store)
    : mlp_(std::move(mlp)), encoder_(std::move(encoder)), facet_(facet) {
  // Snapshot the per-predicate statistics once; ViewCost only varies the
  // dimension subset and aggregate kind.
  base_input_.predicates = facet->PatternPredicates();
  base_input_.graph_triples = store->NumTriples();
  base_input_.graph_nodes = store->NumNodes();
  base_input_.total_dims = static_cast<int>(facet->num_dims());
  base_input_.agg_kind = static_cast<int>(facet->agg_kind());
  const Dictionary& dict = store->dictionary();
  for (const std::string& iri : base_input_.predicates) {
    uint64_t count = 0, ds = 0, dobj = 0;
    if (auto id = dict.Lookup(Term::Iri(iri)); id.has_value()) {
      if (const PredicateStats* stats = store->StatsFor(*id)) {
        count = stats->triples;
        ds = stats->distinct_subjects;
        dobj = stats->distinct_objects;
      }
    }
    base_input_.predicate_counts.push_back(count);
    base_input_.predicate_distinct_subjects.push_back(ds);
    base_input_.predicate_distinct_objects.push_back(dobj);
  }
}

std::vector<double> LearnedCostModel::Features(uint32_t mask) const {
  learned::ViewFeatureInput input = base_input_;
  input.num_group_dims = __builtin_popcount(mask);
  return encoder_.Encode(input);
}

std::vector<double> LearnedCostModel::BaseFeatures() const {
  learned::ViewFeatureInput input = base_input_;
  input.num_group_dims = input.total_dims + 1;  // sentinel: beyond any view
  return encoder_.Encode(input);
}

double LearnedCostModel::ViewCost(uint32_t mask, const LatticeProfile&) const {
  return std::max(0.0, mlp_->Predict(Features(mask)));
}

double LearnedCostModel::BaseCost(const LatticeProfile&) const {
  return std::max(0.0, mlp_->Predict(BaseFeatures()));
}

}  // namespace core
}  // namespace sofos
