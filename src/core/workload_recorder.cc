#include "core/workload_recorder.h"

#include <algorithm>

namespace sofos {
namespace core {

WorkloadRecorder::WorkloadRecorder(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

void WorkloadRecorder::Record(RecordedQuery entry) {
  if (!enabled()) return;
  recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(entry));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<RecordedQuery> WorkloadRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<RecordedQuery>(ring_.begin(), ring_.end());
}

std::vector<WorkloadQuery> WorkloadRecorder::ExportWorkload() const {
  std::vector<RecordedQuery> entries = Snapshot();
  std::vector<WorkloadQuery> workload;
  workload.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    const RecordedQuery& entry = entries[i];
    if (!entry.has_signature) continue;
    WorkloadQuery query;
    query.id = "rec-" + std::to_string(i);
    query.sparql = entry.normalized_sparql;
    query.signature = entry.signature;
    workload.push_back(std::move(query));
  }
  return workload;
}

void WorkloadRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

size_t WorkloadRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

}  // namespace core
}  // namespace sofos
