#ifndef SOFOS_CORE_PROFILER_H_
#define SOFOS_CORE_PROFILER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/facet.h"
#include "rdf/triple_store.h"

namespace sofos {

class ThreadPool;

namespace core {

/// Size/shape statistics of one candidate view, the raw material for every
/// cost model (paper §3.1). "Encoded" figures describe the RDF graph the
/// materialization of this view would add to G+.
struct ViewStats {
  uint32_t mask = 0;
  uint64_t result_rows = 0;      // |V(G)|: number of aggregated values
  uint64_t encoded_triples = 0;  // |G_V|: triples of the view's RDF encoding
  uint64_t encoded_nodes = 0;    // |I_V ∪ B_V ∪ L_V|: distinct terms
  uint64_t encoded_bytes = 0;    // approximate storage footprint
  double eval_micros = 0.0;      // time to compute the view over G
  bool estimated = false;        // true when derived from a sample
};

/// How the lattice statistics are obtained: kExact executes every view
/// query over the base graph; kSampled executes only the root view and
/// derives the rest from a row sample with naive linear scale-up (the E9
/// ablation quantifies the error this introduces).
enum class ProfileMode { kExact, kSampled };

struct ProfileOptions {
  ProfileMode mode = ProfileMode::kExact;
  double sample_rate = 0.1;  // kSampled: fraction of root rows kept
  uint64_t seed = 42;
  /// When set, lattice nodes are profiled concurrently on this pool (each
  /// node's view query only does const store scans — see the TripleStore
  /// thread-safety contract), and the root-view query additionally runs
  /// with intra-query morsel parallelism on the same pool (it is the
  /// profiling pass's serial bottleneck). All ViewStats except the timing
  /// field eval_micros are identical to the serial (pool == nullptr) run;
  /// errors are reported for the smallest failing mask, matching serial
  /// order. Not owned; SofosEngine::Profile injects its own pool when unset.
  ThreadPool* pool = nullptr;
  /// Intra-query dop for the root-view query; 0 = the pool's thread count.
  /// SofosEngine::Profile injects its exec-threads knob here.
  unsigned exec_dop = 0;
};

/// Per-facet lattice statistics plus the base-graph figures cost models
/// compare against.
struct LatticeProfile {
  std::vector<ViewStats> views;  // indexed by mask, size 2^d
  uint64_t base_triples = 0;     // |G|
  uint64_t base_nodes = 0;       // graph nodes of G
  uint64_t base_pattern_rows = 0;  // bindings of the facet pattern P over G
  double profile_micros = 0.0;
  ProfileMode mode = ProfileMode::kExact;
  double sample_rate = 1.0;

  const ViewStats& ForMask(uint32_t mask) const { return views[mask]; }
};

/// Computes the lattice profile for `facet` over `store` (which must be
/// finalized; its dictionary may grow through aggregate interning).
Result<LatticeProfile> ProfileLattice(TripleStore* store, const Facet& facet,
                                      const ProfileOptions& options = {});

}  // namespace core
}  // namespace sofos

#endif  // SOFOS_CORE_PROFILER_H_
