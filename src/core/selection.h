#ifndef SOFOS_CORE_SELECTION_H_
#define SOFOS_CORE_SELECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/cost_model.h"
#include "core/lattice.h"
#include "core/profiler.h"

namespace sofos {

class ThreadPool;

namespace core {

/// Outcome of a view-selection run.
struct SelectionResult {
  std::vector<uint32_t> views;   // chosen masks, in pick order
  std::vector<double> benefits;  // greedy benefit at each pick (0 for random/user)
  double selection_micros = 0.0;
  std::string model_name;

  bool Contains(uint32_t mask) const;
  std::string ToString(const Facet& facet) const;
};

/// Per-view query weights for workload-aware selection: weight[mask] is the
/// probability that an incoming query needs exactly the dimensions `mask`.
/// Uniform weights reproduce the classic HRU setting.
using QueryWeights = std::vector<double>;

QueryWeights UniformWeights(size_t lattice_size);

/// Update-aware selection signal: the expected cost of keeping a candidate
/// view fresh, subtracted from its greedy benefit (the update-aware
/// refinement of HRU benefit à la Goasdoué et al.). The per-update work a
/// view causes is estimated as the measured Δ-bindings rate normalized by
/// the root-view size (the fraction of the root the average batch
/// touches) times the candidate's own cost (its repair work scales with
/// its size in the same model units the benefit is expressed in):
///
///   penalty(V) = update_rate · bindings_per_update / max(1, root_rows)
///                · C(V)
///
/// update_rate = 0 disables the penalty entirely and MUST keep selection
/// byte-identical to the classic greedy (the determinism contract bench
/// and test suites pin down).
struct MaintenancePenalty {
  double update_rate = 0.0;          // expected update batches per query
  double bindings_per_update = 0.0;  // measured Δ-bindings EWMA per batch
  double root_rows = 0.0;            // current root-view group count
};

/// Greedy benefit-based view selection (Harinarayan–Rajaraman–Ullman 1996,
/// adapted to cost models over RDF views — paper §3: "to select the best
/// set of views, we adopt a greedy approach").
///
/// Benefit of candidate V given already-selected set S:
///   B(V, S) = Σ_{w ⊆ V} weight(w) · max(0, cur(w) − C(V))
/// where cur(w) is the cheapest current way to answer w (selected views or
/// the base graph). Each round picks the highest-benefit view; ties break
/// deterministically toward the smaller mask.
///
/// For constant cost models (Random) the estimates carry no signal; per the
/// paper, the selector then returns a seeded random k-subset.
///
/// With a thread pool, each round's per-candidate benefit evaluation fans
/// out over the pool (the cost model must honor the const-thread-safety
/// contract in core/cost_model.h); the winning candidate is then reduced
/// serially in ascending mask order with the exact serial tie-break rules,
/// so the selected views and benefit values are bit-identical to the
/// pool-less run.
class GreedySelector {
 public:
  GreedySelector(const Lattice* lattice, const LatticeProfile* profile,
                 const CostModel* model, ThreadPool* pool = nullptr)
      : lattice_(lattice), profile_(profile), model_(model), pool_(pool) {}

  /// Enables the update-aware benefit penalty (see MaintenancePenalty).
  void SetMaintenancePenalty(const MaintenancePenalty& penalty) {
    penalty_ = penalty;
  }

  /// Selects exactly `k` views (or the whole lattice if k >= 2^d).
  SelectionResult SelectTopK(size_t k, const QueryWeights* weights = nullptr,
                             uint64_t seed = 42) const;

  /// Selects views while their total encoded size fits `byte_budget` (the
  /// space-budget variant mentioned in §3: "this budget can be adapted to
  /// regulate the space consumption").
  SelectionResult SelectWithinBytes(uint64_t byte_budget,
                                    const QueryWeights* weights = nullptr,
                                    uint64_t seed = 42) const;

 private:
  SelectionResult SelectImpl(size_t max_views, uint64_t byte_budget,
                             const QueryWeights* weights, uint64_t seed) const;

  const Lattice* lattice_;
  const LatticeProfile* profile_;
  const CostModel* model_;
  ThreadPool* pool_;  // not owned; nullptr = serial evaluation
  MaintenancePenalty penalty_;  // update_rate 0 = classic greedy
};

/// The "User defined" strategy (paper §3.1): the user picks the views.
SelectionResult UserSelection(std::vector<uint32_t> masks);

/// Exhaustive oracle over all k-subsets of the lattice, scored by a
/// caller-provided answering-cost matrix:
///   answer_cost[needed_mask][view_mask] = cost of answering a query that
///   needs `needed_mask` from `view_mask`, and answer_cost[needed][lattice
///   size] = cost from the base graph.
/// Used by the E5 "hands-on challenge" bench with *measured* runtimes to
/// quantify each cost model's regret. Complexity: C(2^d, k) subsets.
Result<SelectionResult> OracleSelection(
    const Lattice& lattice, size_t k,
    const std::vector<std::vector<double>>& answer_cost,
    const QueryWeights* weights = nullptr);

}  // namespace core
}  // namespace sofos

#endif  // SOFOS_CORE_SELECTION_H_
