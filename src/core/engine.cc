#include "core/engine.h"

#include <algorithm>
#include <iterator>

#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "rdf/turtle_parser.h"
#include "rdf/turtle_writer.h"
#include "rdf/vocab.h"
#include "sparql/parser.h"

namespace sofos {
namespace core {

std::string WorkloadReport::Summary() const {
  std::string out = StrFormat(
      "queries=%zu wall=%s cpu=%s mean=%s median=%s p95=%s hist[%s] "
      "hits=%llu scanned=%llu",
      outcomes.size(), FormatMicros(wall_micros).c_str(),
      FormatMicros(total_micros).c_str(), FormatMicros(mean_micros).c_str(),
      FormatMicros(median_micros).c_str(), FormatMicros(p95_micros).c_str(),
      latency.SummaryString().c_str(),
      static_cast<unsigned long long>(view_hits),
      static_cast<unsigned long long>(total_rows_scanned));
  if (publish.count > 0) {
    out += StrFormat(" publish[n=%llu %s]",
                     static_cast<unsigned long long>(publish.count),
                     publish.SummaryString().c_str());
  }
  return out;
}

std::string UpdateOutcome::Summary() const {
  return StrFormat(
      "base +%llu -%llu in %s | %s | drift=%.3f%s",
      static_cast<unsigned long long>(adds_applied),
      static_cast<unsigned long long>(deletes_applied),
      FormatMicros(total_micros).c_str(), maintenance.Summary().c_str(),
      staleness, reselect_recommended ? " -> reselect recommended" : "");
}

void SofosEngine::SetNumThreads(unsigned num_threads) {
  num_threads_ = num_threads;
  pool_.reset();  // rebuilt at the right size on next use
  // An auto (0) shard count follows the pool size; re-resolve it now so
  // per-shard rebuild parallelism keeps matching the pool. The no-op
  // check precedes pool() so a threads change that leaves the shard count
  // alone keeps the pool rebuild lazy.
  if (shard_count_ == 0 && store_.finalized() &&
      store_.shard_count() != ResolvedShardCount()) {
    store_.SetShardCount(ResolvedShardCount(), pool());
  }
}

unsigned SofosEngine::num_threads() const {
  unsigned n = num_threads_ == 0 ? ThreadPool::DefaultNumThreads() : num_threads_;
  // Keep the reported count in sync with what a pool would actually spawn.
  return static_cast<unsigned>(
      std::min<size_t>(n, ThreadPool::kMaxThreads));
}

void SofosEngine::SetShardCount(unsigned shard_count) {
  // Mirror the store's clamp so shard_count()/ResolvedShardCount() always
  // agree with what the store actually runs at (0 stays "auto").
  shard_count_ = std::min(shard_count, 256u);
  if (store_.finalized() && store_.shard_count() != ResolvedShardCount()) {
    store_.SetShardCount(ResolvedShardCount(), pool());
  }
}

void SofosEngine::SetStoreLayout(StoreLayout layout) {
  store_layout_ = layout;
  ApplyStoreLayout();
}

void SofosEngine::ApplyStoreLayout() {
  if (!store_.finalized()) return;
  const bool compact =
      store_layout_ == StoreLayout::kCompact ||
      (store_layout_ == StoreLayout::kAuto &&
       store_.NumTriples() >= kCompactAutoTriples);
  // The shard layout and the dictionary encoding travel together: both
  // trade decode work for bytes, and the bench/CLI "layout" knob means the
  // pair.
  if (store_.compact_layout() != compact) {
    store_.SetCompactLayout(compact, pool());
  }
  if (store_.mutable_dictionary()->front_coded() != compact) {
    store_.mutable_dictionary()->SetFrontCoding(compact);
  }
}

Result<SofosEngine::StoreLayout> ParseStoreLayout(const std::string& name) {
  if (name == "auto") return SofosEngine::StoreLayout::kAuto;
  if (name == "sorted") return SofosEngine::StoreLayout::kSorted;
  if (name == "compact") return SofosEngine::StoreLayout::kCompact;
  return Status::InvalidArgument("unknown layout '" + name +
                                 "' (expected auto|sorted|compact)");
}

std::string StoreLayoutName(SofosEngine::StoreLayout layout) {
  switch (layout) {
    case SofosEngine::StoreLayout::kAuto:
      return "auto";
    case SofosEngine::StoreLayout::kSorted:
      return "sorted";
    case SofosEngine::StoreLayout::kCompact:
      return "compact";
  }
  return "?";
}

void SofosEngine::RecordStateGauges() {
  metrics_.Gauge("sofos_engine_epoch")->Set(static_cast<double>(epoch_));
  metrics_.Gauge("sofos_engine_base_triples")
      ->Set(static_cast<double>(base_snapshot_.size()));
  metrics_.Gauge("sofos_engine_current_triples")
      ->Set(store_.finalized() ? static_cast<double>(store_.NumTriples()) : 0.0);
  metrics_.Gauge("sofos_engine_materialized_views")
      ->Set(static_cast<double>(materialized_.size()));
  metrics_.Gauge("sofos_engine_staleness_drift")->Set(staleness_.drift());
  metrics_.Gauge("sofos_engine_storage_amplification")
      ->Set(StorageAmplification());
}

unsigned SofosEngine::ResolvedShardCount() const {
  if (shard_count_ != 0) return shard_count_;
  // Auto: the smallest power of two covering the pool, so per-shard
  // Finalize/ApplyDelta tasks can occupy every worker; capped where the
  // per-shard constant overheads would start to dominate.
  const unsigned threads = num_threads();
  unsigned shards = 1;
  while (shards < threads && shards < 64) shards <<= 1;
  return shards;
}

ThreadPool* SofosEngine::pool() const {
  unsigned n = num_threads();
  if (n <= 1) return nullptr;
  if (pool_ == nullptr || pool_->num_threads() != n) {
    pool_ = std::make_unique<ThreadPool>(n);
  }
  return pool_.get();
}

sparql::ExecOptions SofosEngine::ExecOptionsFor(unsigned intra_dop) const {
  sparql::ExecOptions options;
  options.pool = pool();
  if (options.pool == nullptr) {
    options.dop = 1;
  } else if (intra_dop != 0) {
    options.dop = intra_dop;
  } else if (exec_threads_ != 0) {
    options.dop = exec_threads_;
  } else {
    options.dop = num_threads();
  }
  return options;
}

Status SofosEngine::LoadStore(TripleStore&& store) {
  if (!store.finalized()) {
    return Status::InvalidArgument("LoadStore requires a finalized store");
  }
  store_ = std::move(store);
  // Callers that finalized at the default shard count get repartitioned to
  // the engine's knob here (a one-time load cost; no-op when the store was
  // built at the resolved count, as LoadGraphFile does — and never visible
  // in results, by the store's shard-invariance contract).
  store_.SetShardCount(ResolvedShardCount(), pool());
  ApplyStoreLayout();
  base_snapshot_ = store_.triples();
  base_bytes_ = store_.MemoryBytes();
  materialized_.clear();
  profile_.reset();
  maintainer_.reset();
  staleness_ = maintenance::StalenessMonitor(staleness_.options());
  if (facet_.has_value()) {
    materializer_ = std::make_unique<Materializer>(&store_, &*facet_);
  }
  ++epoch_;
  RecordStateGauges();
  return Status::OK();
}

Status SofosEngine::LoadGraphFile(const std::string& path) {
  TripleStore store;
  TurtleParser parser;
  SOFOS_RETURN_IF_ERROR(parser.ParseFile(path, &store));
  // Partition before Finalize so the initial build lands directly on the
  // engine's shard count; LoadStore's repartition then no-ops.
  store.SetShardCount(ResolvedShardCount());
  store.Finalize(pool());
  return LoadStore(std::move(store));
}

Status SofosEngine::ExportGraphFile(const std::string& path) const {
  TurtleWriter writer;
  return writer.WriteNTriplesFile(store_, path);
}

Status SofosEngine::SetFacet(Facet facet) {
  facet_ = std::move(facet);
  lattice_.emplace(&*facet_);
  rewriter_.emplace(&*facet_);
  materializer_ = std::make_unique<Materializer>(&store_, &*facet_);
  profile_.reset();
  maintainer_.reset();
  // The old baseline tracked the previous facet's predicates; the next
  // Profile() re-anchors against this one.
  staleness_ = maintenance::StalenessMonitor(staleness_.options());
  ++epoch_;
  RecordStateGauges();
  return Status::OK();
}

void SofosEngine::SetStalenessOptions(
    const maintenance::StalenessOptions& options) {
  // Recreated without a baseline: the next Profile() re-anchors it.
  staleness_ = maintenance::StalenessMonitor(options);
}

void SofosEngine::SetMaintainOptions(
    const maintenance::MaintainOptions& options) {
  maintain_options_ = options;
  if (maintainer_ != nullptr) maintainer_->SetOptions(options);
}

Result<const LatticeProfile*> SofosEngine::Profile(const ProfileOptions& options) {
  if (!facet_.has_value()) return Status::Internal("no facet set");
  ProfileOptions effective = options;
  if (effective.pool == nullptr) effective.pool = pool();
  if (effective.exec_dop == 0) effective.exec_dop = exec_threads_;
  SOFOS_ASSIGN_OR_RETURN(LatticeProfile profile,
                         ProfileLattice(&store_, *facet_, effective));
  profile_ = std::move(profile);

  // Selections are made against this fresh profile, so it becomes the
  // staleness baseline future update batches drift away from. Predicates
  // are interned (not looked up) so that one with zero triples today is
  // still tracked when updates start populating it (baseline count 0).
  std::vector<TermId> pattern_ids;
  for (const std::string& iri : facet_->PatternPredicates()) {
    pattern_ids.push_back(store_.Intern(Term::Iri(iri)));
  }
  staleness_.ResetBaseline(store_, std::move(pattern_ids),
                           profile_->views[facet_->FullMask()].result_rows);
  ++epoch_;  // routing statistics changed: cached answers may route stale
  RecordStateGauges();
  return &*profile_;
}

Result<std::unique_ptr<CostModel>> SofosEngine::MakeModel(
    CostModelKind kind) const {
  switch (kind) {
    case CostModelKind::kRandom:
      return std::unique_ptr<CostModel>(new RandomCostModel());
    case CostModelKind::kTripleCount:
      return std::unique_ptr<CostModel>(new TripleCountCostModel());
    case CostModelKind::kAggValueCount:
      return std::unique_ptr<CostModel>(new AggValueCountCostModel());
    case CostModelKind::kNodeCount:
      return std::unique_ptr<CostModel>(new NodeCountCostModel());
    case CostModelKind::kLearned: {
      if (learned_mlp_ == nullptr) {
        return Status::InvalidArgument(
            "the learned cost model requires training first "
            "(core/training.h: TrainLearnedModel)");
      }
      if (!facet_.has_value()) return Status::Internal("no facet set");
      return std::unique_ptr<CostModel>(
          new LearnedCostModel(learned_mlp_, learned::FeatureEncoder(), &*facet_,
                               &store_));
    }
    case CostModelKind::kUserDefined:
      return Status::InvalidArgument(
          "kUserDefined has no automatic construction: build a "
          "UserDefinedCostModel with explicit costs, or use UserSelection()");
  }
  return Status::Internal("unhandled cost model kind");
}

void SofosEngine::SetLearnedModel(std::shared_ptr<learned::Mlp> mlp) {
  learned_mlp_ = std::move(mlp);
}

Result<SelectionResult> SofosEngine::SelectViews(const CostModel& model, size_t k,
                                                 const QueryWeights* weights,
                                                 uint64_t seed) const {
  if (!facet_.has_value()) return Status::Internal("no facet set");
  if (!profile_.has_value()) {
    return Status::Internal("SelectViews requires Profile() first");
  }
  GreedySelector selector(&*lattice_, &*profile_, &model, pool());
  if (update_rate_ > 0) {
    MaintenancePenalty penalty;
    penalty.update_rate = update_rate_;
    penalty.bindings_per_update = avg_delta_bindings_;
    penalty.root_rows = static_cast<double>(
        profile_->ForMask(facet_->FullMask()).result_rows);
    selector.SetMaintenancePenalty(penalty);
  }
  return selector.SelectTopK(k, weights, seed);
}

Result<std::vector<MaterializedView>> SofosEngine::MaterializeSelection(
    const SelectionResult& selection) {
  return MaterializeViews(selection.views);
}

Result<std::vector<MaterializedView>> SofosEngine::MaterializeViews(
    const std::vector<uint32_t>& masks) {
  if (materializer_ == nullptr) return Status::Internal("no facet set");
  for (uint32_t mask : masks) {
    for (const MaterializedView& existing : materialized_) {
      if (existing.mask == mask) {
        return Status::AlreadyExists("view " + facet_->MaskLabel(mask) +
                                     " is already materialized");
      }
    }
  }
  SOFOS_ASSIGN_OR_RETURN(std::vector<MaterializedView> views,
                         materializer_->MaterializeAll(masks, pool()));
  for (const auto& view : views) materialized_.push_back(view);
  maintainer_.reset();  // view set changed; rebuilt on the next ApplyUpdates
  ++epoch_;
  RecordStateGauges();
  return views;
}

Status SofosEngine::UpdateBaseGraph(
    const std::function<void(TripleStore*)>& update,
    const ProfileOptions& profile_options) {
  std::vector<uint32_t> masks = MaterializedMasks();

  // Strip view encodings so the update sees (and the snapshot captures)
  // base data only.
  store_.ReplaceTriples(base_snapshot_);
  store_.Finalize(pool());
  update(&store_);
  store_.Finalize(pool());
  base_snapshot_ = store_.triples();
  base_bytes_ = store_.MemoryBytes();
  materialized_.clear();
  maintainer_.reset();
  ++epoch_;

  if (facet_.has_value()) {
    SOFOS_RETURN_IF_ERROR(Profile(profile_options).status());
    if (!masks.empty()) {
      SOFOS_RETURN_IF_ERROR(MaterializeViews(masks).status());
    }
  }
  RecordStateGauges();
  return Status::OK();
}

Status SofosEngine::DropMaterializedViews() {
  store_.ReplaceTriples(base_snapshot_);
  store_.Finalize(pool());
  materialized_.clear();
  maintainer_.reset();
  ++epoch_;
  RecordStateGauges();
  return Status::OK();
}

Result<UpdateOutcome> SofosEngine::ApplyUpdates(
    const maintenance::GraphDelta& delta) {
  if (!store_.finalized()) {
    return Status::Internal("ApplyUpdates requires a loaded, finalized store");
  }
  WallTimer timer;
  UpdateOutcome outcome;

  // Updates target base data; the encoding vocabulary is reserved (every
  // view-encoding triple carries a sofos: predicate, so this guard keeps
  // deltas from corrupting materializations).
  for (const std::vector<maintenance::TermTriple>* side :
       {&delta.adds, &delta.deletes}) {
    for (const maintenance::TermTriple& t : *side) {
      if (t.p.is_iri() && StrStartsWith(t.p.lexical(), vocab::kSofosNs)) {
        return Status::InvalidArgument(
            "updates must not touch the reserved sofos: encoding vocabulary");
      }
    }
  }

  // Capture the pre-delta state for incremental maintenance (the root
  // table must reflect the graph the views currently encode).
  if (facet_.has_value() && !materialized_.empty()) {
    if (maintainer_ == nullptr) {
      maintainer_ =
          std::make_unique<maintenance::ViewMaintainer>(&store_, &*facet_);
      maintainer_->SetOptions(maintain_options_);
    }
    if (!maintainer_->initialized()) {
      SOFOS_RETURN_IF_ERROR(maintainer_->Initialize(materialized_, pool()));
    }
  }
  const bool affects = maintainer_ != nullptr && maintainer_->Affects(delta);

  // Stage and merge the base delta (no six-way re-sort).
  std::vector<Triple> add_ids, delete_ids;
  add_ids.reserve(delta.adds.size());
  delete_ids.reserve(delta.deletes.size());
  for (const maintenance::TermTriple& t : delta.adds) {
    Triple id{store_.Intern(t.s), store_.Intern(t.p), store_.Intern(t.o)};
    store_.StageAdd(id.s, id.p, id.o);
    add_ids.push_back(id);
  }
  const Dictionary& dict = store_.dictionary();
  for (const maintenance::TermTriple& t : delta.deletes) {
    auto s = dict.Lookup(t.s);
    auto p = dict.Lookup(t.p);
    auto o = dict.Lookup(t.o);
    if (!s || !p || !o) continue;  // unknown term: the triple cannot exist
    store_.StageDelete(*s, *p, *o);
    delete_ids.push_back(Triple{*s, *p, *o});
  }

  // Normalize the delta ids once: sorted + deduped serves the base
  // snapshot mirror AND the maintainer's effective-delta computation.
  std::sort(add_ids.begin(), add_ids.end());
  add_ids.erase(std::unique(add_ids.begin(), add_ids.end()), add_ids.end());
  std::sort(delete_ids.begin(), delete_ids.end());
  delete_ids.erase(std::unique(delete_ids.begin(), delete_ids.end()),
                   delete_ids.end());

  // The delta-rule path needs the *pre-merge* graph to normalize the
  // delta (adds already present / deletes of absent triples are no-ops),
  // so stage it with the maintainer before the store merges.
  if (affects) {
    SOFOS_RETURN_IF_ERROR(maintainer_->PrepareDelta(add_ids, delete_ids));
  }

  DeltaApplyResult base_merge = store_.ApplyDelta(pool());
  outcome.adds_applied = base_merge.adds_applied;
  outcome.deletes_applied = base_merge.deletes_applied;

  // Mirror the delta into the base snapshot with the shared semantics.
  base_snapshot_ = ApplySortedDelta(base_snapshot_, add_ids, delete_ids);
  // The graph is mutated from here on: bump the epoch *now*, so even a
  // maintenance failure below leaves PublishSnapshot able to expose the
  // post-delta store instead of no-opping on a stale epoch.
  ++epoch_;

  // Incrementally repair the view encodings.
  if (affects) {
    SOFOS_ASSIGN_OR_RETURN(outcome.maintenance, maintainer_->MaintainAll(pool()));
    for (const maintenance::ViewMaintenance& vm : outcome.maintenance.views) {
      for (MaterializedView& mv : materialized_) {
        if (mv.mask != vm.mask) continue;
        mv.rows = mv.rows + vm.rows_added - vm.rows_deleted;
        mv.nodes_added = mv.nodes_added + vm.rows_added - vm.rows_deleted;
        mv.triples_added =
            mv.triples_added + vm.triples_added - vm.triples_deleted;
      }
    }
    // Refresh the profile's view sizes from the maintained row counts so
    // staleness tracking and fewest-rows routing see fresh sizes without
    // a re-profile (the profile's other statistics still age — that is
    // what the StalenessMonitor measures).
    if (profile_.has_value()) {
      for (const MaterializedView& mv : materialized_) {
        if (mv.mask < profile_->views.size()) {
          profile_->views[mv.mask].result_rows = mv.rows;
        }
      }
      profile_->views[facet_->FullMask()].result_rows =
          maintainer_->root_rows();
    }
    const maintenance::MaintenanceReport& mr = outcome.maintenance;
    switch (mr.mode) {
      case maintenance::MaintainMode::kDelta:
        maintain_mode_delta_total_->Add();
        break;
      case maintenance::MaintainMode::kFull:
        maintain_mode_full_total_->Add();
        break;
      case maintenance::MaintainMode::kSkip:
        maintain_mode_skip_total_->Add();
        break;
    }
    maintain_bindings_hist_->Record(static_cast<double>(mr.delta_bindings));
    // EWMA of the per-batch Δ-work rate: the delta path measures it as
    // signed bindings, the full path approximates it with changed root
    // rows. Feeds the update-aware selection penalty.
    const double observed =
        mr.mode == maintenance::MaintainMode::kDelta
            ? static_cast<double>(mr.delta_bindings)
            : static_cast<double>(mr.root_rows_changed);
    avg_delta_bindings_ = avg_delta_bindings_ == 0.0
                              ? observed
                              : 0.7 * avg_delta_bindings_ + 0.3 * observed;
  } else {
    outcome.maintenance.skipped = true;
    if (maintainer_ != nullptr) maintain_mode_skip_total_->Add();
  }

  // Track how far the current selection has drifted from its baseline.
  staleness_.RecordUpdate(store_, outcome.maintenance.root_rows_changed);
  outcome.staleness = staleness_.drift();
  outcome.reselect_recommended = staleness_.ShouldReselect();
  outcome.total_micros = timer.ElapsedMicros();
  maintain_hist_->Record(outcome.total_micros);
  updates_total_->Add();
  adds_applied_total_->Add(outcome.adds_applied);
  deletes_applied_total_->Add(outcome.deletes_applied);
  if (outcome.reselect_recommended) reselect_recommended_total_->Add();
  RecordStateGauges();
  return outcome;
}

std::vector<uint32_t> SofosEngine::MaterializedMasks() const {
  std::vector<uint32_t> masks;
  masks.reserve(materialized_.size());
  for (const auto& view : materialized_) masks.push_back(view.mask);
  return masks;
}

Result<QueryOutcome> SofosEngine::Answer(const WorkloadQuery& query,
                                         bool allow_views,
                                         const CostModel* routing_model) {
  // A standalone query gets the whole pool as intra-query parallelism
  // (unless the exec-threads knob pins it).
  return AnswerWithDop(query, allow_views, routing_model, /*intra_dop=*/0);
}

Result<QueryOutcome> SofosEngine::AnswerWithDop(const WorkloadQuery& query,
                                                bool allow_views,
                                                const CostModel* routing_model,
                                                unsigned intra_dop) {
  if (!facet_.has_value()) return Status::Internal("no facet set");
  QueryOutcome outcome;
  outcome.query_id = query.id;
  outcome.executed_sparql = query.sparql;

  if (allow_views && !materialized_.empty() && profile_.has_value()) {
    WallTimer route_timer;
    std::optional<uint32_t> best = rewriter_->PickBestView(
        query.signature, MaterializedMasks(), *profile_, routing_model);
    route_hist_->Record(route_timer.ElapsedMicros());
    if (best.has_value()) {
      WallTimer rewrite_timer;
      SOFOS_ASSIGN_OR_RETURN(std::string rewritten,
                             rewriter_->RewriteToView(query.signature, *best));
      rewrite_hist_->Record(rewrite_timer.ElapsedMicros());
      outcome.used_view = true;
      outcome.view_mask = *best;
      outcome.executed_sparql = std::move(rewritten);
      view_hits_total_->Add();
      // Per-view routing counters: hits, and the profiled row reduction a
      // hit buys (root-table rows minus the routed view's rows) — the
      // concrete "benefit" number the greedy selector optimizes for.
      const std::string label = facet_->MaskLabel(*best);
      metrics_.Counter("sofos_view_hits_total{view=\"" + label + "\"}")->Add();
      const uint64_t root_rows =
          profile_->views[facet_->FullMask()].result_rows;
      const uint64_t view_rows = profile_->views[*best].result_rows;
      if (root_rows > view_rows) {
        metrics_.Counter("sofos_view_benefit_rows_total{view=\"" + label + "\"}")
            ->Add(root_rows - view_rows);
      }
    }
  }

  sparql::QueryEngine engine(&store_, ExecOptionsFor(intra_dop));
  WallTimer timer;
  SOFOS_ASSIGN_OR_RETURN(sparql::QueryResult result,
                         engine.Execute(outcome.executed_sparql));
  outcome.micros = timer.ElapsedMicros();
  exec_hist_->Record(outcome.micros);
  queries_total_->Add();
  outcome.rows_scanned = result.stats.rows_scanned;
  outcome.result_rows = result.NumRows();
  outcome.result = std::move(result);
  return outcome;
}

Result<WorkloadReport> SofosEngine::RunWorkload(
    const std::vector<WorkloadQuery>& queries, bool allow_views,
    const CostModel* routing_model) {
  WallTimer wall;
  // Batched runner: workload queries are independent, so each one parses,
  // routes, and executes on its own task with its own Executor/ExecStats
  // (Answer() only reads engine state; the dictionary is internally
  // synchronized). Outcomes land in their input slot, which makes the
  // merged report's ordering — and with one thread, every byte of it —
  // identical to the serial loop.
  //
  // Thread budget: the pool is split between inter-query parallelism (one
  // task per query) and intra-query morsel parallelism inside each task —
  // intra = max(1, pool / in-flight). A large batch runs queries serially
  // inside (intra = 1, maximal throughput); a small batch lets each query
  // fan its scans out (minimal latency). Either way results are identical.
  const unsigned threads = num_threads();
  const size_t inflight =
      std::max<size_t>(1, std::min<size_t>(queries.size(), threads));
  const unsigned intra_dop =
      exec_threads_ != 0
          ? exec_threads_
          : static_cast<unsigned>(std::max<size_t>(1, threads / inflight));
  std::vector<QueryOutcome> outcomes(queries.size());
  SOFOS_RETURN_IF_ERROR(
      ParallelForEachStatus(pool(), queries.size(), [&](size_t i) -> Status {
        SOFOS_ASSIGN_OR_RETURN(
            outcomes[i],
            AnswerWithDop(queries[i], allow_views, routing_model, intra_dop));
        return Status::OK();
      }));

  WorkloadReport report;
  report.outcomes = std::move(outcomes);
  for (const QueryOutcome& outcome : report.outcomes) {
    report.total_micros += outcome.micros;
    report.total_rows_scanned += outcome.rows_scanned;
    if (outcome.used_view) ++report.view_hits;
  }
  if (!report.outcomes.empty()) {
    std::vector<double> times;
    times.reserve(report.outcomes.size());
    for (const auto& o : report.outcomes) times.push_back(o.micros);
    std::sort(times.begin(), times.end());
    report.mean_micros = report.total_micros / static_cast<double>(times.size());
    report.median_micros = times[times.size() / 2];
    report.p95_micros = times[std::min(times.size() - 1,
                                       static_cast<size_t>(times.size() * 0.95))];
    // Same fixed-bucket shape as the server's per-endpoint SLO metrics.
    LatencyHistogram histogram;
    for (double micros : times) histogram.Record(micros);
    report.latency = histogram.TakeSnapshot();
  }
  report.publish = publish_latency();
  report.wall_micros = wall.ElapsedMicros();
  return report;
}

Result<std::shared_ptr<const EngineSnapshot>> SofosEngine::PublishSnapshot() {
  if (!store_.finalized()) {
    return Status::Internal("PublishSnapshot requires a loaded, finalized store");
  }
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    if (snapshot_ != nullptr && snapshot_->epoch() == epoch_) return snapshot_;
  }
  // Build outside the lock: concurrent CurrentSnapshot() readers should
  // keep resolving the old epoch until the new one is complete. The store
  // clone is copy-on-write (O(shard_count) pointer copies — see
  // TripleStore::Clone), so the build cost is dominated by the profile and
  // view-record copies, not the graph.
  WallTimer publish_timer;
  auto snap = std::shared_ptr<EngineSnapshot>(new EngineSnapshot());
  snap->epoch_ = epoch_;
  snap->store_ = store_.Clone();
  snap->profile_ = profile_;
  snap->materialized_ = materialized_;
  if (facet_.has_value()) {
    snap->facet_ = facet_;
    // The rewriter binds to the snapshot's own facet copy; the snapshot
    // lives on the heap behind shared_ptr, so the pointer never dangles.
    snap->rewriter_.emplace(&*snap->facet_);
  }
  // Snapshot-served queries feed the same registry as the engine's own
  // entry points (instrument pointers are deque-stable for the registry's
  // lifetime, which spans every snapshot's).
  snap->metrics_ = &metrics_;
  snap->parse_hist_ = parse_hist_;
  snap->route_hist_ = route_hist_;
  snap->exec_hist_ = exec_hist_;
  snap->queries_total_ = queries_total_;
  snap->view_hits_total_ = view_hits_total_;
  snap->recorder_ = &recorder_;
  std::shared_ptr<const EngineSnapshot> published = std::move(snap);
  publish_hist_->Record(publish_timer.ElapsedMicros());
  publishes_total_->Add();
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = published;
  return published;
}

std::shared_ptr<const EngineSnapshot> SofosEngine::CurrentSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

Result<QueryOutcome> EngineSnapshot::Answer(const std::string& sparql,
                                            bool allow_views,
                                            TraceContext* trace) const {
  QueryOutcome outcome;
  outcome.query_id = "snapshot";
  outcome.executed_sparql = sparql;

  ScopedSpan answer_span(trace, "snapshot.answer");

  // Mirror of SofosEngine::AnswerSparql + AnswerWithDop, pinned to this
  // snapshot's state: parse errors surface, shape mismatches merely disable
  // view routing, and routing consults the snapshot's profile + views.
  ScopedSpan parse_span(trace, "engine.parse", answer_span.id());
  WallTimer parse_timer;
  SOFOS_ASSIGN_OR_RETURN(sparql::Query parsed, sparql::Parser::Parse(sparql));
  if (parse_hist_ != nullptr) parse_hist_->Record(parse_timer.ElapsedMicros());
  parse_span.Close();

  std::optional<QuerySignature> routed_signature;
  if (allow_views && rewriter_.has_value() && !materialized_.empty() &&
      profile_.has_value()) {
    ScopedSpan route_span(trace, "engine.route", answer_span.id());
    WallTimer route_timer;
    auto signature = rewriter_->AnalyzeQuery(parsed);
    if (signature.ok()) {
      routed_signature = *signature;
      std::vector<uint32_t> masks;
      masks.reserve(materialized_.size());
      for (const auto& view : materialized_) masks.push_back(view.mask);
      std::optional<uint32_t> best =
          rewriter_->PickBestView(*signature, masks, *profile_, nullptr);
      if (best.has_value()) {
        SOFOS_ASSIGN_OR_RETURN(std::string rewritten,
                               rewriter_->RewriteToView(*signature, *best));
        outcome.used_view = true;
        outcome.view_mask = *best;
        outcome.executed_sparql = std::move(rewritten);
        if (view_hits_total_ != nullptr) view_hits_total_->Add();
        if (metrics_ != nullptr && facet_.has_value()) {
          metrics_
              ->Counter("sofos_view_hits_total{view=\"" +
                        facet_->MaskLabel(*best) + "\"}")
              ->Add();
        }
      }
    }
    if (route_hist_ != nullptr) route_hist_->Record(route_timer.ElapsedMicros());
  }

  sparql::ExecOptions options;  // default: serial batch engine, dop 1
  ScopedSpan exec_span(trace, "engine.exec", answer_span.id());
  options.trace = trace;
  options.trace_parent = exec_span.id();
  sparql::QueryEngine engine(&store_, options);
  WallTimer timer;
  SOFOS_ASSIGN_OR_RETURN(sparql::QueryResult result,
                         engine.Execute(outcome.executed_sparql));
  outcome.micros = timer.ElapsedMicros();
  exec_span.Close();
  if (exec_hist_ != nullptr) exec_hist_->Record(outcome.micros);
  if (queries_total_ != nullptr) queries_total_->Add();
  outcome.rows_scanned = result.stats.rows_scanned;
  outcome.result_rows = result.NumRows();
  outcome.result = std::move(result);

  if (recorder_ != nullptr && recorder_->enabled()) {
    RecordedQuery entry;
    entry.normalized_sparql = NormalizeSparql(sparql);
    entry.used_view = outcome.used_view;
    entry.view_mask = outcome.view_mask;
    entry.epoch = epoch_;
    entry.micros = outcome.micros;
    entry.result_rows = outcome.result_rows;
    if (routed_signature.has_value()) {
      entry.signature = *routed_signature;
      entry.has_signature = true;
    } else if (rewriter_.has_value()) {
      // Routing was skipped (views disallowed or none materialized); the
      // exported workload still wants the shape, so analyze it here.
      auto signature = rewriter_->AnalyzeQuery(parsed);
      if (signature.ok()) {
        entry.signature = std::move(signature).value();
        entry.has_signature = true;
      }
    }
    recorder_->Record(std::move(entry));
  }
  return outcome;
}

Result<std::string> EngineSnapshot::Explain(const std::string& sparql) const {
  sparql::QueryEngine engine(&store_);
  return engine.Explain(sparql);
}

Result<std::string> EngineSnapshot::Analyze(const std::string& sparql,
                                            bool allow_views) const {
  // Route exactly like Answer() so the analyzed plan is the plan a real
  // query would run, then execute with per-operator instrumentation.
  std::string executed = sparql;
  std::string routed_line;
  SOFOS_ASSIGN_OR_RETURN(sparql::Query parsed, sparql::Parser::Parse(sparql));
  if (allow_views && rewriter_.has_value() && !materialized_.empty() &&
      profile_.has_value()) {
    auto signature = rewriter_->AnalyzeQuery(parsed);
    if (signature.ok()) {
      std::vector<uint32_t> masks;
      masks.reserve(materialized_.size());
      for (const auto& view : materialized_) masks.push_back(view.mask);
      std::optional<uint32_t> best =
          rewriter_->PickBestView(*signature, masks, *profile_, nullptr);
      if (best.has_value()) {
        SOFOS_ASSIGN_OR_RETURN(executed,
                               rewriter_->RewriteToView(*signature, *best));
        routed_line = "ROUTED view=" + facet_->MaskLabel(*best) + "\n";
      }
    }
  }
  sparql::QueryEngine engine(&store_);  // serial, dop 1 like Answer()
  SOFOS_ASSIGN_OR_RETURN(std::string text, engine.Analyze(executed));
  return routed_line + text;
}

std::string EngineSnapshot::RootViewSparql() const {
  return facet_->ViewQuerySparql(facet_->FullMask());
}

Result<QueryOutcome> SofosEngine::AnswerSparql(const std::string& sparql,
                                               bool allow_views,
                                               const CostModel* routing_model) {
  if (!facet_.has_value()) return Status::Internal("no facet set");
  WorkloadQuery query;
  query.id = "adhoc";
  query.sparql = sparql;

  // Surface parse errors immediately (they are user errors, not routing
  // decisions); shape mismatches merely disable view routing.
  WallTimer parse_timer;
  SOFOS_ASSIGN_OR_RETURN(sparql::Query parsed, sparql::Parser::Parse(sparql));
  parse_hist_->Record(parse_timer.ElapsedMicros());
  auto signature = rewriter_->AnalyzeQuery(parsed);
  if (signature.ok()) {
    query.signature = std::move(signature).value();
    return Answer(query, allow_views, routing_model);
  }
  return Answer(query, /*allow_views=*/false, routing_model);
}

Result<std::string> SofosEngine::ExplainSparql(const std::string& sparql) {
  if (!store_.finalized()) {
    return Status::Internal("ExplainSparql requires a loaded store");
  }
  sparql::QueryEngine engine(&store_, ExecOptionsFor(/*intra_dop=*/0));
  return engine.Explain(sparql);
}

double SofosEngine::StorageAmplification() const {
  if (base_snapshot_.empty()) return 1.0;
  return static_cast<double>(store_.NumTriples()) /
         static_cast<double>(base_snapshot_.size());
}

}  // namespace core
}  // namespace sofos
