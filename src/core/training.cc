#include "core/training.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "sparql/query_engine.h"

namespace sofos {
namespace core {

namespace {

/// Median-of-n timing of one SPARQL query.
Result<double> MedianMicros(sparql::QueryEngine* engine, const std::string& query,
                            int repetitions) {
  std::vector<double> times;
  for (int i = 0; i < std::max(1, repetitions); ++i) {
    WallTimer timer;
    SOFOS_ASSIGN_OR_RETURN(sparql::QueryResult result, engine->Execute(query));
    (void)result;
    times.push_back(timer.ElapsedMicros());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

Result<std::vector<TrainingSample>> CollectRuntimeSamples(
    SofosEngine* engine, const LearnedTrainingOptions& options) {
  if (!engine->has_facet()) return Status::Internal("no facet set");
  if (engine->profile() == nullptr) {
    return Status::Internal("CollectRuntimeSamples requires Profile() first");
  }
  if (!engine->materialized().empty()) {
    return Status::InvalidArgument(
        "training must start from an unexpanded graph (drop views first)");
  }
  const Facet& facet = engine->facet();
  const Lattice& lattice = engine->lattice();

  // The feature extractor is the same one the LearnedCostModel will use; a
  // throwaway zero-weight model gives access to Features().
  auto scratch_mlp = std::make_shared<learned::Mlp>(
      std::vector<int>{learned::FeatureEncoder().dim(), 1}, options.seed);
  LearnedCostModel featurizer(scratch_mlp, learned::FeatureEncoder(), &facet,
                              engine->store());

  // Materialize the full lattice (the demo's "Exploration of the Full
  // Lattice" step) and measure each view's canonical query answered from
  // its own materialization.
  std::vector<uint32_t> all_masks = lattice.AllMasks();
  SOFOS_ASSIGN_OR_RETURN(auto views, engine->MaterializeViews(all_masks));
  (void)views;

  Rewriter rewriter(&facet);
  sparql::QueryEngine qe(engine->store());
  std::vector<TrainingSample> samples;

  for (uint32_t mask : all_masks) {
    QuerySignature signature;
    signature.group_mask = mask;
    SOFOS_ASSIGN_OR_RETURN(std::string rewritten,
                           rewriter.RewriteToView(signature, mask));
    SOFOS_ASSIGN_OR_RETURN(double micros,
                           MedianMicros(&qe, rewritten, options.repetitions));
    TrainingSample sample;
    sample.mask = mask;
    sample.features = featurizer.Features(mask);
    sample.label_log_micros = std::log1p(micros);
    samples.push_back(std::move(sample));
  }

  // Base-graph samples: canonical queries executed over the raw pattern,
  // encoded with the sentinel "base" features. These teach the model that
  // bypassing views is slow.
  for (uint32_t mask : {facet.FullMask(), 0u}) {
    SOFOS_ASSIGN_OR_RETURN(
        double micros,
        MedianMicros(&qe, facet.CanonicalQuerySparql(mask), options.repetitions));
    TrainingSample sample;
    sample.mask = mask;
    sample.is_base = true;
    sample.features = featurizer.BaseFeatures();
    sample.label_log_micros = std::log1p(micros);
    samples.push_back(std::move(sample));
  }

  SOFOS_RETURN_IF_ERROR(engine->DropMaterializedViews());
  return samples;
}

Result<std::shared_ptr<learned::Mlp>> TrainLearnedModel(
    SofosEngine* engine, const LearnedTrainingOptions& options) {
  SOFOS_ASSIGN_OR_RETURN(std::vector<TrainingSample> samples,
                         CollectRuntimeSamples(engine, options));
  if (samples.empty()) return Status::Internal("no training samples collected");

  std::vector<int> sizes;
  sizes.push_back(static_cast<int>(samples[0].features.size()));
  for (int h : options.hidden) sizes.push_back(h);
  sizes.push_back(1);

  auto mlp = std::make_shared<learned::Mlp>(sizes, options.seed);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (const auto& sample : samples) {
    xs.push_back(sample.features);
    ys.push_back(sample.label_log_micros);
  }
  learned::TrainConfig config = options.train;
  config.epochs = options.epochs;
  config.seed = options.seed;
  SOFOS_ASSIGN_OR_RETURN(double mse, mlp->Train(xs, ys, config));
  (void)mse;
  engine->SetLearnedModel(mlp);
  return mlp;
}

}  // namespace core
}  // namespace sofos
