#ifndef SOFOS_CORE_LATTICE_H_
#define SOFOS_CORE_LATTICE_H_

#include <cstdint>
#include <vector>

#include "core/facet.h"

namespace sofos {
namespace core {

/// The lattice of views V(F) induced by a facet (paper §3): one view per
/// subset of the grouping variables, ordered by set inclusion. The root
/// (FullMask) is the finest view; the apex (mask 0) is the grand total.
///
/// Views are identified by bitmask throughout sofos; the lattice provides
/// the order-theoretic helpers used by view selection and query routing.
class Lattice {
 public:
  explicit Lattice(const Facet* facet) : facet_(facet) {}

  const Facet& facet() const { return *facet_; }

  /// Number of views, 2^d.
  size_t size() const { return 1ull << facet_->num_dims(); }

  /// All masks, apex first (0 .. 2^d - 1).
  std::vector<uint32_t> AllMasks() const;

  /// True iff a view with dimension set `view_mask` can answer a query that
  /// needs the dimensions `needed_mask` (grouping ∪ filtering): the view
  /// must retain every needed dimension.
  static bool CanAnswer(uint32_t view_mask, uint32_t needed_mask) {
    return (view_mask & needed_mask) == needed_mask;
  }

  /// Direct children: masks with exactly one dimension removed.
  std::vector<uint32_t> Children(uint32_t mask) const;

  /// Direct parents: masks with exactly one dimension added.
  std::vector<uint32_t> Parents(uint32_t mask) const;

  /// All views answerable by `mask` (its downset, including itself).
  std::vector<uint32_t> AnswerableBy(uint32_t mask) const;

  /// Number of grouped dimensions in `mask`.
  static int Level(uint32_t mask) { return __builtin_popcount(mask); }

  /// ASCII rendering of the lattice by level with a marker on selected
  /// views — the textual twin of the demo GUI's lattice panel (Figure 3 ①/③).
  std::string Render(const std::vector<uint32_t>& selected = {}) const;

 private:
  const Facet* facet_;
};

}  // namespace core
}  // namespace sofos

#endif  // SOFOS_CORE_LATTICE_H_
