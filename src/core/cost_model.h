#ifndef SOFOS_CORE_COST_MODEL_H_
#define SOFOS_CORE_COST_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/facet.h"
#include "core/profiler.h"
#include "learned/features.h"
#include "learned/mlp.h"

namespace sofos {

class ThreadPool;

namespace core {

/// The six cost models SOFOS implements and compares (paper §3.1). A cost
/// model predicts the cost C(V) of answering a query from a candidate view;
/// the greedy selector then maximizes the classic HRU benefit under it.
enum class CostModelKind {
  kRandom,         // C(V) = 1 — yields a random k-subset
  kTripleCount,    // C(V) = |G_V| — the relational tuple-count adaptation
  kAggValueCount,  // C(V) = |V(G)| — number of aggregated values
  kNodeCount,      // C(V) = |I_V ∪ B_V ∪ L_V|
  kLearned,        // C(V) = f(encode(V)) — deep regression on runtimes
  kUserDefined,    // the user provides costs / picks views directly
};

std::string CostModelKindName(CostModelKind kind);
Result<CostModelKind> ParseCostModelKind(const std::string& name);

/// All registered kinds, in paper order.
std::vector<CostModelKind> AllCostModelKinds();

/// Thread-safety contract: ViewCost() and BaseCost() must be pure const —
/// deterministic in (mask, profile) with no observable mutable state — so
/// the greedy selector may evaluate candidates concurrently and cache the
/// per-view costs. Every model below satisfies this (the learned model's
/// Mlp::Predict is a const forward pass over frozen weights).
class CostModel {
 public:
  virtual ~CostModel() = default;
  virtual CostModelKind kind() const = 0;
  virtual std::string name() const { return CostModelKindName(kind()); }

  /// Estimated cost of answering a query from the view `mask`.
  virtual double ViewCost(uint32_t mask, const LatticeProfile& profile) const = 0;

  /// Estimated cost of answering a query from the raw graph (no view).
  virtual double BaseCost(const LatticeProfile& profile) const = 0;

  /// True for models whose estimates carry no information (Random): the
  /// selector then falls back to a seeded random subset, matching the
  /// paper's description.
  virtual bool IsConstant() const { return false; }
};

/// C(V) = 1 for every view.
class RandomCostModel : public CostModel {
 public:
  CostModelKind kind() const override { return CostModelKind::kRandom; }
  double ViewCost(uint32_t, const LatticeProfile&) const override { return 1.0; }
  double BaseCost(const LatticeProfile&) const override { return 1.0; }
  bool IsConstant() const override { return true; }
};

/// C(V) = |G_V|: the direct adaptation of relational tuple counting (and
/// the MARVEL cost model) — the number of RDF triples in the view's graph.
class TripleCountCostModel : public CostModel {
 public:
  CostModelKind kind() const override { return CostModelKind::kTripleCount; }
  double ViewCost(uint32_t mask, const LatticeProfile& profile) const override {
    return static_cast<double>(profile.ForMask(mask).encoded_triples);
  }
  double BaseCost(const LatticeProfile& profile) const override {
    return static_cast<double>(profile.base_triples);
  }
};

/// C(V) = |V(G)|: the number of results of the view query.
class AggValueCountCostModel : public CostModel {
 public:
  CostModelKind kind() const override { return CostModelKind::kAggValueCount; }
  double ViewCost(uint32_t mask, const LatticeProfile& profile) const override {
    return static_cast<double>(profile.ForMask(mask).result_rows);
  }
  double BaseCost(const LatticeProfile& profile) const override {
    return static_cast<double>(profile.base_pattern_rows);
  }
};

/// C(V) = |I_V ∪ B_V ∪ L_V|: the number of node values in the view graph.
class NodeCountCostModel : public CostModel {
 public:
  CostModelKind kind() const override { return CostModelKind::kNodeCount; }
  double ViewCost(uint32_t mask, const LatticeProfile& profile) const override {
    return static_cast<double>(profile.ForMask(mask).encoded_nodes);
  }
  double BaseCost(const LatticeProfile& profile) const override {
    return static_cast<double>(profile.base_nodes);
  }
};

/// C(V) = f(encode(V)): a trained regression over the view encoding
/// (predicates + statistics + dims + aggregate kind), following Ortiz et
/// al. Predictions are clamped to be non-negative.
class LearnedCostModel : public CostModel {
 public:
  /// `mlp` must accept vectors of `encoder.dim()` features; `facet` and the
  /// statistics snapshot describe the deployment graph.
  LearnedCostModel(std::shared_ptr<learned::Mlp> mlp,
                   learned::FeatureEncoder encoder, const Facet* facet,
                   const TripleStore* store);

  CostModelKind kind() const override { return CostModelKind::kLearned; }
  double ViewCost(uint32_t mask, const LatticeProfile& profile) const override;
  double BaseCost(const LatticeProfile& profile) const override;

  /// The feature vector used for a given mask (exposed for tests/benches).
  std::vector<double> Features(uint32_t mask) const;

  /// The sentinel feature vector representing "answer from the base graph"
  /// (one grouped dimension beyond the facet's total); used both by
  /// BaseCost() and by the training collector for base-graph samples.
  std::vector<double> BaseFeatures() const;

 private:
  std::shared_ptr<learned::Mlp> mlp_;
  learned::FeatureEncoder encoder_;
  const Facet* facet_;
  learned::ViewFeatureInput base_input_;  // predicate stats snapshot
};

/// Evaluates model.ViewCost for every mask of the profile's lattice, fanned
/// out over `pool` (serial when null). costs[mask] is identical to a serial
/// evaluation — the contract above makes ViewCost a pure function — so
/// callers (greedy selection, the cost-model benches) can precompute once
/// and index freely.
std::vector<double> EvaluateAllViewCosts(const CostModel& model,
                                         const LatticeProfile& profile,
                                         ThreadPool* pool = nullptr);

/// The user acts as the cost function: explicit per-view costs, with an
/// optional default for unlisted views.
class UserDefinedCostModel : public CostModel {
 public:
  explicit UserDefinedCostModel(std::unordered_map<uint32_t, double> costs,
                                double default_cost = 1e12,
                                double base_cost = 1e12)
      : costs_(std::move(costs)),
        default_cost_(default_cost),
        base_cost_(base_cost) {}

  CostModelKind kind() const override { return CostModelKind::kUserDefined; }
  double ViewCost(uint32_t mask, const LatticeProfile&) const override {
    auto it = costs_.find(mask);
    return it == costs_.end() ? default_cost_ : it->second;
  }
  double BaseCost(const LatticeProfile&) const override { return base_cost_; }

 private:
  std::unordered_map<uint32_t, double> costs_;
  double default_cost_;
  double base_cost_;
};

}  // namespace core
}  // namespace sofos

#endif  // SOFOS_CORE_COST_MODEL_H_
