#include "core/selection.h"

#include <algorithm>
#include <limits>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace sofos {
namespace core {

bool SelectionResult::Contains(uint32_t mask) const {
  return std::find(views.begin(), views.end(), mask) != views.end();
}

std::string SelectionResult::ToString(const Facet& facet) const {
  std::string out = model_name + ": [";
  for (size_t i = 0; i < views.size(); ++i) {
    if (i) out += ", ";
    out += facet.MaskLabel(views[i]);
  }
  out += "]";
  return out;
}

QueryWeights UniformWeights(size_t lattice_size) {
  return QueryWeights(lattice_size, 1.0 / static_cast<double>(lattice_size));
}

SelectionResult GreedySelector::SelectTopK(size_t k, const QueryWeights* weights,
                                           uint64_t seed) const {
  return SelectImpl(k, std::numeric_limits<uint64_t>::max(), weights, seed);
}

SelectionResult GreedySelector::SelectWithinBytes(uint64_t byte_budget,
                                                  const QueryWeights* weights,
                                                  uint64_t seed) const {
  return SelectImpl(lattice_->size(), byte_budget, weights, seed);
}

SelectionResult GreedySelector::SelectImpl(size_t max_views, uint64_t byte_budget,
                                           const QueryWeights* weights,
                                           uint64_t seed) const {
  WallTimer timer;
  SelectionResult result;
  result.model_name = model_->name();
  const size_t n = lattice_->size();
  max_views = std::min(max_views, n);

  // Constant models carry no information: random k-subset (paper §3.1).
  if (model_->IsConstant()) {
    Rng rng(seed);
    std::vector<size_t> picks = rng.SampleIndices(n, max_views);
    uint64_t used = 0;
    for (size_t pick : picks) {
      uint32_t mask = static_cast<uint32_t>(pick);
      uint64_t bytes = profile_->ForMask(mask).encoded_bytes;
      if (used + bytes > byte_budget) continue;
      used += bytes;
      result.views.push_back(mask);
      result.benefits.push_back(0.0);
    }
    result.selection_micros = timer.ElapsedMicros();
    return result;
  }

  QueryWeights uniform;
  if (weights == nullptr) {
    uniform = UniformWeights(n);
    weights = &uniform;
  }

  // Cost models are pure functions of (mask, profile) — see the
  // const-thread-safety contract in core/cost_model.h — so evaluate each
  // view's cost exactly once, fanned out over the pool. This also turns
  // O(rounds · n) model evaluations (expensive for the learned model) into
  // O(n).
  std::vector<double> view_cost = EvaluateAllViewCosts(*model_, *profile_, pool_);

  // cur[w] = cheapest current way to answer a query needing exactly w.
  std::vector<double> cur(n, model_->BaseCost(*profile_));
  std::vector<bool> selected(n, false);
  uint64_t used_bytes = 0;

  // Per-round candidate benefits. Each candidate's evaluation reads only
  // round-constant state (cur, weights, the profile) and writes its own
  // slot, so the fan-out is race-free and the values are independent of
  // scheduling; the per-candidate summation order over AnswerableBy(v) is
  // unchanged from the serial code, keeping every double bit-identical.
  std::vector<double> benefit(n, 0.0);
  std::vector<char> eligible(n, 0);

  for (size_t round = 0; round < max_views; ++round) {
    ParallelFor(pool_, n, [&](size_t index) {
      uint32_t v = static_cast<uint32_t>(index);
      eligible[v] = 0;
      benefit[v] = 0.0;
      if (selected[v]) return;
      uint64_t bytes = profile_->ForMask(v).encoded_bytes;
      if (used_bytes + bytes > byte_budget) return;
      double sum = 0.0;
      for (uint32_t w : lattice_->AnswerableBy(v)) {
        double gain = cur[w] - view_cost[v];
        if (gain > 0) sum += (*weights)[w] * gain;
      }
      if (penalty_.update_rate > 0) {
        // Update-aware refinement: charge the candidate its expected
        // maintenance cost (see MaintenancePenalty). Guarded so the
        // update-oblivious path stays bit-identical.
        const double per_row = penalty_.bindings_per_update /
                               std::max(1.0, penalty_.root_rows);
        sum = std::max(
            0.0, sum - penalty_.update_rate * per_row * view_cost[v]);
      }
      benefit[v] = sum;
      eligible[v] = 1;
    });

    // Serial argmax in ascending mask order with the original tie-break:
    // toward the cheaper view, then the smaller mask, keeping selection
    // fully deterministic (and identical to the serial scan).
    double best_benefit = -1.0;
    double best_cost = 0.0;
    int best_mask = -1;
    for (uint32_t v = 0; v < n; ++v) {
      if (!eligible[v]) continue;
      if (benefit[v] > best_benefit ||
          (benefit[v] == best_benefit && best_mask >= 0 &&
           view_cost[v] < best_cost)) {
        best_benefit = benefit[v];
        best_cost = view_cost[v];
        best_mask = static_cast<int>(v);
      }
    }
    if (best_mask < 0) break;  // nothing fits the byte budget

    uint32_t mask = static_cast<uint32_t>(best_mask);
    selected[mask] = true;
    used_bytes += profile_->ForMask(mask).encoded_bytes;
    result.views.push_back(mask);
    result.benefits.push_back(best_benefit);
    for (uint32_t w : lattice_->AnswerableBy(mask)) {
      cur[w] = std::min(cur[w], view_cost[mask]);
    }
  }
  result.selection_micros = timer.ElapsedMicros();
  return result;
}

SelectionResult UserSelection(std::vector<uint32_t> masks) {
  SelectionResult result;
  result.model_name = "user";
  result.views = std::move(masks);
  result.benefits.assign(result.views.size(), 0.0);
  return result;
}

Result<SelectionResult> OracleSelection(
    const Lattice& lattice, size_t k,
    const std::vector<std::vector<double>>& answer_cost,
    const QueryWeights* weights) {
  const size_t n = lattice.size();
  if (answer_cost.size() != n) {
    return Status::InvalidArgument("answer_cost must have one row per view");
  }
  for (const auto& row : answer_cost) {
    if (row.size() != n + 1) {
      return Status::InvalidArgument(
          "answer_cost rows must have 2^d + 1 columns (views + base)");
    }
  }
  k = std::min(k, n);
  QueryWeights uniform;
  if (weights == nullptr) {
    uniform = UniformWeights(n);
    weights = &uniform;
  }

  WallTimer timer;
  std::vector<size_t> best;
  double best_score = std::numeric_limits<double>::infinity();

  // Enumerate all C(n, k) subsets with a standard combination counter.
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    double score = 0.0;
    for (uint32_t w = 0; w < n; ++w) {
      double cheapest = answer_cost[w][n];  // base graph
      for (size_t i = 0; i < k; ++i) {
        uint32_t v = static_cast<uint32_t>(idx[i]);
        if (Lattice::CanAnswer(v, w)) {
          cheapest = std::min(cheapest, answer_cost[w][v]);
        }
      }
      score += (*weights)[w] * cheapest;
    }
    if (score < best_score) {
      best_score = score;
      best = idx;
    }
    // Advance to the next combination; stop when exhausted.
    bool advanced = false;
    for (size_t i = k; i-- > 0;) {
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }

  SelectionResult result;
  result.model_name = "oracle";
  for (size_t m : best) result.views.push_back(static_cast<uint32_t>(m));
  result.benefits.assign(result.views.size(), best_score);
  result.selection_micros = timer.ElapsedMicros();
  return result;
}

}  // namespace core
}  // namespace sofos
