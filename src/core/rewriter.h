#ifndef SOFOS_CORE_REWRITER_H_
#define SOFOS_CORE_REWRITER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/cost_model.h"
#include "core/facet.h"
#include "core/profiler.h"
#include "core/workload_types.h"
#include "sparql/ast.h"

namespace sofos {
namespace core {

/// The query-rewriting half of the Sofos online module (paper §3.2): given
/// an analytical query targeting the facet, pick the best usable
/// materialized view and translate the query into one over the view's
/// blank-node encoding in the expanded graph G+. "The translation
/// straightforwardly substitutes aggregate variables with the blank nodes
/// representing the aggregation and reformulates triple patterns
/// accordingly."
class Rewriter {
 public:
  explicit Rewriter(const Facet* facet) : facet_(facet) {}

  /// Chooses the cheapest view in `available` that can answer `signature`
  /// (needs ⊆ view dims), ranked by `model` over `profile`; falls back to
  /// result-row count when model is null. Returns nullopt when no view
  /// qualifies (the query must then run on the base graph).
  std::optional<uint32_t> PickBestView(const QuerySignature& signature,
                                       const std::vector<uint32_t>& available,
                                       const LatticeProfile& profile,
                                       const CostModel* model = nullptr) const;

  /// Rewrites the query described by `signature` into SPARQL over the
  /// materialized encoding of view `mask`. Roll-up: SUM→SUM(value),
  /// COUNT→SUM(value), MIN/MAX→MIN/MAX(value), AVG→SUM(value)/SUM(rows).
  Result<std::string> RewriteToView(const QuerySignature& signature,
                                    uint32_t mask) const;

  /// Extracts the signature of a parsed analytical query written against
  /// the facet's canonical variable names (the form the demo's workload
  /// generator produces): GROUP BY vars must be facet dims, FILTERs must
  /// constrain single dims.
  Result<QuerySignature> AnalyzeQuery(const sparql::Query& query) const;

 private:
  const Facet* facet_;
};

}  // namespace core
}  // namespace sofos

#endif  // SOFOS_CORE_REWRITER_H_
