#ifndef SOFOS_CORE_MATERIALIZER_H_
#define SOFOS_CORE_MATERIALIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/facet.h"
#include "rdf/triple_store.h"
#include "sparql/query_engine.h"

namespace sofos {

class ThreadPool;

namespace core {

/// Record of one materialized view inside the expanded graph G+.
struct MaterializedView {
  uint32_t mask = 0;
  std::string view_iri;
  uint64_t rows = 0;           // result rows encoded
  uint64_t triples_added = 0;  // RDF triples added to G+
  uint64_t nodes_added = 0;    // fresh blank nodes
  double build_micros = 0.0;
};

/// Materializes lattice views into the store, generalizing the MARVEL
/// encoding (paper §3.1): each view row becomes a fresh blank node
///
///   _:v  sofos:view       <http://sofos.ics.forth.gr/view/<facet>/<mask>>
///   _:v  sofos:dim_<x>    <binding of grouped dimension x>   (per dim)
///   _:v  sofos:value      "<aggregate value>"                (SUM for AVG)
///   _:v  sofos:rows       "<contributing row count>"
///
/// The sofos: vocabulary is disjoint from application predicates, so
/// original queries over G+ keep their answers; the rows counter makes
/// COUNT and AVG roll-ups exact.
class Materializer {
 public:
  Materializer(TripleStore* store, const Facet* facet)
      : store_(store), facet_(facet) {}

  /// Computes the view query over the current graph and appends its
  /// encoding. The store is left finalized.
  Result<MaterializedView> Materialize(uint32_t mask);

  /// Materializes a batch with a single re-finalization at the end
  /// (cheaper than per-view Finalize for multi-view selections). When
  /// `pool` is non-null the per-view queries run concurrently (each one
  /// only does const store scans plus synchronized dictionary interning)
  /// and the final Finalize sorts on the pool; the encoding phase stays
  /// serial in mask order, so results — including blank-node labels — are
  /// identical to the serial run.
  Result<std::vector<MaterializedView>> MaterializeAll(
      const std::vector<uint32_t>& masks, ThreadPool* pool = nullptr);

 private:
  /// Appends the blank-node encoding of one computed view result.
  MaterializedView Encode(uint32_t mask, const sparql::QueryResult& result);

  TripleStore* store_;
  const Facet* facet_;
  uint64_t next_blank_ = 0;
};

}  // namespace core
}  // namespace sofos

#endif  // SOFOS_CORE_MATERIALIZER_H_
