#ifndef SOFOS_CORE_TRAINING_H_
#define SOFOS_CORE_TRAINING_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "learned/mlp.h"

namespace sofos {
namespace core {

/// Offline training of the learned cost model (paper §3.1): "In the offline
/// training phase, the model takes the encoding of either a given workload
/// or randomly generated queries and their running time."
struct LearnedTrainingOptions {
  /// Hidden layer widths of the regression network.
  std::vector<int> hidden = {32, 16};
  int epochs = 300;
  /// Timing repetitions per sample; the median is used as the label.
  int repetitions = 3;
  uint64_t seed = 42;
  learned::TrainConfig train;  // optimizer settings (learning rate etc.)
};

/// One (features, label) pair; labels are log1p(micros) for scale stability.
struct TrainingSample {
  uint32_t mask = 0;       // view the timing belongs to; FullMask+sentinel for base
  bool is_base = false;    // base-graph sample
  std::vector<double> features;
  double label_log_micros = 0.0;
};

/// Materializes the full lattice, measures the canonical query of every
/// view answered from its own materialization (plus base-graph samples),
/// drops the views again, and returns the samples. The engine must have a
/// store, facet and profile.
Result<std::vector<TrainingSample>> CollectRuntimeSamples(
    SofosEngine* engine, const LearnedTrainingOptions& options);

/// CollectRuntimeSamples + Mlp training; registers the model on the engine
/// (after which MakeModel(kLearned) works) and also returns it.
Result<std::shared_ptr<learned::Mlp>> TrainLearnedModel(
    SofosEngine* engine, const LearnedTrainingOptions& options = {});

}  // namespace core
}  // namespace sofos

#endif  // SOFOS_CORE_TRAINING_H_
