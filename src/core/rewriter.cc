#include "core/rewriter.h"

#include <algorithm>
#include <limits>

#include "common/string_util.h"
#include "rdf/vocab.h"

namespace sofos {
namespace core {

using sparql::AggKind;
using sparql::Expr;

std::optional<uint32_t> Rewriter::PickBestView(
    const QuerySignature& signature, const std::vector<uint32_t>& available,
    const LatticeProfile& profile, const CostModel* model) const {
  uint32_t needed = signature.NeededMask();
  std::optional<uint32_t> best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (uint32_t mask : available) {
    if ((mask & needed) != needed) continue;
    double cost = model != nullptr
                      ? model->ViewCost(mask, profile)
                      : static_cast<double>(profile.ForMask(mask).result_rows);
    if (cost < best_cost || (cost == best_cost && best.has_value() && mask < *best)) {
      best_cost = cost;
      best = mask;
    }
  }
  return best;
}

Result<std::string> Rewriter::RewriteToView(const QuerySignature& signature,
                                            uint32_t mask) const {
  uint32_t needed = signature.NeededMask();
  if ((mask & needed) != needed) {
    return Status::InvalidArgument(StrFormat(
        "view %s cannot answer a query needing %s",
        facet_->MaskLabel(mask).c_str(), facet_->MaskLabel(needed).c_str()));
  }

  // SELECT clause: grouped dims + the rolled-up aggregate.
  std::string select = "SELECT";
  std::string group;
  for (size_t d = 0; d < facet_->num_dims(); ++d) {
    if ((signature.group_mask >> d) & 1u) {
      select += " ?" + facet_->dims()[d].var;
      group += " ?" + facet_->dims()[d].var;
    }
  }
  std::string rollup;
  bool need_rows = false;
  switch (facet_->agg_kind()) {
    case AggKind::kSum:
    case AggKind::kCount:
      rollup = "(SUM(?__v) AS ?agg)";
      break;
    case AggKind::kMin:
      rollup = "(MIN(?__v) AS ?agg)";
      break;
    case AggKind::kMax:
      rollup = "(MAX(?__v) AS ?agg)";
      break;
    case AggKind::kAvg:
      rollup = "((SUM(?__v) / SUM(?__n)) AS ?agg)";
      need_rows = true;
      break;
  }
  select += " " + rollup;

  // WHERE clause over the view encoding. Dimensions needed by the query are
  // bound to their canonical variable names; other view dimensions stay
  // untouched (their triples exist but are not constrained).
  std::string where = " WHERE {\n";
  where += "  ?__b <" + std::string(vocab::kSofosView) + "> <" +
           vocab::ViewIri(facet_->name(), mask) + "> .\n";
  for (size_t d = 0; d < facet_->num_dims(); ++d) {
    if ((needed >> d) & 1u) {
      where += "  ?__b <" + vocab::DimPredicate(facet_->dims()[d].var) + "> ?" +
               facet_->dims()[d].var + " .\n";
    }
  }
  where += "  ?__b <" + std::string(vocab::kSofosValue) + "> ?__v .\n";
  if (need_rows) {
    where += "  ?__b <" + std::string(vocab::kSofosRows) + "> ?__n .\n";
  }
  for (const DimConstraint& c : signature.constraints) {
    if (c.usage == DimUsage::kFilteredEq || c.usage == DimUsage::kFilteredRange) {
      where += "  FILTER(" + c.filter_sparql + ")\n";
    }
  }
  where += "}";

  std::string out = select + where;
  if (!group.empty()) out += " GROUP BY" + group;
  return out;
}

Result<QuerySignature> Rewriter::AnalyzeQuery(const sparql::Query& query) const {
  // The query must be an instance of the facet template: same basic graph
  // pattern (as a set) and the facet's aggregate over the facet's variable.
  // Anything else is not answerable from the facet's views — routing a
  // structurally different query to a view would silently change answers.
  {
    std::vector<std::string> query_pattern, facet_pattern;
    for (const auto& tp : query.where) query_pattern.push_back(tp.ToString());
    for (const auto& tp : facet_->pattern()) facet_pattern.push_back(tp.ToString());
    std::sort(query_pattern.begin(), query_pattern.end());
    std::sort(facet_pattern.begin(), facet_pattern.end());
    if (query_pattern != facet_pattern) {
      return Status::InvalidArgument(
          "query pattern does not match the facet template of " +
          facet_->name());
    }
  }
  {
    const sparql::Expr* agg = nullptr;
    for (const auto& item : query.select) {
      if (item.expr != nullptr && item.expr->ContainsAggregate()) {
        if (agg != nullptr || item.expr->kind != sparql::Expr::Kind::kAggregate) {
          return Status::InvalidArgument(
              "facet queries carry exactly one plain aggregate");
        }
        agg = item.expr.get();
      }
    }
    if (agg == nullptr || agg->count_star || agg->agg != facet_->agg_kind() ||
        agg->agg_arg == nullptr ||
        agg->agg_arg->kind != sparql::Expr::Kind::kVar ||
        agg->agg_arg->var != facet_->agg_var()) {
      return Status::InvalidArgument(
          "query aggregate does not match the facet's " +
          sparql::AggKindName(facet_->agg_kind()) + "(?" + facet_->agg_var() +
          ")");
    }
  }

  QuerySignature signature;
  for (const std::string& var : query.group_by) {
    int dim = facet_->DimIndex(var);
    if (dim < 0) {
      return Status::InvalidArgument(
          "GROUP BY variable ?" + var + " is not a dimension of facet " +
          facet_->name());
    }
    signature.group_mask |= 1u << dim;
  }
  for (const auto& filter : query.filters) {
    std::vector<std::string> vars;
    filter->CollectVars(&vars);
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    if (vars.size() != 1) {
      return Status::InvalidArgument(
          "facet query filters must constrain exactly one dimension: " +
          filter->ToString());
    }
    int dim = facet_->DimIndex(vars[0]);
    if (dim < 0) {
      return Status::InvalidArgument("FILTER variable ?" + vars[0] +
                                     " is not a dimension of facet " +
                                     facet_->name());
    }
    signature.filter_mask |= 1u << dim;
    DimConstraint constraint;
    constraint.dim = dim;
    // Equality against a constant is the common case; anything else is
    // treated as a range-style constraint. Either way the original filter
    // expression is reused verbatim in the rewrite.
    constraint.usage = (filter->kind == Expr::Kind::kBinary &&
                        filter->bop == sparql::BinaryOp::kEq)
                           ? DimUsage::kFilteredEq
                           : DimUsage::kFilteredRange;
    std::string text = filter->ToString();
    // Strip one layer of outer parentheses for readability.
    if (text.size() > 2 && text.front() == '(' && text.back() == ')') {
      text = text.substr(1, text.size() - 2);
    }
    constraint.filter_sparql = text;
    signature.constraints.push_back(std::move(constraint));
  }
  return signature;
}

}  // namespace core
}  // namespace sofos
