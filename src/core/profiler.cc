#include "core/profiler.h"

#include <map>
#include <set>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "sparql/query_engine.h"

namespace sofos {
namespace core {

namespace {

/// Byte estimate of the materialized encoding: six index copies of each
/// triple plus the payload of distinct term lexicals.
uint64_t EstimateBytes(uint64_t triples, uint64_t nodes) {
  return triples * sizeof(Triple) * 6 + nodes * 48;
}

/// Exact stats of one view from its query result. Every result row turns
/// into one blank node with (level + 3) triples: the view-membership link,
/// one dim binding per grouped dimension, the value and the rows counter.
ViewStats StatsFromResult(uint32_t mask, const sparql::QueryResult& result,
                          double eval_micros) {
  ViewStats stats;
  stats.mask = mask;
  stats.result_rows = result.NumRows();
  int level = __builtin_popcount(mask);
  stats.encoded_triples =
      stats.result_rows * (static_cast<uint64_t>(level) + 3);

  // Distinct nodes: one fresh blank node per row, the view IRI, and every
  // distinct dim/agg/rows term. (Predicates are not graph nodes.)
  std::set<std::string> terms;
  for (size_t r = 0; r < result.rows.size(); ++r) {
    for (size_t c = 0; c < result.rows[r].size(); ++c) {
      if (result.bound[r][c]) terms.insert(result.rows[r][c].ToNTriples());
    }
  }
  stats.encoded_nodes = stats.result_rows /* blanks */ + 1 /* view IRI */ +
                        terms.size();
  stats.encoded_bytes = EstimateBytes(stats.encoded_triples, stats.encoded_nodes);
  stats.eval_micros = eval_micros;
  return stats;
}

}  // namespace

Result<LatticeProfile> ProfileLattice(TripleStore* store, const Facet& facet,
                                      const ProfileOptions& options) {
  if (!store->finalized()) {
    return Status::Internal("profiler requires a finalized store");
  }
  WallTimer total_timer;
  LatticeProfile profile;
  profile.mode = options.mode;
  profile.sample_rate =
      options.mode == ProfileMode::kSampled ? options.sample_rate : 1.0;
  profile.base_triples = store->NumTriples();
  profile.base_nodes = store->NumNodes();

  const size_t lattice_size = 1ull << facet.num_dims();
  profile.views.resize(lattice_size);

  // The root view is always computed exactly: it provides the base pattern
  // cardinality, and the sampled mode derives everything else from it. It
  // is also by far the most expensive single query — the serial Amdahl cap
  // of the whole profiling pass — so it runs with full intra-query
  // parallelism (morsel exchange) before the per-node fan-out starts.
  sparql::ExecOptions root_options;
  root_options.pool = options.pool;
  root_options.dop = options.exec_dop != 0
                         ? options.exec_dop
                         : (options.pool != nullptr
                                ? static_cast<unsigned>(options.pool->num_threads())
                                : 1);
  sparql::QueryEngine engine(store, root_options);
  WallTimer root_timer;
  SOFOS_ASSIGN_OR_RETURN(
      sparql::QueryResult root,
      engine.Execute(facet.ViewQuerySparql(facet.FullMask())));
  double root_micros = root_timer.ElapsedMicros();

  // Base pattern rows = Σ per-group contributing rows (the last column of
  // the view query is the COUNT(?u) AS ?rows).
  for (size_t r = 0; r < root.rows.size(); ++r) {
    auto rows = root.rows[r].back().AsInt64();
    if (rows.ok()) profile.base_pattern_rows += static_cast<uint64_t>(*rows);
  }
  profile.views[facet.FullMask()] =
      StatsFromResult(facet.FullMask(), root, root_micros);

  if (options.mode == ProfileMode::kExact) {
    // One task per lattice node: view queries vary in cost by orders of
    // magnitude across levels, so per-node scheduling balances better than
    // static chunks. Each task touches only its own profile.views[mask]
    // slot; the store is scanned const-only (aggregate literals intern
    // through the synchronized dictionary). Errors surface for the
    // smallest failing mask, exactly what the serial loop would hit first.
    SOFOS_RETURN_IF_ERROR(ParallelForEachStatus(
        options.pool, lattice_size, [&](size_t index) -> Status {
          uint32_t mask = static_cast<uint32_t>(index);
          if (mask == facet.FullMask()) return Status::OK();
          WallTimer timer;
          sparql::QueryEngine node_engine(store);
          auto result = node_engine.Execute(facet.ViewQuerySparql(mask));
          if (!result.ok()) return result.status();
          profile.views[mask] =
              StatsFromResult(mask, *result, timer.ElapsedMicros());
          return Status::OK();
        }));
    profile.profile_micros = total_timer.ElapsedMicros();
    return profile;
  }

  // ---- Sampled mode: sample root rows, regroup in memory, scale up. ----
  Rng rng(options.seed);
  double p = std::min(1.0, std::max(options.sample_rate, 1e-3));
  std::vector<size_t> sample;
  for (size_t r = 0; r < root.rows.size(); ++r) {
    if (rng.Chance(p)) sample.push_back(r);
  }
  // Guarantee a non-empty sample when the root has rows at all.
  if (sample.empty() && !root.rows.empty()) {
    sample.push_back(rng.Uniform(root.rows.size()));
  }

  size_t num_dims = facet.num_dims();
  // In-memory regrouping of the shared (read-only) sample is embarrassingly
  // parallel across masks; every iteration writes its own slot.
  ParallelFor(options.pool, lattice_size, [&](size_t index) {
    uint32_t mask = static_cast<uint32_t>(index);
    if (mask == facet.FullMask()) return;
    WallTimer timer;
    // Group the sampled root rows by the mask's dimensions. Row layout of
    // the root result: dims (in facet order), then ?agg, then ?rows.
    std::set<std::vector<std::string>> groups;
    std::set<std::string> dim_terms;
    for (size_t r : sample) {
      std::vector<std::string> key;
      for (size_t d = 0; d < num_dims; ++d) {
        if ((mask >> d) & 1u) {
          std::string t = root.bound[r][d] ? root.rows[r][d].ToNTriples() : "";
          dim_terms.insert(t);
          key.push_back(std::move(t));
        }
      }
      groups.insert(std::move(key));
    }
    // Naive linear scale-up of distinct counts (deliberately simple; the
    // paper's point is that size estimates on KGs are unreliable, and the
    // E9 ablation measures exactly this estimator's error).
    auto scale = [&](uint64_t v) -> uint64_t {
      return static_cast<uint64_t>(static_cast<double>(v) / p);
    };
    ViewStats stats;
    stats.mask = mask;
    stats.estimated = true;
    stats.result_rows =
        std::min<uint64_t>(scale(groups.size()),
                           profile.views[facet.FullMask()].result_rows);
    if (mask == 0) stats.result_rows = root.rows.empty() ? 0 : 1;
    int level = __builtin_popcount(mask);
    stats.encoded_triples =
        stats.result_rows * (static_cast<uint64_t>(level) + 3);
    uint64_t est_terms = std::min<uint64_t>(
        scale(dim_terms.size()) + stats.result_rows,
        profile.views[facet.FullMask()].encoded_nodes);
    stats.encoded_nodes = stats.result_rows + 1 + est_terms;
    stats.encoded_bytes = EstimateBytes(stats.encoded_triples, stats.encoded_nodes);
    stats.eval_micros = timer.ElapsedMicros();
    profile.views[mask] = stats;
  });
  profile.profile_micros = total_timer.ElapsedMicros();
  return profile;
}

}  // namespace core
}  // namespace sofos
