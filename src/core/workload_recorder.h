// WorkloadRecorder: an append-only bounded log of the queries the engine
// actually answered — normalized text, routing decision, epoch, latency,
// output rows, cache hit — exportable as a workload the profiler/selector
// can re-profile against *observed* traffic. This is the recorded-workload
// input the self-driving re-selection loop (ROADMAP item 5) needs: drift
// triggers and re-selection should be driven by what clients really ask,
// not by the synthetic workload the views were first chosen for.
//
// Threading: Record() is called from snapshot query threads and server
// sessions concurrently; one mutex around a fixed-capacity deque. The
// enabled flag is a relaxed atomic so disabled recording costs one load.
#ifndef SOFOS_CORE_WORKLOAD_RECORDER_H_
#define SOFOS_CORE_WORKLOAD_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "core/workload_types.h"

namespace sofos {
namespace core {

/// One answered query as observed at the engine (or served from the
/// result cache by the server, with cache_hit = true).
struct RecordedQuery {
  std::string normalized_sparql;  // NormalizeSparql'd text (cache-key form)
  QuerySignature signature;       // valid when has_signature
  bool has_signature = false;     // false: shape didn't match the facet
  bool used_view = false;
  uint32_t view_mask = 0;         // valid when used_view
  uint64_t epoch = 0;
  double micros = 0.0;
  uint64_t result_rows = 0;
  bool cache_hit = false;
};

class WorkloadRecorder {
 public:
  /// `capacity` bounds the retained log; older entries are evicted (and
  /// counted as dropped) once it is exceeded.
  explicit WorkloadRecorder(size_t capacity = 1024);

  WorkloadRecorder(const WorkloadRecorder&) = delete;
  WorkloadRecorder& operator=(const WorkloadRecorder&) = delete;

  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one observation (no-op while disabled — callers may skip the
  /// call via enabled() to avoid building the entry at all).
  void Record(RecordedQuery entry);

  /// Copies the retained log, oldest first.
  std::vector<RecordedQuery> Snapshot() const;

  /// The retained log as a replayable workload: every entry that carries a
  /// facet signature becomes a WorkloadQuery (id "rec-<i>", the normalized
  /// text, the recorded signature). Cache-hit entries recorded by the
  /// server carry no signature and are skipped — each cached answer was
  /// preceded by the recorded miss that produced it, so the workload's
  /// query *shapes* are complete. Re-running the export through
  /// SofosEngine::RunWorkload at the same epoch reproduces the recorded
  /// routing decisions (the acceptance invariant of the telemetry PR).
  std::vector<WorkloadQuery> ExportWorkload() const;

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t recorded_total() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_total() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  const size_t capacity_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::deque<RecordedQuery> ring_;
};

}  // namespace core
}  // namespace sofos

#endif  // SOFOS_CORE_WORKLOAD_RECORDER_H_
