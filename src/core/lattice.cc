#include "core/lattice.h"

#include <algorithm>

#include "common/string_util.h"

namespace sofos {
namespace core {

std::vector<uint32_t> Lattice::AllMasks() const {
  std::vector<uint32_t> masks(size());
  for (size_t i = 0; i < masks.size(); ++i) masks[i] = static_cast<uint32_t>(i);
  return masks;
}

std::vector<uint32_t> Lattice::Children(uint32_t mask) const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < facet_->num_dims(); ++i) {
    uint32_t bit = 1u << i;
    if (mask & bit) out.push_back(mask & ~bit);
  }
  return out;
}

std::vector<uint32_t> Lattice::Parents(uint32_t mask) const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < facet_->num_dims(); ++i) {
    uint32_t bit = 1u << i;
    if (!(mask & bit)) out.push_back(mask | bit);
  }
  return out;
}

std::vector<uint32_t> Lattice::AnswerableBy(uint32_t mask) const {
  // Enumerate all submasks of `mask` (standard subset-enumeration trick).
  std::vector<uint32_t> out;
  uint32_t sub = mask;
  while (true) {
    out.push_back(sub);
    if (sub == 0) break;
    sub = (sub - 1) & mask;
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Lattice::Render(const std::vector<uint32_t>& selected) const {
  auto is_selected = [&](uint32_t mask) {
    return std::find(selected.begin(), selected.end(), mask) != selected.end();
  };
  std::string out;
  int dims = static_cast<int>(facet_->num_dims());
  for (int level = dims; level >= 0; --level) {
    out += StrFormat("level %d: ", level);
    bool first = true;
    for (uint32_t mask = 0; mask < size(); ++mask) {
      if (Level(mask) != level) continue;
      if (!first) out += "  ";
      first = false;
      if (is_selected(mask)) out += "*";
      out += facet_->MaskLabel(mask);
    }
    out += '\n';
  }
  return out;
}

}  // namespace core
}  // namespace sofos
