#ifndef SOFOS_TESTS_CORE_TEST_UTIL_H_
#define SOFOS_TESTS_CORE_TEST_UTIL_H_

#include <utility>

#include "core/engine.h"
#include "datagen/registry.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace sofos {
namespace testing {

/// Builds a SofosEngine loaded with a tiny deterministic dataset and its
/// canonical facet. Used by profiler/selection/pipeline tests.
inline void SetUpEngine(core::SofosEngine* engine, const std::string& dataset,
                        uint64_t seed = 42) {
  TripleStore store;
  // Build at the engine's shard count up front (same pattern as the CLI
  // and bench loaders): LoadStore's repartition becomes a no-op.
  store.SetShardCount(engine->ResolvedShardCount());
  auto spec = datagen::GenerateByName(dataset, datagen::Scale::kTiny, seed, &store);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto facet = core::Facet::FromSparql(spec->facet_sparql, spec->name,
                                       spec->dim_labels);
  ASSERT_TRUE(facet.ok()) << facet.status().ToString();
  SOFOS_ASSERT_OK(engine->LoadStore(std::move(store)));
  SOFOS_ASSERT_OK(engine->SetFacet(std::move(facet).value()));
}

/// Runs Profile() with exact mode and asserts success.
inline const core::LatticeProfile& MustProfile(core::SofosEngine* engine) {
  auto profile = engine->Profile();
  EXPECT_TRUE(profile.ok()) << profile.status().ToString();
  return **profile;
}

/// Two query results are equivalent if they contain the same multiset of
/// rows (both canonically sorted).
inline void ExpectSameAnswers(sparql::QueryResult a, sparql::QueryResult b,
                              const std::string& context) {
  a.SortCanonical();
  b.SortCanonical();
  ASSERT_EQ(a.NumRows(), b.NumRows()) << context;
  ASSERT_EQ(a.NumCols(), b.NumCols()) << context;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      ASSERT_EQ(a.bound[r][c], b.bound[r][c])
          << context << " row " << r << " col " << c;
      if (!a.bound[r][c]) continue;
      const Term& ta = a.rows[r][c];
      const Term& tb = b.rows[r][c];
      if (ta.is_numeric() && tb.is_numeric()) {
        // Roll-ups may legitimately change integer sums into doubles
        // (e.g. AVG recomputation); compare numerically with tolerance.
        double va = ta.AsDouble().ValueOr(0);
        double vb = tb.AsDouble().ValueOr(0);
        ASSERT_NEAR(va, vb, std::max(1e-6, std::abs(va) * 1e-9))
            << context << " row " << r << " col " << c;
      } else {
        ASSERT_EQ(ta, tb) << context << " row " << r << " col " << c
                          << ": " << ta.ToNTriples() << " vs " << tb.ToNTriples();
      }
    }
  }
}

}  // namespace testing
}  // namespace sofos

#endif  // SOFOS_TESTS_CORE_TEST_UTIL_H_
