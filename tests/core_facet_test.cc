#include "core/facet.h"

#include "core/lattice.h"
#include "gtest/gtest.h"
#include "sparql/parser.h"
#include "tests/test_util.h"

namespace sofos {
namespace core {
namespace {

constexpr const char* kFacetSparql =
    "PREFIX ex: <http://example.org/>\n"
    "SELECT ?country ?language ?year (SUM(?pop) AS ?agg) WHERE {\n"
    "  ?obs ex:country ?country .\n"
    "  ?obs ex:language ?language .\n"
    "  ?obs ex:year ?year .\n"
    "  ?obs ex:population ?pop .\n"
    "} GROUP BY ?country ?language ?year";

Facet MustParse(const std::string& sparql = kFacetSparql) {
  auto facet = Facet::FromSparql(sparql, "test");
  EXPECT_TRUE(facet.ok()) << facet.status().ToString();
  return std::move(facet).value();
}

TEST(FacetTest, ParsesDimensionsInGroupByOrder) {
  Facet facet = MustParse();
  ASSERT_EQ(facet.num_dims(), 3u);
  EXPECT_EQ(facet.dims()[0].var, "country");
  EXPECT_EQ(facet.dims()[1].var, "language");
  EXPECT_EQ(facet.dims()[2].var, "year");
  EXPECT_EQ(facet.agg_kind(), sparql::AggKind::kSum);
  EXPECT_EQ(facet.agg_var(), "pop");
  EXPECT_EQ(facet.pattern().size(), 4u);
  EXPECT_EQ(facet.FullMask(), 0b111u);
}

TEST(FacetTest, DimIndexAndLabels) {
  auto facet_or = Facet::FromSparql(kFacetSparql, "test",
                                    {"Country", "Language", "Year"});
  ASSERT_TRUE(facet_or.ok());
  const Facet& facet = *facet_or;
  EXPECT_EQ(facet.DimIndex("language"), 1);
  EXPECT_EQ(facet.DimIndex("nosuch"), -1);
  EXPECT_EQ(facet.dims()[0].label, "Country");
}

TEST(FacetTest, MaskLabels) {
  Facet facet = MustParse();
  EXPECT_EQ(facet.MaskLabel(0), "{} (apex)");
  EXPECT_EQ(facet.MaskLabel(0b101), "{country,year}");
  EXPECT_EQ(facet.MaskLabel(0b111), "{country,language,year}");
}

TEST(FacetTest, ViewQueryIncludesRowsCounter) {
  Facet facet = MustParse();
  std::string q = facet.ViewQuerySparql(0b011);
  EXPECT_NE(q.find("SELECT ?country ?language"), std::string::npos);
  EXPECT_NE(q.find("(SUM(?pop) AS ?agg)"), std::string::npos);
  EXPECT_NE(q.find("(COUNT(?pop) AS ?rows)"), std::string::npos);
  EXPECT_NE(q.find("GROUP BY ?country ?language"), std::string::npos);
  // The view query must itself parse.
  EXPECT_TRUE(sparql::Parser::Parse(q).ok());
}

TEST(FacetTest, ApexViewQueryHasNoGroupBy) {
  Facet facet = MustParse();
  std::string q = facet.ViewQuerySparql(0);
  EXPECT_EQ(q.find("GROUP BY"), std::string::npos);
  EXPECT_TRUE(sparql::Parser::Parse(q).ok());
}

TEST(FacetTest, AvgFacetStoresSum) {
  std::string avg_template = kFacetSparql;
  size_t pos = avg_template.find("SUM");
  avg_template.replace(pos, 3, "AVG");
  Facet facet = MustParse(avg_template);
  EXPECT_EQ(facet.agg_kind(), sparql::AggKind::kAvg);
  // Views for AVG facets store SUM + COUNT for exact roll-up.
  std::string q = facet.ViewQuerySparql(0b1);
  EXPECT_NE(q.find("SUM(?pop)"), std::string::npos);
  EXPECT_EQ(q.find("AVG"), std::string::npos);
  // But the canonical (user-facing) query uses AVG.
  EXPECT_NE(facet.CanonicalQuerySparql(0b1).find("AVG(?pop)"), std::string::npos);
}

TEST(FacetTest, PatternPredicatesDeduplicated) {
  Facet facet = MustParse();
  auto preds = facet.PatternPredicates();
  EXPECT_EQ(preds.size(), 4u);
}

TEST(FacetTest, ErrorNoGroupBy) {
  auto facet = Facet::FromSparql(
      "SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o }", "bad");
  EXPECT_FALSE(facet.ok());
}

TEST(FacetTest, ErrorNoAggregate) {
  auto facet = Facet::FromSparql(
      "SELECT ?s WHERE { ?s ?p ?o } GROUP BY ?s", "bad");
  EXPECT_FALSE(facet.ok());
}

TEST(FacetTest, ErrorTwoAggregates) {
  auto facet = Facet::FromSparql(
      "SELECT ?s (SUM(?o) AS ?a) (COUNT(?o) AS ?b) WHERE { ?s ?p ?o } GROUP BY ?s",
      "bad");
  EXPECT_FALSE(facet.ok());
}

TEST(FacetTest, ErrorCountStarFacet) {
  auto facet = Facet::FromSparql(
      "SELECT ?s (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s", "bad");
  EXPECT_FALSE(facet.ok());
}

TEST(FacetTest, ErrorFacetWithFilter) {
  auto facet = Facet::FromSparql(
      "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ?p ?o . FILTER(?o > 1) } GROUP BY ?s",
      "bad");
  EXPECT_FALSE(facet.ok());
}

TEST(FacetTest, ErrorDimNotInPattern) {
  auto facet = Facet::FromSparql(
      "SELECT ?z (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?z", "bad");
  EXPECT_FALSE(facet.ok());
}

// --------------------------------------------------------------- lattice

TEST(LatticeTest, SizeIsPowerOfTwo) {
  Facet facet = MustParse();
  Lattice lattice(&facet);
  EXPECT_EQ(lattice.size(), 8u);
  EXPECT_EQ(lattice.AllMasks().size(), 8u);
}

TEST(LatticeTest, CanAnswerIsSubsetRelation) {
  EXPECT_TRUE(Lattice::CanAnswer(0b111, 0b101));
  EXPECT_TRUE(Lattice::CanAnswer(0b101, 0b101));
  EXPECT_TRUE(Lattice::CanAnswer(0b101, 0));
  EXPECT_FALSE(Lattice::CanAnswer(0b101, 0b010));
  EXPECT_FALSE(Lattice::CanAnswer(0, 0b1));
}

TEST(LatticeTest, ChildrenRemoveOneDim) {
  Facet facet = MustParse();
  Lattice lattice(&facet);
  auto children = lattice.Children(0b101);
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0], 0b100u);
  EXPECT_EQ(children[1], 0b001u);
  EXPECT_TRUE(lattice.Children(0).empty());
}

TEST(LatticeTest, ParentsAddOneDim) {
  Facet facet = MustParse();
  Lattice lattice(&facet);
  auto parents = lattice.Parents(0b001);
  ASSERT_EQ(parents.size(), 2u);
  EXPECT_EQ(parents[0], 0b011u);
  EXPECT_EQ(parents[1], 0b101u);
  EXPECT_TRUE(lattice.Parents(facet.FullMask()).empty());
}

TEST(LatticeTest, AnswerableByEnumeratesDownset) {
  Facet facet = MustParse();
  Lattice lattice(&facet);
  auto downset = lattice.AnswerableBy(0b101);
  ASSERT_EQ(downset.size(), 4u);  // {}, {c}, {y}, {c,y}
  EXPECT_EQ(downset[0], 0u);
  EXPECT_EQ(downset[3], 0b101u);
  EXPECT_EQ(lattice.AnswerableBy(facet.FullMask()).size(), 8u);
  EXPECT_EQ(lattice.AnswerableBy(0).size(), 1u);
}

TEST(LatticeTest, LevelCountsDims) {
  EXPECT_EQ(Lattice::Level(0), 0);
  EXPECT_EQ(Lattice::Level(0b101), 2);
  EXPECT_EQ(Lattice::Level(0b111), 3);
}

TEST(LatticeTest, RenderMarksSelection) {
  Facet facet = MustParse();
  Lattice lattice(&facet);
  std::string out = lattice.Render({0b011});
  EXPECT_NE(out.find("*{country,language}"), std::string::npos);
  EXPECT_NE(out.find("level 3"), std::string::npos);
  EXPECT_NE(out.find("{} (apex)"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace sofos
