#include "workload/generator.h"

#include <set>

#include "gtest/gtest.h"
#include "sparql/parser.h"
#include "sparql/query_engine.h"
#include "tests/core_test_util.h"

namespace sofos {
namespace workload {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override { testing::SetUpEngine(&engine_, "geopop"); }
  core::SofosEngine engine_;
};

TEST_F(WorkloadTest, GeneratesRequestedCount) {
  WorkloadGenerator generator(&engine_.facet(), engine_.store());
  WorkloadOptions options;
  options.num_queries = 12;
  auto queries = generator.Generate(options);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  EXPECT_EQ(queries->size(), 12u);
  std::set<std::string> ids;
  for (const auto& query : *queries) ids.insert(query.id);
  EXPECT_EQ(ids.size(), 12u) << "query ids must be unique";
}

TEST_F(WorkloadTest, AllQueriesParseAndExecute) {
  WorkloadGenerator generator(&engine_.facet(), engine_.store());
  WorkloadOptions options;
  options.num_queries = 30;
  options.seed = 17;
  auto queries = generator.Generate(options);
  ASSERT_TRUE(queries.ok());
  sparql::QueryEngine qe(engine_.store());
  for (const auto& query : *queries) {
    ASSERT_TRUE(sparql::Parser::Parse(query.sparql).ok()) << query.sparql;
    auto result = qe.Execute(query.sparql);
    ASSERT_TRUE(result.ok()) << result.status().ToString() << "\n" << query.sparql;
  }
}

TEST_F(WorkloadTest, SingleEqualityFiltersAreSatisfiable) {
  // Constants come from the data, so a query with exactly ONE equality
  // filter always matches something. (Conjunctions of filters on different
  // dimensions may legitimately be jointly empty, e.g. a country paired
  // with the wrong continent.)
  WorkloadGenerator generator(&engine_.facet(), engine_.store());
  WorkloadOptions options;
  options.num_queries = 40;
  options.filter_prob = 1.0;
  options.max_filters = 1;
  options.range_prob = 0.0;  // equality only
  options.seed = 23;
  auto queries = generator.Generate(options);
  ASSERT_TRUE(queries.ok());
  sparql::QueryEngine qe(engine_.store());
  size_t filtered = 0;
  for (const auto& query : *queries) {
    if (query.signature.constraints.size() != 1) continue;
    ++filtered;
    auto result = qe.Execute(query.sparql);
    ASSERT_TRUE(result.ok()) << query.sparql;
    EXPECT_GT(result->NumRows(), 0u) << query.sparql;
  }
  EXPECT_GT(filtered, 20u);
}

TEST_F(WorkloadTest, SignatureMatchesRenderedSparql) {
  WorkloadGenerator generator(&engine_.facet(), engine_.store());
  WorkloadOptions options;
  options.num_queries = 25;
  options.seed = 29;
  auto queries = generator.Generate(options);
  ASSERT_TRUE(queries.ok());
  core::Rewriter rewriter(&engine_.facet());
  for (const auto& query : *queries) {
    auto parsed = sparql::Parser::Parse(query.sparql);
    ASSERT_TRUE(parsed.ok());
    auto sig = rewriter.AnalyzeQuery(*parsed);
    ASSERT_TRUE(sig.ok()) << sig.status().ToString() << "\n" << query.sparql;
    EXPECT_EQ(sig->group_mask, query.signature.group_mask) << query.sparql;
    EXPECT_EQ(sig->filter_mask, query.signature.filter_mask) << query.sparql;
  }
}

TEST_F(WorkloadTest, DeterministicForSeed) {
  WorkloadGenerator generator(&engine_.facet(), engine_.store());
  WorkloadOptions options;
  options.num_queries = 10;
  options.seed = 31;
  auto a = generator.Generate(options);
  auto b = generator.Generate(options);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].sparql, (*b)[i].sparql);
  }
  options.seed = 32;
  auto c = generator.Generate(options);
  ASSERT_TRUE(c.ok());
  bool any_different = false;
  for (size_t i = 0; i < a->size(); ++i) {
    any_different |= (*a)[i].sparql != (*c)[i].sparql;
  }
  EXPECT_TRUE(any_different);
}

TEST_F(WorkloadTest, GroupDimProbabilityShapesQueries) {
  WorkloadGenerator generator(&engine_.facet(), engine_.store());
  WorkloadOptions all_dims;
  all_dims.num_queries = 10;
  all_dims.group_dim_prob = 1.0;
  all_dims.filter_prob = 0.0;
  auto full = generator.Generate(all_dims);
  ASSERT_TRUE(full.ok());
  for (const auto& query : *full) {
    EXPECT_EQ(query.signature.group_mask, engine_.facet().FullMask());
    EXPECT_EQ(query.signature.filter_mask, 0u);
  }

  WorkloadOptions no_dims;
  no_dims.num_queries = 10;
  no_dims.group_dim_prob = 0.0;
  no_dims.filter_prob = 0.0;
  auto apex = generator.Generate(no_dims);
  ASSERT_TRUE(apex.ok());
  for (const auto& query : *apex) {
    EXPECT_EQ(query.signature.group_mask, 0u);
    EXPECT_EQ(query.sparql.find("GROUP BY"), std::string::npos);
  }
}

TEST_F(WorkloadTest, RangeFiltersOnNumericDims) {
  WorkloadGenerator generator(&engine_.facet(), engine_.store());
  WorkloadOptions options;
  options.num_queries = 50;
  options.filter_prob = 1.0;
  options.range_prob = 1.0;
  options.seed = 37;
  auto queries = generator.Generate(options);
  ASSERT_TRUE(queries.ok());
  bool saw_range = false;
  for (const auto& query : *queries) {
    for (const auto& c : query.signature.constraints) {
      if (c.usage == core::DimUsage::kFilteredRange) {
        saw_range = true;
        EXPECT_NE(c.filter_sparql.find(">="), std::string::npos);
        EXPECT_NE(c.filter_sparql.find("<="), std::string::npos);
      }
    }
  }
  EXPECT_TRUE(saw_range) << "year is numeric: range filters must appear";
}

}  // namespace
}  // namespace workload
}  // namespace sofos
