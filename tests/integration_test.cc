/// End-to-end integration: the full SOFOS pipeline (load → facet → profile
/// → select → materialize → answer → verify) on all three demo datasets and
/// all automatic cost models, plus the view-maintenance extension.

#include "core/engine.h"
#include "core/training.h"
#include "gtest/gtest.h"
#include "tests/core_test_util.h"
#include "workload/generator.h"

namespace sofos {
namespace {

using core::CostModelKind;
using core::SofosEngine;
using testing::ExpectSameAnswers;
using testing::MustProfile;
using testing::SetUpEngine;

/// One full pipeline run per (dataset, model) pair.
class FullPipelineTest
    : public ::testing::TestWithParam<std::tuple<std::string, CostModelKind>> {};

TEST_P(FullPipelineTest, SelectMaterializeAnswerVerify) {
  const auto& [dataset, kind] = GetParam();
  SofosEngine engine;
  SetUpEngine(&engine, dataset);
  MustProfile(&engine);

  if (kind == CostModelKind::kLearned) {
    core::LearnedTrainingOptions options;
    options.repetitions = 1;
    options.epochs = 120;
    ASSERT_TRUE(core::TrainLearnedModel(&engine, options).ok());
  }

  auto model = engine.MakeModel(kind);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto selection = engine.SelectViews(**model, 4);
  ASSERT_TRUE(selection.ok());
  EXPECT_EQ(selection->views.size(), 4u);

  workload::WorkloadGenerator generator(&engine.facet(), engine.store());
  workload::WorkloadOptions options;
  options.num_queries = 12;
  options.seed = 5;
  auto queries = generator.Generate(options);
  ASSERT_TRUE(queries.ok());

  // Baseline before expansion.
  std::vector<sparql::QueryResult> baseline;
  for (const auto& query : *queries) {
    auto outcome = engine.Answer(query, false);
    ASSERT_TRUE(outcome.ok()) << query.sparql;
    baseline.push_back(std::move(outcome->result));
  }

  ASSERT_TRUE(engine.MaterializeSelection(*selection).ok());
  EXPECT_GT(engine.StorageAmplification(), 1.0);

  size_t hits = 0;
  for (size_t i = 0; i < queries->size(); ++i) {
    auto outcome = engine.Answer((*queries)[i], true);
    ASSERT_TRUE(outcome.ok()) << outcome->executed_sparql;
    if (outcome->used_view) ++hits;
    ExpectSameAnswers(std::move(baseline[i]), std::move(outcome->result),
                      dataset + "/" + (*queries)[i].id);
  }
  // With 4 informative views at least some queries must route; Random may
  // legitimately miss everything only on adversarial draws, so the bound
  // is weak but still meaningful.
  if (kind != CostModelKind::kRandom) {
    EXPECT_GT(hits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsAndModels, FullPipelineTest,
    ::testing::Combine(::testing::Values("lubm", "geopop", "swdf"),
                       ::testing::Values(CostModelKind::kRandom,
                                         CostModelKind::kTripleCount,
                                         CostModelKind::kAggValueCount,
                                         CostModelKind::kNodeCount)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, CostModelKind>>&
           info) {
      return std::get<0>(info.param) + "_" +
             core::CostModelKindName(std::get<1>(info.param));
    });

// ------------------------------------------------- view maintenance

class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetUpEngine(&engine_, "geopop");
    MustProfile(&engine_);
  }
  SofosEngine engine_;
};

TEST_F(MaintenanceTest, UpdateRefreshesMaterializedViews) {
  ASSERT_TRUE(engine_.MaterializeViews({engine_.facet().FullMask(), 0b0110}).ok());

  core::WorkloadQuery query;
  query.id = "per-country";
  query.signature.group_mask = 0b0010;
  query.sparql =
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT ?country (SUM(?pop) AS ?agg) WHERE {\n"
      "  ?obs geo:country ?country . ?obs geo:language ?language .\n"
      "  ?obs geo:year ?year . ?obs geo:population ?pop .\n"
      "  ?country geo:partOf ?continent .\n"
      "} GROUP BY ?country";

  auto before = engine_.Answer(query, true);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before->used_view);

  // Append a brand-new country with one observation.
  SOFOS_ASSERT_OK(engine_.UpdateBaseGraph([](TripleStore* store) {
    auto geo = [](const std::string& l) {
      return Term::Iri("http://sofos.example.org/geo#" + l);
    };
    Term country = geo("country/NEW");
    Term obs = Term::Blank("obs_new");
    store->Add(country, geo("partOf"), geo("continent/Europe"));
    store->Add(obs, geo("country"), country);
    store->Add(obs, geo("language"), geo("lang/L0"));
    store->Add(obs, geo("year"), Term::Integer(2019));
    store->Add(obs, geo("population"), Term::Integer(123456));
  }));

  // Views are still materialized and now reflect the new data.
  EXPECT_EQ(engine_.MaterializedMasks().size(), 2u);
  auto after = engine_.Answer(query, true);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->used_view);
  EXPECT_EQ(after->result.NumRows(), before->result.NumRows() + 1);

  // And they agree with the base graph post-update (the golden property).
  auto base = engine_.Answer(query, false);
  ASSERT_TRUE(base.ok());
  ExpectSameAnswers(std::move(base->result), std::move(after->result),
                    "refreshed view vs updated base");
}

TEST_F(MaintenanceTest, UpdateWithoutViewsJustGrowsBase) {
  uint64_t before = engine_.BaseTriples();
  SOFOS_ASSERT_OK(engine_.UpdateBaseGraph([](TripleStore* store) {
    store->Add(Term::Iri("http://x/a"), Term::Iri("http://x/b"),
               Term::Iri("http://x/c"));
  }));
  EXPECT_EQ(engine_.BaseTriples(), before + 1);
  EXPECT_TRUE(engine_.materialized().empty());
  EXPECT_DOUBLE_EQ(engine_.StorageAmplification(), 1.0);
}

TEST_F(MaintenanceTest, SnapshotExcludesViewEncodings) {
  ASSERT_TRUE(engine_.MaterializeViews({0}).ok());
  uint64_t base = engine_.BaseTriples();
  // The update callback must see the base graph only.
  SOFOS_ASSERT_OK(engine_.UpdateBaseGraph([&](TripleStore* store) {
    EXPECT_EQ(store->NumTriples(), base);
  }));
}

// ------------------------------------------------- ad-hoc SPARQL routing

class AdHocTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetUpEngine(&engine_, "geopop");
    MustProfile(&engine_);
    ASSERT_TRUE(
        engine_.MaterializeViews({engine_.facet().FullMask(), 0b0011}).ok());
  }
  SofosEngine engine_;
};

TEST_F(AdHocTest, FacetShapedQueryIsRoutedToView) {
  auto outcome = engine_.AnswerSparql(
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT ?continent (SUM(?pop) AS ?agg) WHERE {\n"
      "  ?obs geo:country ?country . ?obs geo:language ?language .\n"
      "  ?obs geo:year ?year . ?obs geo:population ?pop .\n"
      "  ?country geo:partOf ?continent .\n"
      "} GROUP BY ?continent");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->used_view);
  EXPECT_EQ(outcome->view_mask, 0b0011u);  // smaller answerable view wins
  EXPECT_GT(outcome->result.NumRows(), 0u);
}

TEST_F(AdHocTest, FilteredFacetQueryRoutesAndMatchesBase) {
  const std::string query =
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT ?country (SUM(?pop) AS ?agg) WHERE {\n"
      "  ?obs geo:country ?country . ?obs geo:language ?language .\n"
      "  ?obs geo:year ?year . ?obs geo:population ?pop .\n"
      "  ?country geo:partOf ?continent .\n"
      "  FILTER(?continent = <http://sofos.example.org/geo#continent/Europe>)\n"
      "} GROUP BY ?country";
  auto routed = engine_.AnswerSparql(query, true);
  auto base = engine_.AnswerSparql(query, false);
  ASSERT_TRUE(routed.ok() && base.ok());
  EXPECT_TRUE(routed->used_view);
  EXPECT_FALSE(base->used_view);
  ExpectSameAnswers(std::move(base->result), std::move(routed->result),
                    "ad-hoc filtered query");
}

TEST_F(AdHocTest, NonFacetQueryFallsBackToBaseGraph) {
  // Different shape (no aggregation over the facet pattern): runs
  // unrewritten, still succeeds.
  auto outcome = engine_.AnswerSparql(
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT ?lang WHERE { ?lang geo:spokenIn ?c } LIMIT 5");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->used_view);
  EXPECT_GT(outcome->result.NumRows(), 0u);
}

TEST_F(AdHocTest, ParseErrorsSurface) {
  auto outcome = engine_.AnswerSparql("SELECT WHERE broken {");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kParseError);
}

// ------------------------------------------------- routing with model

TEST(RoutingTest, RoutingModelOverridesDefault) {
  SofosEngine engine;
  SetUpEngine(&engine, "geopop");
  MustProfile(&engine);
  ASSERT_TRUE(
      engine.MaterializeViews({engine.facet().FullMask(), 0b0011}).ok());

  core::WorkloadQuery query;
  query.id = "apex";
  query.signature.group_mask = 0;
  query.sparql =
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT (SUM(?pop) AS ?agg) WHERE {\n"
      "  ?obs geo:country ?country . ?obs geo:language ?language .\n"
      "  ?obs geo:year ?year . ?obs geo:population ?pop .\n"
      "  ?country geo:partOf ?continent . }";

  // Default routing: fewest rows → {continent,country}.
  auto def = engine.Answer(query, true);
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->view_mask, 0b0011u);

  // A perverse user-defined router that prefers the full view.
  core::UserDefinedCostModel prefer_full(
      {{engine.facet().FullMask(), 1.0}, {0b0011, 100.0}}, 1e6, 1e9);
  auto forced = engine.Answer(query, true, &prefer_full);
  ASSERT_TRUE(forced.ok());
  EXPECT_EQ(forced->view_mask, engine.facet().FullMask());
}

}  // namespace
}  // namespace sofos
