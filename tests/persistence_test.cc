/// Round-trip persistence: exporting the (expanded) graph as N-Triples and
/// reloading it in a fresh engine must preserve both base answers and
/// rewritten view answers; a serialized learned model must predict
/// identically after reload.

#include <cstdio>
#include <filesystem>

#include "core/engine.h"
#include "core/training.h"
#include "gtest/gtest.h"
#include "tests/core_test_util.h"

namespace sofos {
namespace {

using testing::ExpectSameAnswers;
using testing::MustProfile;
using testing::SetUpEngine;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetUpEngine(&engine_, "geopop");
    MustProfile(&engine_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }

  core::SofosEngine engine_;
  std::string path_;
};

TEST_F(PersistenceTest, BaseGraphRoundTrip) {
  path_ = TempPath("sofos_base.nt");
  SOFOS_ASSERT_OK(engine_.ExportGraphFile(path_));

  core::SofosEngine reloaded;
  SOFOS_ASSERT_OK(reloaded.LoadGraphFile(path_));
  EXPECT_EQ(reloaded.CurrentTriples(), engine_.CurrentTriples());
  EXPECT_EQ(reloaded.store()->NumNodes(), engine_.store()->NumNodes());

  core::WorkloadQuery query;
  query.id = "roundtrip";
  query.sparql =
      "PREFIX geo: <http://sofos.example.org/geo#>\n"
      "SELECT ?country (SUM(?pop) AS ?agg) WHERE {\n"
      "  ?obs geo:country ?country . ?obs geo:population ?pop .\n"
      "} GROUP BY ?country";
  auto original = engine_.Answer(query, false);
  ASSERT_TRUE(original.ok());
  auto facet = core::Facet::FromSparql(engine_.facet().ToSparql(), "geopop");
  ASSERT_TRUE(facet.ok());
  SOFOS_ASSERT_OK(reloaded.SetFacet(std::move(facet).value()));
  auto replayed = reloaded.Answer(query, false);
  ASSERT_TRUE(replayed.ok());
  ExpectSameAnswers(std::move(original->result), std::move(replayed->result),
                    "reloaded base graph");
}

TEST_F(PersistenceTest, ExpandedGraphShipsMaterializations) {
  ASSERT_TRUE(engine_.MaterializeViews({engine_.facet().FullMask(), 0b0011}).ok());
  path_ = TempPath("sofos_expanded.nt");
  SOFOS_ASSERT_OK(engine_.ExportGraphFile(path_));

  // Fresh engine: load G+, re-declare the facet — rewritten queries against
  // the shipped encodings work without re-materializing.
  core::SofosEngine reloaded;
  SOFOS_ASSERT_OK(reloaded.LoadGraphFile(path_));
  auto facet = core::Facet::FromSparql(engine_.facet().ToSparql(), "geopop");
  ASSERT_TRUE(facet.ok());
  SOFOS_ASSERT_OK(reloaded.SetFacet(std::move(facet).value()));

  core::Rewriter rewriter(&reloaded.facet());
  core::QuerySignature sig;
  sig.group_mask = 0b0010;
  auto rewritten = rewriter.RewriteToView(sig, 0b0011);
  ASSERT_TRUE(rewritten.ok());
  sparql::QueryEngine qe(reloaded.store());
  auto from_view = qe.Execute(*rewritten);
  ASSERT_TRUE(from_view.ok()) << from_view.status().ToString();
  EXPECT_GT(from_view->NumRows(), 0u);

  // Cross-check against the original engine's view answer.
  sparql::QueryEngine qe0(engine_.store());
  auto original = qe0.Execute(*rewritten);
  ASSERT_TRUE(original.ok());
  ExpectSameAnswers(std::move(original).value(), std::move(from_view).value(),
                    "shipped view encoding");
}

TEST_F(PersistenceTest, ExportToUnwritablePathFails) {
  EXPECT_FALSE(engine_.ExportGraphFile("/nonexistent_dir/x/y.nt").ok());
  EXPECT_FALSE(engine_.LoadGraphFile("/nonexistent_dir/x/y.nt").ok());
}

TEST(LearnedPersistenceTest, ModelRoundTripsThroughSerialization) {
  core::SofosEngine engine;
  SetUpEngine(&engine, "geopop");
  MustProfile(&engine);
  core::LearnedTrainingOptions options;
  options.repetitions = 1;
  options.epochs = 100;
  auto mlp = core::TrainLearnedModel(&engine, options);
  ASSERT_TRUE(mlp.ok());

  auto restored = learned::Mlp::Deserialize((*mlp)->Serialize());
  ASSERT_TRUE(restored.ok());
  auto model = engine.MakeModel(core::CostModelKind::kLearned);
  ASSERT_TRUE(model.ok());
  auto* learned_model = static_cast<core::LearnedCostModel*>(model->get());
  for (uint32_t mask = 0; mask < 16; ++mask) {
    auto features = learned_model->Features(mask);
    EXPECT_DOUBLE_EQ(restored->Predict(features), (*mlp)->Predict(features));
  }
}

}  // namespace
}  // namespace sofos
